#!/usr/bin/env bash
# Tier-1 gate: everything a clean checkout must pass, fully offline.
#
# The workspace has zero registry dependencies (see `xplace-testkit`), so
# this script never touches the network. Run it from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> multithreaded leg: pool, ops + fft suites, golden flow with threads > 1"
cargo test -q -p xplace-parallel
cargo test -q -p xplace-ops --test properties
cargo test -q -p xplace-fft --test parallel
cargo test -q --test golden_flow golden_flow_is_thread_count_invariant

echo "==> telemetry smoke: trace determinism across thread counts + artifact checks"
SMOKE=$(mktemp -d)
SERVE_PID=""
trap '[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null; rm -rf "$SMOKE"' EXIT
./target/release/xplace synth ci-smoke 300 --seed 3 --out "$SMOKE" >/dev/null
./target/release/xplace place "$SMOKE/ci-smoke.aux" --max-iters 120 --threads 1 \
    -o "$SMOKE/t1.pl" --trace "$SMOKE/t1.jsonl" --report "$SMOKE/t1.json" >/dev/null
./target/release/xplace place "$SMOKE/ci-smoke.aux" --max-iters 120 --threads 4 \
    -o "$SMOKE/t4.pl" --trace "$SMOKE/t4.jsonl" --report "$SMOKE/t4.json" >/dev/null
cmp "$SMOKE/t1.jsonl" "$SMOKE/t4.jsonl" \
    || { echo "FAIL: traces differ across thread counts" >&2; exit 1; }
./target/release/telemetry_check trace "$SMOKE/t1.jsonl"
./target/release/telemetry_check report "$SMOKE/t1.json"

echo "==> batch smoke: 2-design batch, trace parity, batch gate, failure isolation"
cat > "$SMOKE/suite.json" <<EOF
{"jobs": [
  {"name": "s1", "aux": "$SMOKE/ci-smoke.aux", "max_iters": 120},
  {"name": "s2", "aux": "$SMOKE/ci-smoke.aux", "max_iters": 120, "seed": 7}
]}
EOF
./target/release/xplace batch "$SMOKE/suite.json" --threads 4 \
    --trace-dir "$SMOKE/batch-traces" --report "$SMOKE/batch1.json" >/dev/null
# Job s1 runs the same design/config as the serial place above: the batch
# trace must be byte-identical to the serial trace.
cmp "$SMOKE/batch-traces/s1.jsonl" "$SMOKE/t1.jsonl" \
    || { echo "FAIL: batch trace differs from the serial place trace" >&2; exit 1; }
./target/release/xplace batch "$SMOKE/suite.json" --threads 2 \
    --report "$SMOKE/batch2.json" >/dev/null
./target/release/check_regression "$SMOKE/batch1.json" "$SMOKE/batch2.json"
if ./target/release/check_regression "$SMOKE/batch1.json" "$SMOKE/batch2.json" \
    --inject-hpwl-pct 10 >/dev/null 2>&1; then
    echo "FAIL: the batch gate passed an injected +10% HPWL regression" >&2
    exit 1
fi
cat > "$SMOKE/fail-suite.json" <<EOF
{"jobs": [
  {"name": "fine",  "aux": "$SMOKE/ci-smoke.aux", "max_iters": 120},
  {"name": "crash", "aux": "$SMOKE/ci-smoke.aux", "max_iters": 120}
],
"faults": [{"target": "crash", "kind": "gp_panic", "iteration": 5}]}
EOF
if ./target/release/xplace batch "$SMOKE/fail-suite.json" --threads 2 \
    --report "$SMOKE/batch-fail.json" >"$SMOKE/batch-fail.out" 2>/dev/null; then
    echo "FAIL: a batch with a failing job exited zero" >&2
    exit 1
fi
grep -q "fine .*completed" "$SMOKE/batch-fail.out" \
    || { echo "FAIL: the healthy sibling did not complete" >&2; exit 1; }

echo "==> resume determinism: checkpointed place resumes byte-identically (threads 1, 4)"
for T in 1 4; do
    ./target/release/xplace place "$SMOKE/ci-smoke.aux" --max-iters 120 --threads "$T" \
        -o "$SMOKE/full-t$T.pl" --trace "$SMOKE/full-t$T.jsonl" \
        --checkpoint-every 50 --checkpoint-file "$SMOKE/ckpt-t$T.json" >/dev/null
    ./target/release/xplace place "$SMOKE/ci-smoke.aux" --max-iters 120 --threads "$T" \
        -o "$SMOKE/resumed-t$T.pl" --trace "$SMOKE/resumed-t$T.jsonl" \
        --resume-from "$SMOKE/ckpt-t$T.json" >/dev/null
    # Contract: the resumed trace, minus its run_start line, is a byte-exact
    # suffix of the uninterrupted trace, and the placement is identical.
    tail -n +2 "$SMOKE/resumed-t$T.jsonl" > "$SMOKE/resumed-tail-t$T.jsonl"
    N=$(wc -l < "$SMOKE/resumed-tail-t$T.jsonl")
    tail -n "$N" "$SMOKE/full-t$T.jsonl" > "$SMOKE/full-tail-t$T.jsonl"
    cmp "$SMOKE/resumed-tail-t$T.jsonl" "$SMOKE/full-tail-t$T.jsonl" \
        || { echo "FAIL: resumed trace is not a suffix of the full trace (threads $T)" >&2; exit 1; }
    cmp "$SMOKE/resumed-t$T.pl" "$SMOKE/full-t$T.pl" \
        || { echo "FAIL: resumed placement differs from the full run (threads $T)" >&2; exit 1; }
done
cmp "$SMOKE/resumed-t1.jsonl" "$SMOKE/resumed-t4.jsonl" \
    || { echo "FAIL: resumed traces differ across thread counts" >&2; exit 1; }

echo "==> chaos soak: seeded fault injection, retry recovery, client-drop conservation"
./target/release/chaos_soak --smoke

echo "==> serve smoke: daemon round trip, wire-vs-batch parity, soak, graceful drain"
./target/release/xplace serve --addr 127.0.0.1:0 --threads 4 >"$SMOKE/serve.log" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's|^serving on http://\([^ ]*\) .*|\1|p' "$SMOKE/serve.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: daemon never reported its address" >&2; exit 1; }
./target/release/xplace submit "$SMOKE/suite.json" --addr "$ADDR" --client ci \
    --trace-dir "$SMOKE/wire-traces" --report "$SMOKE/wire.json" >/dev/null
# The serve determinism contract: traces from a wire submission are
# byte-identical to the local batch run's (and so to the serial place's).
cmp "$SMOKE/wire-traces/s1.jsonl" "$SMOKE/batch-traces/s1.jsonl" \
    || { echo "FAIL: wire trace s1 differs from the batch trace" >&2; exit 1; }
cmp "$SMOKE/wire-traces/s2.jsonl" "$SMOKE/batch-traces/s2.jsonl" \
    || { echo "FAIL: wire trace s2 differs from the batch trace" >&2; exit 1; }
cmp "$SMOKE/wire-traces/s1.jsonl" "$SMOKE/t1.jsonl" \
    || { echo "FAIL: wire trace s1 differs from the serial place trace" >&2; exit 1; }
# The regression gate accepts a wire-produced report as the current run.
./target/release/check_regression "$SMOKE/batch1.json" "$SMOKE/wire.json"
# Multi-client soak at smoke scale against the same warm daemon.
./target/release/serve_soak --smoke --addr "$ADDR" >/dev/null
./target/release/xplace servectl stats --addr "$ADDR" | grep -q '"batches_completed"' \
    || { echo "FAIL: /stats is missing completion counters" >&2; exit 1; }
./target/release/xplace servectl shutdown --addr "$ADDR" >/dev/null
wait "$SERVE_PID" || { echo "FAIL: daemon exited non-zero after drain" >&2; exit 1; }
SERVE_PID=""

echo "==> bench regression gate (deterministic metrics vs BENCH_baseline.json)"
scripts/check_regression.sh
echo "==> regression gate self-test: an injected regression must fail"
if ./target/release/check_regression BENCH_baseline.json results/run_report.json \
    --inject-hpwl-pct 10 >/dev/null 2>&1; then
    echo "FAIL: the regression gate passed an injected +10% HPWL regression" >&2
    exit 1
fi

echo "==> spectral bench gate: smoke microbench vs the baseline's spectral section"
./target/release/spectral_bench --smoke --out "$SMOKE/spectral.json"
./target/release/check_regression BENCH_baseline.json "$SMOKE/spectral.json"
echo "==> spectral gate self-test: injected transform-time regression must fail"
if ./target/release/check_regression BENCH_baseline.json "$SMOKE/spectral.json" \
    --inject-spectral-pct 10 >/dev/null 2>&1; then
    echo "FAIL: the spectral gate passed an injected +10% transform-time regression" >&2
    exit 1
fi

echo "==> scaling bench gate: smoke point set vs the baseline's scaling section"
./target/release/scaling_bench --smoke --out "$SMOKE/scaling.json"
./target/release/check_regression BENCH_baseline.json "$SMOKE/scaling.json"
echo "==> scaling gate self-test: injected per-cell-cost regression must fail"
if ./target/release/check_regression BENCH_baseline.json "$SMOKE/scaling.json" \
    --inject-scaling-pct 10 >/dev/null 2>&1; then
    echo "FAIL: the scaling gate passed an injected +10% per-cell-cost regression" >&2
    exit 1
fi

echo "==> explore smoke: --explore 4 place, trace parity across thread counts"
./target/release/xplace place "$SMOKE/ci-smoke.aux" --explore 4 --max-iters 120 --threads 1 \
    -o "$SMOKE/ex1.pl" --trace "$SMOKE/ex1.jsonl" --report "$SMOKE/ex1.json" >/dev/null
./target/release/xplace place "$SMOKE/ci-smoke.aux" --explore 4 --max-iters 120 --threads 4 \
    -o "$SMOKE/ex4.pl" --trace "$SMOKE/ex4.jsonl" --report "$SMOKE/ex4.json" >/dev/null
cmp "$SMOKE/ex1.jsonl" "$SMOKE/ex4.jsonl" \
    || { echo "FAIL: explore traces differ across thread counts" >&2; exit 1; }
cmp "$SMOKE/ex1.pl" "$SMOKE/ex4.pl" \
    || { echo "FAIL: explore placements differ across thread counts" >&2; exit 1; }
# The population report zeroes its wall-clock fields, so it is
# byte-identical across thread counts, not merely equivalent.
cmp "$SMOKE/ex1.json" "$SMOKE/ex4.json" \
    || { echo "FAIL: explore reports differ across thread counts" >&2; exit 1; }

echo "==> explore bench gate: smoke population vs the baseline's explore section"
./target/release/explore_bench --smoke --out "$SMOKE/explore.json"
./target/release/check_regression BENCH_baseline.json "$SMOKE/explore.json"
echo "==> explore gate self-test: injected winner-HPWL regression must fail"
if ./target/release/check_regression BENCH_baseline.json "$SMOKE/explore.json" \
    --inject-explore-pct 10 >/dev/null 2>&1; then
    echo "FAIL: the explore gate passed an injected +10% winner-HPWL regression" >&2
    exit 1
fi

echo "==> multilevel smoke: 100k-cell place, trace parity across thread counts"
./target/release/xplace synth ci-ml 100000 --seed 11 --topology systolic \
    --out "$SMOKE" >/dev/null
./target/release/xplace place "$SMOKE/ci-ml.aux" --multilevel --coarse-iters 60 \
    --max-iters 40 --threads 1 -o "$SMOKE/ml1.pl" --trace "$SMOKE/ml1.jsonl" >/dev/null
./target/release/xplace place "$SMOKE/ci-ml.aux" --multilevel --coarse-iters 60 \
    --max-iters 40 --threads 4 -o "$SMOKE/ml4.pl" --trace "$SMOKE/ml4.jsonl" >/dev/null
cmp "$SMOKE/ml1.jsonl" "$SMOKE/ml4.jsonl" \
    || { echo "FAIL: multilevel traces differ across thread counts" >&2; exit 1; }
cmp "$SMOKE/ml1.pl" "$SMOKE/ml4.pl" \
    || { echo "FAIL: multilevel placements differ across thread counts" >&2; exit 1; }

echo "==> coarsening smoke: 1M-cell hierarchy construction completes"
./target/release/scaling_bench --coarsen-smoke 1000000 --topology systolic

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI gate passed."
