#!/usr/bin/env bash
# Tier-1 gate: everything a clean checkout must pass, fully offline.
#
# The workspace has zero registry dependencies (see `xplace-testkit`), so
# this script never touches the network. Run it from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> multithreaded leg: pool, ops + fft suites, golden flow with threads > 1"
cargo test -q -p xplace-parallel
cargo test -q -p xplace-ops --test properties
cargo test -q -p xplace-fft --test parallel
cargo test -q --test golden_flow golden_flow_is_thread_count_invariant

echo "==> telemetry smoke: trace determinism across thread counts + artifact checks"
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
./target/release/xplace synth ci-smoke 300 --seed 3 --out "$SMOKE" >/dev/null
./target/release/xplace place "$SMOKE/ci-smoke.aux" --max-iters 120 --threads 1 \
    -o "$SMOKE/t1.pl" --trace "$SMOKE/t1.jsonl" --report "$SMOKE/t1.json" >/dev/null
./target/release/xplace place "$SMOKE/ci-smoke.aux" --max-iters 120 --threads 4 \
    -o "$SMOKE/t4.pl" --trace "$SMOKE/t4.jsonl" --report "$SMOKE/t4.json" >/dev/null
cmp "$SMOKE/t1.jsonl" "$SMOKE/t4.jsonl" \
    || { echo "FAIL: traces differ across thread counts" >&2; exit 1; }
./target/release/telemetry_check trace "$SMOKE/t1.jsonl"
./target/release/telemetry_check report "$SMOKE/t1.json"

echo "==> bench regression gate (deterministic metrics vs BENCH_baseline.json)"
scripts/check_regression.sh
echo "==> regression gate self-test: an injected regression must fail"
if ./target/release/check_regression BENCH_baseline.json results/run_report.json \
    --inject-hpwl-pct 10 >/dev/null 2>&1; then
    echo "FAIL: the regression gate passed an injected +10% HPWL regression" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI gate passed."
