#!/usr/bin/env bash
# Tier-1 gate: everything a clean checkout must pass, fully offline.
#
# The workspace has zero registry dependencies (see `xplace-testkit`), so
# this script never touches the network. Run it from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> multithreaded leg: pool, ops + fft suites, golden flow with threads > 1"
cargo test -q -p xplace-parallel
cargo test -q -p xplace-ops --test properties
cargo test -q -p xplace-fft --test parallel
cargo test -q --test golden_flow golden_flow_is_thread_count_invariant

echo "==> telemetry smoke: trace determinism across thread counts + artifact checks"
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
./target/release/xplace synth ci-smoke 300 --seed 3 --out "$SMOKE" >/dev/null
./target/release/xplace place "$SMOKE/ci-smoke.aux" --max-iters 120 --threads 1 \
    -o "$SMOKE/t1.pl" --trace "$SMOKE/t1.jsonl" --report "$SMOKE/t1.json" >/dev/null
./target/release/xplace place "$SMOKE/ci-smoke.aux" --max-iters 120 --threads 4 \
    -o "$SMOKE/t4.pl" --trace "$SMOKE/t4.jsonl" --report "$SMOKE/t4.json" >/dev/null
cmp "$SMOKE/t1.jsonl" "$SMOKE/t4.jsonl" \
    || { echo "FAIL: traces differ across thread counts" >&2; exit 1; }
./target/release/telemetry_check trace "$SMOKE/t1.jsonl"
./target/release/telemetry_check report "$SMOKE/t1.json"

echo "==> batch smoke: 2-design batch, trace parity, batch gate, failure isolation"
cat > "$SMOKE/suite.json" <<EOF
{"jobs": [
  {"name": "s1", "aux": "$SMOKE/ci-smoke.aux", "max_iters": 120},
  {"name": "s2", "aux": "$SMOKE/ci-smoke.aux", "max_iters": 120, "seed": 7}
]}
EOF
./target/release/xplace batch "$SMOKE/suite.json" --threads 4 \
    --trace-dir "$SMOKE/batch-traces" --report "$SMOKE/batch1.json" >/dev/null
# Job s1 runs the same design/config as the serial place above: the batch
# trace must be byte-identical to the serial trace.
cmp "$SMOKE/batch-traces/s1.jsonl" "$SMOKE/t1.jsonl" \
    || { echo "FAIL: batch trace differs from the serial place trace" >&2; exit 1; }
./target/release/xplace batch "$SMOKE/suite.json" --threads 2 \
    --report "$SMOKE/batch2.json" >/dev/null
./target/release/check_regression "$SMOKE/batch1.json" "$SMOKE/batch2.json"
if ./target/release/check_regression "$SMOKE/batch1.json" "$SMOKE/batch2.json" \
    --inject-hpwl-pct 10 >/dev/null 2>&1; then
    echo "FAIL: the batch gate passed an injected +10% HPWL regression" >&2
    exit 1
fi
cat > "$SMOKE/fail-suite.json" <<EOF
{"jobs": [
  {"name": "fine",  "aux": "$SMOKE/ci-smoke.aux", "max_iters": 120},
  {"name": "crash", "aux": "$SMOKE/ci-smoke.aux", "max_iters": 120, "fail_at": 5}
]}
EOF
if ./target/release/xplace batch "$SMOKE/fail-suite.json" --threads 2 \
    --report "$SMOKE/batch-fail.json" >"$SMOKE/batch-fail.out" 2>/dev/null; then
    echo "FAIL: a batch with a failing job exited zero" >&2
    exit 1
fi
grep -q "fine .*completed" "$SMOKE/batch-fail.out" \
    || { echo "FAIL: the healthy sibling did not complete" >&2; exit 1; }

echo "==> bench regression gate (deterministic metrics vs BENCH_baseline.json)"
scripts/check_regression.sh
echo "==> regression gate self-test: an injected regression must fail"
if ./target/release/check_regression BENCH_baseline.json results/run_report.json \
    --inject-hpwl-pct 10 >/dev/null 2>&1; then
    echo "FAIL: the regression gate passed an injected +10% HPWL regression" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI gate passed."
