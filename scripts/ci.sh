#!/usr/bin/env bash
# Tier-1 gate: everything a clean checkout must pass, fully offline.
#
# The workspace has zero registry dependencies (see `xplace-testkit`), so
# this script never touches the network. Run it from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> multithreaded leg: pool, ops + fft suites, golden flow with threads > 1"
cargo test -q -p xplace-parallel
cargo test -q -p xplace-ops --test properties
cargo test -q -p xplace-fft --test parallel
cargo test -q --test golden_flow golden_flow_is_thread_count_invariant

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI gate passed."
