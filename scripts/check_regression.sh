#!/usr/bin/env bash
# Bench regression gate: re-runs the canonical deterministic flow and
# diffs the fresh RunReport against the committed BENCH_baseline.json.
#
# Deterministic quantities (final HPWL, modeled GP time, kernel launch
# count, iteration count, run structure) hard-fail beyond tolerance;
# wall-clock drift only warns, so the gate is not flaky across machines.
#
# After an *intentional* change to placer numerics, re-record the
# baseline and commit it:
#   cargo run --release -p xplace-bench --bin run_report -- --out BENCH_baseline.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_baseline.json}"
OUT="${2:-results/run_report.json}"

if [[ ! -f "$BASELINE" ]]; then
    echo "error: baseline $BASELINE not found" >&2
    exit 2
fi

echo "==> building the bench binaries"
cargo build -q --release -p xplace-bench --bin run_report --bin check_regression --bin telemetry_check

echo "==> running the canonical flow"
./target/release/run_report --out "$OUT"

echo "==> validating the report artifact"
./target/release/telemetry_check report "$OUT"

echo "==> comparing against $BASELINE"
./target/release/check_regression "$BASELINE" "$OUT"
