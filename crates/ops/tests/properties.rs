//! Property-based tests of the placement operators.

use xplace_db::synthesis::{synthesize, SynthesisSpec};
use xplace_device::{Device, DeviceConfig};
use xplace_ops::{density::DensityOp, precond, wirelength, PlacementModel};
use xplace_testkit::prop::Config;
use xplace_testkit::{prop_assert, props};

fn scattered_model(cells: usize, seed: u64, spread_seed: u64) -> PlacementModel {
    let design = synthesize(&SynthesisSpec::new("prop", cells, cells + 10).with_seed(seed))
        .expect("synthesis");
    let mut m = PlacementModel::from_design(&design).expect("model");
    let r = m.region();
    let ranges = m.ranges();
    for i in ranges.movable.chain(ranges.filler) {
        let fx = (((i as u64).wrapping_mul(0x9e37_79b9) ^ spread_seed) % 10_007) as f64 / 10_007.0;
        let fy = (((i as u64).wrapping_mul(0x517c_c1b7) ^ spread_seed) % 10_007) as f64 / 10_007.0;
        m.x[i] = r.lx + fx * r.width();
        m.y[i] = r.ly + fy * r.height();
    }
    m.clamp_to_region();
    m
}

/// The WA wirelength never exceeds HPWL and tightens monotonically as
/// gamma shrinks, for the given cell arrangement.
fn check_wa_bounds_hpwl(seed: u64, spread: u64) {
    let m = scattered_model(120, seed, spread);
    let device = Device::new(DeviceConfig::instant());
    let exact = wirelength::hpwl(&device, &m);
    let mut prev = f64::NEG_INFINITY;
    for gamma in [100.0, 10.0, 1.0, 0.1] {
        let wa = wirelength::wa_forward(&device, &m, gamma);
        assert!(
            wa <= exact + 1e-6,
            "WA {wa} > HPWL {exact} (seed {seed}, spread {spread})"
        );
        assert!(
            wa >= prev - 1e-9,
            "WA must grow as gamma shrinks (seed {seed}, spread {spread})"
        );
        prev = wa;
    }
}

/// Density accumulation conserves total area for the given arrangement,
/// and the two §3.1.2 execution paths agree exactly.
fn check_density_conservation_and_extraction(seed: u64, spread: u64) {
    let m = scattered_model(150, seed, spread);
    let device = Device::new(DeviceConfig::instant());
    let mut op = DensityOp::new(&m).expect("density op");
    // Extraction path.
    op.accumulate_movable(&device, &m);
    op.accumulate_fillers(&device, &m);
    op.combine_total(&device);
    let extracted = op.total_map.clone();
    let bin_area = m.bin_w() * m.bin_h();
    // Conservation: total mapped area tracks movable + filler area.
    // Cells hugging the region boundary lose part of their sqrt(2)-bin
    // smoothing footprint to clipping (as in ePlace), so allow a few
    // percent of perimeter loss but require the bulk to be conserved
    // and never over-counted.
    let ranges = m.ranges();
    let opt_area: f64 = ranges
        .movable
        .chain(ranges.filler)
        .map(|i| m.node_area(i))
        .sum();
    let mapped = extracted.sum() * bin_area;
    assert!(
        mapped >= opt_area * 0.93,
        "mapped {mapped} vs optimizable area {opt_area}"
    );
    assert!(
        mapped <= opt_area * 1.02 + m.region().area() * 0.5,
        "mapped {mapped} overshoots (movable+filler {opt_area} + clipped fixed)"
    );
    // Direct path agrees.
    op.accumulate_all(&device, &m);
    assert!(op.total_map.max_abs_diff(&extracted) < 1e-9);
}

/// Historic proptest counterexample (`seed = 963, spread = 896`, from the
/// retired `properties.proptest-regressions` file): a scattering that once
/// broke the WA/HPWL bound. Kept as a pinned case.
#[test]
fn regression_wa_bounds_hpwl_seed_963_spread_896() {
    check_wa_bounds_hpwl(963, 896);
}

/// The same historic counterexample against the density invariants, which
/// share the scattering (boundary-hugging cells stress the clipping
/// accounting).
#[test]
fn regression_density_conservation_seed_963_spread_896() {
    check_density_conservation_and_extraction(963, 896);
}

props! {
    config = Config::with_cases(16);

    /// The WA wirelength never exceeds HPWL and tightens monotonically as
    /// gamma shrinks, for any cell arrangement.
    fn wa_bounds_hpwl(seed in 0u64..1000, spread in 0u64..1000) {
        check_wa_bounds_hpwl(seed, spread);
    }

    /// The fused kernel always agrees with the split kernels (same math,
    /// different operator stream).
    fn fused_equals_split(seed in 0u64..1000, gamma in 0.5..50.0f64) {
        let m = scattered_model(100, seed, seed ^ 0xabc);
        let device = Device::new(DeviceConfig::instant());
        let n = m.num_nodes();
        let (mut gx1, mut gy1) = (vec![0.0; n], vec![0.0; n]);
        let (mut gx2, mut gy2) = (vec![0.0; n], vec![0.0; n]);
        let fused = wirelength::wa_fused(&device, &m, gamma, &mut gx1, &mut gy1);
        let wa = wirelength::wa_with_grad(&device, &m, gamma, &mut gx2, &mut gy2);
        let h = wirelength::hpwl(&device, &m);
        prop_assert!((fused.wa - wa).abs() < 1e-9 * wa.abs().max(1.0));
        prop_assert!((fused.hpwl - h).abs() < 1e-9 * h.max(1.0));
        for i in 0..n {
            prop_assert!((gx1[i] - gx2[i]).abs() < 1e-12);
            prop_assert!((gy1[i] - gy2[i]).abs() < 1e-12);
        }
    }

    /// Density accumulation conserves total area no matter where the
    /// cells sit, and the two §3.1.2 execution paths agree exactly.
    fn density_conservation_and_extraction(seed in 0u64..1000, spread in 0u64..1000) {
        check_density_conservation_and_extraction(seed, spread);
    }

    /// The overflow ratio is within [0, 1 + eps] and zero for a uniform
    /// enough spread at low utilization.
    fn overflow_is_bounded(seed in 0u64..1000) {
        let m = scattered_model(200, seed, seed ^ 0x77);
        let device = Device::new(DeviceConfig::instant());
        let mut op = DensityOp::new(&m).expect("density op");
        op.accumulate_movable(&device, &m);
        let ovfl = op.overflow(&device, &m);
        prop_assert!(ovfl >= 0.0);
        prop_assert!(ovfl <= 1.5, "overflow {} implausible", ovfl);
    }

    /// The blocked fused wirelength kernel agrees with the serial one
    /// (small block size forces a genuine multi-block decomposition on
    /// these 200-cell models; differences are bounded by the block-merge
    /// summation-order change).
    fn wa_fused_blocked_matches_serial(seed in 0u64..500, threads in 2usize..5) {
        let m = scattered_model(200, seed, seed ^ 0x55);
        let device = Device::new(DeviceConfig::instant());
        let n = m.num_nodes();
        let (mut gx1, mut gy1) = (vec![0.0; n], vec![0.0; n]);
        let (mut gx2, mut gy2) = (vec![0.0; n], vec![0.0; n]);
        let serial = wirelength::wa_fused(&device, &m, 5.0, &mut gx1, &mut gy1);
        let parallel =
            wirelength::wa_fused_blocked(&device, &m, 5.0, &mut gx2, &mut gy2, threads, 32);
        prop_assert!((serial.wa - parallel.wa).abs() < 1e-9 * serial.wa.abs().max(1.0));
        prop_assert!((serial.hpwl - parallel.hpwl).abs() < 1e-9 * serial.hpwl.max(1.0));
        for i in 0..n {
            prop_assert!((gx1[i] - gx2[i]).abs() < 1e-10, "gx at {}", i);
            prop_assert!((gy1[i] - gy2[i]).abs() < 1e-10, "gy at {}", i);
        }
    }

    /// The blocked fused wirelength kernel is bit-identical across thread
    /// counts: the decomposition is fixed by the model, threads only
    /// reschedule it.
    fn wa_fused_blocked_is_thread_count_invariant(seed in 0u64..500, threads in 2usize..6) {
        let m = scattered_model(200, seed, seed ^ 0x5a);
        let device = Device::new(DeviceConfig::instant());
        let n = m.num_nodes();
        let (mut gx1, mut gy1) = (vec![0.0; n], vec![0.0; n]);
        let (mut gx2, mut gy2) = (vec![0.0; n], vec![0.0; n]);
        let one = wirelength::wa_fused_blocked(&device, &m, 5.0, &mut gx1, &mut gy1, 1, 32);
        let many =
            wirelength::wa_fused_blocked(&device, &m, 5.0, &mut gx2, &mut gy2, threads, 32);
        prop_assert!(one.wa.to_bits() == many.wa.to_bits());
        prop_assert!(one.hpwl.to_bits() == many.hpwl.to_bits());
        for i in 0..n {
            prop_assert!(gx1[i].to_bits() == gx2[i].to_bits(), "gx at {}", i);
            prop_assert!(gy1[i].to_bits() == gy2[i].to_bits(), "gy at {}", i);
        }
    }

    /// A reused [`wirelength::WaWorkspace`] produces gradients bit-identical
    /// to fresh per-call buffers: the workspace hoist is a pure allocation
    /// optimization, never an arithmetic change. The workspace is driven
    /// through three models of different sizes so slot reuse (including
    /// shrinking `nm`) is exercised, then the original model is re-run and
    /// compared bitwise against the allocate-per-call path.
    fn wa_workspace_reuse_is_bitwise_equal(seed in 0u64..500, threads in 1usize..5) {
        let m = scattered_model(200, seed, seed ^ 0x31);
        let device = Device::new(DeviceConfig::instant());
        let n = m.num_nodes();
        let (mut gx1, mut gy1) = (vec![0.0; n], vec![0.0; n]);
        let fresh = wirelength::wa_fused_blocked(&device, &m, 5.0, &mut gx1, &mut gy1, threads, 32);
        let mut ws = wirelength::WaWorkspace::new();
        let pool = xplace_parallel::global();
        for dirty_cells in [120, 260] {
            let dirty = scattered_model(dirty_cells, seed ^ 0x7, seed ^ 0x13);
            let nd = dirty.num_nodes();
            let (mut dx, mut dy) = (vec![0.0; nd], vec![0.0; nd]);
            wirelength::wa_fused_blocked_ws(
                &device, &dirty, 5.0, &mut dx, &mut dy, threads, 32, pool, &mut ws,
            );
        }
        let (mut gx2, mut gy2) = (vec![0.0; n], vec![0.0; n]);
        let reused = wirelength::wa_fused_blocked_ws(
            &device, &m, 5.0, &mut gx2, &mut gy2, threads, 32, pool, &mut ws,
        );
        prop_assert!(fresh.wa.to_bits() == reused.wa.to_bits());
        prop_assert!(fresh.hpwl.to_bits() == reused.hpwl.to_bits());
        for i in 0..n {
            prop_assert!(gx1[i].to_bits() == gx2[i].to_bits(), "gx at {}", i);
            prop_assert!(gy1[i].to_bits() == gy2[i].to_bits(), "gy at {}", i);
        }
    }

    /// Blocked density accumulation agrees with serial (small node block
    /// forces a multi-block decomposition).
    fn density_blocked_matches_serial(seed in 0u64..500, threads in 2usize..5) {
        let m = scattered_model(200, seed, seed ^ 0x99);
        let device = Device::new(DeviceConfig::instant());
        let mut serial_op = DensityOp::new(&m).expect("density op");
        serial_op.accumulate_all(&device, &m);
        let mut mt_op = DensityOp::new(&m).expect("density op");
        mt_op.set_node_block(64);
        mt_op.set_threads(threads);
        mt_op.accumulate_all(&device, &m);
        prop_assert!(mt_op.total_map.max_abs_diff(&serial_op.total_map) < 1e-10);
    }

    /// Blocked density accumulation is bit-identical across thread counts.
    fn density_blocked_is_thread_count_invariant(seed in 0u64..500, threads in 2usize..6) {
        let m = scattered_model(200, seed, seed ^ 0x9a);
        let device = Device::new(DeviceConfig::instant());
        let mut one_op = DensityOp::new(&m).expect("density op");
        one_op.set_node_block(64);
        one_op.set_threads(1);
        one_op.accumulate_all(&device, &m);
        let mut mt_op = DensityOp::new(&m).expect("density op");
        mt_op.set_node_block(64);
        mt_op.set_threads(threads);
        mt_op.accumulate_all(&device, &m);
        prop_assert!(mt_op.total_map.max_abs_diff(&one_op.total_map) == 0.0);
    }

    /// omega is monotone in lambda for every design.
    fn omega_monotone(seed in 0u64..1000) {
        let m = scattered_model(80, seed, 0);
        let mut prev = -1.0;
        for lambda in [0.0, 1e-6, 1e-3, 1.0, 1e3] {
            let w = precond::omega(&m, lambda);
            prop_assert!((0.0..=1.0).contains(&w));
            prop_assert!(w >= prev);
            prev = w;
        }
    }
}
