//! Wirelength operators: HPWL and the stable weighted-average wirelength.
//!
//! Three operator granularities are provided, matching the paper's
//! operator-combination story (§3.1.1):
//!
//! * [`hpwl`] — the exact half-perimeter wirelength, one kernel,
//! * [`wa_with_grad`] — the merged WA-objective-and-gradient kernel of
//!   DREAMPlace (computes the per-net min/max internally),
//! * [`wa_fused`] — Xplace's combined kernel: WA wirelength, WA gradient
//!   **and** HPWL in a single pass sharing one min/max computation,
//! * [`wa_forward`] / [`wa_backward`] — the split pair used when the
//!   autograd tape drives the backward pass (operator reduction *off*).
//!
//! All WA math uses the numerically stable form of Eq. (6): exponents are
//! shifted by the per-net extrema so they never overflow.

use crate::PlacementModel;
use xplace_device::{Device, KernelInfo};
use xplace_parallel::WorkerPool;

/// Reusable per-block scratch for [`wa_fused_blocked`].
///
/// The blocked kernel needs two `num_movable`-long gradient accumulators per
/// net block. Allocating them fresh on every call puts two `Vec` allocations
/// per block on the hottest path of every GP iteration; a workspace hoists
/// them into slots that persist across calls (task `b` always uses slot `b`,
/// zero-filled before each pass, so reuse is bitwise-identical to fresh
/// buffers).
#[derive(Debug, Clone, Default)]
pub struct WaWorkspace {
    /// One `(grad_x, grad_y)` accumulator pair per net block, grown on demand.
    slots: Vec<(Vec<f64>, Vec<f64>)>,
}

impl WaWorkspace {
    /// Creates an empty workspace; slots are allocated on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures at least `blocks` slots of length `nm` each.
    fn prepare(&mut self, blocks: usize, nm: usize) {
        if self.slots.len() < blocks {
            self.slots.resize_with(blocks, Default::default);
        }
        for (gx, gy) in &mut self.slots[..blocks] {
            gx.resize(nm, 0.0);
            gy.resize(nm, 0.0);
        }
    }
}

/// Result of the fused wirelength kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FusedWirelength {
    /// Weighted-average smoothed wirelength (Eq. 6), summed over nets.
    pub wa: f64,
    /// Exact HPWL (Eq. 2), summed over nets.
    pub hpwl: f64,
}

#[inline]
fn net_range(model: &PlacementModel, e: usize) -> (usize, usize) {
    (model.net_start[e] as usize, model.net_start[e + 1] as usize)
}

#[inline]
fn pin_pos(model: &PlacementModel, p: usize) -> (f64, f64) {
    let n = model.pin_node[p] as usize;
    (model.x[n] + model.pin_dx[p], model.y[n] + model.pin_dy[p])
}

fn bounds_of_net(model: &PlacementModel, s: usize, t: usize) -> (f64, f64, f64, f64) {
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in s..t {
        let (px, py) = pin_pos(model, p);
        min_x = min_x.min(px);
        max_x = max_x.max(px);
        min_y = min_y.min(py);
        max_y = max_y.max(py);
    }
    (min_x, max_x, min_y, max_y)
}

/// Exact total HPWL, as one kernel launch.
pub fn hpwl(device: &Device, model: &PlacementModel) -> f64 {
    let kernel = KernelInfo::new("hpwl")
        .bytes(model.num_pins() as u64 * 24)
        .flops(model.num_pins() as u64 * 8);
    device.launch(kernel, || {
        let mut total = 0.0;
        for e in 0..model.num_nets() {
            let (s, t) = net_range(model, e);
            if t - s < 2 {
                continue;
            }
            let (min_x, max_x, min_y, max_y) = bounds_of_net(model, s, t);
            total += model.net_weight[e] * ((max_x - min_x) + (max_y - min_y));
        }
        total
    })
}

/// Per-net WA accumulation for one coordinate; returns the net's WA value
/// and writes per-pin gradient contributions through `grad`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn wa_net_coord(
    _model: &PlacementModel,
    s: usize,
    t: usize,
    gamma: f64,
    min_v: f64,
    max_v: f64,
    coord: impl Fn(usize) -> f64,
    mut grad: impl FnMut(usize, f64),
) -> f64 {
    // Stable WA (Eq. 6): exponents shifted by the net extrema.
    let inv_gamma = 1.0 / gamma;
    let (mut s_pos, mut su_pos, mut s_neg, mut su_neg) = (0.0, 0.0, 0.0, 0.0);
    for p in s..t {
        let v = coord(p);
        let a_pos = ((v - max_v) * inv_gamma).exp();
        let a_neg = ((min_v - v) * inv_gamma).exp();
        s_pos += a_pos;
        su_pos += v * a_pos;
        s_neg += a_neg;
        su_neg += v * a_neg;
    }
    let wl_pos = su_pos / s_pos;
    let wl_neg = su_neg / s_neg;
    for p in s..t {
        let v = coord(p);
        let a_pos = ((v - max_v) * inv_gamma).exp();
        let a_neg = ((min_v - v) * inv_gamma).exp();
        let d_pos = a_pos / s_pos * (1.0 + (v - wl_pos) * inv_gamma);
        let d_neg = a_neg / s_neg * (1.0 - (v - wl_neg) * inv_gamma);
        grad(p, d_pos - d_neg);
    }
    wl_pos - wl_neg
}

fn wa_pass(
    model: &PlacementModel,
    gamma: f64,
    mut grad_sink: Option<(&mut [f64], &mut [f64])>,
) -> FusedWirelength {
    let nm = model.num_movable();
    let mut out = FusedWirelength::default();
    for e in 0..model.num_nets() {
        let (s, t) = net_range(model, e);
        if t - s < 2 {
            continue;
        }
        let weight = model.net_weight[e];
        let (min_x, max_x, min_y, max_y) = bounds_of_net(model, s, t);
        out.hpwl += weight * ((max_x - min_x) + (max_y - min_y));
        let wx = wa_net_coord(
            model,
            s,
            t,
            gamma,
            min_x,
            max_x,
            |p| pin_pos(model, p).0,
            |p, d| {
                if let Some((gx, _)) = grad_sink.as_mut() {
                    let n = model.pin_node[p] as usize;
                    if n < nm {
                        gx[n] += weight * d;
                    }
                }
            },
        );
        let wy = wa_net_coord(
            model,
            s,
            t,
            gamma,
            min_y,
            max_y,
            |p| pin_pos(model, p).1,
            |p, d| {
                if let Some((_, gy)) = grad_sink.as_mut() {
                    let n = model.pin_node[p] as usize;
                    if n < nm {
                        gy[n] += weight * d;
                    }
                }
            },
        );
        out.wa += weight * (wx + wy);
    }
    out
}

/// The merged WA-objective-and-gradient kernel (DREAMPlace's granularity):
/// computes the WA wirelength and accumulates `d WA / d x_i` into
/// `grad_x`/`grad_y` for movable nodes, in one launch. HPWL is **not**
/// produced; DREAMPlace launches [`hpwl`] separately.
///
/// # Panics
///
/// Panics if the gradient slices are shorter than the movable-node count.
pub fn wa_with_grad(
    device: &Device,
    model: &PlacementModel,
    gamma: f64,
    grad_x: &mut [f64],
    grad_y: &mut [f64],
) -> f64 {
    assert!(grad_x.len() >= model.num_movable() && grad_y.len() >= model.num_movable());
    let kernel = KernelInfo::new("wa_with_grad")
        .bytes(model.num_pins() as u64 * 56)
        .flops(model.num_pins() as u64 * 60);
    device.launch(kernel, || wa_pass(model, gamma, Some((grad_x, grad_y))).wa)
}

/// Xplace's combined kernel (§3.1.1): WA wirelength, WA gradient and HPWL
/// share a single pass and a single min/max computation.
///
/// # Panics
///
/// Panics if the gradient slices are shorter than the movable-node count.
pub fn wa_fused(
    device: &Device,
    model: &PlacementModel,
    gamma: f64,
    grad_x: &mut [f64],
    grad_y: &mut [f64],
) -> FusedWirelength {
    assert!(grad_x.len() >= model.num_movable() && grad_y.len() >= model.num_movable());
    let kernel = KernelInfo::new("wa_fused")
        .bytes(model.num_pins() as u64 * 56)
        .flops(model.num_pins() as u64 * 68);
    device.launch(kernel, || wa_pass(model, gamma, Some((grad_x, grad_y))))
}

/// Fixed net-block size for the blocked parallel wirelength decomposition.
///
/// The block grid depends only on the model size — never the thread count —
/// so the per-block partials and their fixed-order merge are identical for
/// every `threads` value: changing `threads` changes scheduling, not
/// arithmetic.
pub const NET_BLOCK: usize = 2048;

/// Multithreaded variant of [`wa_fused`]: the same single fused kernel,
/// with its body decomposed into fixed [`NET_BLOCK`]-net blocks executed on
/// the persistent worker pool. Each block accumulates into private gradient
/// buffers, merged in block order afterwards, so the result is bit-identical
/// for **any** thread count; designs that fit in one block take the plain
/// serial [`wa_fused`] path.
///
/// # Panics
///
/// Panics if the gradient slices are shorter than the movable-node count.
pub fn wa_fused_mt(
    device: &Device,
    model: &PlacementModel,
    gamma: f64,
    grad_x: &mut [f64],
    grad_y: &mut [f64],
    threads: usize,
) -> FusedWirelength {
    wa_fused_blocked(device, model, gamma, grad_x, grad_y, threads, NET_BLOCK)
}

/// [`wa_fused_mt`] with an explicit pool handle and reusable workspace — the
/// zero-allocation form used by the gradient engine's hot loop.
///
/// # Panics
///
/// Panics if the gradient slices are shorter than the movable-node count.
#[allow(clippy::too_many_arguments)]
pub fn wa_fused_mt_ws(
    device: &Device,
    model: &PlacementModel,
    gamma: f64,
    grad_x: &mut [f64],
    grad_y: &mut [f64],
    threads: usize,
    pool: &WorkerPool,
    ws: &mut WaWorkspace,
) -> FusedWirelength {
    wa_fused_blocked_ws(
        device, model, gamma, grad_x, grad_y, threads, NET_BLOCK, pool, ws,
    )
}

/// [`wa_fused_mt`] with an explicit block size — the deterministic blocked
/// core. Exposed so tests and benchmarks can force multi-block decompositions
/// on small designs; production callers use [`wa_fused_mt`].
///
/// # Panics
///
/// Panics if the gradient slices are shorter than the movable-node count or
/// `net_block` is zero.
pub fn wa_fused_blocked(
    device: &Device,
    model: &PlacementModel,
    gamma: f64,
    grad_x: &mut [f64],
    grad_y: &mut [f64],
    threads: usize,
    net_block: usize,
) -> FusedWirelength {
    let mut ws = WaWorkspace::new();
    wa_fused_blocked_ws(
        device,
        model,
        gamma,
        grad_x,
        grad_y,
        threads,
        net_block,
        xplace_parallel::global(),
        &mut ws,
    )
}

/// [`wa_fused_blocked`] with an explicit pool handle and a caller-owned
/// [`WaWorkspace`]: the per-block gradient accumulators live in the
/// workspace instead of being allocated per call. Slot `b` is zero-filled
/// before block `b`'s pass, so a reused workspace produces bit-identical
/// results to fresh buffers.
///
/// # Panics
///
/// Panics if the gradient slices are shorter than the movable-node count or
/// `net_block` is zero.
#[allow(clippy::too_many_arguments)]
pub fn wa_fused_blocked_ws(
    device: &Device,
    model: &PlacementModel,
    gamma: f64,
    grad_x: &mut [f64],
    grad_y: &mut [f64],
    threads: usize,
    net_block: usize,
    pool: &WorkerPool,
    ws: &mut WaWorkspace,
) -> FusedWirelength {
    assert!(net_block > 0, "net_block must be nonzero");
    let num_nets = model.num_nets();
    let blocks = num_nets.div_ceil(net_block).max(1);
    if blocks == 1 {
        return wa_fused(device, model, gamma, grad_x, grad_y);
    }
    assert!(grad_x.len() >= model.num_movable() && grad_y.len() >= model.num_movable());
    let kernel = KernelInfo::new("wa_fused")
        .bytes(model.num_pins() as u64 * 56)
        .flops(model.num_pins() as u64 * 68);
    device.launch(kernel, || {
        let nm = model.num_movable();
        ws.prepare(blocks, nm);
        let partials = pool.run_mut(&mut ws.slots[..blocks], threads.max(1), |b, slot| {
            let lo = b * net_block;
            let hi = (lo + net_block).min(num_nets);
            let (gx, gy) = slot;
            gx.fill(0.0);
            gy.fill(0.0);
            wa_pass_range(model, gamma, lo, hi, gx, gy)
        });
        // Merge in block order: fixed reduction order for any thread count.
        let mut total = FusedWirelength::default();
        for (out, (gx, gy)) in partials.iter().zip(&ws.slots[..blocks]) {
            total.wa += out.wa;
            total.hpwl += out.hpwl;
            for i in 0..nm {
                grad_x[i] += gx[i];
                grad_y[i] += gy[i];
            }
        }
        total
    })
}

/// Serial WA pass over the net range `[lo, hi)`, accumulating gradients.
fn wa_pass_range(
    model: &PlacementModel,
    gamma: f64,
    lo: usize,
    hi: usize,
    grad_x: &mut [f64],
    grad_y: &mut [f64],
) -> FusedWirelength {
    let nm = model.num_movable();
    let mut out = FusedWirelength::default();
    for e in lo..hi {
        let (s, t) = net_range(model, e);
        if t - s < 2 {
            continue;
        }
        let weight = model.net_weight[e];
        let (min_x, max_x, min_y, max_y) = bounds_of_net(model, s, t);
        out.hpwl += weight * ((max_x - min_x) + (max_y - min_y));
        let wx = wa_net_coord(
            model,
            s,
            t,
            gamma,
            min_x,
            max_x,
            |p| pin_pos(model, p).0,
            |p, d| {
                let n = model.pin_node[p] as usize;
                if n < nm {
                    grad_x[n] += weight * d;
                }
            },
        );
        let wy = wa_net_coord(
            model,
            s,
            t,
            gamma,
            min_y,
            max_y,
            |p| pin_pos(model, p).1,
            |p, d| {
                let n = model.pin_node[p] as usize;
                if n < nm {
                    grad_y[n] += weight * d;
                }
            },
        );
        out.wa += weight * (wx + wy);
    }
    out
}

/// Forward-only WA wirelength (autograd mode): one launch, no gradient.
pub fn wa_forward(device: &Device, model: &PlacementModel, gamma: f64) -> f64 {
    let kernel = KernelInfo::new("wa_forward")
        .bytes(model.num_pins() as u64 * 40)
        .flops(model.num_pins() as u64 * 40)
        .out_of_place();
    device.launch(kernel, || wa_pass(model, gamma, None).wa)
}

/// Device-free WA gradient accumulation, for use *inside* an already
/// launched kernel (e.g. an autograd-tape backward replay, which performs
/// its own launch accounting).
///
/// # Panics
///
/// Panics if the gradient slices are shorter than the movable-node count.
pub fn wa_grad_into(model: &PlacementModel, gamma: f64, grad_x: &mut [f64], grad_y: &mut [f64]) {
    assert!(grad_x.len() >= model.num_movable() && grad_y.len() >= model.num_movable());
    wa_pass(model, gamma, Some((grad_x, grad_y)));
}

/// Backward WA kernel (autograd mode): recomputes the exponent sums and
/// accumulates the gradient, as the tape-driven backward op would.
///
/// # Panics
///
/// Panics if the gradient slices are shorter than the movable-node count.
pub fn wa_backward(
    device: &Device,
    model: &PlacementModel,
    gamma: f64,
    grad_x: &mut [f64],
    grad_y: &mut [f64],
) {
    assert!(grad_x.len() >= model.num_movable() && grad_y.len() >= model.num_movable());
    let kernel = KernelInfo::new("wa_backward")
        .bytes(model.num_pins() as u64 * 56)
        .flops(model.num_pins() as u64 * 60)
        .out_of_place();
    device.launch(kernel, || {
        wa_pass(model, gamma, Some((grad_x, grad_y)));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplace_db::synthesis::{synthesize, SynthesisSpec};
    use xplace_device::DeviceConfig;

    fn setup(cells: usize) -> (PlacementModel, Device) {
        let design =
            synthesize(&SynthesisSpec::new("wl", cells, cells + 20).with_seed(11)).unwrap();
        let mut model = PlacementModel::from_design(&design).unwrap();
        // Spread the cells so nets have nonzero extent.
        let r = model.region();
        for i in 0..model.num_movable() {
            model.x[i] = r.lx + (i as f64 * 0.618).fract() * r.width();
            model.y[i] = r.ly + (i as f64 * 0.414).fract() * r.height();
        }
        (model, Device::new(DeviceConfig::instant()))
    }

    #[test]
    fn hpwl_matches_design_convention() {
        let design = synthesize(&SynthesisSpec::new("h", 200, 220).with_seed(3)).unwrap();
        let model = PlacementModel::from_design(&design).unwrap();
        let device = Device::new(DeviceConfig::instant());
        let fast = hpwl(&device, &model);
        assert!((fast - design.total_hpwl()).abs() < 1e-6 * fast.max(1.0));
    }

    #[test]
    fn wa_lower_bounds_hpwl_and_converges_as_gamma_shrinks() {
        let (model, device) = setup(300);
        let exact = hpwl(&device, &model);
        let mut prev_err = f64::INFINITY;
        for gamma in [50.0, 10.0, 1.0, 0.1] {
            let wa = wa_forward(&device, &model, gamma);
            assert!(wa <= exact + 1e-6, "WA {wa} should not exceed HPWL {exact}");
            let err = exact - wa;
            assert!(err <= prev_err + 1e-9, "error should shrink with gamma");
            prev_err = err;
        }
        assert!(
            prev_err < exact * 0.01,
            "gamma=0.1 should be within 1% of HPWL"
        );
    }

    #[test]
    fn fused_kernel_agrees_with_split_kernels() {
        let (model, device) = setup(250);
        let gamma = 5.0;
        let nm = model.num_movable();
        let (mut gx1, mut gy1) = (vec![0.0; nm], vec![0.0; nm]);
        let (mut gx2, mut gy2) = (vec![0.0; nm], vec![0.0; nm]);
        let fused = wa_fused(&device, &model, gamma, &mut gx1, &mut gy1);
        let wa_split = wa_with_grad(&device, &model, gamma, &mut gx2, &mut gy2);
        let hpwl_split = hpwl(&device, &model);
        assert!((fused.wa - wa_split).abs() < 1e-9 * fused.wa.abs().max(1.0));
        assert!((fused.hpwl - hpwl_split).abs() < 1e-9 * fused.hpwl.max(1.0));
        for i in 0..nm {
            assert!((gx1[i] - gx2[i]).abs() < 1e-12);
            assert!((gy1[i] - gy2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (mut model, device) = setup(60);
        let gamma = 8.0;
        let nm = model.num_movable();
        let (mut gx, mut gy) = (vec![0.0; nm], vec![0.0; nm]);
        wa_fused(&device, &model, gamma, &mut gx, &mut gy);
        let eps = 1e-5;
        for &i in &[0usize, 7, 23, nm - 1] {
            let x0 = model.x[i];
            model.x[i] = x0 + eps;
            let plus = wa_forward(&device, &model, gamma);
            model.x[i] = x0 - eps;
            let minus = wa_forward(&device, &model, gamma);
            model.x[i] = x0;
            let fd = (plus - minus) / (2.0 * eps);
            assert!(
                (gx[i] - fd).abs() < 1e-5 * fd.abs().max(1.0),
                "node {i}: analytic {} vs fd {fd}",
                gx[i]
            );
        }
    }

    #[test]
    fn backward_accumulates_same_gradient_as_merged() {
        let (model, device) = setup(150);
        let nm = model.num_movable();
        let (mut gx1, mut gy1) = (vec![0.0; nm], vec![0.0; nm]);
        let (mut gx2, mut gy2) = (vec![0.0; nm], vec![0.0; nm]);
        wa_with_grad(&device, &model, 4.0, &mut gx1, &mut gy1);
        wa_backward(&device, &model, 4.0, &mut gx2, &mut gy2);
        assert_eq!(gx1, gx2);
        assert_eq!(gy1, gy2);
    }

    #[test]
    fn coincident_pins_produce_finite_zero_gradient() {
        let (mut model, device) = setup(50);
        let c = model.region().center();
        for i in 0..model.num_nodes() {
            model.x[i] = c.x;
            model.y[i] = c.y;
        }
        // Zero the pin offsets so every pin is exactly coincident.
        for d in model.pin_dx.iter_mut().chain(model.pin_dy.iter_mut()) {
            *d = 0.0;
        }
        let nm = model.num_movable();
        let (mut gx, mut gy) = (vec![0.0; nm], vec![0.0; nm]);
        let out = wa_fused(&device, &model, 1.0, &mut gx, &mut gy);
        assert!(out.wa.abs() < 1e-9);
        assert!(out.hpwl.abs() < 1e-9);
        for i in 0..nm {
            assert!(gx[i].is_finite() && gx[i].abs() < 1e-9);
            assert!(gy[i].is_finite() && gy[i].abs() < 1e-9);
        }
    }

    #[test]
    fn tiny_gamma_does_not_overflow() {
        let (model, device) = setup(100);
        let nm = model.num_movable();
        let (mut gx, mut gy) = (vec![0.0; nm], vec![0.0; nm]);
        let out = wa_fused(&device, &model, 1e-3, &mut gx, &mut gy);
        assert!(out.wa.is_finite());
        assert!(gx.iter().all(|g| g.is_finite()));
        assert!(gy.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn launch_counts_match_operator_granularity() {
        let (model, device) = setup(80);
        let nm = model.num_movable();
        let (mut gx, mut gy) = (vec![0.0; nm], vec![0.0; nm]);
        let before = device.profile();
        wa_fused(&device, &model, 2.0, &mut gx, &mut gy);
        assert_eq!((device.profile() - before).launches, 1);
        let before = device.profile();
        wa_with_grad(&device, &model, 2.0, &mut gx, &mut gy);
        hpwl(&device, &model);
        assert_eq!((device.profile() - before).launches, 2);
        let before = device.profile();
        wa_forward(&device, &model, 2.0);
        wa_backward(&device, &model, 2.0, &mut gx, &mut gy);
        hpwl(&device, &model);
        assert_eq!((device.profile() - before).launches, 3);
    }

    #[test]
    fn net_weights_scale_objective_and_gradient() {
        let (model, device) = setup(120);
        let mut heavy = model.clone();
        for w in heavy.net_weight.iter_mut() {
            *w = 2.5;
        }
        let nm = model.num_movable();
        let (mut gx1, mut gy1) = (vec![0.0; nm], vec![0.0; nm]);
        let (mut gx2, mut gy2) = (vec![0.0; nm], vec![0.0; nm]);
        let base = wa_fused(&device, &model, 4.0, &mut gx1, &mut gy1);
        let scaled = wa_fused(&device, &heavy, 4.0, &mut gx2, &mut gy2);
        assert!((scaled.wa - 2.5 * base.wa).abs() < 1e-9 * base.wa.abs().max(1.0));
        assert!((scaled.hpwl - 2.5 * base.hpwl).abs() < 1e-9 * base.hpwl.max(1.0));
        for i in 0..nm {
            assert!((gx2[i] - 2.5 * gx1[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn moving_a_cell_toward_its_net_reduces_wa() {
        let (mut model, device) = setup(120);
        let nm = model.num_movable();
        let (mut gx, mut gy) = (vec![0.0; nm], vec![0.0; nm]);
        let before = wa_forward(&device, &model, 3.0);
        wa_fused(&device, &model, 3.0, &mut gx, &mut gy);
        // Take a small step along the negative gradient.
        for i in 0..nm {
            model.x[i] -= 0.05 * gx[i];
            model.y[i] -= 0.05 * gy[i];
        }
        let after = wa_forward(&device, &model, 3.0);
        assert!(
            after < before,
            "gradient step should reduce WA: {after} vs {before}"
        );
    }
}
