//! Placement operators for the `xplace` framework.
//!
//! Everything a gradient-based global placer evaluates per iteration lives
//! here, implemented as kernels on the [`xplace_device::Device`] execution
//! model so that launch counts, memory traffic and synchronization points
//! are accounted exactly as the paper's operator-level analysis requires:
//!
//! * [`PlacementModel`] — the flattened array-of-structs view of a design
//!   (movable cells, fixed cells, fillers, CSR nets) that the operators
//!   run on,
//! * [`wirelength`] — HPWL and the numerically stable weighted-average
//!   (WA) wirelength with analytic gradients, in both *split* (separate
//!   kernels, as DREAMPlace launches them) and *fused* (the paper's
//!   operator-combination) forms,
//! * [`density`] — bin-density accumulation with ePlace cell smoothing,
//!   the overflow ratio (Eq. 7), the filler-map extraction of §3.1.2, and
//!   the electrostatic field gradient backed by
//!   [`xplace_fft::ElectrostaticSolver`],
//! * [`precond`] — the diagonal preconditioner `max(1, |S_i| + λ A_i)`
//!   and the stage ratio ω of §3.2.
//!
//! # Example
//!
//! ```
//! use xplace_db::synthesis::{synthesize, SynthesisSpec};
//! use xplace_device::{Device, DeviceConfig};
//! use xplace_ops::PlacementModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = synthesize(&SynthesisSpec::new("demo", 500, 520).with_seed(2))?;
//! let device = Device::new(DeviceConfig::rtx3090());
//! let model = PlacementModel::from_design(&design)?;
//! let hpwl = xplace_ops::wirelength::hpwl(&device, &model);
//! assert!(hpwl > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod density;
mod error;
mod model;
pub mod precond;
pub mod wirelength;

pub use error::OpsError;
pub use model::{NodeRange, PlacementModel};
