//! Density operators: bin accumulation, overflow, electrostatic gradient.
//!
//! The density system follows ePlace (Eq. 5, 7-10 of the paper): movable
//! and fixed cells plus whitespace fillers are charges on an `M x M` bin
//! grid; the Poisson potential's field is the spreading force. The
//! *operator extraction* technique of §3.1.2 is expressed here as two
//! alternative execution paths over the same math:
//!
//! * **extracted** (Xplace): accumulate the movable+fixed map `D` once,
//!   the filler map `D_fl` once, add element-wise for the total map, and
//!   reuse `D` for the overflow ratio;
//! * **direct** (baseline): accumulate the total map in one pass over all
//!   nodes *and* accumulate `D` a second time for the overflow ratio —
//!   the redundant movable-cell pass the paper eliminates.

use crate::{OpsError, PlacementModel};
use xplace_device::{Device, KernelInfo};
use xplace_fft::{ElectrostaticSolver, FieldSolution, Grid2};
use xplace_parallel::WorkerPool;

const SQRT2: f64 = std::f64::consts::SQRT_2;

/// Fixed node-block size for the blocked parallel density accumulation.
///
/// Like `xplace_ops::wirelength::NET_BLOCK`, the block grid depends only on
/// the model's node ranges — never the thread count — so the per-block
/// partial maps and their fixed-order merge are bit-identical for every
/// `threads` value. Designs whose ranges all fit in a single block take the
/// direct serial accumulation path (no partial maps at all).
pub const NODE_BLOCK: usize = 2048;

/// Accumulates one node's (smoothed) footprint into a density map.
///
/// ePlace cell smoothing for movable cells and fillers: inflate to at
/// least sqrt(2) x bin size, scale the charge so area is conserved. Fixed
/// macros keep their footprint but contribute exactly the target density
/// (DREAMPlace's convention) — otherwise every macro bin sits at density
/// 1 > D_t and creates an irreducible overflow floor.
#[allow(clippy::too_many_arguments)]
fn accumulate_node(
    model: &PlacementModel,
    i: usize,
    smooth_lo: usize,
    smooth_hi: usize,
    filler_start: usize,
    target: f64,
    region: xplace_db::Rect,
    bin_w: f64,
    bin_h: f64,
    inv_bin_area: f64,
    nx: usize,
    ny: usize,
    map: &mut Grid2,
) {
    let (w, h) = (model.w[i], model.h[i]);
    if w <= 0.0 || h <= 0.0 {
        return; // terminals
    }
    let smoothed = (i >= smooth_lo && i < smooth_hi) || i >= filler_start;
    let (we, he, scale) = if smoothed {
        let we = w.max(SQRT2 * bin_w);
        let he = h.max(SQRT2 * bin_h);
        (we, he, (w * h) / (we * he))
    } else {
        (w, h, target)
    };
    let lx = model.x[i] - we * 0.5;
    let ux = model.x[i] + we * 0.5;
    let ly = model.y[i] - he * 0.5;
    let uy = model.y[i] + he * 0.5;
    let bx0 = (((lx - region.lx) / bin_w).floor().max(0.0)) as usize;
    let bx1 = ((((ux - region.lx) / bin_w).ceil()) as usize).min(nx);
    let by0 = (((ly - region.ly) / bin_h).floor().max(0.0)) as usize;
    let by1 = ((((uy - region.ly) / bin_h).ceil()) as usize).min(ny);
    for bx in bx0..bx1 {
        let b_lx = region.lx + bx as f64 * bin_w;
        let ox = (ux.min(b_lx + bin_w) - lx.max(b_lx)).max(0.0);
        if ox == 0.0 {
            continue;
        }
        for by in by0..by1 {
            let b_ly = region.ly + by as f64 * bin_h;
            let oy = (uy.min(b_ly + bin_h) - ly.max(b_ly)).max(0.0);
            if oy > 0.0 {
                map[(bx, by)] += ox * oy * scale * inv_bin_area;
            }
        }
    }
}

/// Stateful density operator owning the bin grids, the spectral solver and
/// the cached field solution.
#[derive(Debug)]
pub struct DensityOp {
    solver: ElectrostaticSolver,
    solution: FieldSolution,
    /// Movable + fixed cell density `D` (Eq. 8), used by the overflow
    /// ratio and, under extraction, reused for the total map.
    pub movable_map: Grid2,
    /// Filler density `D_fl`.
    pub filler_map: Grid2,
    /// Total density `D~ = D + D_fl` (Eq. 10), input to the field solve.
    pub total_map: Grid2,
    nx: usize,
    ny: usize,
    /// CPU launch width for the accumulation kernel bodies and the
    /// spectral solve (1 = serial; results are identical for every count
    /// because the work decomposition is thread-count independent).
    threads: usize,
    /// Pool the accumulation blocks launch on (the process-global pool by
    /// default; batch schedulers inject their own handle).
    pool: &'static WorkerPool,
    /// Node-block size of the blocked decomposition (normally
    /// [`NODE_BLOCK`]; overridable for tests/benches).
    node_block: usize,
}

/// Which node classes an accumulation pass covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Subset {
    MovableAndFixed,
    Fillers,
    All,
}

impl DensityOp {
    /// Creates the operator for a model's grid.
    ///
    /// # Errors
    ///
    /// Returns [`OpsError::Spectral`] if the model's grid dimensions are
    /// not supported by the spectral solver.
    pub fn new(model: &PlacementModel) -> Result<Self, OpsError> {
        let (nx, ny) = model.grid_dims();
        Ok(DensityOp {
            solver: ElectrostaticSolver::new(nx, ny)?,
            solution: FieldSolution::new(nx, ny),
            movable_map: Grid2::new(nx, ny),
            filler_map: Grid2::new(nx, ny),
            total_map: Grid2::new(nx, ny),
            nx,
            ny,
            threads: 1,
            pool: xplace_parallel::global(),
            node_block: NODE_BLOCK,
        })
    }

    /// Sets the CPU launch width for the accumulation kernel bodies and
    /// the spectral solver (clamped to at least 1). The thread count only
    /// changes scheduling: the blocked decomposition is fixed by the model,
    /// so results are bit-identical for every value.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
        self.solver.set_threads(self.threads);
    }

    /// Redirects the accumulation blocks and the spectral solve onto `pool`
    /// (the process-global pool is used until this is called). The block
    /// decomposition is fixed by the model, so results are bit-identical
    /// regardless of which pool executes it.
    pub fn set_pool(&mut self, pool: &'static WorkerPool) {
        self.pool = pool;
        self.solver.set_pool(pool);
    }

    /// Overrides the node-block size of the blocked decomposition (clamped
    /// to at least 1). Intended for tests and benchmarks that need to force
    /// multi-block decompositions on small designs; changing the block size
    /// changes the (deterministic) summation order.
    pub fn set_node_block(&mut self, node_block: usize) {
        self.node_block = node_block.max(1);
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// The cached field solution of the last [`DensityOp::solve_field`].
    pub fn field(&self) -> &FieldSolution {
        &self.solution
    }

    /// Restores the cached field solution from checkpointed data — the
    /// write-side counterpart of [`DensityOp::field`], used when a GP run
    /// resumes inside a skip window and must serve gradients from the
    /// same cached field the interrupted run held.
    ///
    /// # Errors
    ///
    /// Returns [`OpsError::InvalidModel`] if the slice lengths do not
    /// match this operator's grid.
    pub fn restore_field(
        &mut self,
        field_x: &[f64],
        field_y: &[f64],
        energy: f64,
    ) -> Result<(), OpsError> {
        let want = self.nx * self.ny;
        if field_x.len() != want || field_y.len() != want {
            return Err(OpsError::InvalidModel(format!(
                "field snapshot has {}x{} entries, grid is {}x{}",
                field_x.len(),
                field_y.len(),
                self.nx,
                self.ny
            )));
        }
        self.solution
            .field_x
            .as_mut_slice()
            .copy_from_slice(field_x);
        self.solution
            .field_y
            .as_mut_slice()
            .copy_from_slice(field_y);
        self.solution.energy = energy;
        Ok(())
    }

    fn accumulate(&mut self, model: &PlacementModel, subset: Subset, map_kind: Subset) {
        let map = match map_kind {
            Subset::MovableAndFixed => &mut self.movable_map,
            Subset::Fillers => &mut self.filler_map,
            Subset::All => &mut self.total_map,
        };
        map.fill_zero();
        let region = model.region();
        let bin_w = model.bin_w();
        let bin_h = model.bin_h();
        let inv_bin_area = 1.0 / (bin_w * bin_h);
        let ranges = model.ranges();
        let (smooth_lo, smooth_hi) = (ranges.movable.start, ranges.movable.end);
        let node_range: Vec<std::ops::Range<usize>> = match subset {
            Subset::MovableAndFixed => vec![ranges.movable.clone(), ranges.fixed.clone()],
            Subset::Fillers => vec![ranges.filler.clone()],
            Subset::All => {
                vec![
                    ranges.movable.clone(),
                    ranges.fixed.clone(),
                    ranges.filler.clone(),
                ]
            }
        };
        let filler_start = ranges.filler.start;
        let nx = self.nx;
        let ny = self.ny;
        let target = model.target_density();
        let node_block = self.node_block;
        if node_range.iter().any(|r| r.len() > node_block) {
            // Blocked: chop every range into fixed node_block-sized blocks
            // (empty ranges contribute none, so no worker ever runs over an
            // empty slice or merges an all-zero map), accumulate each block
            // into a private map on the pool, and merge in block order. The
            // block grid is independent of `threads`, so the summation
            // order — and the result — is bit-identical for any width.
            let blocks: Vec<std::ops::Range<usize>> = node_range
                .iter()
                .flat_map(|r| {
                    let end = r.end;
                    r.clone()
                        .step_by(node_block)
                        .map(move |lo| lo..(lo + node_block).min(end))
                })
                .collect();
            let blocks = &blocks;
            let partials = self.pool.run(blocks.len(), self.threads, |b| {
                let mut local = Grid2::new(nx, ny);
                for i in blocks[b].clone() {
                    accumulate_node(
                        model,
                        i,
                        smooth_lo,
                        smooth_hi,
                        filler_start,
                        target,
                        region,
                        bin_w,
                        bin_h,
                        inv_bin_area,
                        nx,
                        ny,
                        &mut local,
                    );
                }
                local
            });
            for p in &partials {
                map.add_assign_grid(p);
            }
            return;
        }
        for range in node_range {
            for i in range {
                accumulate_node(
                    model,
                    i,
                    smooth_lo,
                    smooth_hi,
                    filler_start,
                    target,
                    region,
                    bin_w,
                    bin_h,
                    inv_bin_area,
                    nx,
                    ny,
                    map,
                );
            }
        }
    }

    fn accumulation_kernel(name: &'static str, nodes: usize) -> KernelInfo {
        // Each node reads position+size (~32 B) and, with sqrt(2)-bin
        // smoothing, read-modify-writes at least a 3x3 patch of bins
        // (~9 * 16 B of scattered atomics, the dominant traffic).
        KernelInfo::new(name)
            .bytes(nodes as u64 * 176)
            .flops(nodes as u64 * 100)
    }

    /// Accumulates the movable+fixed density map `D` (one kernel).
    pub fn accumulate_movable(&mut self, device: &Device, model: &PlacementModel) {
        let n = model.num_movable() + model.num_fixed();
        let kernel = Self::accumulation_kernel("density_map_movable", n);
        device.launch(kernel, || {
            self.accumulate(model, Subset::MovableAndFixed, Subset::MovableAndFixed)
        });
    }

    /// Accumulates the filler density map `D_fl` (one kernel).
    pub fn accumulate_fillers(&mut self, device: &Device, model: &PlacementModel) {
        let kernel = Self::accumulation_kernel("density_map_fillers", model.num_fillers());
        device.launch(kernel, || {
            self.accumulate(model, Subset::Fillers, Subset::Fillers)
        });
    }

    /// Element-wise add `D + D_fl` into the total map (one cheap kernel) —
    /// the extraction path of §3.1.2.
    pub fn combine_total(&mut self, device: &Device) {
        let bins = (self.nx * self.ny) as u64;
        let kernel = KernelInfo::new("density_combine")
            .bytes(bins * 24)
            .flops(bins);
        device.launch(kernel, || {
            self.total_map.fill_zero();
            self.total_map.add_assign_grid(&self.movable_map);
            self.total_map.add_assign_grid(&self.filler_map);
        });
    }

    /// Accumulates the total map directly over every node (one heavy
    /// kernel) — the non-extracted baseline path, which then still needs a
    /// separate [`DensityOp::accumulate_movable`] for the overflow ratio.
    pub fn accumulate_all(&mut self, device: &Device, model: &PlacementModel) {
        let kernel = Self::accumulation_kernel("density_map_all", model.num_nodes());
        device.launch(kernel, || self.accumulate(model, Subset::All, Subset::All));
    }

    /// The overflow ratio OVFL (Eq. 7) over the movable+fixed map.
    ///
    /// The scalar is consumed on the host for parameter scheduling, so the
    /// caller is expected to [`Device::synchronize`] afterwards.
    pub fn overflow(&self, device: &Device, model: &PlacementModel) -> f64 {
        let bins = (self.nx * self.ny) as u64;
        let kernel = KernelInfo::new("overflow").bytes(bins * 8).flops(bins * 3);
        device.launch(kernel, || {
            let bin_area = model.bin_w() * model.bin_h();
            let target = model.target_density();
            let over: f64 = self
                .movable_map
                .as_slice()
                .iter()
                .map(|&d| (d - target).max(0.0) * bin_area)
                .sum();
            over / model.movable_area()
        })
    }

    /// The two spectral kernel descriptors for one Poisson solve on an
    /// `nx x ny` grid: the packed-real analysis pass and the fused
    /// scale-plus-synthesis pass.
    ///
    /// With the real-FFT engine the analysis reads/writes one real grid
    /// (`m * 8 * 2` bytes, `5 m log m` flops — half the traffic of the old
    /// complex path), while the fused synthesis streams the shared spectrum
    /// into three output grids (`m * 8 * 4` bytes, `15 m log m` flops for
    /// the three inverse transforms). Exposed so the spectral microbench
    /// charges exactly the kernels the GP loop launches.
    pub fn spectral_kernels(nx: usize, ny: usize) -> [KernelInfo; 2] {
        let m = (nx * ny) as u64;
        let logm = (usize::BITS - nx.leading_zeros()) as u64;
        [
            KernelInfo::new("electro_rfft2")
                .bytes(m * 8 * 2)
                .flops(m * 5 * logm),
            KernelInfo::new("electro_irfft2_fields")
                .bytes(m * 8 * 4)
                .flops(m * 15 * logm),
        ]
    }

    /// Solves the electrostatic system on the total map, caching the
    /// potential and field (two kernels: the packed-real forward analysis
    /// and the fused scale+synthesis pass, matching the `rfft2`/`irfft2`
    /// pair the paper uses).
    ///
    /// # Errors
    ///
    /// Returns [`OpsError::Spectral`] on grid mismatch (an internal
    /// invariant violation).
    pub fn solve_field(&mut self, device: &Device) -> Result<(), OpsError> {
        let [analysis, fields] = Self::spectral_kernels(self.nx, self.ny);
        let solver = &mut self.solver;
        let solution = &mut self.solution;
        let total = &self.total_map;
        let mut result = Ok(());
        device.launch(analysis, || {
            // Analysis + potential/field synthesis happen inside the
            // solver; charge the fused synthesis separately below.
        });
        device.launch(fields, || {
            result = solver.solve_into(total, solution).map_err(OpsError::from);
        });
        result
    }

    /// The electrostatic energy of the last solve (`0.5 sum(rho psi)`).
    pub fn energy(&self) -> f64 {
        self.solution.energy
    }

    /// Blends externally predicted field maps into the cached solution
    /// (Eq. 14 of the paper): `E <- (1 - sigma) E + sigma E_pred`, one
    /// element-wise kernel. Used by the neural-guidance extension.
    ///
    /// # Panics
    ///
    /// Panics if the predicted grids do not match the solver grid.
    pub fn blend_field(
        &mut self,
        device: &Device,
        pred_x: &xplace_fft::Grid2,
        pred_y: &xplace_fft::Grid2,
        sigma: f64,
    ) {
        assert_eq!(
            pred_x.dims(),
            (self.nx, self.ny),
            "predicted field grid mismatch"
        );
        assert_eq!(
            pred_y.dims(),
            (self.nx, self.ny),
            "predicted field grid mismatch"
        );
        let bins = (self.nx * self.ny) as u64;
        let kernel = KernelInfo::new("field_blend")
            .bytes(bins * 32)
            .flops(bins * 4);
        device.launch(kernel, || {
            let keep = 1.0 - sigma;
            for (dst, src) in self
                .solution
                .field_x
                .as_mut_slice()
                .iter_mut()
                .zip(pred_x.as_slice())
            {
                *dst = keep * *dst + sigma * *src;
            }
            for (dst, src) in self
                .solution
                .field_y
                .as_mut_slice()
                .iter_mut()
                .zip(pred_y.as_slice())
            {
                *dst = keep * *dst + sigma * *src;
            }
        });
    }

    /// Accumulates the density gradient `lambda * dD/dx_i = -lambda q_i E(b_i)`
    /// into `grad_x`/`grad_y` for movable cells **and** fillers (one
    /// kernel). `q_i` is the node area; the field is sampled at the node
    /// center's bin and converted from bin units to database units.
    ///
    /// # Panics
    ///
    /// Panics if the gradient slices are shorter than the node count.
    pub fn accumulate_gradient(
        &self,
        device: &Device,
        model: &PlacementModel,
        lambda: f64,
        grad_x: &mut [f64],
        grad_y: &mut [f64],
    ) {
        assert!(grad_x.len() >= model.num_nodes() && grad_y.len() >= model.num_nodes());
        let n = (model.num_movable() + model.num_fillers()) as u64;
        let kernel = KernelInfo::new("density_gradient")
            .bytes(n * 48)
            .flops(n * 8);
        device.launch(kernel, || {
            let region = model.region();
            let inv_bw = 1.0 / model.bin_w();
            let inv_bh = 1.0 / model.bin_h();
            for i in model.optimizable_indices() {
                let bx = (((model.x[i] - region.lx) * inv_bw) as usize).min(self.nx - 1);
                let by = (((model.y[i] - region.ly) * inv_bh) as usize).min(self.ny - 1);
                let q = model.node_area(i);
                grad_x[i] -= lambda * q * self.solution.field_x[(bx, by)] * inv_bw;
                grad_y[i] -= lambda * q * self.solution.field_y[(bx, by)] * inv_bh;
            }
        });
    }

    /// Norm helpers: the summed absolute density-gradient magnitude over
    /// movable nodes for the last field solve, used for λ initialization
    /// and the operator-skipping ratio `r` (§3.1.4).
    pub fn gradient_l1_norm(&self, model: &PlacementModel) -> f64 {
        let region = model.region();
        let inv_bw = 1.0 / model.bin_w();
        let inv_bh = 1.0 / model.bin_h();
        let mut total = 0.0;
        for i in 0..model.num_movable() {
            let bx = (((model.x[i] - region.lx) * inv_bw) as usize).min(self.nx - 1);
            let by = (((model.y[i] - region.ly) * inv_bh) as usize).min(self.ny - 1);
            let q = model.node_area(i);
            total += (q * self.solution.field_x[(bx, by)] * inv_bw).abs()
                + (q * self.solution.field_y[(bx, by)] * inv_bh).abs();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplace_db::synthesis::{synthesize, SynthesisSpec};
    use xplace_device::DeviceConfig;

    fn setup() -> (PlacementModel, DensityOp, Device) {
        let design = synthesize(
            &SynthesisSpec::new("d", 500, 520)
                .with_seed(21)
                .with_macro_count(2),
        )
        .unwrap();
        let model = PlacementModel::from_design(&design).unwrap();
        let op = DensityOp::new(&model).unwrap();
        (model, op, Device::new(DeviceConfig::instant()))
    }

    fn spread(model: &mut PlacementModel) {
        let r = model.region();
        let ranges = model.ranges();
        for i in ranges.movable.chain(ranges.filler) {
            model.x[i] = r.lx + ((i as f64) * 0.7548).fract() * r.width();
            model.y[i] = r.ly + ((i as f64) * 0.5698).fract() * r.height();
        }
        model.clamp_to_region();
    }

    #[test]
    fn density_map_conserves_movable_area() {
        let (mut model, mut op, device) = setup();
        spread(&mut model);
        op.accumulate_movable(&device, &model);
        let bin_area = model.bin_w() * model.bin_h();
        let mapped: f64 = op.movable_map.sum() * bin_area;
        let mut actual = model.movable_area();
        let region = model.region();
        for i in model.ranges().fixed {
            let r = xplace_db::Rect::from_center(
                xplace_db::Point::new(model.x[i], model.y[i]),
                model.w[i],
                model.h[i],
            );
            // Fixed cells contribute at the target density.
            actual += r.overlap_area(&region) * model.target_density();
        }
        assert!(
            (mapped - actual).abs() < actual * 0.01,
            "mapped {mapped} vs actual {actual}"
        );
    }

    #[test]
    fn extraction_path_equals_direct_path() {
        let (mut model, mut op, device) = setup();
        spread(&mut model);
        // Extracted: D, D_fl, add.
        op.accumulate_movable(&device, &model);
        op.accumulate_fillers(&device, &model);
        op.combine_total(&device);
        let extracted = op.total_map.clone();
        // Direct: single pass over all nodes.
        op.accumulate_all(&device, &model);
        assert!(op.total_map.max_abs_diff(&extracted) < 1e-9);
    }

    #[test]
    fn overflow_is_high_when_clustered_low_when_spread() {
        let (mut model, mut op, device) = setup();
        // Clustered at center (initial synthetic state).
        op.accumulate_movable(&device, &model);
        let clustered = op.overflow(&device, &model);
        spread(&mut model);
        op.accumulate_movable(&device, &model);
        let spread_ovfl = op.overflow(&device, &model);
        assert!(clustered > 0.5, "clustered overflow {clustered}");
        assert!(
            spread_ovfl < clustered * 0.5,
            "spread {spread_ovfl} vs {clustered}"
        );
    }

    #[test]
    fn gradient_pushes_cells_away_from_cluster() {
        let (mut model, mut op, device) = setup();
        // Most movable cells sit at the center; displace a few probes to
        // known off-center positions. The density gradient must point
        // outward (a negative-gradient step moves a right-of-center probe
        // further right).
        let c = model.region().center();
        let w = model.region().width();
        for (k, i) in (0..8usize).enumerate() {
            model.x[i] = c.x + (k as f64 - 3.5) * w * 0.1;
        }
        op.accumulate_movable(&device, &model);
        op.accumulate_fillers(&device, &model);
        op.combine_total(&device);
        op.solve_field(&device).unwrap();
        let n = model.num_nodes();
        let (mut gx, mut gy) = (vec![0.0; n], vec![0.0; n]);
        op.accumulate_gradient(&device, &model, 1.0, &mut gx, &mut gy);
        let c = model.region().center();
        let mut checked = 0;
        for i in 0..model.num_movable() {
            let dx = model.x[i] - c.x;
            if dx.abs() > model.bin_w() {
                // -grad points outward: grad_x must have the opposite sign
                // of the displacement... i.e. moving along -grad increases |dx|.
                assert!(gx[i] * dx <= 1e-12, "cell {i}: dx={dx}, gx={}", gx[i]);
                checked += 1;
            }
        }
        assert!(checked > 0, "no off-center cells to check");
    }

    #[test]
    fn energy_decreases_as_cells_spread() {
        let (mut model, mut op, device) = setup();
        op.accumulate_all(&device, &model);
        op.solve_field(&device).unwrap();
        let clustered = op.energy();
        spread(&mut model);
        op.accumulate_all(&device, &model);
        op.solve_field(&device).unwrap();
        let spread_e = op.energy();
        assert!(spread_e < clustered, "{spread_e} vs {clustered}");
    }

    #[test]
    fn terminals_contribute_no_density() {
        let (model, mut op, device) = setup();
        op.accumulate_movable(&device, &model);
        let with_terms = op.movable_map.sum();
        // Terminals have zero area; the sum is unaffected by their
        // presence (they are skipped). Sanity: the map is finite and
        // non-negative.
        assert!(with_terms.is_finite());
        assert!(op.movable_map.min() >= 0.0);
    }

    #[test]
    fn launch_accounting_distinguishes_paths() {
        let (mut model, mut op, device) = setup();
        spread(&mut model);
        let (_, extracted) = device.scoped(|| {
            op.accumulate_movable(&device, &model);
            op.accumulate_fillers(&device, &model);
            op.combine_total(&device);
        });
        let (_, direct) = device.scoped(|| {
            op.accumulate_all(&device, &model);
            op.accumulate_movable(&device, &model);
        });
        assert_eq!(extracted.launches, 3);
        assert_eq!(direct.launches, 2);
        // The direct path touches more node data overall (movable pass
        // happens twice), so its modeled execution is at least as large.
        let d = Device::new(DeviceConfig::rtx3090());
        let (_, e2) = d.scoped(|| {
            op.accumulate_movable(&d, &model);
            op.accumulate_fillers(&d, &model);
            op.combine_total(&d);
        });
        let (_, d2) = d.scoped(|| {
            op.accumulate_all(&d, &model);
            op.accumulate_movable(&d, &model);
        });
        assert!(
            d2.exec_ns >= e2.exec_ns,
            "direct {} vs extracted {}",
            d2.exec_ns,
            e2.exec_ns
        );
    }

    #[test]
    fn gradient_l1_norm_positive_when_clustered() {
        let (model, mut op, device) = setup();
        op.accumulate_all(&device, &model);
        op.solve_field(&device).unwrap();
        assert!(op.gradient_l1_norm(&model) > 0.0);
    }
}
