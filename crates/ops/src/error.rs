use std::error::Error;
use std::fmt;
use xplace_fft::FftError;

/// Errors produced by the placement operators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OpsError {
    /// The design cannot be turned into a placement model; describes the
    /// violated requirement.
    InvalidModel(String),
    /// A spectral solve failed (grid mismatch or invalid dimensions).
    Spectral(FftError),
}

impl fmt::Display for OpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpsError::InvalidModel(msg) => write!(f, "invalid placement model: {msg}"),
            OpsError::Spectral(e) => write!(f, "spectral solve failed: {e}"),
        }
    }
}

impl Error for OpsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OpsError::Spectral(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FftError> for OpsError {
    fn from(e: FftError) -> Self {
        OpsError::Spectral(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: OpsError = FftError::EmptyLength.into();
        assert!(e.to_string().contains("spectral"));
        assert!(e.source().is_some());
        let e = OpsError::InvalidModel("no movable cells".into());
        assert!(e.to_string().contains("no movable cells"));
        assert!(e.source().is_none());
    }
}
