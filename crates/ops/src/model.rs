//! The flattened placement model the operators execute on.

use crate::OpsError;
use std::ops::Range;
use xplace_db::{CellKind, Design, FenceRegion, Point, Rect};
use xplace_testkit::Rng;

/// Index ranges of the three node classes inside a [`PlacementModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRange {
    /// Movable standard cells `0..nm`.
    pub movable: Range<usize>,
    /// Fixed cells and terminals `nm..nm+nf`.
    pub fixed: Range<usize>,
    /// Filler cells `nm+nf..total`.
    pub filler: Range<usize>,
}

/// Array-of-structs view of a placement instance, the operand of every
/// operator in this crate.
///
/// Node ordering is `[movable | fixed+terminals | fillers]`; positions are
/// cell **centers**. Net connectivity is stored in CSR form over pins.
/// Fillers (inserted per ePlace to occupy whitespace in the electrostatic
/// system, Eq. 9-10 of the paper) have no pins.
#[derive(Debug, Clone)]
pub struct PlacementModel {
    /// Node center x coordinates.
    pub x: Vec<f64>,
    /// Node center y coordinates.
    pub y: Vec<f64>,
    /// Node widths.
    pub w: Vec<f64>,
    /// Node heights.
    pub h: Vec<f64>,
    /// Pins of net `e` occupy `net_start[e]..net_start[e+1]` in the pin
    /// arrays.
    pub net_start: Vec<u32>,
    /// Owning node of each pin.
    pub pin_node: Vec<u32>,
    /// Pin x offset from the node center.
    pub pin_dx: Vec<f64>,
    /// Pin y offset from the node center.
    pub pin_dy: Vec<f64>,
    /// Net weights.
    pub net_weight: Vec<f64>,
    /// Pins incident to each node (`|S_i|` for the preconditioner; zero
    /// for fillers).
    pub node_degree: Vec<u32>,
    /// Number of movable cells.
    num_movable: usize,
    /// Number of fixed cells + terminals.
    num_fixed: usize,
    /// Number of fillers.
    num_fillers: usize,
    /// Placement region.
    region: Rect,
    /// Density grid dimensions (power of two).
    nx: usize,
    ny: usize,
    /// Target density.
    target_density: f64,
    /// Fence index per node (`u32::MAX` = unfenced). Only movable nodes
    /// can be fenced.
    node_fence: Vec<u32>,
    /// The design's fence regions (cloned for clamping).
    fences: Vec<FenceRegion>,
}

impl PlacementModel {
    /// Builds a model from a design with default grid sizing and ePlace
    /// filler insertion (deterministic filler seeding).
    ///
    /// # Errors
    ///
    /// Returns [`OpsError::InvalidModel`] when the design has no movable
    /// cells or a degenerate region.
    pub fn from_design(design: &Design) -> Result<Self, OpsError> {
        Self::from_design_with(design, None, true, 0x5eed)
    }

    /// Builds a model with explicit options: an optional density-grid
    /// override (must be a power of two), filler insertion on/off and the
    /// RNG seed for filler spreading.
    ///
    /// # Errors
    ///
    /// Returns [`OpsError::InvalidModel`] for designs with no movable
    /// cells, degenerate regions, or non-power-of-two grid overrides.
    pub fn from_design_with(
        design: &Design,
        grid: Option<usize>,
        insert_fillers: bool,
        filler_seed: u64,
    ) -> Result<Self, OpsError> {
        let nl = design.netlist();
        let region = design.region();
        if region.width() <= 0.0 || region.height() <= 0.0 {
            return Err(OpsError::InvalidModel("degenerate placement region".into()));
        }

        // Partition cells: movable first, then fixed/terminals.
        let mut movable = Vec::new();
        let mut fixed = Vec::new();
        for id in nl.cell_ids() {
            match nl.cell(id).kind() {
                CellKind::Movable => movable.push(id),
                CellKind::Fixed | CellKind::Terminal => fixed.push(id),
            }
        }
        if movable.is_empty() {
            return Err(OpsError::InvalidModel("design has no movable cells".into()));
        }
        let num_movable = movable.len();
        let num_fixed = fixed.len();

        // node index per cell id.
        let mut node_of_cell = vec![u32::MAX; nl.num_cells()];
        for (i, &id) in movable.iter().chain(fixed.iter()).enumerate() {
            node_of_cell[id.index()] = i as u32;
        }

        let mut x = Vec::with_capacity(num_movable + num_fixed);
        let mut y = Vec::with_capacity(num_movable + num_fixed);
        let mut w = Vec::with_capacity(num_movable + num_fixed);
        let mut h = Vec::with_capacity(num_movable + num_fixed);
        for &id in movable.iter().chain(fixed.iter()) {
            let c = nl.cell(id);
            let p = design.position(id);
            x.push(p.x);
            y.push(p.y);
            w.push(c.width());
            h.push(c.height());
        }

        // CSR nets: the netlist is already net-major SoA, so the spans,
        // offsets and weights copy straight through; only the cell ids are
        // remapped to the movable-first node order.
        let net_start: Vec<u32> = nl.net_start().to_vec();
        let pin_node: Vec<u32> = nl
            .pin_cells()
            .iter()
            .map(|c| node_of_cell[c.index()])
            .collect();
        let pin_dx: Vec<f64> = nl.pin_dx().to_vec();
        let pin_dy: Vec<f64> = nl.pin_dy().to_vec();
        let net_weight: Vec<f64> = nl.net_weights().to_vec();

        // Grid sizing: roughly one bin per few movable cells, power of two.
        let nx = match grid {
            Some(g) => {
                if !xplace_fft::is_power_of_two(g) {
                    return Err(OpsError::InvalidModel(format!(
                        "grid override {g} is not a power of two"
                    )));
                }
                g
            }
            None => {
                let target = (num_movable as f64).sqrt().ceil() as usize;
                xplace_fft::next_power_of_two(target).clamp(16, 1024)
            }
        };
        let ny = nx;

        // Fillers (Eq. 9): occupy target-density-scaled whitespace.
        let movable_area: f64 = (0..num_movable).map(|i| w[i] * h[i]).sum();
        let mut fixed_area = 0.0;
        for i in num_movable..num_movable + num_fixed {
            let r = Rect::from_center(Point::new(x[i], y[i]), w[i], h[i]);
            fixed_area += r.overlap_area(&region);
        }
        let mut num_fillers = 0;
        if insert_fillers {
            let free_area = (region.area() - fixed_area).max(0.0);
            let filler_total = (free_area * design.target_density() - movable_area).max(0.0);
            if filler_total > 0.0 {
                // Trimmed-mean movable footprint (DREAMPlace uses the
                // middle 80% to ignore outliers).
                let mut ws: Vec<f64> = (0..num_movable).map(|i| w[i]).collect();
                ws.sort_by(|a, b| a.partial_cmp(b).expect("cell widths are finite"));
                let lo = num_movable / 10;
                let hi = (num_movable - lo).max(lo + 1);
                let mean_w: f64 = ws[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
                let mean_h: f64 = (0..num_movable).map(|i| h[i]).sum::<f64>() / num_movable as f64;
                let filler_w = mean_w.max(1e-9);
                let filler_h = mean_h.max(1e-9);
                num_fillers = (filler_total / (filler_w * filler_h)).floor() as usize;
                let mut rng = Rng::seed_from_u64(filler_seed);
                for _ in 0..num_fillers {
                    x.push(region.lx + rng.f64() * region.width());
                    y.push(region.ly + rng.f64() * region.height());
                    w.push(filler_w);
                    h.push(filler_h);
                }
            }
        }

        let total = num_movable + num_fixed + num_fillers;
        let mut node_degree = vec![0u32; total];
        for &n in &pin_node {
            node_degree[n as usize] += 1;
        }

        // Fence assignment (movable nodes only).
        let mut node_fence = vec![u32::MAX; total];
        for (fi, fence) in design.fences().iter().enumerate() {
            for &cell in fence.members() {
                let node = node_of_cell[cell.index()];
                if node != u32::MAX && (node as usize) < num_movable {
                    node_fence[node as usize] = fi as u32;
                }
            }
        }

        Ok(PlacementModel {
            x,
            y,
            w,
            h,
            net_start,
            pin_node,
            pin_dx,
            pin_dy,
            net_weight,
            node_degree,
            num_movable,
            num_fixed,
            num_fillers,
            region,
            nx,
            ny,
            target_density: design.target_density(),
            node_fence,
            fences: design.fences().to_vec(),
        })
    }

    /// Total node count (movable + fixed + fillers).
    pub fn num_nodes(&self) -> usize {
        self.x.len()
    }

    /// Number of movable cells.
    pub fn num_movable(&self) -> usize {
        self.num_movable
    }

    /// Number of fixed cells and terminals.
    pub fn num_fixed(&self) -> usize {
        self.num_fixed
    }

    /// Number of filler cells.
    pub fn num_fillers(&self) -> usize {
        self.num_fillers
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.net_weight.len()
    }

    /// Number of pins.
    pub fn num_pins(&self) -> usize {
        self.pin_node.len()
    }

    /// The index ranges of the node classes.
    pub fn ranges(&self) -> NodeRange {
        NodeRange {
            movable: 0..self.num_movable,
            fixed: self.num_movable..self.num_movable + self.num_fixed,
            filler: self.num_movable + self.num_fixed..self.num_nodes(),
        }
    }

    /// Indices the optimizer moves: movable cells plus fillers.
    pub fn optimizable_indices(&self) -> impl Iterator<Item = usize> + '_ {
        let r = self.ranges();
        r.movable.chain(r.filler)
    }

    /// The placement region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Density grid dimensions `(nx, ny)`.
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Bin width.
    pub fn bin_w(&self) -> f64 {
        self.region.width() / self.nx as f64
    }

    /// Bin height.
    pub fn bin_h(&self) -> f64 {
        self.region.height() / self.ny as f64
    }

    /// The benchmark target density.
    pub fn target_density(&self) -> f64 {
        self.target_density
    }

    /// Total movable cell area.
    pub fn movable_area(&self) -> f64 {
        (0..self.num_movable).map(|i| self.w[i] * self.h[i]).sum()
    }

    /// Area of node `i`.
    pub fn node_area(&self, i: usize) -> f64 {
        self.w[i] * self.h[i]
    }

    /// Clamps every optimizable node center so its rectangle stays inside
    /// the region.
    pub fn clamp_to_region(&mut self) {
        let r = self.region;
        let (movable, filler) = {
            let ranges = self.ranges();
            (ranges.movable, ranges.filler)
        };
        for i in movable.chain(filler) {
            let half_w = self.w[i] * 0.5;
            let half_h = self.h[i] * 0.5;
            self.x[i] = self.x[i].clamp(r.lx + half_w, (r.ux - half_w).max(r.lx + half_w));
            self.y[i] = self.y[i].clamp(r.ly + half_h, (r.uy - half_h).max(r.ly + half_h));
        }
    }

    /// The fence index of a node (`None` when unfenced).
    pub fn fence_of_node(&self, i: usize) -> Option<usize> {
        match self.node_fence.get(i) {
            Some(&f) if f != u32::MAX => Some(f as usize),
            _ => None,
        }
    }

    /// Whether the model carries any fence constraints.
    pub fn has_fences(&self) -> bool {
        !self.fences.is_empty()
    }

    /// Clamps every fenced movable node into (the nearest rectangle of)
    /// its fence, keeping the cell's own footprint inside the rect where
    /// it fits.
    pub fn clamp_to_fences(&mut self) {
        if self.fences.is_empty() {
            return;
        }
        for i in 0..self.num_movable {
            let Some(fi) = self.fence_of_node(i) else {
                continue;
            };
            let rect = self.fences[fi].nearest_rect(self.x[i], self.y[i]);
            let half_w = (self.w[i] * 0.5).min(rect.width() * 0.5);
            let half_h = (self.h[i] * 0.5).min(rect.height() * 0.5);
            self.x[i] = self.x[i].clamp(rect.lx + half_w, rect.ux - half_w);
            self.y[i] = self.y[i].clamp(rect.ly + half_h, rect.uy - half_h);
        }
    }

    /// Writes the model's movable-cell positions back into the design.
    ///
    /// # Panics
    ///
    /// Panics if `design` is not the instance this model was built from
    /// (cell-count mismatch).
    pub fn apply_to(&self, design: &mut Design) {
        let nl = design.netlist();
        let mut movable = Vec::new();
        for id in nl.cell_ids() {
            if nl.cell(id).kind() == CellKind::Movable {
                movable.push(id);
            }
        }
        assert_eq!(
            movable.len(),
            self.num_movable,
            "design does not match model"
        );
        let mut positions = design.positions().to_vec();
        for (i, id) in movable.into_iter().enumerate() {
            positions[id.index()] = Point::new(self.x[i], self.y[i]);
        }
        design.set_positions(positions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplace_db::synthesis::{synthesize, SynthesisSpec};

    fn model() -> (Design, PlacementModel) {
        let design = synthesize(
            &SynthesisSpec::new("m", 400, 420)
                .with_seed(5)
                .with_macro_count(3),
        )
        .unwrap();
        let model = PlacementModel::from_design(&design).unwrap();
        (design, model)
    }

    #[test]
    fn node_ordering_is_movable_fixed_filler() {
        let (design, m) = model();
        let r = m.ranges();
        assert_eq!(r.movable.len(), 400);
        assert_eq!(r.fixed.len(), design.netlist().num_cells() - 400);
        assert!(
            !r.filler.is_empty(),
            "expected fillers in a 70%-utilized design"
        );
        assert_eq!(r.filler.end, m.num_nodes());
    }

    #[test]
    fn filler_area_fills_target_density_whitespace() {
        let (design, m) = model();
        let filler_area: f64 = m.ranges().filler.map(|i| m.node_area(i)).sum();
        let free = design.region_area() - design.fixed_area_in_region();
        let expected = free * design.target_density() - m.movable_area();
        assert!(
            (filler_area - expected).abs() < expected * 0.02 + m.node_area(m.ranges().filler.start),
            "filler area {filler_area} vs expected {expected}"
        );
    }

    #[test]
    fn csr_nets_match_design_hpwl() {
        let (design, m) = model();
        // Reconstruct HPWL from the CSR arrays and compare with the design.
        let mut total = 0.0;
        for e in 0..m.num_nets() {
            let s = m.net_start[e] as usize;
            let t = m.net_start[e + 1] as usize;
            if t - s < 2 {
                continue;
            }
            let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
            for p in s..t {
                let n = m.pin_node[p] as usize;
                let px = m.x[n] + m.pin_dx[p];
                let py = m.y[n] + m.pin_dy[p];
                min_x = min_x.min(px);
                max_x = max_x.max(px);
                min_y = min_y.min(py);
                max_y = max_y.max(py);
            }
            total += m.net_weight[e] * ((max_x - min_x) + (max_y - min_y));
        }
        let expected = design.total_hpwl();
        assert!(
            (total - expected).abs() < 1e-6 * expected,
            "{total} vs {expected}"
        );
    }

    #[test]
    fn fillers_have_no_pins() {
        let (_, m) = model();
        for i in m.ranges().filler {
            assert_eq!(m.node_degree[i], 0);
        }
    }

    #[test]
    fn grid_is_power_of_two_and_scales_with_size() {
        let (_, m) = model();
        let (nx, ny) = m.grid_dims();
        assert!(xplace_fft::is_power_of_two(nx) && nx == ny);
        assert!((16..=1024).contains(&nx));
    }

    #[test]
    fn grid_override_is_validated() {
        let (design, _) = model();
        assert!(PlacementModel::from_design_with(&design, Some(48), true, 0).is_err());
        let m = PlacementModel::from_design_with(&design, Some(64), true, 0).unwrap();
        assert_eq!(m.grid_dims(), (64, 64));
    }

    #[test]
    fn clamp_keeps_nodes_inside() {
        let (_, mut m) = model();
        let r = m.region();
        m.x[0] = r.lx - 100.0;
        m.y[0] = r.uy + 100.0;
        m.clamp_to_region();
        assert!(m.x[0] - m.w[0] * 0.5 >= r.lx - 1e-9);
        assert!(m.y[0] + m.h[0] * 0.5 <= r.uy + 1e-9);
    }

    #[test]
    fn apply_to_round_trips_positions() {
        let (mut design, mut m) = model();
        m.x[7] += 3.0;
        m.y[7] -= 2.0;
        m.apply_to(&mut design);
        let m2 = PlacementModel::from_design(&design).unwrap();
        assert!((m2.x[7] - m.x[7]).abs() < 1e-12);
        assert!((m2.y[7] - m.y[7]).abs() < 1e-12);
    }

    #[test]
    fn no_fillers_when_disabled() {
        let (design, _) = model();
        let m = PlacementModel::from_design_with(&design, None, false, 0).unwrap();
        assert_eq!(m.num_fillers(), 0);
    }

    #[test]
    fn empty_movable_design_is_rejected() {
        use xplace_db::netlist::{CellKind, NetlistBuilder};
        let mut b = NetlistBuilder::new();
        let f = b.add_cell("f", 2.0, 2.0, CellKind::Fixed);
        b.add_net("n", vec![(f, Point::default()), (f, Point::new(0.5, 0.0))])
            .unwrap();
        let nl = b.finish().unwrap();
        let d = Design::new(
            "nofree",
            nl,
            Rect::new(0.0, 0.0, 10.0, 10.0),
            vec![],
            0.9,
            vec![Point::new(5.0, 5.0)],
        )
        .unwrap();
        assert!(matches!(
            PlacementModel::from_design(&d),
            Err(OpsError::InvalidModel(_))
        ));
    }

    #[test]
    fn fence_assignment_and_clamping() {
        let design = synthesize(
            &SynthesisSpec::new("mf", 300, 320)
                .with_seed(9)
                .with_fences(2),
        )
        .unwrap();
        let mut m = PlacementModel::from_design(&design).unwrap();
        assert!(m.has_fences());
        // The number of fenced nodes matches the fence member lists.
        let expected: usize = design.fences().iter().map(|f| f.members().len()).sum();
        let fenced_nodes = (0..m.num_movable())
            .filter(|&i| m.fence_of_node(i).is_some())
            .count();
        assert_eq!(fenced_nodes, expected);
        assert!(fenced_nodes > 0);
        // Teleport every fenced node out and clamp back.
        let r = m.region();
        for i in 0..m.num_movable() {
            if m.fence_of_node(i).is_some() {
                m.x[i] = r.lx;
                m.y[i] = r.ly;
            }
        }
        m.clamp_to_fences();
        for i in 0..m.num_movable() {
            if let Some(fi) = m.fence_of_node(i) {
                let bb = design.fences()[fi].bounding_box();
                assert!(
                    m.x[i] >= bb.lx - 1e-9 && m.x[i] <= bb.ux + 1e-9,
                    "node {i} x={} outside fence {bb}",
                    m.x[i]
                );
                assert!(m.y[i] >= bb.ly - 1e-9 && m.y[i] <= bb.uy + 1e-9);
            }
        }
    }

    #[test]
    fn unfenced_model_clamp_is_a_no_op() {
        let design = synthesize(&SynthesisSpec::new("mnf", 100, 110).with_seed(3)).unwrap();
        let mut m = PlacementModel::from_design(&design).unwrap();
        assert!(!m.has_fences());
        assert_eq!(m.fence_of_node(0), None);
        let snapshot = m.x.clone();
        m.clamp_to_fences();
        assert_eq!(m.x, snapshot);
    }

    #[test]
    fn filler_insertion_is_deterministic() {
        let (design, _) = model();
        let a = PlacementModel::from_design_with(&design, None, true, 7).unwrap();
        let b = PlacementModel::from_design_with(&design, None, true, 7).unwrap();
        assert_eq!(a.x, b.x);
        let c = PlacementModel::from_design_with(&design, None, true, 8).unwrap();
        assert_ne!(a.x, c.x);
    }
}
