//! The diagonal preconditioner and the placement-stage ratio ω (§3.2).
//!
//! ePlace-family placers divide the gradient by
//! `H~ = H_W + lambda * H_D` with `H_W = diag(|S_i|)` (nets per cell) and
//! `H_D = diag(A_i)` (cell areas), clamped at 1 to avoid amplifying tiny
//! rows. Xplace additionally reads the *precondition weighted ratio*
//!
//! ```text
//!   omega = lambda |H_D| / (|H_W| + lambda |H_D|)   in [0, 1]
//! ```
//!
//! off the same diagonals and uses it to detect the placement stage
//! (wirelength-dominated < 0.05, spreading, final > 0.95).

use crate::PlacementModel;
use xplace_device::{Device, KernelInfo};

/// Applies the preconditioner in place:
/// `g_i /= max(1, |S_i| + lambda A_i)` for every optimizable node (one
/// kernel). Fillers have `|S_i| = 0` and are preconditioned by area only.
///
/// # Panics
///
/// Panics if the gradient slices are shorter than the node count.
pub fn apply(
    device: &Device,
    model: &PlacementModel,
    lambda: f64,
    grad_x: &mut [f64],
    grad_y: &mut [f64],
) {
    assert!(grad_x.len() >= model.num_nodes() && grad_y.len() >= model.num_nodes());
    let n = (model.num_movable() + model.num_fillers()) as u64;
    let kernel = KernelInfo::new("precondition").bytes(n * 40).flops(n * 6);
    device.launch(kernel, || {
        for i in model.optimizable_indices() {
            let h = (model.node_degree[i] as f64 + lambda * model.node_area(i)).max(1.0);
            grad_x[i] /= h;
            grad_y[i] /= h;
        }
    });
}

/// The precondition weighted ratio ω over movable cells (Eq. in §3.2).
///
/// Returns a value in `[0, 1]`; 0 when `lambda = 0`.
pub fn omega(model: &PlacementModel, lambda: f64) -> f64 {
    let mut hw = 0.0;
    let mut hd = 0.0;
    for i in 0..model.num_movable() {
        hw += model.node_degree[i] as f64;
        hd += model.node_area(i);
    }
    let weighted = lambda * hd;
    if hw + weighted == 0.0 {
        0.0
    } else {
        weighted / (hw + weighted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplace_db::synthesis::{synthesize, SynthesisSpec};
    use xplace_device::DeviceConfig;

    fn model() -> PlacementModel {
        let design = synthesize(&SynthesisSpec::new("p", 200, 210).with_seed(31)).unwrap();
        PlacementModel::from_design(&design).unwrap()
    }

    #[test]
    fn preconditioner_divides_by_degree_plus_area() {
        let m = model();
        let device = Device::new(DeviceConfig::instant());
        let n = m.num_nodes();
        let (mut gx, mut gy) = (vec![2.0; n], vec![-4.0; n]);
        let lambda = 0.5;
        apply(&device, &m, lambda, &mut gx, &mut gy);
        for i in m.optimizable_indices() {
            let h = (m.node_degree[i] as f64 + lambda * m.node_area(i)).max(1.0);
            assert!((gx[i] - 2.0 / h).abs() < 1e-12);
            assert!((gy[i] + 4.0 / h).abs() < 1e-12);
        }
        // Fixed nodes are untouched.
        for i in m.ranges().fixed {
            assert_eq!(gx[i], 2.0);
        }
    }

    #[test]
    fn clamp_prevents_amplification() {
        let m = model();
        let device = Device::new(DeviceConfig::instant());
        let n = m.num_nodes();
        let (mut gx, mut gy) = (vec![1.0; n], vec![1.0; n]);
        // lambda = 0 and some node with degree 0 (a filler) would divide
        // by 0 without the clamp.
        apply(&device, &m, 0.0, &mut gx, &mut gy);
        for i in m.ranges().filler {
            assert_eq!(gx[i], 1.0, "filler gradient must not be amplified");
        }
    }

    #[test]
    fn omega_is_monotone_in_lambda_and_bounded() {
        let m = model();
        assert_eq!(omega(&m, 0.0), 0.0);
        let mut prev = 0.0;
        for lambda in [1e-6, 1e-4, 1e-2, 1.0, 100.0, 1e6] {
            let w = omega(&m, lambda);
            assert!((0.0..=1.0).contains(&w));
            assert!(w >= prev, "omega must grow with lambda");
            prev = w;
        }
        assert!(prev > 0.99, "omega should approach 1 for huge lambda");
    }

    #[test]
    fn omega_crosses_stage_thresholds() {
        let m = model();
        // Find lambdas that put omega below 0.05 and above 0.95; the
        // schedule in the paper keys off exactly these thresholds.
        assert!(omega(&m, 1e-9) < 0.05);
        assert!(omega(&m, 1e9) > 0.95);
    }
}
