//! Routing-congestion estimation for placement evaluation.
//!
//! The paper reports routability on the ISPD 2015 suite as *top5
//! overflow*: the average overflow of the 5 % most congested global-routing
//! gcells, as measured by NCTUgr after NTUplace4dr. That router is not
//! redistributable, so this crate provides the documented substitution: a
//! **RUDY** (Rectangular Uniform wire DensitY) congestion estimator —
//! each net smears its expected wirelength demand uniformly over its
//! bounding box, split into horizontal and vertical components — against a
//! per-gcell track capacity. RUDY is the standard fast congestion proxy in
//! placement literature and preserves *relative* comparisons between two
//! placements of the same netlist, which is all Table 4 uses the metric
//! for.
//!
//! # Example
//!
//! ```
//! use xplace_db::synthesis::{synthesize, SynthesisSpec};
//! use xplace_route::{estimate_congestion, RouteConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = synthesize(&SynthesisSpec::new("r", 300, 320).with_seed(2))?;
//! let map = estimate_congestion(&design, &RouteConfig::default());
//! let top5 = map.top_overflow(0.05);
//! assert!(top5.is_finite() && top5 >= 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use xplace_db::Design;
use xplace_fft::Grid2;

/// Configuration of the congestion estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteConfig {
    /// Gcell grid dimension along each axis (the grid is `n x n`).
    pub gcells: usize,
    /// Routing-track supply per gcell per direction, in wirelength units
    /// per gcell area (tracks x pitch). Larger = more routing capacity.
    pub capacity: f64,
    /// Minimum net bounding-box span (in gcell units) used when smearing
    /// degenerate (zero-extent) nets.
    pub min_span_gcells: f64,
}

impl Default for RouteConfig {
    fn default() -> Self {
        // ~12 track-lengths of supply per gcell per direction lands the
        // top5-overflow metric in the same numeric range the paper's
        // NCTUgr runs report (tens), easing side-by-side reading.
        RouteConfig {
            gcells: 64,
            capacity: 12.0,
            min_span_gcells: 1.0,
        }
    }
}

/// Per-gcell demand/capacity maps produced by [`estimate_congestion`].
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionMap {
    /// Horizontal routing demand per gcell (utilization units; 1.0 means
    /// exactly at capacity).
    pub demand_h: Grid2,
    /// Vertical routing demand per gcell.
    pub demand_v: Grid2,
    /// Gcell dimensions.
    pub gcell_w: f64,
    /// Gcell height.
    pub gcell_h: f64,
}

impl CongestionMap {
    /// Combined utilization (max of the two directions) per gcell,
    /// flattened.
    fn utilizations(&self) -> Vec<f64> {
        self.demand_h
            .as_slice()
            .iter()
            .zip(self.demand_v.as_slice())
            .map(|(h, v)| h.max(*v))
            .collect()
    }

    /// The paper's top-k overflow metric: the mean utilization (x100, a
    /// percentage) of the `frac` most congested gcells.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `(0, 1]`.
    pub fn top_overflow(&self, frac: f64) -> f64 {
        assert!(frac > 0.0 && frac <= 1.0, "fraction must be in (0, 1]");
        let mut u = self.utilizations();
        if u.is_empty() {
            return 0.0;
        }
        u.sort_by(|a, b| b.partial_cmp(a).expect("finite utilizations"));
        let k = ((u.len() as f64 * frac).ceil() as usize).max(1);
        100.0 * u[..k].iter().sum::<f64>() / k as f64
    }

    /// Maximum gcell utilization (x100).
    pub fn max_utilization(&self) -> f64 {
        100.0 * self.utilizations().iter().copied().fold(0.0, f64::max)
    }

    /// Mean gcell utilization (x100).
    pub fn mean_utilization(&self) -> f64 {
        let u = self.utilizations();
        if u.is_empty() {
            0.0
        } else {
            100.0 * u.iter().sum::<f64>() / u.len() as f64
        }
    }

    /// Number of gcells whose utilization exceeds 1.0 (overflowed).
    pub fn num_overflowed(&self) -> usize {
        self.utilizations().iter().filter(|&&u| u > 1.0).count()
    }
}

/// Pin density per gcell: the number of pins falling in each gcell.
///
/// Cell inflation flows target this alongside wire demand — local
/// interconnect (pin access) congestion is what spreading cells reliably
/// relieves.
pub fn pin_density_map(design: &Design, config: &RouteConfig) -> Grid2 {
    let n = config.gcells.max(1);
    let region = design.region();
    let gw = region.width() / n as f64;
    let gh = region.height() / n as f64;
    let mut map = Grid2::new(n, n);
    let nl = design.netlist();
    for p in 0..nl.num_pins() {
        let pos = design.pin_position(xplace_db::PinId(p as u32));
        let bx = (((pos.x - region.lx) / gw).max(0.0) as usize).min(n - 1);
        let by = (((pos.y - region.ly) / gh).max(0.0) as usize).min(n - 1);
        map[(bx, by)] += 1.0;
    }
    map
}

/// Mean of the top `frac` fraction of grid samples (e.g. the peak-pin
/// metric `top_fraction_mean(&pins, 0.05)`).
///
/// # Panics
///
/// Panics if `frac` is not in `(0, 1]`.
pub fn top_fraction_mean(grid: &Grid2, frac: f64) -> f64 {
    assert!(frac > 0.0 && frac <= 1.0, "fraction must be in (0, 1]");
    if grid.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = grid.as_slice().to_vec();
    v.sort_by(|a, b| b.partial_cmp(a).expect("finite samples"));
    let k = ((v.len() as f64 * frac).ceil() as usize).max(1);
    v[..k].iter().sum::<f64>() / k as f64
}

/// Estimates routing congestion of a placement with RUDY.
///
/// For every net with at least two pins, the horizontal demand `w` and
/// vertical demand `h` of its bounding box are smeared uniformly over the
/// box (each covered gcell receives the demand times its overlap
/// fraction), normalized by the configured capacity.
pub fn estimate_congestion(design: &Design, config: &RouteConfig) -> CongestionMap {
    let n = config.gcells.max(1);
    let region = design.region();
    let gw = region.width() / n as f64;
    let gh = region.height() / n as f64;
    let mut demand_h = Grid2::new(n, n);
    let mut demand_v = Grid2::new(n, n);
    let nl = design.netlist();

    for net_id in nl.net_ids() {
        let net = nl.net(net_id);
        if net.degree() < 2 {
            continue;
        }
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for pid in net.pins() {
            let p = design.pin_position(pid);
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        // Degenerate boxes still occupy at least a fraction of a gcell.
        let span_x = (max_x - min_x).max(config.min_span_gcells * gw);
        let span_y = (max_y - min_y).max(config.min_span_gcells * gh);
        let lx = min_x.clamp(region.lx, region.ux);
        let ly = min_y.clamp(region.ly, region.uy);
        let ux = (min_x + span_x).clamp(region.lx, region.ux);
        let uy = (min_y + span_y).clamp(region.ly, region.uy);
        if ux <= lx || uy <= ly {
            continue;
        }
        // RUDY densities: horizontal wire demand = weight * span_x spread
        // over the box area, measured against per-gcell capacity.
        let area = (ux - lx) * (uy - ly);
        let dh = net.weight() * span_x / area / config.capacity * gw;
        let dv = net.weight() * span_y / area / config.capacity * gh;

        let bx0 = (((lx - region.lx) / gw).floor().max(0.0)) as usize;
        let bx1 = ((((ux - region.lx) / gw).ceil()) as usize).min(n);
        let by0 = (((ly - region.ly) / gh).floor().max(0.0)) as usize;
        let by1 = ((((uy - region.ly) / gh).ceil()) as usize).min(n);
        for bx in bx0..bx1 {
            let cell_lx = region.lx + bx as f64 * gw;
            let fx = ((ux.min(cell_lx + gw) - lx.max(cell_lx)) / gw).max(0.0);
            if fx == 0.0 {
                continue;
            }
            for by in by0..by1 {
                let cell_ly = region.ly + by as f64 * gh;
                let fy = ((uy.min(cell_ly + gh) - ly.max(cell_ly)) / gh).max(0.0);
                if fy > 0.0 {
                    demand_h[(bx, by)] += dh * fx * fy;
                    demand_v[(bx, by)] += dv * fx * fy;
                }
            }
        }
    }
    CongestionMap {
        demand_h,
        demand_v,
        gcell_w: gw,
        gcell_h: gh,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplace_db::synthesis::{synthesize, SynthesisSpec};
    use xplace_db::Point;

    fn spread(design: &mut Design, scale: f64) {
        let r = design.region();
        let nl = design.netlist();
        let c = r.center();
        let mut pos = design.positions().to_vec();
        for (k, id) in nl.cell_ids().enumerate() {
            if nl.cell(id).is_movable() {
                let fx = ((k as f64) * 0.7548).fract() - 0.5;
                let fy = ((k as f64) * 0.5698).fract() - 0.5;
                pos[id.index()] =
                    Point::new(c.x + fx * r.width() * scale, c.y + fy * r.height() * scale);
            }
        }
        design.set_positions(pos);
    }

    #[test]
    fn clustered_placement_is_more_congested_than_spread() {
        let mut d = synthesize(&SynthesisSpec::new("c", 500, 520).with_seed(3)).unwrap();
        let cfg = RouteConfig::default();
        spread(&mut d, 0.2); // tight cluster
        let tight = estimate_congestion(&d, &cfg).top_overflow(0.05);
        spread(&mut d, 0.95); // full spread
        let loose = estimate_congestion(&d, &cfg).top_overflow(0.05);
        assert!(
            tight > loose * 1.5,
            "clustered top5 {tight} should far exceed spread top5 {loose}"
        );
    }

    #[test]
    fn demand_scales_inversely_with_capacity() {
        let d = synthesize(&SynthesisSpec::new("cap", 200, 210).with_seed(5)).unwrap();
        let lo = estimate_congestion(
            &d,
            &RouteConfig {
                capacity: 1.0,
                ..Default::default()
            },
        );
        let hi = estimate_congestion(
            &d,
            &RouteConfig {
                capacity: 2.0,
                ..Default::default()
            },
        );
        let ratio = lo.top_overflow(0.05) / hi.top_overflow(0.05);
        assert!((ratio - 2.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn top_overflow_is_monotone_in_fraction() {
        let d = synthesize(&SynthesisSpec::new("m", 300, 320).with_seed(7)).unwrap();
        let map = estimate_congestion(&d, &RouteConfig::default());
        let t1 = map.top_overflow(0.01);
        let t5 = map.top_overflow(0.05);
        let t100 = map.top_overflow(1.0);
        assert!(t1 >= t5 && t5 >= t100);
        assert!((t100 - map.mean_utilization()).abs() < 1e-9);
        assert!(map.max_utilization() >= t1 - 1e-9);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_panics() {
        let d = synthesize(&SynthesisSpec::new("z", 50, 60).with_seed(9)).unwrap();
        estimate_congestion(&d, &RouteConfig::default()).top_overflow(0.0);
    }

    #[test]
    fn single_pin_nets_are_ignored() {
        use xplace_db::netlist::{CellKind, NetlistBuilder};
        use xplace_db::Rect;
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        b.add_net("n", vec![(a, Point::default())]).unwrap();
        let nl = b.finish().unwrap();
        let d = xplace_db::Design::new(
            "s",
            nl,
            Rect::new(0.0, 0.0, 10.0, 10.0),
            vec![],
            0.9,
            vec![Point::new(5.0, 5.0)],
        )
        .unwrap();
        let map = estimate_congestion(&d, &RouteConfig::default());
        assert_eq!(map.max_utilization(), 0.0);
        assert_eq!(map.num_overflowed(), 0);
    }

    #[test]
    fn demand_concentrates_under_the_net_box() {
        use xplace_db::netlist::{CellKind, NetlistBuilder};
        use xplace_db::Rect;
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let c = b.add_cell("c", 1.0, 1.0, CellKind::Movable);
        b.add_net("n", vec![(a, Point::default()), (c, Point::default())])
            .unwrap();
        let nl = b.finish().unwrap();
        let d = xplace_db::Design::new(
            "box",
            nl,
            Rect::new(0.0, 0.0, 64.0, 64.0),
            vec![],
            0.9,
            vec![Point::new(8.0, 8.0), Point::new(24.0, 24.0)],
        )
        .unwrap();
        let map = estimate_congestion(
            &d,
            &RouteConfig {
                gcells: 16,
                capacity: 1.0,
                min_span_gcells: 1.0,
            },
        );
        // Demand inside the bbox, none far outside.
        assert!(map.demand_h[(3, 3)] > 0.0);
        assert_eq!(map.demand_h[(12, 12)], 0.0);
        assert_eq!(map.demand_v[(1, 12)], 0.0);
    }

    #[test]
    fn pin_density_counts_every_pin() {
        let d = synthesize(&SynthesisSpec::new("pd", 200, 210).with_seed(13)).unwrap();
        let map = pin_density_map(&d, &RouteConfig::default());
        assert_eq!(map.sum() as usize, d.netlist().num_pins());
        assert!(map.min() >= 0.0);
    }

    #[test]
    fn top_fraction_mean_is_monotone_and_bounded() {
        let g = Grid2::from_vec(2, 4, vec![8.0, 1.0, 2.0, 7.0, 3.0, 6.0, 4.0, 5.0]);
        let top1 = top_fraction_mean(&g, 0.125); // exactly the max
        let all = top_fraction_mean(&g, 1.0);
        assert_eq!(top1, 8.0);
        assert!((all - 4.5).abs() < 1e-12);
        assert!(top_fraction_mean(&g, 0.5) <= top1);
        assert!(top_fraction_mean(&g, 0.5) >= all);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn top_fraction_mean_rejects_zero() {
        top_fraction_mean(&Grid2::new(2, 2), 0.0);
    }

    #[test]
    fn estimator_is_deterministic() {
        let d = synthesize(&SynthesisSpec::new("det", 150, 160).with_seed(11)).unwrap();
        let a = estimate_congestion(&d, &RouteConfig::default());
        let b = estimate_congestion(&d, &RouteConfig::default());
        assert_eq!(a, b);
    }
}
