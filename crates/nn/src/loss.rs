//! The relative L2 loss of Eq. (13).

/// Computes `||pred - label||_2 / ||label||_2` and its gradient with
/// respect to `pred`.
///
/// Returns `(loss, grad)`. For an all-zero label the loss degenerates to
/// the plain L2 norm of the prediction (with matching gradient) to stay
/// finite.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn relative_l2(pred: &[f64], label: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(pred.len(), label.len(), "prediction/label length mismatch");
    let label_norm = label.iter().map(|v| v * v).sum::<f64>().sqrt();
    let diff: Vec<f64> = pred.iter().zip(label).map(|(p, l)| p - l).collect();
    let diff_norm = diff.iter().map(|v| v * v).sum::<f64>().sqrt();
    let denom = if label_norm > 0.0 { label_norm } else { 1.0 };
    let loss = diff_norm / denom;
    let grad = if diff_norm > 0.0 {
        diff.iter().map(|d| d / (diff_norm * denom)).collect()
    } else {
        vec![0.0; pred.len()]
    };
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_gives_zero_loss() {
        let label = vec![1.0, -2.0, 3.0];
        let (loss, grad) = relative_l2(&label, &label);
        assert_eq!(loss, 0.0);
        assert!(grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn zero_prediction_gives_unit_loss() {
        let label = vec![3.0, 4.0];
        let (loss, _) = relative_l2(&[0.0, 0.0], &label);
        assert!((loss - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let label = vec![1.0, -0.5, 2.0, 0.3];
        let mut pred = vec![0.2, 0.8, -1.0, 0.0];
        let (_, grad) = relative_l2(&pred, &label);
        let eps = 1e-7;
        for i in 0..pred.len() {
            pred[i] += eps;
            let (p, _) = relative_l2(&pred, &label);
            pred[i] -= 2.0 * eps;
            let (m, _) = relative_l2(&pred, &label);
            pred[i] += eps;
            let fd = (p - m) / (2.0 * eps);
            assert!((fd - grad[i]).abs() < 1e-6, "i={i}: {fd} vs {}", grad[i]);
        }
    }

    #[test]
    fn zero_label_is_finite() {
        let (loss, grad) = relative_l2(&[3.0, 4.0], &[0.0, 0.0]);
        assert!((loss - 5.0).abs() < 1e-12);
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn scale_invariance_in_label_units() {
        let label = vec![1.0, 2.0, -1.0];
        let pred = vec![1.1, 1.9, -0.8];
        let (l1, _) = relative_l2(&pred, &label);
        let label2: Vec<f64> = label.iter().map(|v| v * 10.0).collect();
        let pred2: Vec<f64> = pred.iter().map(|v| v * 10.0).collect();
        let (l2, _) = relative_l2(&pred2, &label2);
        assert!((l1 - l2).abs() < 1e-12);
    }
}
