//! Model persistence: save a trained FNO to disk and load it back.
//!
//! The format is a small self-describing text header (format version +
//! architecture + parameter count) followed by the flat parameter vector
//! in full-precision hex floats, so a model trained once (e.g. the
//! paper-scale 471k-parameter network) can be reused across placement
//! runs without retraining and round-trips bit-exactly.

use crate::{Fno, FnoConfig, NnError};
use std::fmt::Write as _;
use std::path::Path;

const MAGIC: &str = "xplace-fno";
const FORMAT_VERSION: u32 = 1;

fn bad(msg: impl Into<String>) -> NnError {
    NnError::InvalidInput(msg.into())
}

impl Fno {
    /// Serializes the model (architecture + parameters) to a text blob.
    pub fn to_text(&self) -> String {
        let c = self.config();
        let params = self.params();
        let mut out = String::with_capacity(params.len() * 20 + 128);
        let _ = writeln!(out, "{MAGIC} {FORMAT_VERSION}");
        let _ = writeln!(
            out,
            "width {} modes {} layers {} proj_hidden {}",
            c.width, c.modes, c.num_layers, c.proj_hidden
        );
        let _ = writeln!(out, "params {}", params.len());
        for v in params {
            // Bit-exact round trip via the IEEE-754 bit pattern.
            let _ = writeln!(out, "{:016x}", v.to_bits());
        }
        out
    }

    /// Reconstructs a model from [`Fno::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidInput`] for malformed content, an unknown
    /// format version, or a parameter count that does not match the
    /// declared architecture.
    pub fn from_text(text: &str) -> Result<Self, NnError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| bad("empty model file"))?;
        let mut it = header.split_whitespace();
        if it.next() != Some(MAGIC) {
            return Err(bad("not an xplace-fno model file"));
        }
        let version: u32 = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("missing format version"))?;
        if version != FORMAT_VERSION {
            return Err(bad(format!("unsupported model format version {version}")));
        }

        let arch = lines
            .next()
            .ok_or_else(|| bad("missing architecture line"))?;
        let fields: Vec<&str> = arch.split_whitespace().collect();
        let field = |key: &str| -> Result<usize, NnError> {
            fields
                .iter()
                .position(|f| *f == key)
                .and_then(|i| fields.get(i + 1))
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad(format!("missing architecture field `{key}`")))
        };
        let config = FnoConfig {
            width: field("width")?,
            modes: field("modes")?,
            num_layers: field("layers")?,
            proj_hidden: field("proj_hidden")?,
        };

        let count_line = lines.next().ok_or_else(|| bad("missing params line"))?;
        let count: usize = count_line
            .strip_prefix("params ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| bad("malformed params line"))?;

        let mut fno = Fno::new(&config, 0)?;
        if count != fno.num_params() {
            return Err(bad(format!(
                "model file declares {count} parameters but the architecture needs {}",
                fno.num_params()
            )));
        }
        let mut params = Vec::with_capacity(count);
        for (i, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let bits = u64::from_str_radix(line, 16)
                .map_err(|_| bad(format!("malformed parameter at index {i}")))?;
            params.push(f64::from_bits(bits));
        }
        if params.len() != count {
            return Err(bad(format!(
                "model file has {} parameters, header declares {count}",
                params.len()
            )));
        }
        fno.set_params(&params);
        Ok(fno)
    }

    /// Saves the model to a file.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidInput`] wrapping any I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), NnError> {
        std::fs::write(path, self.to_text())
            .map_err(|e| bad(format!("cannot write model file: {e}")))
    }

    /// Loads a model from a file produced by [`Fno::save`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidInput`] for I/O failures or malformed
    /// content (see [`Fno::from_text`]).
    pub fn load(path: &Path) -> Result<Self, NnError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| bad(format!("cannot read model file: {e}")))?;
        Self::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataConfig;
    use crate::train::{train, TrainConfig};

    #[test]
    fn save_load_round_trips_predictions_exactly() {
        let mut fno = Fno::new(&FnoConfig::tiny(), 11).unwrap();
        let cfg = TrainConfig {
            steps: 30,
            batch: 2,
            lr: 3e-3,
            data: DataConfig {
                grid: 16,
                blobs: 2,
                rects: 1,
                ..Default::default()
            },
            seed: 77,
        };
        train(&mut fno, &cfg).unwrap();
        let density: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
        let before = fno.predict_field_x(&density, 16, 16).unwrap();

        let text = fno.to_text();
        let mut restored = Fno::from_text(&text).unwrap();
        let after = restored.predict_field_x(&density, 16, 16).unwrap();
        assert_eq!(before, after, "restored model must predict bit-identically");
    }

    #[test]
    fn file_round_trip() {
        let fno = Fno::new(&FnoConfig::tiny(), 3).unwrap();
        let path = std::env::temp_dir().join(format!("xplace_fno_{}.model", std::process::id()));
        fno.save(&path).unwrap();
        let restored = Fno::load(&path).unwrap();
        assert_eq!(restored.num_params(), fno.num_params());
        assert_eq!(restored.config(), fno.config());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_files_are_rejected() {
        assert!(Fno::from_text("").is_err());
        assert!(Fno::from_text("wrong-magic 1\n").is_err());
        assert!(Fno::from_text("xplace-fno 99\n").is_err());
        let fno = Fno::new(&FnoConfig::tiny(), 1).unwrap();
        // Truncated parameter list.
        let text = fno.to_text();
        let truncated: String = text.lines().take(10).collect::<Vec<_>>().join("\n");
        assert!(Fno::from_text(&truncated).is_err());
        // Count/architecture mismatch.
        let text = fno.to_text().replace("params ", "params 1");
        assert!(Fno::from_text(&text).is_err());
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(Fno::load(Path::new("/nonexistent/model.file")).is_err());
    }
}
