//! Training loop: Adam on the relative-L2 loss over self-generated data.

use crate::data::{generate_sample, DataConfig};
use crate::loss::relative_l2;
use crate::{Fno, NnError};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Optimizer steps.
    pub steps: usize,
    /// Samples per step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Data generation parameters.
    pub data: DataConfig,
    /// Base seed; sample `k` of step `s` uses `seed + s * batch + k`.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            steps: 300,
            batch: 4,
            lr: 2e-3,
            data: DataConfig::default(),
            seed: 1,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean batch loss per step.
    pub losses: Vec<f64>,
    /// Mean loss over the last 10% of steps.
    pub final_loss: f64,
}

/// Trains the model in place.
///
/// # Errors
///
/// Propagates data-generation and forward-pass errors.
pub fn train(fno: &mut Fno, config: &TrainConfig) -> Result<TrainReport, NnError> {
    let mut losses = Vec::with_capacity(config.steps);
    let n = config.data.grid;
    for step in 0..config.steps {
        fno.store_mut().zero_grads();
        let mut batch_loss = 0.0;
        for k in 0..config.batch {
            let seed = config.seed + (step * config.batch + k) as u64;
            let sample = generate_sample(&config.data, seed)?;
            let input = Fno::build_input(&sample.density, n, n);
            let pred = fno.forward(&input, n, n)?;
            let (loss, grad) = relative_l2(&pred, &sample.field_x);
            batch_loss += loss;
            // Scale so gradients average over the batch.
            let scaled: Vec<f64> = grad.iter().map(|g| g / config.batch as f64).collect();
            fno.backward(&scaled);
        }
        fno.store_mut().adam_step(config.lr);
        losses.push(batch_loss / config.batch as f64);
    }
    let tail = (config.steps / 10).max(1).min(losses.len().max(1));
    let final_loss = if losses.is_empty() {
        f64::NAN
    } else {
        losses[losses.len() - tail..].iter().sum::<f64>() / tail as f64
    };
    Ok(TrainReport { losses, final_loss })
}

/// Evaluates the mean relative-L2 loss of a model on fresh held-out
/// samples (seeds disjoint from training when `seed` is chosen so).
///
/// # Errors
///
/// Propagates data-generation and forward-pass errors.
pub fn evaluate(
    fno: &mut Fno,
    data: &DataConfig,
    seed: u64,
    num_samples: usize,
) -> Result<f64, NnError> {
    let mut total = 0.0;
    for k in 0..num_samples {
        let sample = generate_sample(data, seed + k as u64)?;
        let pred = fno.predict_field_x(&sample.density, data.grid, data.grid)?;
        let (loss, _) = relative_l2(&pred, &sample.field_x);
        total += loss;
    }
    Ok(total / num_samples.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnoConfig;

    fn quick_config() -> TrainConfig {
        TrainConfig {
            steps: 160,
            batch: 2,
            lr: 4e-3,
            data: DataConfig {
                grid: 16,
                blobs: 3,
                rects: 1,
                ..Default::default()
            },
            seed: 100,
        }
    }

    #[test]
    fn training_reduces_the_loss_well_below_the_zero_predictor() {
        let mut fno = Fno::new(&FnoConfig::tiny(), 42).unwrap();
        let cfg = quick_config();
        let report = train(&mut fno, &cfg).unwrap();
        let early: f64 = report.losses[..10].iter().sum::<f64>() / 10.0;
        // The zero predictor scores exactly 1.0 on relative L2.
        assert!(
            report.final_loss < 0.8,
            "final loss {} should beat the zero predictor",
            report.final_loss
        );
        assert!(
            report.final_loss < early * 0.7,
            "loss should drop: {early} -> {}",
            report.final_loss
        );
    }

    #[test]
    fn held_out_evaluation_generalizes() {
        let mut fno = Fno::new(&FnoConfig::tiny(), 43).unwrap();
        let cfg = quick_config();
        train(&mut fno, &cfg).unwrap();
        // Seeds far away from the training range.
        let held_out = evaluate(&mut fno, &cfg.data, 1_000_000, 8).unwrap();
        assert!(held_out < 0.9, "held-out loss {held_out}");
    }

    #[test]
    fn resolution_transfer_works() {
        // Train at 16x16, evaluate at 32x32: the spectral weights only
        // touch the lowest modes, so the model transfers (§3.3).
        let mut fno = Fno::new(&FnoConfig::tiny(), 44).unwrap();
        let cfg = quick_config();
        train(&mut fno, &cfg).unwrap();
        let hi_res = DataConfig {
            grid: 32,
            blobs: 3,
            rects: 1,
            ..Default::default()
        };
        let loss32 = evaluate(&mut fno, &hi_res, 2_000_000, 6).unwrap();
        assert!(
            loss32 < 1.0,
            "32x32 evaluation after 16x16 training should beat the zero predictor, got {loss32}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let cfg = TrainConfig {
            steps: 10,
            ..quick_config()
        };
        let mut a = Fno::new(&FnoConfig::tiny(), 7).unwrap();
        let mut b = Fno::new(&FnoConfig::tiny(), 7).unwrap();
        let ra = train(&mut a, &cfg).unwrap();
        let rb = train(&mut b, &cfg).unwrap();
        assert_eq!(ra.losses, rb.losses);
    }
}
