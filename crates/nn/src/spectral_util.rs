//! 2-D complex FFT helpers built on `xplace_fft::FftPlan`, with a small
//! per-size plan cache.

use std::collections::HashMap;
use xplace_fft::{Complex, FftPlan};

/// Caches FFT plans by length so multi-resolution inference reuses them.
#[derive(Debug, Default, Clone)]
pub(crate) struct PlanCache {
    plans: HashMap<usize, FftPlan>,
}

impl PlanCache {
    pub(crate) fn plan(&mut self, len: usize) -> &FftPlan {
        self.plans
            .entry(len)
            .or_insert_with(|| FftPlan::new(len).expect("power-of-two FFT length"))
    }
}

/// In-place 2-D FFT over a row-major `h x w` complex buffer.
pub(crate) fn fft2(cache: &mut PlanCache, data: &mut [Complex], h: usize, w: usize, inverse: bool) {
    debug_assert_eq!(data.len(), h * w);
    // Rows.
    {
        let plan = cache.plan(w).clone();
        for r in 0..h {
            let row = &mut data[r * w..(r + 1) * w];
            if inverse {
                plan.inverse(row).expect("row length matches plan");
            } else {
                plan.forward(row).expect("row length matches plan");
            }
        }
    }
    // Columns (gather/scatter through a scratch column).
    {
        let plan = cache.plan(h).clone();
        let mut col = vec![Complex::ZERO; h];
        for c in 0..w {
            for r in 0..h {
                col[r] = data[r * w + c];
            }
            if inverse {
                plan.inverse(&mut col).expect("column length matches plan");
            } else {
                plan.forward(&mut col).expect("column length matches plan");
            }
            for r in 0..h {
                data[r * w + c] = col[r];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft2_round_trips() {
        let (h, w) = (8, 16);
        let mut cache = PlanCache::default();
        let original: Vec<Complex> = (0..h * w)
            .map(|i| Complex::new((i as f64 * 0.17).sin(), (i as f64 * 0.31).cos()))
            .collect();
        let mut data = original.clone();
        fft2(&mut cache, &mut data, h, w, false);
        fft2(&mut cache, &mut data, h, w, true);
        for (a, b) in data.iter().zip(&original) {
            assert!((a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn fft2_of_constant_concentrates_at_dc() {
        let (h, w) = (8, 8);
        let mut cache = PlanCache::default();
        let mut data = vec![Complex::new(1.0, 0.0); h * w];
        fft2(&mut cache, &mut data, h, w, false);
        assert!((data[0].re - (h * w) as f64).abs() < 1e-9);
        for &c in &data[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn plan_cache_reuses_plans() {
        let mut cache = PlanCache::default();
        let a = cache.plan(16).len();
        let b = cache.plan(16).len();
        assert_eq!(a, b);
        assert_eq!(cache.plans.len(), 1);
        cache.plan(32);
        assert_eq!(cache.plans.len(), 2);
    }
}
