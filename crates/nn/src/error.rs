use std::error::Error;
use std::fmt;

/// Errors produced by the neural-operator crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A configuration is inconsistent; describes the problem.
    InvalidConfig(String),
    /// An input grid does not meet the model's requirements (power-of-two
    /// dimensions, size vs kept modes).
    InvalidInput(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::InvalidConfig(msg) => write!(f, "invalid model configuration: {msg}"),
            NnError::InvalidInput(msg) => write!(f, "invalid model input: {msg}"),
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(NnError::InvalidConfig("width is zero".into())
            .to_string()
            .contains("width"));
        assert!(NnError::InvalidInput("not square".into())
            .to_string()
            .contains("square"));
    }
}
