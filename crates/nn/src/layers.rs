//! The three layer types of the network, with manual backpropagation.

use crate::param::ParamStore;
use crate::spectral_util::{fft2, PlanCache};
use xplace_fft::Complex;

/// Pixel-wise linear layer (a 1x1 convolution / per-pixel fully connected
/// layer): `y[co] = sum_ci W[co][ci] x[ci] + b[co]` at every pixel.
#[derive(Debug, Clone)]
pub(crate) struct Pointwise {
    pub ci: usize,
    pub co: usize,
    w_off: usize,
    b_off: usize,
}

impl Pointwise {
    pub fn new(store: &mut ParamStore, ci: usize, co: usize) -> Self {
        let scale = (1.0 / ci as f64).sqrt();
        let w_off = store.alloc(co * ci, scale);
        let b_off = store.alloc(co, 0.0);
        Pointwise {
            ci,
            co,
            w_off,
            b_off,
        }
    }

    pub fn forward(&self, store: &ParamStore, x: &[f64], hw: usize) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.ci * hw);
        let w = store.get(self.w_off, self.co * self.ci);
        let b = store.get(self.b_off, self.co);
        let mut y = vec![0.0; self.co * hw];
        for co in 0..self.co {
            let yo = &mut y[co * hw..(co + 1) * hw];
            yo.fill(b[co]);
            for ci in 0..self.ci {
                let wv = w[co * self.ci + ci];
                let xi = &x[ci * hw..(ci + 1) * hw];
                for (yv, xv) in yo.iter_mut().zip(xi) {
                    *yv += wv * xv;
                }
            }
        }
        y
    }

    /// Accumulates parameter gradients and returns the input gradient.
    pub fn backward(&self, store: &mut ParamStore, x: &[f64], gy: &[f64], hw: usize) -> Vec<f64> {
        debug_assert_eq!(gy.len(), self.co * hw);
        let mut gx = vec![0.0; self.ci * hw];
        // Weight and bias gradients.
        {
            let w_vals: Vec<f64> = store.get(self.w_off, self.co * self.ci).to_vec();
            let (_, gw) = store.get_with_grad(self.w_off, self.co * self.ci);
            for co in 0..self.co {
                let go = &gy[co * hw..(co + 1) * hw];
                for ci in 0..self.ci {
                    let xi = &x[ci * hw..(ci + 1) * hw];
                    let mut acc = 0.0;
                    for (gv, xv) in go.iter().zip(xi) {
                        acc += gv * xv;
                    }
                    gw[co * self.ci + ci] += acc;
                }
            }
            // Input gradient.
            for co in 0..self.co {
                let go = &gy[co * hw..(co + 1) * hw];
                for ci in 0..self.ci {
                    let wv = w_vals[co * self.ci + ci];
                    let gxi = &mut gx[ci * hw..(ci + 1) * hw];
                    for (gxv, gv) in gxi.iter_mut().zip(go) {
                        *gxv += wv * gv;
                    }
                }
            }
        }
        {
            let (_, gb) = store.get_with_grad(self.b_off, self.co);
            for co in 0..self.co {
                gb[co] += gy[co * hw..(co + 1) * hw].iter().sum::<f64>();
            }
        }
        gx
    }
}

/// GELU activation (tanh approximation) with analytic derivative.
pub(crate) fn gelu_forward(x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| gelu(v)).collect()
}

pub(crate) fn gelu_backward(x: &[f64], gy: &[f64]) -> Vec<f64> {
    x.iter()
        .zip(gy)
        .map(|(&v, &g)| g * gelu_derivative(v))
        .collect()
}

const GELU_C: f64 = 0.797_884_560_802_865_4; // sqrt(2/pi)

#[inline]
fn gelu(v: f64) -> f64 {
    0.5 * v * (1.0 + (GELU_C * (v + 0.044715 * v * v * v)).tanh())
}

#[inline]
fn gelu_derivative(v: f64) -> f64 {
    let u = GELU_C * (v + 0.044715 * v * v * v);
    let t = u.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * v * sech2 * GELU_C * (1.0 + 3.0 * 0.044715 * v * v)
}

/// The Fourier path (Eq. 11): FFT -> keep the lowest `modes` frequencies
/// in two corner blocks -> per-mode complex channel mixing -> inverse FFT.
#[derive(Debug, Clone)]
pub(crate) struct Spectral {
    pub ci: usize,
    pub co: usize,
    pub modes: usize,
    /// Complex weights for the (low kx, low ky) corner, re/im interleaved:
    /// index = (((corner * co + co_i) * ci + ci_i) * m + kx) * m + ky.
    w_off: usize,
}

/// Saved forward context: the input spectra at the kept modes
/// (ci-major, then corner, then kx, then ky).
#[derive(Debug, Clone)]
pub(crate) struct SpectralCtx {
    x_modes: Vec<Complex>,
    h: usize,
    w: usize,
}

impl Spectral {
    pub fn new(store: &mut ParamStore, ci: usize, co: usize, modes: usize) -> Self {
        let scale = 1.0 / (ci as f64 * co as f64).sqrt();
        let count = 2 * co * ci * modes * modes * 2; // 2 corners, complex
        let w_off = store.alloc(count, scale);
        Spectral {
            ci,
            co,
            modes,
            w_off,
        }
    }

    pub fn num_params(&self) -> usize {
        2 * self.co * self.ci * self.modes * self.modes * 2
    }

    #[inline]
    fn weight_index(&self, corner: usize, co: usize, ci: usize, kx: usize, ky: usize) -> usize {
        ((((corner * self.co + co) * self.ci + ci) * self.modes + kx) * self.modes + ky) * 2
    }

    /// The kept-mode row index for (corner, kx) at grid height `h`.
    #[inline]
    fn row_of(&self, corner: usize, kx: usize, h: usize) -> usize {
        if corner == 0 {
            kx
        } else {
            h - self.modes + kx
        }
    }

    pub fn forward(
        &self,
        store: &ParamStore,
        cache: &mut PlanCache,
        x: &[f64],
        h: usize,
        w: usize,
    ) -> (Vec<f64>, SpectralCtx) {
        let hw = h * w;
        let m = self.modes;
        debug_assert!(2 * m <= h && m <= w, "grid too small for the kept modes");
        // Input spectra at kept modes.
        let mut x_modes = vec![Complex::ZERO; self.ci * 2 * m * m];
        let mut buf = vec![Complex::ZERO; hw];
        for ci in 0..self.ci {
            for (b, &v) in buf.iter_mut().zip(&x[ci * hw..(ci + 1) * hw]) {
                *b = Complex::new(v, 0.0);
            }
            fft2(cache, &mut buf, h, w, false);
            for corner in 0..2 {
                for kx in 0..m {
                    let row = self.row_of(corner, kx, h);
                    for ky in 0..m {
                        x_modes[((ci * 2 + corner) * m + kx) * m + ky] = buf[row * w + ky];
                    }
                }
            }
        }
        // Output spectra and inverse transform.
        let weights = store.get(self.w_off, self.num_params());
        let mut y = vec![0.0; self.co * hw];
        let mut spec = vec![Complex::ZERO; hw];
        for co in 0..self.co {
            spec.fill(Complex::ZERO);
            for corner in 0..2 {
                for kx in 0..m {
                    let row = self.row_of(corner, kx, h);
                    for ky in 0..m {
                        let mut acc = Complex::ZERO;
                        for ci in 0..self.ci {
                            let wi = self.weight_index(corner, co, ci, kx, ky);
                            let wv = Complex::new(weights[wi], weights[wi + 1]);
                            acc += wv * x_modes[((ci * 2 + corner) * m + kx) * m + ky];
                        }
                        spec[row * w + ky] = acc;
                    }
                }
            }
            let mut out = spec.clone();
            fft2(cache, &mut out, h, w, true);
            for (yv, c) in y[co * hw..(co + 1) * hw].iter_mut().zip(&out) {
                *yv = c.re;
            }
        }
        (y, SpectralCtx { x_modes, h, w })
    }

    /// Accumulates weight gradients and returns the input gradient.
    pub fn backward(
        &self,
        store: &mut ParamStore,
        cache: &mut PlanCache,
        ctx: &SpectralCtx,
        gy: &[f64],
    ) -> Vec<f64> {
        let (h, w) = (ctx.h, ctx.w);
        let hw = h * w;
        let m = self.modes;
        let norm = 1.0 / hw as f64;
        // GY = FFT2(gy) / (h*w) at kept modes.
        let mut gy_modes = vec![Complex::ZERO; self.co * 2 * m * m];
        let mut buf = vec![Complex::ZERO; hw];
        for co in 0..self.co {
            for (b, &v) in buf.iter_mut().zip(&gy[co * hw..(co + 1) * hw]) {
                *b = Complex::new(v, 0.0);
            }
            fft2(cache, &mut buf, h, w, false);
            for corner in 0..2 {
                for kx in 0..m {
                    let row = self.row_of(corner, kx, h);
                    for ky in 0..m {
                        gy_modes[((co * 2 + corner) * m + kx) * m + ky] =
                            buf[row * w + ky].scale(norm);
                    }
                }
            }
        }
        // Weight gradients: dW = GY * conj(X); input-spectrum gradients:
        // GX = conj(W) * GY.
        let weights: Vec<f64> = store.get(self.w_off, self.num_params()).to_vec();
        let mut gx_modes = vec![Complex::ZERO; self.ci * 2 * m * m];
        {
            let (_, gw) = store.get_with_grad(self.w_off, self.num_params());
            for co in 0..self.co {
                for corner in 0..2 {
                    for kx in 0..m {
                        for ky in 0..m {
                            let g = gy_modes[((co * 2 + corner) * m + kx) * m + ky];
                            for ci in 0..self.ci {
                                let xm = ctx.x_modes[((ci * 2 + corner) * m + kx) * m + ky];
                                let wi = self.weight_index(corner, co, ci, kx, ky);
                                let dw = g * xm.conj();
                                gw[wi] += dw.re;
                                gw[wi + 1] += dw.im;
                                let wv = Complex::new(weights[wi], weights[wi + 1]);
                                gx_modes[((ci * 2 + corner) * m + kx) * m + ky] += wv.conj() * g;
                            }
                        }
                    }
                }
            }
        }
        // gx = Re(h*w * IFFT2(GX spectrum)).
        let mut gx = vec![0.0; self.ci * hw];
        let mut spec = vec![Complex::ZERO; hw];
        for ci in 0..self.ci {
            spec.fill(Complex::ZERO);
            for corner in 0..2 {
                for kx in 0..m {
                    let row = self.row_of(corner, kx, h);
                    for ky in 0..m {
                        spec[row * w + ky] = gx_modes[((ci * 2 + corner) * m + kx) * m + ky];
                    }
                }
            }
            fft2(cache, &mut spec, h, w, true);
            for (gv, c) in gx[ci * hw..(ci + 1) * hw].iter_mut().zip(&spec) {
                *gv = c.re * hw as f64;
            }
        }
        gx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(
        mut loss: impl FnMut(&mut ParamStore) -> f64,
        store: &mut ParamStore,
        indices: &[usize],
        tol: f64,
    ) {
        let eps = 1e-6;
        for &i in indices {
            store.nudge(i, eps);
            let plus = loss(store);
            store.nudge(i, -2.0 * eps);
            let minus = loss(store);
            store.nudge(i, eps);
            let fd = (plus - minus) / (2.0 * eps);
            let analytic = store.grad_at(i);
            assert!(
                (fd - analytic).abs() <= tol * fd.abs().max(1.0),
                "param {i}: fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn pointwise_forward_is_linear_map() {
        let mut store = ParamStore::new(1);
        let layer = Pointwise::new(&mut store, 2, 1);
        let hw = 4;
        let x = vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0];
        let y = layer.forward(&store, &x, hw);
        let w = store.get(0, 2);
        let b = store.get(2, 1);
        for p in 0..hw {
            let expect = w[0] * x[p] + w[1] * x[hw + p] + b[0];
            assert!((y[p] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn pointwise_gradients_match_finite_differences() {
        let mut store = ParamStore::new(2);
        let layer = Pointwise::new(&mut store, 3, 2);
        let hw = 5;
        let x: Vec<f64> = (0..15).map(|i| (i as f64 * 0.3).sin()).collect();
        // Loss = sum of squares of outputs.
        let compute = |store: &mut ParamStore, with_grad: bool| -> f64 {
            let y = layer.forward(store, &x, hw);
            let l: f64 = y.iter().map(|v| v * v).sum();
            if with_grad {
                store.zero_grads();
                let gy: Vec<f64> = y.iter().map(|v| 2.0 * v).collect();
                layer.backward(store, &x, &gy, hw);
            }
            l
        };
        compute(&mut store, true);
        fd_check(|s| compute(s, false), &mut store, &[0, 3, 5, 6, 7], 1e-5);
    }

    #[test]
    fn pointwise_input_gradient_matches_finite_differences() {
        let mut store = ParamStore::new(3);
        let layer = Pointwise::new(&mut store, 2, 2);
        let hw = 3;
        let mut x: Vec<f64> = (0..6).map(|i| i as f64 * 0.25 - 0.5).collect();
        let y = layer.forward(&store, &x, hw);
        let gy: Vec<f64> = y.iter().map(|v| 2.0 * v).collect();
        store.zero_grads();
        let gx = layer.backward(&mut store, &x, &gy, hw);
        let eps = 1e-6;
        for i in 0..x.len() {
            x[i] += eps;
            let p: f64 = layer.forward(&store, &x, hw).iter().map(|v| v * v).sum();
            x[i] -= 2.0 * eps;
            let m: f64 = layer.forward(&store, &x, hw).iter().map(|v| v * v).sum();
            x[i] += eps;
            let fd = (p - m) / (2.0 * eps);
            assert!((fd - gx[i]).abs() < 1e-5 * fd.abs().max(1.0));
        }
    }

    #[test]
    fn gelu_matches_reference_values() {
        // Reference values from the tanh-approximation formula.
        assert!((gelu(0.0) - 0.0).abs() < 1e-12);
        assert!((gelu(1.0) - 0.8411919906082768).abs() < 1e-9);
        assert!((gelu(-1.0) + 0.15880800939172324).abs() < 1e-9);
        assert!(gelu(10.0) > 9.999);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_derivative_matches_finite_differences() {
        let eps = 1e-6;
        for &v in &[-3.0, -1.0, -0.1, 0.0, 0.5, 2.0, 4.0] {
            let fd = (gelu(v + eps) - gelu(v - eps)) / (2.0 * eps);
            assert!((fd - gelu_derivative(v)).abs() < 1e-8, "at {v}");
        }
        let x = vec![-1.0, 0.3, 2.0];
        let gy = vec![1.0, 2.0, -1.0];
        let gx = gelu_backward(&x, &gy);
        assert!((gx[1] - 2.0 * gelu_derivative(0.3)).abs() < 1e-12);
    }

    #[test]
    fn spectral_forward_preserves_low_frequency_content() {
        let mut store = ParamStore::new(4);
        let layer = Spectral::new(&mut store, 1, 1, 2);
        let mut cache = PlanCache::default();
        let (h, w) = (8, 8);
        // A DC input must produce a constant output (only mode 0 nonzero).
        let x = vec![1.0; h * w];
        let (y, _) = layer.forward(&store, &mut cache, &x, h, w);
        let first = y[0];
        for &v in &y {
            assert!((v - first).abs() < 1e-9, "output not constant");
        }
    }

    #[test]
    fn spectral_weight_gradients_match_finite_differences() {
        let mut store = ParamStore::new(5);
        let layer = Spectral::new(&mut store, 2, 2, 2);
        let mut cache = PlanCache::default();
        let (h, w) = (8, 8);
        let x: Vec<f64> = (0..2 * h * w).map(|i| (i as f64 * 0.13).sin()).collect();
        let compute = |store: &mut ParamStore, cache: &mut PlanCache, with_grad: bool| -> f64 {
            let (y, ctx) = layer.forward(store, cache, &x, h, w);
            let l: f64 = y.iter().map(|v| v * v).sum();
            if with_grad {
                store.zero_grads();
                let gy: Vec<f64> = y.iter().map(|v| 2.0 * v).collect();
                layer.backward(store, cache, &ctx, &gy);
            }
            l
        };
        compute(&mut store, &mut cache, true);
        // Check a handful of real and imaginary weight components.
        let n = layer.num_params();
        let picks = [0usize, 1, 7, n / 2, n - 2, n - 1];
        let eps = 1e-6;
        for &i in &picks {
            store.nudge(i, eps);
            let plus = compute_loss(&layer, &mut store, &mut cache, &x, h, w);
            store.nudge(i, -2.0 * eps);
            let minus = compute_loss(&layer, &mut store, &mut cache, &x, h, w);
            store.nudge(i, eps);
            let fd = (plus - minus) / (2.0 * eps);
            let analytic = store.grad_at(i);
            assert!(
                (fd - analytic).abs() < 1e-4 * fd.abs().max(1.0),
                "weight {i}: fd {fd} vs analytic {analytic}"
            );
        }
    }

    fn compute_loss(
        layer: &Spectral,
        store: &mut ParamStore,
        cache: &mut PlanCache,
        x: &[f64],
        h: usize,
        w: usize,
    ) -> f64 {
        let (y, _) = layer.forward(store, cache, x, h, w);
        y.iter().map(|v| v * v).sum()
    }

    #[test]
    fn spectral_input_gradient_matches_finite_differences() {
        let mut store = ParamStore::new(6);
        let layer = Spectral::new(&mut store, 1, 1, 2);
        let mut cache = PlanCache::default();
        let (h, w) = (8, 8);
        let mut x: Vec<f64> = (0..h * w).map(|i| (i as f64 * 0.29).cos()).collect();
        let (y, ctx) = layer.forward(&store, &mut cache, &x, h, w);
        let gy: Vec<f64> = y.iter().map(|v| 2.0 * v).collect();
        store.zero_grads();
        let gx = layer.backward(&mut store, &mut cache, &ctx, &gy);
        let eps = 1e-6;
        for &i in &[0usize, 5, 17, 63] {
            x[i] += eps;
            let p = compute_loss(&layer, &mut store, &mut cache, &x, h, w);
            x[i] -= 2.0 * eps;
            let m = compute_loss(&layer, &mut store, &mut cache, &x, h, w);
            x[i] += eps;
            let fd = (p - m) / (2.0 * eps);
            assert!(
                (fd - gx[i]).abs() < 1e-4 * fd.abs().max(1.0),
                "input {i}: fd {fd} vs analytic {}",
                gx[i]
            );
        }
    }

    #[test]
    fn spectral_param_count_formula() {
        let mut store = ParamStore::new(7);
        let layer = Spectral::new(&mut store, 3, 5, 4);
        assert_eq!(layer.num_params(), 2 * 5 * 3 * 16 * 2);
        assert_eq!(store.len(), layer.num_params());
    }
}
