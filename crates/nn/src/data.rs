//! Self-generated training data (§3.3, §4.3 of the paper).
//!
//! The paper trains on random density maps whose labels come from the
//! *numerical* field solver — no placement benchmark data required. Here a
//! density map is a mixture of random Gaussian blobs and random uniform
//! rectangles (the shapes real placement density maps are composed of:
//! cell clusters and macros), and the label is the exact spectral solution
//! from [`xplace_fft::ElectrostaticSolver`]. Input and label are scaled by
//! the density's RMS so training sees unit-scale data; the Poisson map is
//! linear, so the scaling is exact and reversible.

use crate::NnError;
use xplace_fft::{ElectrostaticSolver, Grid2};
use xplace_testkit::Rng;

/// Data-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataConfig {
    /// Square grid size (power of two).
    pub grid: usize,
    /// Number of Gaussian blobs per map.
    pub blobs: usize,
    /// Number of uniform rectangles per map.
    pub rects: usize,
    /// Probability of the "early placement" pattern: one narrow
    /// high-amplitude spike over a uniform filler background — the map an
    /// analytic placer actually produces in its first iterations, which
    /// is where the guidance is active (σ(ω) ≈ 1).
    pub cluster_probability: f64,
}

impl Default for DataConfig {
    fn default() -> Self {
        DataConfig {
            grid: 32,
            blobs: 5,
            rects: 2,
            cluster_probability: 0.5,
        }
    }
}

/// One training sample: a normalized density map and its x-direction
/// field label (both row-major, `grid x grid`).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Normalized density map.
    pub density: Vec<f64>,
    /// Normalized x-direction field label.
    pub field_x: Vec<f64>,
    /// Normalized y-direction field label.
    pub field_y: Vec<f64>,
    /// Grid size.
    pub grid: usize,
}

/// Generates one random density map and its exact field labels.
///
/// Deterministic for a given `(config, seed)`.
///
/// # Errors
///
/// Returns [`NnError::InvalidInput`] when the grid is not a power of two.
pub fn generate_sample(config: &DataConfig, seed: u64) -> Result<Sample, NnError> {
    if !xplace_fft::is_power_of_two(config.grid) {
        return Err(NnError::InvalidInput(format!(
            "grid {} is not a power of two",
            config.grid
        )));
    }
    let n = config.grid;
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(17));
    let mut density = Grid2::new(n, n);

    if rng.f64() < config.cluster_probability {
        // Early-placement pattern: uniform filler background plus one
        // narrow, tall spike near the center.
        let background = 0.2 + 0.4 * rng.f64();
        density.fill(background);
        let cx = n as f64 * (0.35 + 0.3 * rng.f64());
        let cy = n as f64 * (0.35 + 0.3 * rng.f64());
        let sigma = n as f64 * (0.02 + 0.04 * rng.f64());
        let amp = 3.0 + 7.0 * rng.f64();
        let inv = 1.0 / (2.0 * sigma * sigma);
        for ix in 0..n {
            for iy in 0..n {
                let dx = ix as f64 + 0.5 - cx;
                let dy = iy as f64 + 0.5 - cy;
                density[(ix, iy)] += amp * (-(dx * dx + dy * dy) * inv).exp();
            }
        }
    }

    for _ in 0..config.blobs {
        let cx = rng.f64() * n as f64;
        let cy = rng.f64() * n as f64;
        let sigma = n as f64 * (0.04 + 0.12 * rng.f64());
        let amp = 0.3 + rng.f64();
        let inv = 1.0 / (2.0 * sigma * sigma);
        for ix in 0..n {
            for iy in 0..n {
                let dx = ix as f64 + 0.5 - cx;
                let dy = iy as f64 + 0.5 - cy;
                density[(ix, iy)] += amp * (-(dx * dx + dy * dy) * inv).exp();
            }
        }
    }
    for _ in 0..config.rects {
        let w = rng.gen_range(2..=(n / 3).max(3));
        let h = rng.gen_range(2..=(n / 3).max(3));
        let x0 = rng.gen_range(0..n - w.min(n - 1));
        let y0 = rng.gen_range(0..n - h.min(n - 1));
        let amp = 0.5 + rng.f64();
        for ix in x0..(x0 + w).min(n) {
            for iy in y0..(y0 + h).min(n) {
                density[(ix, iy)] += amp;
            }
        }
    }

    let mut solver =
        ElectrostaticSolver::new(n, n).map_err(|e| NnError::InvalidInput(e.to_string()))?;
    let sol = solver
        .solve(&density)
        .map_err(|e| NnError::InvalidInput(e.to_string()))?;

    // Scale by the density RMS (the Poisson map is linear).
    let rms = (density.as_slice().iter().map(|v| v * v).sum::<f64>() / (n * n) as f64)
        .sqrt()
        .max(1e-12);
    let inv = 1.0 / rms;
    let density: Vec<f64> = density.as_slice().iter().map(|v| v * inv).collect();
    let field_x: Vec<f64> = sol.field_x.as_slice().iter().map(|v| v * inv).collect();
    let field_y: Vec<f64> = sol.field_y.as_slice().iter().map(|v| v * inv).collect();
    Ok(Sample {
        density,
        field_x,
        field_y,
        grid: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic_per_seed() {
        let cfg = DataConfig {
            grid: 16,
            ..Default::default()
        };
        let a = generate_sample(&cfg, 3).unwrap();
        let b = generate_sample(&cfg, 3).unwrap();
        assert_eq!(a, b);
        let c = generate_sample(&cfg, 4).unwrap();
        assert_ne!(a.density, c.density);
    }

    #[test]
    fn density_is_normalized_to_unit_rms() {
        let s = generate_sample(&DataConfig::default(), 7).unwrap();
        let n = s.grid * s.grid;
        let rms = (s.density.iter().map(|v| v * v).sum::<f64>() / n as f64).sqrt();
        assert!((rms - 1.0).abs() < 1e-9, "rms {rms}");
    }

    #[test]
    fn labels_solve_poisson_for_the_scaled_density() {
        let cfg = DataConfig {
            grid: 16,
            blobs: 3,
            rects: 1,
            ..Default::default()
        };
        let s = generate_sample(&cfg, 11).unwrap();
        let n = s.grid;
        let grid = Grid2::from_vec(n, n, s.density.clone());
        let mut solver = ElectrostaticSolver::new(n, n).unwrap();
        let sol = solver.solve(&grid).unwrap();
        for (a, b) in s.field_x.iter().zip(sol.field_x.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in s.field_y.iter().zip(sol.field_y.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn non_power_of_two_grid_is_rejected() {
        let cfg = DataConfig {
            grid: 24,
            ..Default::default()
        };
        assert!(generate_sample(&cfg, 1).is_err());
    }
}
