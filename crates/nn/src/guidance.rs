//! Adapter from a trained [`Fno`] to the placer's guidance hook.

use crate::Fno;
use xplace_core::DensityGuidance;
use xplace_fft::Grid2;

/// Wraps a trained model as a [`DensityGuidance`] for
/// [`xplace_core::GlobalPlacer::with_guidance`] (the Xplace-NN flow).
///
/// The wrapper handles everything the raw model does not:
///
/// * **normalization** — the density map is scaled to unit RMS before
///   inference and the field scaled back (the Poisson map is linear),
/// * **the y direction** — predicted by transposing the input, running the
///   same x-direction model and transposing back (the PDE symmetry of
///   §3.3),
/// * **graceful degradation** — unsupported grids (non-power-of-two or
///   smaller than the kept modes) yield zero fields, so the analytic
///   solver simply keeps full weight in the blend.
#[derive(Debug)]
pub struct FnoGuidance {
    fno: Fno,
}

impl FnoGuidance {
    /// Wraps a (typically trained) model.
    pub fn new(fno: Fno) -> Self {
        FnoGuidance { fno }
    }

    /// Borrows the wrapped model.
    pub fn model(&self) -> &Fno {
        &self.fno
    }

    fn predict_direction(&mut self, density: &[f64], h: usize, w: usize) -> Vec<f64> {
        match self.fno.predict_field_x(density, h, w) {
            Ok(v) => v,
            Err(_) => vec![0.0; h * w],
        }
    }
}

impl DensityGuidance for FnoGuidance {
    fn predict(&mut self, density: &Grid2) -> (Grid2, Grid2) {
        let (nx, ny) = density.dims();
        let hw = nx * ny;
        if hw == 0 {
            return (Grid2::new(nx, ny), Grid2::new(nx, ny));
        }
        // Unit-RMS normalization (exact for the linear Poisson map).
        let rms = (density.as_slice().iter().map(|v| v * v).sum::<f64>() / hw as f64)
            .sqrt()
            .max(1e-12);
        let scaled: Vec<f64> = density.as_slice().iter().map(|v| v / rms).collect();

        // x-direction: direct prediction (rows are the x axis).
        let fx = self.predict_direction(&scaled, nx, ny);

        // y-direction: transpose, predict, transpose back.
        let mut transposed = vec![0.0; hw];
        for ix in 0..nx {
            for iy in 0..ny {
                transposed[iy * nx + ix] = scaled[ix * ny + iy];
            }
        }
        let fy_t = self.predict_direction(&transposed, ny, nx);
        let mut fy = vec![0.0; hw];
        for iy in 0..ny {
            for ix in 0..nx {
                fy[ix * ny + iy] = fy_t[iy * nx + ix];
            }
        }

        let mut gx = Grid2::from_vec(nx, ny, fx);
        let mut gy = Grid2::from_vec(nx, ny, fy);
        gx.scale(rms);
        gy.scale(rms);
        (gx, gy)
    }

    fn name(&self) -> &str {
        "fno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate_sample, DataConfig};
    use crate::train::{train, TrainConfig};
    use crate::FnoConfig;

    fn trained_guidance() -> FnoGuidance {
        let mut fno = Fno::new(&FnoConfig::tiny(), 21).unwrap();
        let cfg = TrainConfig {
            steps: 120,
            batch: 2,
            lr: 4e-3,
            data: DataConfig {
                grid: 16,
                blobs: 3,
                rects: 1,
                ..Default::default()
            },
            seed: 500,
        };
        train(&mut fno, &cfg).unwrap();
        FnoGuidance::new(fno)
    }

    fn correlation(a: &[f64], b: &[f64]) -> f64 {
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    #[test]
    fn predictions_correlate_with_the_exact_fields_in_both_directions() {
        let mut g = trained_guidance();
        let sample = generate_sample(
            &DataConfig {
                grid: 16,
                blobs: 3,
                rects: 1,
                ..Default::default()
            },
            9_999_999,
        )
        .unwrap();
        let density = Grid2::from_vec(16, 16, sample.density.clone());
        let (fx, fy) = g.predict(&density);
        let cx = correlation(fx.as_slice(), &sample.field_x);
        let cy = correlation(fy.as_slice(), &sample.field_y);
        assert!(cx > 0.6, "x-field correlation {cx}");
        assert!(
            cy > 0.6,
            "y-field correlation {cy} (via input transposition)"
        );
    }

    #[test]
    fn normalization_makes_prediction_scale_equivariant() {
        let mut g = trained_guidance();
        let sample = generate_sample(
            &DataConfig {
                grid: 16,
                blobs: 2,
                rects: 1,
                ..Default::default()
            },
            77,
        )
        .unwrap();
        let d1 = Grid2::from_vec(16, 16, sample.density.clone());
        let mut d10 = d1.clone();
        d10.scale(10.0);
        let (f1, _) = g.predict(&d1);
        let (f10, _) = g.predict(&d10);
        for (a, b) in f1.as_slice().iter().zip(f10.as_slice()) {
            assert!((10.0 * a - b).abs() < 1e-9 * b.abs().max(1.0));
        }
    }

    #[test]
    fn unsupported_grids_yield_zero_fields() {
        let mut g = trained_guidance();
        // 4x4 is too small for 3 kept modes -> zero fields, no panic.
        let d = Grid2::from_vec(4, 4, vec![1.0; 16]);
        let (fx, fy) = g.predict(&d);
        assert!(fx.as_slice().iter().all(|&v| v == 0.0));
        assert!(fy.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn name_identifies_the_model() {
        let g = FnoGuidance::new(Fno::new(&FnoConfig::tiny(), 1).unwrap());
        let b: Box<dyn DensityGuidance> = Box::new(g);
        assert_eq!(b.name(), "fno");
    }
}
