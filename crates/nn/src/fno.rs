//! The two-path Fourier neural operator (Figure 3 of the paper).

use crate::layers::{gelu_backward, gelu_forward, Pointwise, Spectral, SpectralCtx};
use crate::param::ParamStore;
use crate::spectral_util::PlanCache;
use crate::NnError;

/// Architecture hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnoConfig {
    /// Channel width of the hidden feature maps.
    pub width: usize,
    /// Number of low-frequency modes kept per axis in the spectral path.
    pub modes: usize,
    /// Number of stacked FNO blocks.
    pub num_layers: usize,
    /// Hidden width of the projection head.
    pub proj_hidden: usize,
}

impl FnoConfig {
    /// The paper-scale configuration (~471k parameters — the paper quotes
    /// 471k, 60% of a U-Net; this instantiation lands within 1.5% of it).
    pub fn paper() -> Self {
        FnoConfig {
            width: 17,
            modes: 10,
            num_layers: 4,
            proj_hidden: 128,
        }
    }

    /// A tiny configuration for tests and fast demos.
    pub fn tiny() -> Self {
        FnoConfig {
            width: 4,
            modes: 3,
            num_layers: 2,
            proj_hidden: 8,
        }
    }

    fn validate(&self) -> Result<(), NnError> {
        if self.width == 0 || self.modes == 0 || self.num_layers == 0 || self.proj_hidden == 0 {
            return Err(NnError::InvalidConfig(
                "width, modes, num_layers and proj_hidden must all be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Forward activations saved for one backward pass.
#[derive(Debug, Default, Clone)]
struct ForwardCtx {
    h: usize,
    w: usize,
    input: Vec<f64>,
    lifted: Vec<f64>,
    /// Per block: (block input, pre-activation sum, spectral context).
    blocks: Vec<(Vec<f64>, Vec<f64>, SpectralCtx)>,
    proj_in: Vec<f64>,
    proj_mid_pre: Vec<f64>,
    proj_mid: Vec<f64>,
}

/// The Xplace-NN model: lift -> N x (spatial 1x1 conv + spectral path,
/// GELU) -> projection head -> one field channel.
///
/// Input is the 3-channel map `{D; M_x; M_y}` (density plus the two
/// normalized mesh-grid coordinate channels); output is the x-direction
/// electric field. The y field is obtained by transposing the input
/// (see [`crate::FnoGuidance`]), exploiting the PDE's symmetry as §3.3
/// describes.
#[derive(Debug, Clone)]
pub struct Fno {
    config: FnoConfig,
    store: ParamStore,
    lift: Pointwise,
    blocks: Vec<(Pointwise, Spectral)>,
    proj1: Pointwise,
    proj2: Pointwise,
    cache: PlanCache,
    ctx: ForwardCtx,
}

impl Fno {
    /// Creates a model with randomly initialized parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for degenerate configurations.
    pub fn new(config: &FnoConfig, seed: u64) -> Result<Self, NnError> {
        config.validate()?;
        let mut store = ParamStore::new(seed);
        let lift = Pointwise::new(&mut store, 3, config.width);
        let mut blocks = Vec::with_capacity(config.num_layers);
        for _ in 0..config.num_layers {
            let conv = Pointwise::new(&mut store, config.width, config.width);
            let spec = Spectral::new(&mut store, config.width, config.width, config.modes);
            blocks.push((conv, spec));
        }
        let proj1 = Pointwise::new(&mut store, config.width, config.proj_hidden);
        let proj2 = Pointwise::new(&mut store, config.proj_hidden, 1);
        Ok(Fno {
            config: *config,
            store,
            lift,
            blocks,
            proj1,
            proj2,
            cache: PlanCache::default(),
            ctx: ForwardCtx::default(),
        })
    }

    /// The architecture.
    pub fn config(&self) -> &FnoConfig {
        &self.config
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.store.len()
    }

    /// Borrows the parameter store (for the trainer).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// The flat parameter vector (for persistence).
    pub fn params(&self) -> &[f64] {
        self.store.values()
    }

    /// Overwrites the flat parameter vector (for persistence).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from [`Fno::num_params`].
    pub fn set_params(&mut self, params: &[f64]) {
        self.store.set_values(params);
    }

    fn check_grid(&self, h: usize, w: usize) -> Result<(), NnError> {
        if !xplace_fft::is_power_of_two(h) || !xplace_fft::is_power_of_two(w) {
            return Err(NnError::InvalidInput(format!(
                "grid {h}x{w} must have power-of-two dimensions"
            )));
        }
        if 2 * self.config.modes > h || self.config.modes > w {
            return Err(NnError::InvalidInput(format!(
                "grid {h}x{w} too small for {} kept modes",
                self.config.modes
            )));
        }
        Ok(())
    }

    /// Builds the 3-channel input `{D; M_x; M_y}` from a density map.
    pub fn build_input(density: &[f64], h: usize, w: usize) -> Vec<f64> {
        let hw = h * w;
        let mut input = vec![0.0; 3 * hw];
        input[..hw].copy_from_slice(density);
        for r in 0..h {
            for c in 0..w {
                input[hw + r * w + c] = r as f64 / h as f64;
                input[2 * hw + r * w + c] = c as f64 / w as f64;
            }
        }
        input
    }

    /// Full forward pass on a 3-channel input, saving activations for
    /// [`Fno::backward`]. Returns the single-channel field prediction.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidInput`] for unsupported grid sizes.
    pub fn forward(&mut self, input: &[f64], h: usize, w: usize) -> Result<Vec<f64>, NnError> {
        self.check_grid(h, w)?;
        let hw = h * w;
        if input.len() != 3 * hw {
            return Err(NnError::InvalidInput(format!(
                "expected 3x{hw} input values, got {}",
                input.len()
            )));
        }
        let mut ctx = ForwardCtx {
            h,
            w,
            input: input.to_vec(),
            ..Default::default()
        };
        let lifted = self.lift.forward(&self.store, input, hw);
        ctx.lifted = lifted.clone();
        let mut x = lifted;
        for (conv, spec) in &self.blocks {
            let spatial = conv.forward(&self.store, &x, hw);
            let (freq, sctx) = spec.forward(&self.store, &mut self.cache, &x, h, w);
            let mut pre: Vec<f64> = spatial;
            for (p, f) in pre.iter_mut().zip(&freq) {
                *p += f;
            }
            let activated = gelu_forward(&pre);
            ctx.blocks.push((x, pre, sctx));
            x = activated;
        }
        ctx.proj_in = x.clone();
        let mid_pre = self.proj1.forward(&self.store, &x, hw);
        let mid = gelu_forward(&mid_pre);
        ctx.proj_mid_pre = mid_pre;
        ctx.proj_mid = mid.clone();
        let out = self.proj2.forward(&self.store, &mid, hw);
        self.ctx = ctx;
        Ok(out)
    }

    /// Backward pass for the most recent [`Fno::forward`] call:
    /// accumulates parameter gradients for the output gradient `gy`.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been run or `gy` has the wrong size.
    pub fn backward(&mut self, gy: &[f64]) {
        let h = self.ctx.h;
        let w = self.ctx.w;
        assert!(h > 0, "backward called before forward");
        let hw = h * w;
        assert_eq!(gy.len(), hw, "output gradient size mismatch");

        let g_mid = self
            .proj2
            .backward(&mut self.store, &self.ctx.proj_mid, gy, hw);
        let g_mid_pre = gelu_backward(&self.ctx.proj_mid_pre, &g_mid);
        let mut gx = self
            .proj1
            .backward(&mut self.store, &self.ctx.proj_in, &g_mid_pre, hw);

        for (k, (conv, spec)) in self.blocks.iter().enumerate().rev() {
            let (block_in, pre, sctx) = &self.ctx.blocks[k];
            let g_pre = gelu_backward(pre, &gx);
            let g_spatial = conv.backward(&mut self.store, block_in, &g_pre, hw);
            let g_freq = spec.backward(&mut self.store, &mut self.cache, sctx, &g_pre);
            gx = g_spatial;
            for (a, b) in gx.iter_mut().zip(&g_freq) {
                *a += b;
            }
        }
        self.lift
            .backward(&mut self.store, &self.ctx.input, &gx, hw);
    }

    /// Convenience inference: builds the `{D; M_x; M_y}` input from a
    /// density map and returns the predicted x-direction field.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidInput`] for unsupported grid sizes.
    pub fn predict_field_x(
        &mut self,
        density: &[f64],
        h: usize,
        w: usize,
    ) -> Result<Vec<f64>, NnError> {
        if density.len() != h * w {
            return Err(NnError::InvalidInput(format!(
                "density has {} samples for a {h}x{w} grid",
                density.len()
            )));
        }
        let input = Self::build_input(density, h, w);
        self.forward(&input, h, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_parameter_count_is_about_471k() {
        let fno = Fno::new(&FnoConfig::paper(), 1).unwrap();
        let n = fno.num_params();
        assert!(
            (440_000..=500_000).contains(&n),
            "parameter count {n} not within 6% of the paper's 471k"
        );
    }

    #[test]
    fn tiny_config_runs_forward_and_backward() {
        let mut fno = Fno::new(&FnoConfig::tiny(), 2).unwrap();
        let (h, w) = (16, 16);
        let density: Vec<f64> = (0..h * w).map(|i| (i as f64 * 0.05).sin()).collect();
        let y = fno.predict_field_x(&density, h, w).unwrap();
        assert_eq!(y.len(), h * w);
        assert!(y.iter().all(|v| v.is_finite()));
        let gy = vec![1.0; h * w];
        fno.backward(&gy);
        assert!(fno.store_mut().grad_norm() > 0.0);
    }

    #[test]
    fn invalid_configs_and_inputs_are_rejected() {
        let bad = FnoConfig {
            width: 0,
            ..FnoConfig::tiny()
        };
        assert!(Fno::new(&bad, 1).is_err());
        let mut fno = Fno::new(&FnoConfig::tiny(), 1).unwrap();
        // Non-power-of-two grid.
        assert!(fno.predict_field_x(&vec![0.0; 15 * 15], 15, 15).is_err());
        // Too small for modes (2*3 > 4).
        assert!(fno.predict_field_x(&[0.0; 16], 4, 4).is_err());
        // Wrong buffer length.
        assert!(fno.predict_field_x(&[0.0; 10], 16, 16).is_err());
    }

    #[test]
    fn full_model_gradient_matches_finite_differences() {
        let mut fno = Fno::new(&FnoConfig::tiny(), 3).unwrap();
        let (h, w) = (8, 8);
        let density: Vec<f64> = (0..h * w).map(|i| (i as f64 * 0.11).cos()).collect();
        let input = Fno::build_input(&density, h, w);
        let loss = |fno: &mut Fno| -> f64 {
            let y = fno.forward(&input, h, w).unwrap();
            y.iter().map(|v| v * v).sum()
        };
        // Analytic gradient.
        let y = fno.forward(&input, h, w).unwrap();
        fno.store_mut().zero_grads();
        let gy: Vec<f64> = y.iter().map(|v| 2.0 * v).collect();
        fno.backward(&gy);
        // Probe parameters across all layer types.
        let n = fno.num_params();
        let picks = [0usize, 13, n / 4, n / 2, 3 * n / 4, n - 1];
        let eps = 1e-6;
        for &i in &picks {
            fno.store_mut().nudge(i, eps);
            let plus = loss(&mut fno);
            fno.store_mut().nudge(i, -2.0 * eps);
            let minus = loss(&mut fno);
            fno.store_mut().nudge(i, eps);
            let fd = (plus - minus) / (2.0 * eps);
            let analytic = fno.store_mut().grad_at(i);
            assert!(
                (fd - analytic).abs() < 1e-4 * fd.abs().max(1.0),
                "param {i}: fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn model_is_resolution_independent_in_shape() {
        // The same weights run on 16x16 and 32x32 grids.
        let mut fno = Fno::new(&FnoConfig::tiny(), 4).unwrap();
        let d16: Vec<f64> = (0..256).map(|i| (i as f64 * 0.02).sin()).collect();
        let d32: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.01).sin()).collect();
        assert_eq!(fno.predict_field_x(&d16, 16, 16).unwrap().len(), 256);
        assert_eq!(fno.predict_field_x(&d32, 32, 32).unwrap().len(), 1024);
    }

    #[test]
    fn mesh_channels_encode_normalized_coordinates() {
        let input = Fno::build_input(&[0.0; 16], 4, 4);
        // M_x channel at row 2 is 0.5.
        assert_eq!(input[16 + 2 * 4 + 1], 0.5);
        // M_y channel at column 3 is 0.75.
        assert_eq!(input[32 + 4 + 3], 0.75);
    }

    #[test]
    fn same_seed_same_predictions() {
        let mut a = Fno::new(&FnoConfig::tiny(), 9).unwrap();
        let mut b = Fno::new(&FnoConfig::tiny(), 9).unwrap();
        let d: Vec<f64> = (0..256).map(|i| (i as f64).sin()).collect();
        assert_eq!(
            a.predict_field_x(&d, 16, 16).unwrap(),
            b.predict_field_x(&d, 16, 16).unwrap()
        );
    }
}
