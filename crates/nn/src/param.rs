//! Flat parameter storage with gradients and an Adam optimizer.

use xplace_testkit::Rng;

/// All trainable parameters of a model, stored flat, with matching
/// gradient and Adam-moment buffers. Layers allocate contiguous slices at
/// construction and address them by offset.
#[derive(Debug, Clone)]
pub struct ParamStore {
    values: Vec<f64>,
    grads: Vec<f64>,
    m: Vec<f64>,
    v: Vec<f64>,
    step: u64,
    rng: Rng,
}

impl ParamStore {
    /// Creates an empty store seeded for reproducible initialization.
    pub fn new(seed: u64) -> Self {
        ParamStore {
            values: Vec::new(),
            grads: Vec::new(),
            m: Vec::new(),
            v: Vec::new(),
            step: 0,
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Allocates `count` parameters initialized uniformly in
    /// `[-scale, scale]`; returns the slice offset.
    pub fn alloc(&mut self, count: usize, scale: f64) -> usize {
        let offset = self.values.len();
        for _ in 0..count {
            self.values.push((self.rng.f64() * 2.0 - 1.0) * scale);
        }
        self.grads.resize(self.values.len(), 0.0);
        self.m.resize(self.values.len(), 0.0);
        self.v.resize(self.values.len(), 0.0);
        offset
    }

    /// Total parameter count.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no parameters are allocated.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrows a parameter slice.
    pub fn get(&self, offset: usize, count: usize) -> &[f64] {
        &self.values[offset..offset + count]
    }

    /// Borrows a parameter slice together with its gradient slice.
    pub fn get_with_grad(&mut self, offset: usize, count: usize) -> (&[f64], &mut [f64]) {
        let (values, grads) = (&self.values, &mut self.grads);
        (
            &values[offset..offset + count],
            &mut grads[offset..offset + count],
        )
    }

    /// Zeroes all gradients.
    pub fn zero_grads(&mut self) {
        self.grads.fill(0.0);
    }

    /// The L2 norm of the gradient vector.
    pub fn grad_norm(&self) -> f64 {
        self.grads.iter().map(|g| g * g).sum::<f64>().sqrt()
    }

    /// One Adam step (β1 = 0.9, β2 = 0.999, ε = 1e-8).
    pub fn adam_step(&mut self, lr: f64) {
        self.step += 1;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let bc1 = 1.0 - b1.powi(self.step as i32);
        let bc2 = 1.0 - b2.powi(self.step as i32);
        for i in 0..self.values.len() {
            let g = self.grads[i];
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * g;
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            self.values[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    /// Borrows the full parameter vector.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Overwrites the full parameter vector (resets optimizer moments,
    /// since the loaded weights have no Adam history).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the allocated count.
    pub fn set_values(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.values.len(), "parameter count mismatch");
        self.values.copy_from_slice(values);
        self.m.fill(0.0);
        self.v.fill(0.0);
        self.step = 0;
    }

    /// Directly perturbs one parameter (used by finite-difference tests).
    pub fn nudge(&mut self, index: usize, delta: f64) {
        self.values[index] += delta;
    }

    /// Reads one parameter's gradient (used by finite-difference tests).
    pub fn grad_at(&self, index: usize) -> f64 {
        self.grads[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_reproducible_per_seed() {
        let mut a = ParamStore::new(5);
        let mut b = ParamStore::new(5);
        let oa = a.alloc(16, 0.1);
        let ob = b.alloc(16, 0.1);
        assert_eq!(a.get(oa, 16), b.get(ob, 16));
        let mut c = ParamStore::new(6);
        let oc = c.alloc(16, 0.1);
        assert_ne!(a.get(oa, 16), c.get(oc, 16));
    }

    #[test]
    fn init_respects_scale() {
        let mut s = ParamStore::new(1);
        let o = s.alloc(1000, 0.05);
        assert!(s.get(o, 1000).iter().all(|v| v.abs() <= 0.05));
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        let mut s = ParamStore::new(2);
        let o = s.alloc(3, 1.0);
        for _ in 0..500 {
            s.zero_grads();
            let vals: Vec<f64> = s.get(o, 3).to_vec();
            let (_, grads) = s.get_with_grad(o, 3);
            for (g, v) in grads.iter_mut().zip(&vals) {
                *g = 2.0 * (v - 3.0); // d/dv (v-3)^2
            }
            s.adam_step(0.05);
        }
        for &v in s.get(o, 3) {
            assert!((v - 3.0).abs() < 0.01, "v = {v}");
        }
    }

    #[test]
    fn zero_grads_and_norm() {
        let mut s = ParamStore::new(3);
        let o = s.alloc(4, 1.0);
        {
            let (_, g) = s.get_with_grad(o, 4);
            g.fill(3.0);
        }
        assert!((s.grad_norm() - 6.0).abs() < 1e-12);
        s.zero_grads();
        assert_eq!(s.grad_norm(), 0.0);
    }
}
