//! The Fourier-neural-operator extension of Xplace (§3.3 of the paper).
//!
//! A two-path network predicts the electric-field map of the placement
//! electrostatic system directly from the density map:
//!
//! * a **spatial path** — a pixel-wise (1x1) convolution,
//! * a **frequency path** — FFT, low-pass filter keeping the lowest
//!   modes, a per-mode complex linear transform, inverse FFT (Eq. 11),
//!
//! summed and passed through GELU (Eq. 12), stacked between a lifting and
//! a projection layer. Because only low-frequency modes carry weights, the
//! model is **resolution independent** (train small, infer large) and the
//! x/y symmetry of Poisson's equation means one output direction suffices
//! (the other is obtained by transposing the input).
//!
//! Everything is implemented from scratch with manual backpropagation
//! (validated against finite differences in the tests): [`Fno`] is the
//! model, [`train`] fits it on **self-generated** data (random density
//! maps labeled by the exact spectral solver — no placement benchmarks
//! needed, exactly as the paper trains), and [`FnoGuidance`] adapts a
//! trained model to the placer's [`xplace_core::DensityGuidance`] hook.
//!
//! # Example
//!
//! ```
//! use xplace_nn::{Fno, FnoConfig};
//!
//! # fn main() -> Result<(), xplace_nn::NnError> {
//! let mut fno = Fno::new(&FnoConfig::tiny(), 7)?;
//! let density = vec![0.5; 16 * 16];
//! let field = fno.predict_field_x(&density, 16, 16)?;
//! assert_eq!(field.len(), 256);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod data;
mod error;
mod fno;
mod guidance;
mod layers;
mod loss;
mod param;
mod persist;
mod spectral_util;
mod train;

pub use data::{generate_sample, DataConfig, Sample};
pub use error::NnError;
pub use fno::{Fno, FnoConfig};
pub use guidance::FnoGuidance;
pub use loss::relative_l2;
pub use param::ParamStore;
pub use train::{evaluate, train, TrainConfig, TrainReport};
