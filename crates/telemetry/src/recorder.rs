//! Per-iteration metric recording (the "recorder" block of Figure 1).

use crate::{IterationRecord, TelemetryEvent, TelemetrySink};
use std::fmt::Write as _;
use xplace_testkit::json::ToJson;

/// Collects [`IterationRecord`]s over a placement run.
///
/// Usable standalone (the placer pushes into it directly) or as a
/// [`TelemetrySink`] that keeps the iteration records of an event stream
/// and ignores everything else.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    records: Vec<IterationRecord>,
    enabled: bool,
}

impl Recorder {
    /// Creates a recorder; when `enabled` is false, pushes are dropped.
    pub fn new(enabled: bool) -> Self {
        Recorder {
            records: Vec::new(),
            enabled,
        }
    }

    /// Appends a record (no-op when disabled).
    pub fn push(&mut self, record: IterationRecord) {
        if self.enabled {
            self.records.push(record);
        }
    }

    /// The recorded iterations.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes all records as CSV (header + one row per iteration).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "iteration,hpwl,wa,overflow,lambda,gamma,omega,r_ratio,density_skipped,modeled_ns,launches\n",
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{},{:.6},{:.6},{:.6},{:.6e},{:.6e},{:.6},{:.6e},{},{},{}",
                r.iteration,
                r.hpwl,
                r.wa,
                r.overflow,
                r.lambda,
                r.gamma,
                r.omega,
                r.r_ratio,
                r.density_skipped as u8,
                r.modeled_ns,
                r.launches
            );
        }
        out
    }

    /// Serializes all records as JSON-lines (one record object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json_string());
            out.push('\n');
        }
        out
    }
}

impl TelemetrySink for Recorder {
    fn emit(&mut self, event: &TelemetryEvent) {
        if let TelemetryEvent::Iteration { record, .. } = event {
            self.push(*record);
        }
    }

    fn enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProfileDelta;

    fn rec(i: usize) -> IterationRecord {
        IterationRecord {
            iteration: i,
            hpwl: 100.0,
            wa: 90.0,
            overflow: 0.5,
            lambda: 1e-4,
            gamma: 80.0,
            omega: 0.1,
            r_ratio: 1e-5,
            density_skipped: i % 2 == 0,
            modeled_ns: 1000,
            launches: 7,
        }
    }

    #[test]
    fn records_accumulate_when_enabled() {
        let mut r = Recorder::new(true);
        r.push(rec(0));
        r.push(rec(1));
        assert_eq!(r.len(), 2);
        assert_eq!(r.records()[1].iteration, 1);
    }

    #[test]
    fn disabled_recorder_drops_records() {
        let mut r = Recorder::new(false);
        r.push(rec(0));
        assert!(r.is_empty());
        assert!(!r.enabled());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut r = Recorder::new(true);
        r.push(rec(3));
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("iteration,hpwl"));
        assert!(lines[1].starts_with("3,100.0"));
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
    }

    #[test]
    fn jsonl_emits_one_object_per_record() {
        let mut r = Recorder::new(true);
        r.push(rec(0));
        r.push(rec(1));
        let jsonl = r.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn recorder_as_sink_keeps_only_iterations() {
        let mut r = Recorder::new(true);
        r.emit(&TelemetryEvent::SkipWindow {
            iteration: 0,
            active: true,
        });
        r.emit(&TelemetryEvent::Iteration {
            record: rec(0),
            profile: ProfileDelta::default(),
        });
        assert_eq!(r.len(), 1);
        assert_eq!(r.records()[0].iteration, 0);
    }
}
