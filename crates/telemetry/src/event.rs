//! The typed telemetry event stream and its JSON encoding.

use xplace_device::ProfileSnapshot;
use xplace_testkit::json::{FromJson, Json, JsonError, ToJson};

/// Metrics of one global-placement iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Iteration index.
    pub iteration: usize,
    /// Exact HPWL.
    pub hpwl: f64,
    /// WA smoothed wirelength.
    pub wa: f64,
    /// Overflow ratio (Eq. 7).
    pub overflow: f64,
    /// Density weight λ.
    pub lambda: f64,
    /// WA smoothing γ.
    pub gamma: f64,
    /// Precondition weighted ratio ω (§3.2).
    pub omega: f64,
    /// Gradient ratio `r = λ|∇D| / |∇WL|` (§3.1.4).
    pub r_ratio: f64,
    /// Whether the density operator was skipped this iteration.
    pub density_skipped: bool,
    /// Modeled GPU time of this iteration in nanoseconds.
    pub modeled_ns: u64,
    /// Kernel launches this iteration.
    pub launches: u64,
}

impl ToJson for IterationRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("iteration", self.iteration.to_json()),
            ("hpwl", self.hpwl.to_json()),
            ("wa", self.wa.to_json()),
            ("overflow", self.overflow.to_json()),
            ("lambda", self.lambda.to_json()),
            ("gamma", self.gamma.to_json()),
            ("omega", self.omega.to_json()),
            ("r_ratio", self.r_ratio.to_json()),
            ("density_skipped", self.density_skipped.to_json()),
            ("modeled_ns", self.modeled_ns.to_json()),
            ("launches", self.launches.to_json()),
        ])
    }
}

impl FromJson for IterationRecord {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(IterationRecord {
            iteration: usize::from_json(value.field("iteration")?)?,
            hpwl: f64::from_json(value.field("hpwl")?)?,
            wa: f64::from_json(value.field("wa")?)?,
            overflow: f64::from_json(value.field("overflow")?)?,
            lambda: f64::from_json(value.field("lambda")?)?,
            gamma: f64::from_json(value.field("gamma")?)?,
            omega: f64::from_json(value.field("omega")?)?,
            r_ratio: f64::from_json(value.field("r_ratio")?)?,
            density_skipped: bool::from_json(value.field("density_skipped")?)?,
            modeled_ns: u64::from_json(value.field("modeled_ns")?)?,
            launches: u64::from_json(value.field("launches")?)?,
        })
    }
}

/// The modeled-device cost of a region of the operator stream (one
/// iteration, typically): a [`ProfileSnapshot`] difference with the
/// wall-clock `cpu_ns` field deliberately dropped so traces stay
/// byte-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileDelta {
    /// Kernel launches.
    pub launches: u64,
    /// Host synchronizations.
    pub syncs: u64,
    /// Launch overhead (ns).
    pub launch_overhead_ns: u64,
    /// Modeled kernel execution time (ns).
    pub exec_ns: u64,
    /// Pipelined time (ns): `sum(max(launch_i, exec_i))`.
    pub pipelined_ns: u64,
    /// Synchronization stall time (ns).
    pub sync_stall_ns: u64,
}

impl ProfileDelta {
    /// Modeled elapsed time: pipelined kernel time plus sync stalls.
    pub fn modeled_ns(&self) -> u64 {
        self.pipelined_ns + self.sync_stall_ns
    }
}

impl From<ProfileSnapshot> for ProfileDelta {
    fn from(p: ProfileSnapshot) -> Self {
        ProfileDelta {
            launches: p.launches,
            syncs: p.syncs,
            launch_overhead_ns: p.launch_overhead_ns,
            exec_ns: p.exec_ns,
            pipelined_ns: p.pipelined_ns,
            sync_stall_ns: p.sync_stall_ns,
        }
    }
}

impl ToJson for ProfileDelta {
    fn to_json(&self) -> Json {
        Json::obj([
            ("launches", self.launches.to_json()),
            ("syncs", self.syncs.to_json()),
            ("launch_overhead_ns", self.launch_overhead_ns.to_json()),
            ("exec_ns", self.exec_ns.to_json()),
            ("pipelined_ns", self.pipelined_ns.to_json()),
            ("sync_stall_ns", self.sync_stall_ns.to_json()),
        ])
    }
}

impl FromJson for ProfileDelta {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ProfileDelta {
            launches: u64::from_json(value.field("launches")?)?,
            syncs: u64::from_json(value.field("syncs")?)?,
            launch_overhead_ns: u64::from_json(value.field("launch_overhead_ns")?)?,
            exec_ns: u64::from_json(value.field("exec_ns")?)?,
            pipelined_ns: u64::from_json(value.field("pipelined_ns")?)?,
            sync_stall_ns: u64::from_json(value.field("sync_stall_ns")?)?,
        })
    }
}

/// The three placement stages classified by the precondition weighted
/// ratio ω (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Wirelength-dominated start (ω ≤ 0.5).
    Early,
    /// Spreading (0.5 < ω < 0.95): parameters update once per period.
    Intermediate,
    /// Converging tail (ω ≥ 0.95).
    Final,
}

impl Stage {
    fn name(self) -> &'static str {
        match self {
            Stage::Early => "early",
            Stage::Intermediate => "intermediate",
            Stage::Final => "final",
        }
    }

    fn parse(s: &str) -> Result<Self, JsonError> {
        match s {
            "early" => Ok(Stage::Early),
            "intermediate" => Ok(Stage::Intermediate),
            "final" => Ok(Stage::Final),
            other => Err(JsonError(format!("unknown stage `{other}`"))),
        }
    }
}

/// Classifies ω into its placement stage, with the same band boundaries
/// the stage-aware scheduler uses.
pub fn stage_of(omega: f64) -> Stage {
    if omega <= 0.5 {
        Stage::Early
    } else if omega < 0.95 {
        Stage::Intermediate
    } else {
        Stage::Final
    }
}

/// The configuration echo embedded in traces and reports so an artifact
/// is self-describing.
///
/// Deliberately excludes the thread count: metrics are bit-identical for
/// every `--threads` value, and keeping the echo thread-free keeps the
/// whole trace byte-identical across thread counts too. The thread count
/// is reported in [`crate::RunReport`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigEcho {
    /// Operator stream: `"xplace"` or `"dreamplace_like"`.
    pub framework: String,
    /// §3.1.3 operator reduction.
    pub reduction: bool,
    /// §3.1.1 operator combination.
    pub combination: bool,
    /// §3.1.2 operator extraction.
    pub extraction: bool,
    /// §3.1.4 operator skipping.
    pub skipping: bool,
    /// Stage-aware parameter cadence (Algorithm 1).
    pub stage_aware: bool,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Overflow stop target.
    pub stop_overflow: f64,
    /// Placement seed.
    pub seed: u64,
    /// Density-grid override (`None` = auto).
    pub grid: Option<usize>,
    /// Multilevel (coarsen/uncoarsen) global placement.
    pub multilevel: bool,
}

impl ToJson for ConfigEcho {
    fn to_json(&self) -> Json {
        Json::obj([
            ("framework", self.framework.to_json()),
            ("reduction", self.reduction.to_json()),
            ("combination", self.combination.to_json()),
            ("extraction", self.extraction.to_json()),
            ("skipping", self.skipping.to_json()),
            ("stage_aware", self.stage_aware.to_json()),
            ("max_iterations", self.max_iterations.to_json()),
            ("stop_overflow", self.stop_overflow.to_json()),
            ("seed", self.seed.to_json()),
            ("grid", self.grid.to_json()),
            ("multilevel", self.multilevel.to_json()),
        ])
    }
}

impl FromJson for ConfigEcho {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ConfigEcho {
            framework: String::from_json(value.field("framework")?)?,
            reduction: bool::from_json(value.field("reduction")?)?,
            combination: bool::from_json(value.field("combination")?)?,
            extraction: bool::from_json(value.field("extraction")?)?,
            skipping: bool::from_json(value.field("skipping")?)?,
            stage_aware: bool::from_json(value.field("stage_aware")?)?,
            max_iterations: usize::from_json(value.field("max_iterations")?)?,
            stop_overflow: f64::from_json(value.field("stop_overflow")?)?,
            seed: u64::from_json(value.field("seed")?)?,
            grid: Option::<usize>::from_json(value.field("grid")?)?,
            // Absent in traces recorded before multilevel placement
            // existed; those ran flat.
            multilevel: match value.get("multilevel") {
                Some(v) => bool::from_json(v)?,
                None => false,
            },
        })
    }
}

/// One event of a placement run's telemetry stream.
///
/// Encoded as a JSON object with an `"event"` tag; a trace file is one
/// event per line (JSON-lines).
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// Run header: design identity and configuration echo.
    RunStart {
        /// Design name.
        design: String,
        /// Total cells (movable + terminals).
        cells: usize,
        /// Nets.
        nets: usize,
        /// Movable cells.
        movable: usize,
        /// Configuration echo.
        config: ConfigEcho,
    },
    /// One global-placement iteration with its modeled-device delta.
    Iteration {
        /// Scheduler and quality metrics of the iteration.
        record: IterationRecord,
        /// Modeled device cost of the iteration.
        profile: ProfileDelta,
    },
    /// The ω-classified stage changed between iterations.
    StageTransition {
        /// Iteration at which the new stage was observed.
        iteration: usize,
        /// Stage before the transition.
        from: Stage,
        /// Stage after the transition.
        to: Stage,
        /// ω value that triggered the classification.
        omega: f64,
    },
    /// The §3.1.4 skip window (r below threshold, iteration below cap)
    /// opened or closed.
    SkipWindow {
        /// Iteration of the flip.
        iteration: usize,
        /// `true` when the window opened, `false` when it closed.
        active: bool,
    },
    /// The scheduler performed a λ update (the γ/λ cadence of §3.2).
    LambdaUpdate {
        /// Iteration of the update.
        iteration: usize,
        /// λ after the update.
        lambda: f64,
        /// γ after the update.
        gamma: f64,
    },
    /// The run ended worse than its best point and rolled back to the
    /// best-overflow snapshot (the divergence guard).
    Rollback {
        /// Last executed iteration.
        iteration: usize,
        /// Iteration of the restored snapshot.
        best_iteration: usize,
        /// Overflow of the restored snapshot.
        best_overflow: f64,
    },
    /// Run footer: final metrics under the device model (no wall clock —
    /// see the crate-level determinism contract).
    RunEnd {
        /// Iterations executed.
        iterations: usize,
        /// Whether the overflow target was reached.
        converged: bool,
        /// Final exact HPWL.
        final_hpwl: f64,
        /// Final overflow ratio.
        final_overflow: f64,
        /// Best overflow seen during the run.
        best_overflow: f64,
        /// Total modeled GPU time (ns).
        modeled_ns: u64,
        /// Total kernel launches.
        launches: u64,
    },
}

impl TelemetryEvent {
    /// The event's `"event"` tag.
    pub fn tag(&self) -> &'static str {
        match self {
            TelemetryEvent::RunStart { .. } => "run_start",
            TelemetryEvent::Iteration { .. } => "iteration",
            TelemetryEvent::StageTransition { .. } => "stage",
            TelemetryEvent::SkipWindow { .. } => "skip_window",
            TelemetryEvent::LambdaUpdate { .. } => "lambda_update",
            TelemetryEvent::Rollback { .. } => "rollback",
            TelemetryEvent::RunEnd { .. } => "run_end",
        }
    }
}

impl ToJson for TelemetryEvent {
    fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![("event".into(), Json::str(self.tag()))];
        match self {
            TelemetryEvent::RunStart {
                design,
                cells,
                nets,
                movable,
                config,
            } => {
                pairs.push(("design".into(), design.to_json()));
                pairs.push(("cells".into(), cells.to_json()));
                pairs.push(("nets".into(), nets.to_json()));
                pairs.push(("movable".into(), movable.to_json()));
                pairs.push(("config".into(), config.to_json()));
            }
            TelemetryEvent::Iteration { record, profile } => {
                // Flatten the record so a trace line reads like a CSV row.
                if let Json::Obj(fields) = record.to_json() {
                    pairs.extend(fields);
                }
                pairs.push(("profile".into(), profile.to_json()));
            }
            TelemetryEvent::StageTransition {
                iteration,
                from,
                to,
                omega,
            } => {
                pairs.push(("iteration".into(), iteration.to_json()));
                pairs.push(("from".into(), Json::str(from.name())));
                pairs.push(("to".into(), Json::str(to.name())));
                pairs.push(("omega".into(), omega.to_json()));
            }
            TelemetryEvent::SkipWindow { iteration, active } => {
                pairs.push(("iteration".into(), iteration.to_json()));
                pairs.push(("active".into(), active.to_json()));
            }
            TelemetryEvent::LambdaUpdate {
                iteration,
                lambda,
                gamma,
            } => {
                pairs.push(("iteration".into(), iteration.to_json()));
                pairs.push(("lambda".into(), lambda.to_json()));
                pairs.push(("gamma".into(), gamma.to_json()));
            }
            TelemetryEvent::Rollback {
                iteration,
                best_iteration,
                best_overflow,
            } => {
                pairs.push(("iteration".into(), iteration.to_json()));
                pairs.push(("best_iteration".into(), best_iteration.to_json()));
                pairs.push(("best_overflow".into(), best_overflow.to_json()));
            }
            TelemetryEvent::RunEnd {
                iterations,
                converged,
                final_hpwl,
                final_overflow,
                best_overflow,
                modeled_ns,
                launches,
            } => {
                pairs.push(("iterations".into(), iterations.to_json()));
                pairs.push(("converged".into(), converged.to_json()));
                pairs.push(("final_hpwl".into(), final_hpwl.to_json()));
                pairs.push(("final_overflow".into(), final_overflow.to_json()));
                pairs.push(("best_overflow".into(), best_overflow.to_json()));
                pairs.push(("modeled_ns".into(), modeled_ns.to_json()));
                pairs.push(("launches".into(), launches.to_json()));
            }
        }
        Json::Obj(pairs)
    }
}

impl FromJson for TelemetryEvent {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let tag = value.field("event")?.as_str()?;
        match tag {
            "run_start" => Ok(TelemetryEvent::RunStart {
                design: String::from_json(value.field("design")?)?,
                cells: usize::from_json(value.field("cells")?)?,
                nets: usize::from_json(value.field("nets")?)?,
                movable: usize::from_json(value.field("movable")?)?,
                config: ConfigEcho::from_json(value.field("config")?)?,
            }),
            "iteration" => Ok(TelemetryEvent::Iteration {
                record: IterationRecord::from_json(value)?,
                profile: ProfileDelta::from_json(value.field("profile")?)?,
            }),
            "stage" => Ok(TelemetryEvent::StageTransition {
                iteration: usize::from_json(value.field("iteration")?)?,
                from: Stage::parse(value.field("from")?.as_str()?)?,
                to: Stage::parse(value.field("to")?.as_str()?)?,
                omega: f64::from_json(value.field("omega")?)?,
            }),
            "skip_window" => Ok(TelemetryEvent::SkipWindow {
                iteration: usize::from_json(value.field("iteration")?)?,
                active: bool::from_json(value.field("active")?)?,
            }),
            "lambda_update" => Ok(TelemetryEvent::LambdaUpdate {
                iteration: usize::from_json(value.field("iteration")?)?,
                lambda: f64::from_json(value.field("lambda")?)?,
                gamma: f64::from_json(value.field("gamma")?)?,
            }),
            "rollback" => Ok(TelemetryEvent::Rollback {
                iteration: usize::from_json(value.field("iteration")?)?,
                best_iteration: usize::from_json(value.field("best_iteration")?)?,
                best_overflow: f64::from_json(value.field("best_overflow")?)?,
            }),
            "run_end" => Ok(TelemetryEvent::RunEnd {
                iterations: usize::from_json(value.field("iterations")?)?,
                converged: bool::from_json(value.field("converged")?)?,
                final_hpwl: f64::from_json(value.field("final_hpwl")?)?,
                final_overflow: f64::from_json(value.field("final_overflow")?)?,
                best_overflow: f64::from_json(value.field("best_overflow")?)?,
                modeled_ns: u64::from_json(value.field("modeled_ns")?)?,
                launches: u64::from_json(value.field("launches")?)?,
            }),
            other => Err(JsonError(format!("unknown event tag `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_record(i: usize) -> IterationRecord {
        IterationRecord {
            iteration: i,
            hpwl: 14026.78,
            wa: 13000.5,
            overflow: 0.22,
            lambda: 1.5e-4,
            gamma: 80.0,
            omega: 0.61,
            r_ratio: 2.5e-3,
            density_skipped: i % 2 == 0,
            modeled_ns: 123_456,
            launches: 17,
        }
    }

    fn sample_echo() -> ConfigEcho {
        ConfigEcho {
            framework: "xplace".into(),
            reduction: true,
            combination: true,
            extraction: true,
            skipping: true,
            stage_aware: true,
            max_iterations: 400,
            stop_overflow: 0.1,
            seed: 0x5eed,
            grid: None,
            multilevel: false,
        }
    }

    #[test]
    fn stage_bands_match_the_scheduler() {
        assert_eq!(stage_of(0.0), Stage::Early);
        assert_eq!(stage_of(0.5), Stage::Early);
        assert_eq!(stage_of(0.51), Stage::Intermediate);
        assert_eq!(stage_of(0.949), Stage::Intermediate);
        assert_eq!(stage_of(0.95), Stage::Final);
        assert_eq!(stage_of(1.0), Stage::Final);
    }

    #[test]
    fn every_event_kind_round_trips() {
        let events = vec![
            TelemetryEvent::RunStart {
                design: "golden".into(),
                cells: 500,
                nets: 525,
                movable: 480,
                config: sample_echo(),
            },
            TelemetryEvent::Iteration {
                record: sample_record(3),
                profile: ProfileDelta {
                    launches: 17,
                    syncs: 1,
                    launch_overhead_ns: 42_500,
                    exec_ns: 70_000,
                    pipelined_ns: 90_000,
                    sync_stall_ns: 33_456,
                },
            },
            TelemetryEvent::StageTransition {
                iteration: 12,
                from: Stage::Early,
                to: Stage::Intermediate,
                omega: 0.53,
            },
            TelemetryEvent::SkipWindow {
                iteration: 0,
                active: true,
            },
            TelemetryEvent::LambdaUpdate {
                iteration: 9,
                lambda: 3.3e-4,
                gamma: 64.2,
            },
            TelemetryEvent::Rollback {
                iteration: 321,
                best_iteration: 280,
                best_overflow: 0.21,
            },
            TelemetryEvent::RunEnd {
                iterations: 400,
                converged: false,
                final_hpwl: 14026.78,
                final_overflow: 0.2219,
                best_overflow: 0.2219,
                modeled_ns: 1_234_567_890,
                launches: 6_800,
            },
        ];
        for event in events {
            let line = event.to_json_string();
            let back = TelemetryEvent::from_json_str(&line)
                .unwrap_or_else(|e| panic!("decoding `{line}`: {e}"));
            assert_eq!(back, event);
        }
    }

    #[test]
    fn iteration_event_is_flat() {
        let event = TelemetryEvent::Iteration {
            record: sample_record(3),
            profile: ProfileDelta::default(),
        };
        let v = event.to_json();
        // The record's fields sit at the top level next to the tag.
        assert_eq!(v.field("event").unwrap().as_str().unwrap(), "iteration");
        assert_eq!(v.field("iteration").unwrap().as_f64().unwrap(), 3.0);
        assert!(v.field("hpwl").is_ok());
        assert!(v.field("profile").is_ok());
    }

    #[test]
    fn unknown_tags_and_stages_are_rejected() {
        assert!(TelemetryEvent::from_json_str(r#"{"event":"warp"}"#).is_err());
        assert!(Stage::parse("mid").is_err());
    }

    #[test]
    fn profile_delta_drops_wall_clock() {
        let snap = ProfileSnapshot {
            launches: 5,
            syncs: 2,
            launch_overhead_ns: 10,
            exec_ns: 20,
            pipelined_ns: 25,
            sync_stall_ns: 5,
            cpu_ns: 999_999, // wall-clock: must not reach the trace
        };
        let delta = ProfileDelta::from(snap);
        assert_eq!(delta.modeled_ns(), 30);
        assert!(!delta.to_json_string().contains("cpu_ns"));
    }
}
