//! The regression comparator behind `scripts/check_regression.sh`.
//!
//! Everything the device model produces is deterministic (modeled time,
//! launch counts, HPWL, iteration counts), so regressions in those
//! quantities hard-fail: there is no run-to-run noise to absorb. Only
//! wall-clock times are machine-dependent, and those merely warn.

use crate::{ExploreMetrics, RunReport, ScalingMetrics, SpectralMetrics};

/// Relative tolerances, in percent, for the gated quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Maximum final-HPWL regression (%).
    pub hpwl_pct: f64,
    /// Maximum modeled-GPU-time regression (%).
    pub modeled_time_pct: f64,
    /// Maximum kernel-launch-count growth (%).
    pub launches_pct: f64,
    /// Wall-clock growth (%) beyond which a *warning* is raised.
    pub wall_warn_pct: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            hpwl_pct: 2.0,
            modeled_time_pct: 5.0,
            launches_pct: 2.0,
            wall_warn_pct: 50.0,
        }
    }
}

/// Outcome of comparing a fresh [`RunReport`] against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Hard failures: structure mismatches and deterministic-quantity
    /// regressions beyond tolerance.
    pub failures: Vec<String>,
    /// Soft signals: wall-clock drift and other machine-dependent deltas.
    pub warnings: Vec<String>,
    /// Informational lines (improvements, matched quantities).
    pub notes: Vec<String>,
}

impl Comparison {
    /// `true` when no hard failure was found.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the comparison as a human-readable block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.failures {
            out.push_str(&format!("FAIL  {f}\n"));
        }
        for w in &self.warnings {
            out.push_str(&format!("warn  {w}\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("      {n}\n"));
        }
        out
    }
}

fn pct_change(baseline: f64, current: f64) -> f64 {
    if baseline == 0.0 {
        if current == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (current - baseline) / baseline * 100.0
    }
}

/// Compares `current` against `baseline` under `tol`.
///
/// Structure (design identity, configuration echo, iteration count) must
/// match exactly; HPWL, modeled time and launch counts may regress up to
/// their tolerance; improvements are noted; wall-clock drift only warns.
pub fn compare_reports(baseline: &RunReport, current: &RunReport, tol: &Tolerances) -> Comparison {
    let mut cmp = Comparison::default();

    // --- Structure: the runs must be the same experiment. ---
    if baseline.design != current.design {
        cmp.failures.push(format!(
            "design mismatch: baseline `{}` vs current `{}`",
            baseline.design, current.design
        ));
    }
    if (baseline.cells, baseline.nets) != (current.cells, current.nets) {
        cmp.failures.push(format!(
            "netlist mismatch: baseline {}c/{}n vs current {}c/{}n",
            baseline.cells, baseline.nets, current.cells, current.nets
        ));
    }
    if baseline.config != current.config {
        cmp.failures
            .push("config echo mismatch: the runs used different placer configurations".into());
    }
    if !cmp.failures.is_empty() {
        // Metric deltas are meaningless across different experiments.
        return cmp;
    }

    // --- Determinism: same experiment must take the same trajectory. ---
    if baseline.gp.iterations != current.gp.iterations {
        cmp.failures.push(format!(
            "iteration count changed: {} -> {} (the flow is deterministic; \
             re-record the baseline if this is intentional)",
            baseline.gp.iterations, current.gp.iterations
        ));
    }

    // --- Gated metrics (deterministic, so regressions hard-fail). ---
    let hpwl = pct_change(baseline.final_hpwl(), current.final_hpwl());
    if hpwl > tol.hpwl_pct {
        cmp.failures.push(format!(
            "HPWL regressed {hpwl:+.2}% ({:.1} -> {:.1}), tolerance {}%",
            baseline.final_hpwl(),
            current.final_hpwl(),
            tol.hpwl_pct
        ));
    } else if hpwl < -0.01 {
        cmp.notes.push(format!(
            "HPWL improved {hpwl:+.2}% ({:.1} -> {:.1})",
            baseline.final_hpwl(),
            current.final_hpwl()
        ));
    }

    let modeled = pct_change(baseline.gp.modeled_ns as f64, current.gp.modeled_ns as f64);
    if modeled > tol.modeled_time_pct {
        cmp.failures.push(format!(
            "modeled GP time regressed {modeled:+.2}% ({:.3}s -> {:.3}s), tolerance {}%",
            baseline.gp.modeled_seconds(),
            current.gp.modeled_seconds(),
            tol.modeled_time_pct
        ));
    } else if modeled < -0.01 {
        cmp.notes.push(format!(
            "modeled GP time improved {modeled:+.2}% ({:.3}s -> {:.3}s)",
            baseline.gp.modeled_seconds(),
            current.gp.modeled_seconds()
        ));
    }

    let launches = pct_change(baseline.gp.launches as f64, current.gp.launches as f64);
    if launches > tol.launches_pct {
        cmp.failures.push(format!(
            "kernel launches grew {launches:+.2}% ({} -> {}), tolerance {}%",
            baseline.gp.launches, current.gp.launches, tol.launches_pct
        ));
    }

    // --- Wall clock: machine-dependent, warn only. ---
    let wall = pct_change(baseline.gp.wall_seconds, current.gp.wall_seconds);
    if wall > tol.wall_warn_pct {
        cmp.warnings.push(format!(
            "GP wall time {wall:+.1}% ({:.2}s -> {:.2}s) — machine-dependent, not gated",
            baseline.gp.wall_seconds, current.gp.wall_seconds
        ));
    }

    // --- Spectral microbench (when the baseline recorded one). ---
    match (&baseline.spectral, &current.spectral) {
        (Some(base), Some(cur)) => compare_spectral(base, cur, tol, &mut cmp),
        (Some(_), None) => cmp.failures.push(
            "spectral microbench missing from current report (baseline has one) — \
             coverage was lost"
                .into(),
        ),
        (None, Some(_)) => cmp
            .notes
            .push("spectral microbench added (baseline has none)".into()),
        (None, None) => {}
    }

    // --- Scaling bench (when the baseline recorded one). ---
    match (&baseline.scaling, &current.scaling) {
        (Some(base), Some(cur)) => compare_scaling(base, cur, tol, &mut cmp),
        (Some(_), None) => cmp.failures.push(
            "scaling bench missing from current report (baseline has one) — \
             coverage was lost"
                .into(),
        ),
        (None, Some(_)) => cmp
            .notes
            .push("scaling bench added (baseline has none)".into()),
        (None, None) => {}
    }

    // --- Exploration (when the baseline recorded one). ---
    match (&baseline.explore, &current.explore) {
        (Some(base), Some(cur)) => compare_explore(base, cur, tol, &mut cmp),
        (Some(_), None) => cmp.failures.push(
            "exploration section missing from current report (baseline has one) — \
             coverage was lost"
                .into(),
        ),
        (None, Some(_)) => cmp
            .notes
            .push("exploration section added (baseline has none)".into()),
        (None, None) => {}
    }

    if cmp.passed() {
        cmp.notes.push(format!(
            "HPWL {:.1}, modeled GP {:.3}s, {} launches — within tolerance of baseline",
            current.final_hpwl(),
            current.gp.modeled_seconds(),
            current.gp.launches
        ));
    }
    cmp
}

/// Compares two spectral-microbench sections into `cmp`.
///
/// The grid set must match exactly (dropping a grid silently would hide a
/// regression). Per grid, `modeled_ns` is deterministic cost-model output
/// and hard-gates at `tol.modeled_time_pct`; `solve_wall_ns` is
/// machine-dependent and warns at `tol.wall_warn_pct`; the real-vs-complex
/// wall numbers are purely informational and never gate.
pub fn compare_spectral(
    baseline: &SpectralMetrics,
    current: &SpectralMetrics,
    tol: &Tolerances,
    cmp: &mut Comparison,
) {
    let base_grids: Vec<usize> = baseline.grids.iter().map(|g| g.n).collect();
    let cur_grids: Vec<usize> = current.grids.iter().map(|g| g.n).collect();
    if base_grids != cur_grids {
        cmp.failures.push(format!(
            "spectral grid set changed: baseline {base_grids:?} vs current {cur_grids:?} \
             (re-record the baseline if intentional)"
        ));
        return;
    }
    for (base, cur) in baseline.grids.iter().zip(&current.grids) {
        let modeled = pct_change(base.modeled_ns as f64, cur.modeled_ns as f64);
        if modeled > tol.modeled_time_pct {
            cmp.failures.push(format!(
                "spectral {n}x{n} modeled transform time regressed {modeled:+.2}% \
                 ({} -> {} ns/iter), tolerance {}%",
                base.modeled_ns,
                cur.modeled_ns,
                tol.modeled_time_pct,
                n = base.n
            ));
        } else if modeled < -0.01 {
            cmp.notes.push(format!(
                "spectral {n}x{n} modeled transform time improved {modeled:+.2}% \
                 ({} -> {} ns/iter)",
                base.modeled_ns,
                cur.modeled_ns,
                n = base.n
            ));
        }
        let wall = pct_change(base.solve_wall_ns as f64, cur.solve_wall_ns as f64);
        if wall > tol.wall_warn_pct {
            cmp.warnings.push(format!(
                "spectral {n}x{n} solve wall {wall:+.1}% ({} -> {} ns) — \
                 machine-dependent, not gated",
                base.solve_wall_ns,
                cur.solve_wall_ns,
                n = base.n
            ));
        }
        if cur.complex_wall_ns > 0 {
            cmp.notes.push(format!(
                "spectral {n}x{n} real path {:.2}x vs complex reference \
                 ({} vs {} ns, informational)",
                cur.complex_wall_ns as f64 / (cur.real_wall_ns.max(1)) as f64,
                cur.real_wall_ns,
                cur.complex_wall_ns,
                n = base.n
            ));
        }
    }
}

/// Compares two scaling-bench sections into `cmp`.
///
/// The point set — identified by (cells, topology, multilevel) — must
/// match exactly in order (dropping a size silently would hide a
/// regression). Per point, the iteration count must match exactly (the
/// flow is deterministic) and the per-cell modeled cost hard-gates at
/// `tol.modeled_time_pct`; wall-clock drift warns at `tol.wall_warn_pct`.
/// Additionally, whenever the current report carries a flat point, every
/// multilevel point's per-cell cost must stay at or below the *smallest*
/// flat point's (the anchor) beyond tolerance — small grids are
/// launch-latency-bound, so per-cell cost can only be amortized by
/// growing the design; the multilevel phase exists to keep that
/// amortization alive at the 100k–1M scale, and this pins the claim into
/// the gate.
pub fn compare_scaling(
    baseline: &ScalingMetrics,
    current: &ScalingMetrics,
    tol: &Tolerances,
    cmp: &mut Comparison,
) {
    let base_keys: Vec<_> = baseline.points.iter().map(|p| p.key()).collect();
    let cur_keys: Vec<_> = current.points.iter().map(|p| p.key()).collect();
    if base_keys != cur_keys {
        cmp.failures.push(format!(
            "scaling point set changed: baseline {base_keys:?} vs current {cur_keys:?} \
             (re-record the baseline if intentional)"
        ));
        return;
    }
    for (base, cur) in baseline.points.iter().zip(&current.points) {
        let label = format!(
            "scaling {}c/{}{}",
            base.cells,
            base.topology,
            if base.multilevel { "/multilevel" } else { "" }
        );
        if base.iterations != cur.iterations {
            cmp.failures.push(format!(
                "{label} iteration count changed: {} -> {} (the flow is deterministic; \
                 re-record the baseline if this is intentional)",
                base.iterations, cur.iterations
            ));
            continue;
        }
        let per_cell = pct_change(base.ns_per_cell_iter(), cur.ns_per_cell_iter());
        if per_cell > tol.modeled_time_pct {
            cmp.failures.push(format!(
                "{label} per-cell modeled cost regressed {per_cell:+.2}% \
                 ({:.3} -> {:.3} ns/cell/iter), tolerance {}%",
                base.ns_per_cell_iter(),
                cur.ns_per_cell_iter(),
                tol.modeled_time_pct
            ));
        } else if per_cell < -0.01 {
            cmp.notes.push(format!(
                "{label} per-cell modeled cost improved {per_cell:+.2}% \
                 ({:.3} -> {:.3} ns/cell/iter)",
                base.ns_per_cell_iter(),
                cur.ns_per_cell_iter()
            ));
        }
        let wall = pct_change(base.wall_seconds, cur.wall_seconds);
        if wall > tol.wall_warn_pct {
            cmp.warnings.push(format!(
                "{label} wall time {wall:+.1}% ({:.2}s -> {:.2}s) — \
                 machine-dependent, not gated",
                base.wall_seconds, cur.wall_seconds
            ));
        }
    }
    // The multilevel-vs-flat-anchor invariant, checked on the current
    // report: per-cell cost at scale must not exceed the flat baseline.
    let anchor = current
        .points
        .iter()
        .filter(|p| !p.multilevel)
        .min_by_key(|p| p.cells);
    if let Some(anchor) = anchor {
        for ml in current.points.iter().filter(|p| p.multilevel) {
            let delta = pct_change(anchor.ns_per_cell_iter(), ml.ns_per_cell_iter());
            if delta > tol.modeled_time_pct {
                cmp.failures.push(format!(
                    "scaling {}c: multilevel per-cell modeled cost exceeds the flat \
                     {}c anchor {delta:+.2}% ({:.3} vs {:.3} ns/cell/iter), tolerance {}%",
                    ml.cells,
                    anchor.cells,
                    ml.ns_per_cell_iter(),
                    anchor.ns_per_cell_iter(),
                    tol.modeled_time_pct
                ));
            } else {
                cmp.notes.push(format!(
                    "scaling {}c: multilevel per-cell modeled cost {:.3} vs flat {}c \
                     anchor {:.3} ns/cell/iter ({delta:+.2}%)",
                    ml.cells,
                    ml.ns_per_cell_iter(),
                    anchor.cells,
                    anchor.ns_per_cell_iter()
                ));
            }
        }
    }
}

/// Compares two exploration sections into `cmp`.
///
/// The population shape — member count, survivor count, generation count,
/// winner index and winner lineage — is deterministic output of the seeded
/// culling schedule and must match exactly (a shifted lineage means the
/// population took a different trajectory). The winner's HPWL hard-gates at
/// `tol.hpwl_pct` and the total modeled exploration cost at
/// `tol.modeled_time_pct`; improvements are noted.
pub fn compare_explore(
    baseline: &ExploreMetrics,
    current: &ExploreMetrics,
    tol: &Tolerances,
    cmp: &mut Comparison,
) {
    let base_shape = (
        baseline.members,
        baseline.keep,
        baseline.generations.len(),
        baseline.winner,
        &baseline.winner_lineage,
    );
    let cur_shape = (
        current.members,
        current.keep,
        current.generations.len(),
        current.winner,
        &current.winner_lineage,
    );
    if base_shape != cur_shape {
        cmp.failures.push(format!(
            "exploration structure changed: baseline {}m/keep{}/{}gen winner {} lineage {:?} \
             vs current {}m/keep{}/{}gen winner {} lineage {:?} \
             (re-record the baseline if intentional)",
            baseline.members,
            baseline.keep,
            baseline.generations.len(),
            baseline.winner,
            baseline.winner_lineage,
            current.members,
            current.keep,
            current.generations.len(),
            current.winner,
            current.winner_lineage,
        ));
        return;
    }
    let hpwl = pct_change(baseline.winner_hpwl, current.winner_hpwl);
    if hpwl > tol.hpwl_pct {
        cmp.failures.push(format!(
            "exploration winner HPWL regressed {hpwl:+.2}% ({:.1} -> {:.1}), tolerance {}%",
            baseline.winner_hpwl, current.winner_hpwl, tol.hpwl_pct
        ));
    } else if hpwl < -0.01 {
        cmp.notes.push(format!(
            "exploration winner HPWL improved {hpwl:+.2}% ({:.1} -> {:.1})",
            baseline.winner_hpwl, current.winner_hpwl
        ));
    }
    let modeled = pct_change(
        baseline.total_modeled_ns as f64,
        current.total_modeled_ns as f64,
    );
    if modeled > tol.modeled_time_pct {
        cmp.failures.push(format!(
            "exploration total modeled time regressed {modeled:+.2}% \
             ({:.3}s -> {:.3}s), tolerance {}%",
            baseline.total_modeled_ns as f64 / 1e9,
            current.total_modeled_ns as f64 / 1e9,
            tol.modeled_time_pct
        ));
    } else if modeled < -0.01 {
        cmp.notes.push(format!(
            "exploration total modeled time improved {modeled:+.2}% ({:.3}s -> {:.3}s)",
            baseline.total_modeled_ns as f64 / 1e9,
            current.total_modeled_ns as f64 / 1e9
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::tests::sample_report;

    #[test]
    fn identical_reports_pass() {
        let base = sample_report();
        let cmp = compare_reports(&base, &base.clone(), &Tolerances::default());
        assert!(cmp.passed(), "{:?}", cmp.failures);
        assert!(cmp.warnings.is_empty());
    }

    #[test]
    fn hpwl_regression_beyond_tolerance_fails() {
        let base = sample_report();
        let mut cur = base.clone();
        // final_hpwl() reads the DP stage.
        cur.dp.as_mut().unwrap().final_hpwl *= 1.10;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(
            cmp.failures[0].contains("HPWL regressed"),
            "{:?}",
            cmp.failures
        );
    }

    #[test]
    fn hpwl_improvement_is_a_note_not_a_failure() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.dp.as_mut().unwrap().final_hpwl *= 0.90;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(cmp.passed());
        assert!(cmp.notes.iter().any(|n| n.contains("HPWL improved")));
    }

    #[test]
    fn modeled_time_regression_fails() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.gp.modeled_ns = (cur.gp.modeled_ns as f64 * 1.2) as u64;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(cmp
            .failures
            .iter()
            .any(|f| f.contains("modeled GP time regressed")));
    }

    #[test]
    fn launch_growth_fails() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.gp.launches += cur.gp.launches / 10;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(cmp.failures.iter().any(|f| f.contains("launches grew")));
    }

    #[test]
    fn wall_clock_drift_only_warns() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.gp.wall_seconds *= 3.0; // a slower machine, not a regression
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(cmp.passed());
        assert!(!cmp.warnings.is_empty());
        assert!(cmp.render().contains("warn"));
    }

    #[test]
    fn structure_mismatch_fails_before_metrics() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.design = "other".into();
        cur.dp.as_mut().unwrap().final_hpwl *= 2.0;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert_eq!(cmp.failures.len(), 1, "{:?}", cmp.failures);
        assert!(cmp.failures[0].contains("design mismatch"));
    }

    #[test]
    fn iteration_count_change_fails() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.gp.iterations += 1;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(cmp
            .failures
            .iter()
            .any(|f| f.contains("iteration count changed")));
    }

    #[test]
    fn spectral_modeled_regression_fails() {
        let base = sample_report();
        let mut cur = base.clone();
        let grid = &mut cur.spectral.as_mut().unwrap().grids[1];
        grid.modeled_ns = (grid.modeled_ns as f64 * 1.10) as u64;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(
            cmp.failures
                .iter()
                .any(|f| f.contains("spectral 512x512 modeled transform time regressed")),
            "{:?}",
            cmp.failures
        );
    }

    #[test]
    fn spectral_modeled_improvement_is_a_note() {
        let base = sample_report();
        let mut cur = base.clone();
        for g in &mut cur.spectral.as_mut().unwrap().grids {
            g.modeled_ns = (g.modeled_ns as f64 * 0.8) as u64;
        }
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(cmp.passed(), "{:?}", cmp.failures);
        assert!(cmp
            .notes
            .iter()
            .any(|n| n.contains("spectral 256x256 modeled transform time improved")));
    }

    #[test]
    fn spectral_wall_drift_only_warns() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.spectral.as_mut().unwrap().grids[0].solve_wall_ns *= 3;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(cmp.passed(), "{:?}", cmp.failures);
        assert!(cmp
            .warnings
            .iter()
            .any(|w| w.contains("spectral 256x256 solve wall")));
    }

    #[test]
    fn dropping_the_spectral_section_fails() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.spectral = None;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(cmp
            .failures
            .iter()
            .any(|f| f.contains("spectral microbench missing")));
    }

    #[test]
    fn changing_the_spectral_grid_set_fails() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.spectral.as_mut().unwrap().grids.pop();
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(cmp
            .failures
            .iter()
            .any(|f| f.contains("spectral grid set changed")));
    }

    #[test]
    fn scaling_per_cell_regression_fails() {
        let base = sample_report();
        let mut cur = base.clone();
        let point = &mut cur.scaling.as_mut().unwrap().points[0];
        point.modeled_ns = (point.modeled_ns as f64 * 1.10) as u64;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(
            cmp.failures
                .iter()
                .any(|f| f.contains("scaling 10000c/random per-cell modeled cost regressed")),
            "{:?}",
            cmp.failures
        );
    }

    #[test]
    fn scaling_improvement_is_a_note() {
        let base = sample_report();
        let mut cur = base.clone();
        for p in &mut cur.scaling.as_mut().unwrap().points {
            p.modeled_ns = (p.modeled_ns as f64 * 0.8) as u64;
        }
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(cmp.passed(), "{:?}", cmp.failures);
        assert!(cmp
            .notes
            .iter()
            .any(|n| n.contains("per-cell modeled cost improved")));
    }

    #[test]
    fn scaling_iteration_change_fails() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.scaling.as_mut().unwrap().points[1].iterations += 1;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(cmp
            .failures
            .iter()
            .any(|f| f.contains("scaling 100000c/systolic/multilevel iteration count changed")));
    }

    #[test]
    fn scaling_wall_drift_only_warns() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.scaling.as_mut().unwrap().points[0].wall_seconds *= 3.0;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(cmp.passed(), "{:?}", cmp.failures);
        assert!(cmp.warnings.iter().any(|w| w.contains("scaling 10000c")));
    }

    #[test]
    fn dropping_the_scaling_section_fails() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.scaling = None;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(cmp
            .failures
            .iter()
            .any(|f| f.contains("scaling bench missing")));
    }

    #[test]
    fn changing_the_scaling_point_set_fails() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.scaling.as_mut().unwrap().points.pop();
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(cmp
            .failures
            .iter()
            .any(|f| f.contains("scaling point set changed")));
    }

    #[test]
    fn multilevel_costlier_than_flat_fails_even_when_matching_its_baseline() {
        // The multilevel-vs-flat invariant is an absolute property of the
        // current report: it must fail even when baseline and current agree.
        let mut base = sample_report();
        {
            let points = &mut base.scaling.as_mut().unwrap().points;
            // Make the multilevel per-cell cost 2x the flat anchor's in
            // *both* reports (anchor is 6.0 ns/cell/iter).
            let ml = &mut points[1];
            ml.modeled_ns = (ml.cells * ml.iterations) as u64 * 12;
        }
        let cur = base.clone();
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(
            cmp.failures
                .iter()
                .any(|f| f.contains("multilevel per-cell modeled cost exceeds the flat")),
            "{:?}",
            cmp.failures
        );
    }

    #[test]
    fn explore_winner_hpwl_regression_fails() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.explore.as_mut().unwrap().winner_hpwl *= 1.10;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(
            cmp.failures
                .iter()
                .any(|f| f.contains("exploration winner HPWL regressed")),
            "{:?}",
            cmp.failures
        );
    }

    #[test]
    fn explore_improvement_is_a_note() {
        let base = sample_report();
        let mut cur = base.clone();
        {
            let explore = cur.explore.as_mut().unwrap();
            explore.winner_hpwl *= 0.9;
            explore.total_modeled_ns = (explore.total_modeled_ns as f64 * 0.8) as u64;
        }
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(cmp.passed(), "{:?}", cmp.failures);
        assert!(cmp
            .notes
            .iter()
            .any(|n| n.contains("exploration winner HPWL improved")));
        assert!(cmp
            .notes
            .iter()
            .any(|n| n.contains("exploration total modeled time improved")));
    }

    #[test]
    fn explore_modeled_time_regression_fails() {
        let base = sample_report();
        let mut cur = base.clone();
        let explore = cur.explore.as_mut().unwrap();
        explore.total_modeled_ns = (explore.total_modeled_ns as f64 * 1.2) as u64;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(cmp
            .failures
            .iter()
            .any(|f| f.contains("exploration total modeled time regressed")));
    }

    #[test]
    fn explore_structure_change_fails() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.explore.as_mut().unwrap().winner_lineage = vec![0, 1];
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(cmp
            .failures
            .iter()
            .any(|f| f.contains("exploration structure changed")));
    }

    #[test]
    fn dropping_the_explore_section_fails() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.explore = None;
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(cmp
            .failures
            .iter()
            .any(|f| f.contains("exploration section missing")));
    }

    #[test]
    fn adding_an_explore_section_is_a_note() {
        let mut base = sample_report();
        base.explore = None;
        let cur = sample_report();
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(cmp.passed(), "{:?}", cmp.failures);
        assert!(cmp
            .notes
            .iter()
            .any(|n| n.contains("exploration section added")));
    }

    #[test]
    fn adding_a_spectral_section_is_a_note() {
        let mut base = sample_report();
        base.spectral = None;
        let cur = sample_report();
        let cmp = compare_reports(&base, &cur, &Tolerances::default());
        assert!(cmp.passed(), "{:?}", cmp.failures);
        assert!(cmp
            .notes
            .iter()
            .any(|n| n.contains("spectral microbench added")));
    }
}
