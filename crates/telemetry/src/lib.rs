//! Structured run telemetry for the xplace workspace.
//!
//! The paper's efficiency argument (Tables 2–4, §3.1) is made through
//! *measurement*: per-iteration modeled GPU time, launch counts, and the
//! ω/r schedule trace. This crate turns those measurements into
//! machine-readable artifacts:
//!
//! * [`TelemetryEvent`] — a typed event stream: per-iteration
//!   [`IterationRecord`]s with [`ProfileDelta`]s, ω-stage transitions,
//!   skip-window on/off flips, λ updates, rollback and run start/end
//!   markers,
//! * [`TelemetrySink`] — the trait the placer emits events through;
//!   [`NullSink`] makes the hot loop free when tracing is off,
//!   [`VecSink`] collects in memory, [`JsonLinesSink`] streams JSON-lines,
//! * [`Recorder`] — the per-iteration metric store (the "recorder" block
//!   of the paper's Figure 1), usable standalone or as a sink,
//! * [`RunReport`] — the single-JSON summary of a full GP → LG → DP run
//!   (metrics, config echo, thread count, wall + modeled time),
//! * [`compare_reports`] — the regression comparator behind
//!   `scripts/check_regression.sh`: deterministic quantities (HPWL,
//!   modeled time, launch counts, structure) hard-fail beyond tolerance,
//!   wall-clock drift only warns,
//! * [`BatchReport`] — the manifest-ordered array of per-job records
//!   ([`JobRecord`]: status + optional [`RunReport`]) a batch run writes;
//!   [`compare_batch_reports`] gates it job by job through the same
//!   tolerances.
//!
//! Everything serializes through `xplace-testkit`'s hand-rolled
//! [`ToJson`](xplace_testkit::json::ToJson) /
//! [`FromJson`](xplace_testkit::json::FromJson) traits, keeping the
//! workspace hermetic (zero registry dependencies).
//!
//! # Determinism contract
//!
//! A trace contains **no wall-clock quantities** — only modeled-device
//! and schedule state. Two runs with the same seed must therefore render
//! byte-identical JSON-lines, and because every kernel decomposition is
//! thread-count-invariant, so must runs with different `--threads`
//! values. (The thread count lives in the [`RunReport`], which also
//! carries wall-clock times and is *not* byte-compared.)

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod event;
mod recorder;
mod regression;
mod report;
mod sink;

pub use batch::{compare_batch_reports, BatchReport, JobRecord, JobStatus};
pub use event::{stage_of, ConfigEcho, IterationRecord, ProfileDelta, Stage, TelemetryEvent};
pub use recorder::Recorder;
pub use regression::{
    compare_explore, compare_reports, compare_scaling, compare_spectral, Comparison, Tolerances,
};
pub use report::{
    DpMetrics, ExploreGeneration, ExploreMember, ExploreMetrics, GpMetrics, LgMetrics,
    RouteMetrics, RunReport, ScalingMetrics, ScalingPoint, SpectralGrid, SpectralMetrics,
};
pub use sink::{parse_trace, CallbackSink, JsonLinesSink, NullSink, TelemetrySink, VecSink};
// Serialization traits re-exported so downstream binaries can render and
// load telemetry artifacts without a direct `xplace-testkit` dependency.
pub use xplace_testkit::json::{FromJson, Json, JsonError, ToJson};
