//! The machine-readable summary of one full placement run.

use crate::ConfigEcho;
use xplace_testkit::json::{FromJson, Json, JsonError, ToJson};

/// Global-placement metrics of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct GpMetrics {
    /// Iterations executed.
    pub iterations: usize,
    /// HPWL at the initial (clustered) state.
    pub initial_hpwl: f64,
    /// HPWL of the final placement.
    pub final_hpwl: f64,
    /// Overflow ratio at the initial state.
    pub initial_overflow: f64,
    /// Overflow ratio at the final state.
    pub final_overflow: f64,
    /// Whether the overflow target was reached.
    pub converged: bool,
    /// Total modeled GPU time (ns) — deterministic.
    pub modeled_ns: u64,
    /// Total kernel launches — deterministic.
    pub launches: u64,
    /// Total host synchronizations — deterministic.
    pub syncs: u64,
    /// Wall-clock seconds — machine-dependent, never gated on.
    pub wall_seconds: f64,
}

impl GpMetrics {
    /// Modeled GPU time in seconds (the paper's "GP/s" column).
    pub fn modeled_seconds(&self) -> f64 {
        self.modeled_ns as f64 / 1e9
    }

    /// Mean modeled time per iteration in milliseconds (Table 3's
    /// "GP / Iter Time").
    pub fn modeled_ms_per_iter(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.modeled_ns as f64 / 1e6 / self.iterations as f64
        }
    }
}

/// Legalization metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct LgMetrics {
    /// HPWL before legalization.
    pub initial_hpwl: f64,
    /// HPWL after legalization.
    pub final_hpwl: f64,
    /// Mean displacement of movable cells.
    pub mean_displacement: f64,
    /// Maximum displacement of a movable cell.
    pub max_displacement: f64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
}

/// Detailed-placement metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct DpMetrics {
    /// HPWL before detailed placement.
    pub initial_hpwl: f64,
    /// HPWL after detailed placement.
    pub final_hpwl: f64,
    /// Applied intra-row slides.
    pub slides: usize,
    /// Applied adjacent reorders.
    pub reorders: usize,
    /// Applied global swaps.
    pub swaps: usize,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
}

/// Routability metrics from the RUDY congestion estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteMetrics {
    /// Mean utilization of the top-5% most congested gcells.
    pub top5_overflow: f64,
    /// Maximum gcell utilization.
    pub max_utilization: f64,
}

/// One grid size of the spectral microbench: the per-iteration transform
/// cost of the electrostatic Poisson solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralGrid {
    /// Grid edge length (the solve covers an `n x n` grid).
    pub n: usize,
    /// Modeled device time (ns) of the two spectral kernels — deterministic
    /// (pure cost-model arithmetic) and therefore gated.
    pub modeled_ns: u64,
    /// Wall-clock ns per full `solve_into` — machine-dependent, warn-only.
    pub solve_wall_ns: u64,
    /// Wall-clock ns for a row batch of packed-real DCT transforms —
    /// informational evidence for the real-vs-complex speedup.
    pub real_wall_ns: u64,
    /// Wall-clock ns for the same batch through the retained complex-FFT
    /// reference path — informational.
    pub complex_wall_ns: u64,
}

/// The spectral-microbench section of a report: one entry per grid size.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralMetrics {
    /// Per-grid measurements, ascending by `n`.
    pub grids: Vec<SpectralGrid>,
}

impl SpectralMetrics {
    /// The entry for grid size `n`, if measured.
    pub fn grid(&self, n: usize) -> Option<&SpectralGrid> {
        self.grids.iter().find(|g| g.n == n)
    }
}

/// One design size of the scaling bench: the per-cell modeled cost of a
/// global-placement run at that scale, flat or multilevel.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Movable + fixed cell count of the synthesized design.
    pub cells: usize,
    /// Net count of the synthesized design.
    pub nets: usize,
    /// Synthesis topology name (`random` / `systolic` / `butterfly`).
    pub topology: String,
    /// Whether the run used the multilevel (coarsen/uncoarsen) phase.
    pub multilevel: bool,
    /// Total GP iterations (multilevel runs include coarse-level
    /// iterations) — deterministic.
    pub iterations: usize,
    /// Total modeled GPU time (ns) of the run — deterministic.
    pub modeled_ns: u64,
    /// Final density overflow — deterministic, informational.
    pub final_overflow: f64,
    /// Wall-clock seconds — machine-dependent, warn-only.
    pub wall_seconds: f64,
}

impl ScalingPoint {
    /// Modeled ns per cell per GP iteration — the gated per-cell cost.
    /// Coarse-level iterations of a multilevel run touch fewer cells and
    /// are charged against the full cell count, so multilevel runs must
    /// come out *at or below* the flat path at the same size.
    pub fn ns_per_cell_iter(&self) -> f64 {
        let denom = (self.cells * self.iterations.max(1)) as f64;
        self.modeled_ns as f64 / denom.max(1.0)
    }

    /// A stable identity for point-set matching across reports.
    pub fn key(&self) -> (usize, String, bool) {
        (self.cells, self.topology.clone(), self.multilevel)
    }
}

/// The scaling-bench section of a report: one entry per (size, topology,
/// multilevel) case.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingMetrics {
    /// Per-case measurements, in recorded order.
    pub points: Vec<ScalingPoint>,
}

impl ScalingMetrics {
    /// The entry for `cells` with the given multilevel setting, if
    /// measured (topology-agnostic lookup).
    pub fn point(&self, cells: usize, multilevel: bool) -> Option<&ScalingPoint> {
        self.points
            .iter()
            .find(|p| p.cells == cells && p.multilevel == multilevel)
    }
}

/// One population member's standing at an exploration generation
/// barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreMember {
    /// Member slot index (slot 0 carries the unperturbed base seed).
    pub member: usize,
    /// HPWL at the generation boundary — deterministic.
    pub hpwl: f64,
    /// Density overflow at the boundary — deterministic.
    pub overflow: f64,
    /// Selection score (lower is better); ties resolve to the lower
    /// member index.
    pub score: f64,
    /// Whether this member was culled at this barrier.
    pub culled: bool,
    /// When this slot was refilled at the start of the generation: the
    /// member whose snapshot it branched from.
    pub branched_from: Option<usize>,
    /// Perturbation seed of the branch (lineage replay needs it).
    pub perturbation_seed: Option<u64>,
}

/// One generation of the exploration loop: the population evaluated at a
/// fixed checkpoint barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreGeneration {
    /// Generation number, 0-based.
    pub generation: usize,
    /// GP iteration of the barrier (members paused/finished here).
    pub iteration: usize,
    /// Every member's standing, ascending by slot index.
    pub members: Vec<ExploreMember>,
    /// Best member at this barrier.
    pub best: usize,
}

/// The exploration section of a report: the full population history of a
/// `--explore K` run. Everything here is deterministic (same seed ⇒ same
/// lineage at any thread count), so the regression gate compares it
/// hard. The lineage — which member branched from which snapshot with
/// which perturbation seed at which generation — is replayable from
/// this section alone.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreMetrics {
    /// Population size K.
    pub members: usize,
    /// Survivors kept at each cull.
    pub keep: usize,
    /// Per-generation population history.
    pub generations: Vec<ExploreGeneration>,
    /// Winning member slot.
    pub winner: usize,
    /// The winner's ancestor slot at each generation, oldest first —
    /// the trace-stitching path.
    pub winner_lineage: Vec<usize>,
    /// Final GP HPWL of the winner — deterministic, gated.
    pub winner_hpwl: f64,
    /// Total modeled device time across every member and generation —
    /// the exploration budget actually spent, deterministic, gated.
    pub total_modeled_ns: u64,
}

/// The single-JSON report of one full GP → LG → DP run: the artifact
/// `xplace place --report` and the bench binaries write, and the unit
/// `scripts/check_regression.sh` compares.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Design name.
    pub design: String,
    /// Total cells.
    pub cells: usize,
    /// Nets.
    pub nets: usize,
    /// Configuration echo (see [`ConfigEcho`] for why it excludes the
    /// thread count).
    pub config: ConfigEcho,
    /// Worker-thread count of the run (wall-clock only; all metrics are
    /// thread-count-invariant).
    pub threads: usize,
    /// Global placement.
    pub gp: GpMetrics,
    /// Legalization (absent for GP-only runs).
    pub lg: Option<LgMetrics>,
    /// Detailed placement (absent for GP-only runs).
    pub dp: Option<DpMetrics>,
    /// Routability estimate (absent when not computed).
    pub route: Option<RouteMetrics>,
    /// Spectral microbench (absent unless the run recorded it). Reports
    /// written before this field existed parse as `None`.
    pub spectral: Option<SpectralMetrics>,
    /// Scaling bench (absent unless the run recorded it). Reports written
    /// before this field existed parse as `None`.
    pub scaling: Option<ScalingMetrics>,
    /// Exploration section (absent unless the run used `--explore`).
    /// Reports written before this field existed parse as `None`.
    pub explore: Option<ExploreMetrics>,
    /// A trace-sink I/O failure observed during the run (e.g. the disk
    /// behind `--trace` filled up). The placement result is still valid
    /// but the trace file is incomplete, so drivers must treat this as a
    /// run failure. Reports written before this field existed parse as
    /// `None`.
    pub trace_error: Option<String>,
}

impl RunReport {
    /// The HPWL of the most downstream stage the run executed
    /// (DP, else LG, else GP).
    pub fn final_hpwl(&self) -> f64 {
        self.dp
            .as_ref()
            .map(|d| d.final_hpwl)
            .or_else(|| self.lg.as_ref().map(|l| l.final_hpwl))
            .unwrap_or(self.gp.final_hpwl)
    }
}

impl ToJson for GpMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("iterations", self.iterations.to_json()),
            ("initial_hpwl", self.initial_hpwl.to_json()),
            ("final_hpwl", self.final_hpwl.to_json()),
            ("initial_overflow", self.initial_overflow.to_json()),
            ("final_overflow", self.final_overflow.to_json()),
            ("converged", self.converged.to_json()),
            ("modeled_ns", self.modeled_ns.to_json()),
            ("launches", self.launches.to_json()),
            ("syncs", self.syncs.to_json()),
            ("wall_seconds", self.wall_seconds.to_json()),
        ])
    }
}

impl FromJson for GpMetrics {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(GpMetrics {
            iterations: usize::from_json(value.field("iterations")?)?,
            initial_hpwl: f64::from_json(value.field("initial_hpwl")?)?,
            final_hpwl: f64::from_json(value.field("final_hpwl")?)?,
            initial_overflow: f64::from_json(value.field("initial_overflow")?)?,
            final_overflow: f64::from_json(value.field("final_overflow")?)?,
            converged: bool::from_json(value.field("converged")?)?,
            modeled_ns: u64::from_json(value.field("modeled_ns")?)?,
            launches: u64::from_json(value.field("launches")?)?,
            syncs: u64::from_json(value.field("syncs")?)?,
            wall_seconds: f64::from_json(value.field("wall_seconds")?)?,
        })
    }
}

impl ToJson for LgMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("initial_hpwl", self.initial_hpwl.to_json()),
            ("final_hpwl", self.final_hpwl.to_json()),
            ("mean_displacement", self.mean_displacement.to_json()),
            ("max_displacement", self.max_displacement.to_json()),
            ("wall_seconds", self.wall_seconds.to_json()),
        ])
    }
}

impl FromJson for LgMetrics {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(LgMetrics {
            initial_hpwl: f64::from_json(value.field("initial_hpwl")?)?,
            final_hpwl: f64::from_json(value.field("final_hpwl")?)?,
            mean_displacement: f64::from_json(value.field("mean_displacement")?)?,
            max_displacement: f64::from_json(value.field("max_displacement")?)?,
            wall_seconds: f64::from_json(value.field("wall_seconds")?)?,
        })
    }
}

impl ToJson for DpMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("initial_hpwl", self.initial_hpwl.to_json()),
            ("final_hpwl", self.final_hpwl.to_json()),
            ("slides", self.slides.to_json()),
            ("reorders", self.reorders.to_json()),
            ("swaps", self.swaps.to_json()),
            ("wall_seconds", self.wall_seconds.to_json()),
        ])
    }
}

impl FromJson for DpMetrics {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(DpMetrics {
            initial_hpwl: f64::from_json(value.field("initial_hpwl")?)?,
            final_hpwl: f64::from_json(value.field("final_hpwl")?)?,
            slides: usize::from_json(value.field("slides")?)?,
            reorders: usize::from_json(value.field("reorders")?)?,
            swaps: usize::from_json(value.field("swaps")?)?,
            wall_seconds: f64::from_json(value.field("wall_seconds")?)?,
        })
    }
}

impl ToJson for RouteMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("top5_overflow", self.top5_overflow.to_json()),
            ("max_utilization", self.max_utilization.to_json()),
        ])
    }
}

impl FromJson for RouteMetrics {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(RouteMetrics {
            top5_overflow: f64::from_json(value.field("top5_overflow")?)?,
            max_utilization: f64::from_json(value.field("max_utilization")?)?,
        })
    }
}

impl ToJson for SpectralGrid {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", self.n.to_json()),
            ("modeled_ns", self.modeled_ns.to_json()),
            ("solve_wall_ns", self.solve_wall_ns.to_json()),
            ("real_wall_ns", self.real_wall_ns.to_json()),
            ("complex_wall_ns", self.complex_wall_ns.to_json()),
        ])
    }
}

impl FromJson for SpectralGrid {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(SpectralGrid {
            n: usize::from_json(value.field("n")?)?,
            modeled_ns: u64::from_json(value.field("modeled_ns")?)?,
            solve_wall_ns: u64::from_json(value.field("solve_wall_ns")?)?,
            real_wall_ns: u64::from_json(value.field("real_wall_ns")?)?,
            complex_wall_ns: u64::from_json(value.field("complex_wall_ns")?)?,
        })
    }
}

impl ToJson for SpectralMetrics {
    fn to_json(&self) -> Json {
        Json::obj([("grids", self.grids.to_json())])
    }
}

impl FromJson for SpectralMetrics {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(SpectralMetrics {
            grids: Vec::<SpectralGrid>::from_json(value.field("grids")?)?,
        })
    }
}

impl ToJson for ScalingPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cells", self.cells.to_json()),
            ("nets", self.nets.to_json()),
            ("topology", self.topology.to_json()),
            ("multilevel", self.multilevel.to_json()),
            ("iterations", self.iterations.to_json()),
            ("modeled_ns", self.modeled_ns.to_json()),
            ("final_overflow", self.final_overflow.to_json()),
            ("wall_seconds", self.wall_seconds.to_json()),
        ])
    }
}

impl FromJson for ScalingPoint {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ScalingPoint {
            cells: usize::from_json(value.field("cells")?)?,
            nets: usize::from_json(value.field("nets")?)?,
            topology: String::from_json(value.field("topology")?)?,
            multilevel: bool::from_json(value.field("multilevel")?)?,
            iterations: usize::from_json(value.field("iterations")?)?,
            modeled_ns: u64::from_json(value.field("modeled_ns")?)?,
            final_overflow: f64::from_json(value.field("final_overflow")?)?,
            wall_seconds: f64::from_json(value.field("wall_seconds")?)?,
        })
    }
}

impl ToJson for ScalingMetrics {
    fn to_json(&self) -> Json {
        Json::obj([("points", self.points.to_json())])
    }
}

impl FromJson for ScalingMetrics {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ScalingMetrics {
            points: Vec::<ScalingPoint>::from_json(value.field("points")?)?,
        })
    }
}

impl ToJson for ExploreMember {
    fn to_json(&self) -> Json {
        Json::obj([
            ("member", self.member.to_json()),
            ("hpwl", self.hpwl.to_json()),
            ("overflow", self.overflow.to_json()),
            ("score", self.score.to_json()),
            ("culled", self.culled.to_json()),
            ("branched_from", self.branched_from.to_json()),
            ("perturbation_seed", self.perturbation_seed.to_json()),
        ])
    }
}

impl FromJson for ExploreMember {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ExploreMember {
            member: usize::from_json(value.field("member")?)?,
            hpwl: f64::from_json(value.field("hpwl")?)?,
            overflow: f64::from_json(value.field("overflow")?)?,
            score: f64::from_json(value.field("score")?)?,
            culled: bool::from_json(value.field("culled")?)?,
            branched_from: Option::<usize>::from_json(value.field("branched_from")?)?,
            perturbation_seed: Option::<u64>::from_json(value.field("perturbation_seed")?)?,
        })
    }
}

impl ToJson for ExploreGeneration {
    fn to_json(&self) -> Json {
        Json::obj([
            ("generation", self.generation.to_json()),
            ("iteration", self.iteration.to_json()),
            ("members", self.members.to_json()),
            ("best", self.best.to_json()),
        ])
    }
}

impl FromJson for ExploreGeneration {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ExploreGeneration {
            generation: usize::from_json(value.field("generation")?)?,
            iteration: usize::from_json(value.field("iteration")?)?,
            members: Vec::<ExploreMember>::from_json(value.field("members")?)?,
            best: usize::from_json(value.field("best")?)?,
        })
    }
}

impl ToJson for ExploreMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("members", self.members.to_json()),
            ("keep", self.keep.to_json()),
            ("generations", self.generations.to_json()),
            ("winner", self.winner.to_json()),
            ("winner_lineage", self.winner_lineage.to_json()),
            ("winner_hpwl", self.winner_hpwl.to_json()),
            ("total_modeled_ns", self.total_modeled_ns.to_json()),
        ])
    }
}

impl FromJson for ExploreMetrics {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ExploreMetrics {
            members: usize::from_json(value.field("members")?)?,
            keep: usize::from_json(value.field("keep")?)?,
            generations: Vec::<ExploreGeneration>::from_json(value.field("generations")?)?,
            winner: usize::from_json(value.field("winner")?)?,
            winner_lineage: Vec::<usize>::from_json(value.field("winner_lineage")?)?,
            winner_hpwl: f64::from_json(value.field("winner_hpwl")?)?,
            total_modeled_ns: u64::from_json(value.field("total_modeled_ns")?)?,
        })
    }
}

impl ToJson for RunReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("design", self.design.to_json()),
            ("cells", self.cells.to_json()),
            ("nets", self.nets.to_json()),
            ("config", self.config.to_json()),
            ("threads", self.threads.to_json()),
            ("gp", self.gp.to_json()),
            ("lg", self.lg.to_json()),
            ("dp", self.dp.to_json()),
            ("route", self.route.to_json()),
            ("spectral", self.spectral.to_json()),
            ("scaling", self.scaling.to_json()),
            ("explore", self.explore.to_json()),
            ("trace_error", self.trace_error.to_json()),
        ])
    }
}

impl FromJson for RunReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(RunReport {
            design: String::from_json(value.field("design")?)?,
            cells: usize::from_json(value.field("cells")?)?,
            nets: usize::from_json(value.field("nets")?)?,
            config: ConfigEcho::from_json(value.field("config")?)?,
            threads: usize::from_json(value.field("threads")?)?,
            gp: GpMetrics::from_json(value.field("gp")?)?,
            lg: Option::<LgMetrics>::from_json(value.field("lg")?)?,
            dp: Option::<DpMetrics>::from_json(value.field("dp")?)?,
            route: Option::<RouteMetrics>::from_json(value.field("route")?)?,
            // Tolerant of pre-spectral reports where the key is absent.
            spectral: match value.get("spectral") {
                Some(v) => Option::<SpectralMetrics>::from_json(v)?,
                None => None,
            },
            // Likewise tolerant of pre-scaling reports.
            scaling: match value.get("scaling") {
                Some(v) => Option::<ScalingMetrics>::from_json(v)?,
                None => None,
            },
            // Likewise tolerant of pre-exploration reports.
            explore: match value.get("explore") {
                Some(v) => Option::<ExploreMetrics>::from_json(v)?,
                None => None,
            },
            // Likewise tolerant of reports predating sticky-sink surfacing.
            trace_error: match value.get("trace_error") {
                Some(v) => Option::<String>::from_json(v)?,
                None => None,
            },
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_report() -> RunReport {
        RunReport {
            design: "golden".into(),
            cells: 500,
            nets: 525,
            config: ConfigEcho {
                framework: "xplace".into(),
                reduction: true,
                combination: true,
                extraction: true,
                skipping: true,
                stage_aware: true,
                max_iterations: 400,
                stop_overflow: 0.1,
                seed: 20_220_714,
                grid: None,
                multilevel: false,
            },
            threads: 4,
            gp: GpMetrics {
                iterations: 400,
                initial_hpwl: 4000.0,
                final_hpwl: 14026.78,
                initial_overflow: 0.98,
                final_overflow: 0.2219,
                converged: false,
                modeled_ns: 987_654_321,
                launches: 6_800,
                syncs: 400,
                wall_seconds: 1.25,
            },
            lg: Some(LgMetrics {
                initial_hpwl: 14026.78,
                final_hpwl: 14500.0,
                mean_displacement: 1.2,
                max_displacement: 9.5,
                wall_seconds: 0.01,
            }),
            dp: Some(DpMetrics {
                initial_hpwl: 14500.0,
                final_hpwl: 14100.0,
                slides: 120,
                reorders: 30,
                swaps: 4,
                wall_seconds: 0.02,
            }),
            route: Some(RouteMetrics {
                top5_overflow: 42.0,
                max_utilization: 1.4,
            }),
            spectral: Some(SpectralMetrics {
                grids: vec![
                    SpectralGrid {
                        n: 256,
                        modeled_ns: 12_000,
                        solve_wall_ns: 300_000,
                        real_wall_ns: 90_000,
                        complex_wall_ns: 160_000,
                    },
                    SpectralGrid {
                        n: 512,
                        modeled_ns: 40_000,
                        solve_wall_ns: 1_400_000,
                        real_wall_ns: 420_000,
                        complex_wall_ns: 760_000,
                    },
                ],
            }),
            scaling: Some(ScalingMetrics {
                points: vec![
                    ScalingPoint {
                        cells: 10_000,
                        nets: 10_500,
                        topology: "random".into(),
                        multilevel: false,
                        iterations: 60,
                        modeled_ns: 3_600_000,
                        final_overflow: 0.6,
                        wall_seconds: 0.8,
                    },
                    ScalingPoint {
                        cells: 100_000,
                        nets: 105_000,
                        topology: "systolic".into(),
                        multilevel: true,
                        iterations: 340,
                        modeled_ns: 20_400_000,
                        final_overflow: 0.5,
                        wall_seconds: 30.0,
                    },
                ],
            }),
            explore: Some(ExploreMetrics {
                members: 4,
                keep: 2,
                generations: vec![
                    ExploreGeneration {
                        generation: 0,
                        iteration: 100,
                        members: vec![
                            ExploreMember {
                                member: 0,
                                hpwl: 15000.0,
                                overflow: 0.42,
                                score: 21300.0,
                                culled: false,
                                branched_from: None,
                                perturbation_seed: None,
                            },
                            ExploreMember {
                                member: 1,
                                hpwl: 15400.0,
                                overflow: 0.55,
                                score: 23870.0,
                                culled: true,
                                branched_from: None,
                                perturbation_seed: None,
                            },
                        ],
                        best: 0,
                    },
                    ExploreGeneration {
                        generation: 1,
                        iteration: 200,
                        members: vec![
                            ExploreMember {
                                member: 0,
                                hpwl: 14300.0,
                                overflow: 0.25,
                                score: 17875.0,
                                culled: false,
                                branched_from: None,
                                perturbation_seed: None,
                            },
                            ExploreMember {
                                member: 1,
                                hpwl: 14200.0,
                                overflow: 0.27,
                                score: 18034.0,
                                culled: false,
                                branched_from: Some(0),
                                perturbation_seed: Some(11),
                            },
                        ],
                        best: 0,
                    },
                ],
                winner: 0,
                winner_lineage: vec![0, 0],
                winner_hpwl: 14026.78,
                total_modeled_ns: 3_950_617_284,
            }),
            trace_error: None,
        }
    }

    #[test]
    fn run_report_round_trips() {
        let report = sample_report();
        let text = report.to_json_string();
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn optional_stages_round_trip_as_null() {
        let mut report = sample_report();
        report.lg = None;
        report.dp = None;
        report.route = None;
        let text = report.to_json_string();
        assert!(text.contains("\"lg\":null"));
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.final_hpwl(), report.gp.final_hpwl);
    }

    #[test]
    fn final_hpwl_prefers_the_most_downstream_stage() {
        let mut report = sample_report();
        assert_eq!(report.final_hpwl(), 14100.0); // DP
        report.dp = None;
        assert_eq!(report.final_hpwl(), 14500.0); // LG
    }

    #[test]
    fn derived_gp_quantities() {
        let gp = sample_report().gp;
        assert!((gp.modeled_seconds() - 0.987654321).abs() < 1e-12);
        assert!((gp.modeled_ms_per_iter() - 987.654321 / 400.0).abs() < 1e-9);
    }

    #[test]
    fn missing_fields_are_named() {
        let err = RunReport::from_json_str("{}").unwrap_err();
        assert!(err.to_string().contains("missing field `design`"));
    }

    #[test]
    fn reports_without_a_spectral_key_still_parse() {
        // Reports written before the spectral section existed have no
        // "spectral" key at all (not even null) — they must parse as None.
        let mut report = sample_report();
        report.spectral = None;
        let text = report.to_json_string();
        let stripped = text.replace(",\"spectral\":null", "");
        assert_ne!(stripped, text, "fixture must contain the null key");
        let back = RunReport::from_json_str(&stripped).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn reports_without_a_scaling_key_still_parse() {
        // Reports written before the scaling section existed have no
        // "scaling" key at all (not even null) — they must parse as None.
        let mut report = sample_report();
        report.scaling = None;
        let text = report.to_json_string();
        let stripped = text.replace(",\"scaling\":null", "");
        assert_ne!(stripped, text, "fixture must contain the null key");
        let back = RunReport::from_json_str(&stripped).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn reports_without_an_explore_key_still_parse() {
        // Reports written before the exploration section existed have no
        // "explore" key at all (not even null) — they must parse as None.
        let mut report = sample_report();
        report.explore = None;
        let text = report.to_json_string();
        let stripped = text.replace(",\"explore\":null", "");
        assert_ne!(stripped, text, "fixture must contain the null key");
        let back = RunReport::from_json_str(&stripped).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn explore_section_round_trips_with_lineage() {
        let report = sample_report();
        let text = report.to_json_string();
        let back = RunReport::from_json_str(&text).unwrap();
        let explore = back.explore.expect("fixture has an explore section");
        assert_eq!(explore.members, 4);
        assert_eq!(explore.generations.len(), 2);
        assert_eq!(explore.generations[1].members[1].branched_from, Some(0));
        assert_eq!(
            explore.generations[1].members[1].perturbation_seed,
            Some(11)
        );
        assert!(explore.generations[0].members[1].culled);
        assert_eq!(explore.winner_lineage, vec![0, 0]);
    }

    #[test]
    fn trace_error_round_trips_and_old_reports_parse() {
        let mut report = sample_report();
        report.trace_error = Some("injected write fault".into());
        let text = report.to_json_string();
        assert!(text.contains("\"trace_error\":\"injected write fault\""));
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(back, report);
        // Reports written before the field existed have no key at all.
        report.trace_error = None;
        let stripped = report.to_json_string().replace(",\"trace_error\":null", "");
        let back = RunReport::from_json_str(&stripped).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn scaling_point_lookup_and_per_cell_cost() {
        let report = sample_report();
        let scaling = report.scaling.as_ref().unwrap();
        let flat = scaling.point(10_000, false).unwrap();
        let ml = scaling.point(100_000, true).unwrap();
        assert!((flat.ns_per_cell_iter() - 6.0).abs() < 1e-12);
        assert!((ml.ns_per_cell_iter() - 0.6).abs() < 1e-12);
        assert!(scaling.point(10_000, true).is_none());
        assert_ne!(flat.key(), ml.key());
    }

    #[test]
    fn scaling_per_cell_cost_survives_zero_iterations() {
        let mut p = sample_report().scaling.unwrap().points[0].clone();
        p.iterations = 0;
        assert!(p.ns_per_cell_iter().is_finite());
    }

    #[test]
    fn spectral_grid_lookup_finds_by_size() {
        let report = sample_report();
        let spectral = report.spectral.as_ref().unwrap();
        assert_eq!(spectral.grid(512).unwrap().modeled_ns, 40_000);
        assert!(spectral.grid(1024).is_none());
    }
}
