//! Sinks the placer emits [`TelemetryEvent`]s through.

use crate::TelemetryEvent;
use std::io::{self, Write};
use xplace_testkit::json::ToJson;

/// Receives the telemetry event stream of a placement run.
///
/// The placer guards every event construction behind
/// [`TelemetrySink::enabled`], so a disabled sink makes tracing free in
/// the hot loop.
pub trait TelemetrySink {
    /// Consumes one event.
    fn emit(&mut self, event: &TelemetryEvent);

    /// Whether events should be constructed at all (default `true`).
    fn enabled(&self) -> bool {
        true
    }
}

/// The no-op sink: tracing disabled, zero cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn emit(&mut self, _event: &TelemetryEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Collects events in memory (tests, in-process analysis).
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<TelemetryEvent>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected events.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// Consumes the sink, returning the events.
    pub fn into_events(self) -> Vec<TelemetryEvent> {
        self.events
    }

    /// Renders the collected events as JSON-lines text (exactly what a
    /// [`JsonLinesSink`] would have written).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json_string());
            out.push('\n');
        }
        out
    }
}

impl TelemetrySink for VecSink {
    fn emit(&mut self, event: &TelemetryEvent) {
        self.events.push(event.clone());
    }
}

/// Streams each event to a callback as one rendered JSON line — the
/// incremental counterpart of [`VecSink`]: nothing is buffered, the line
/// is handed over the moment the event is emitted.
///
/// This is the sink a placement *service* runs jobs under: the callback
/// forwards lines onto a live network stream while the run progresses,
/// instead of holding the whole trace in memory until the job ends. The
/// line is passed **without** a trailing newline; appending `'\n'` per
/// line reconstructs exactly what [`VecSink::to_jsonl`] or a
/// [`JsonLinesSink`] would have produced, so the streaming path keeps the
/// byte-identity contract.
pub struct CallbackSink<F: FnMut(&str)> {
    callback: F,
    emitted: usize,
}

impl<F: FnMut(&str)> CallbackSink<F> {
    /// Wraps a per-line callback.
    pub fn new(callback: F) -> Self {
        CallbackSink {
            callback,
            emitted: 0,
        }
    }

    /// Events forwarded so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

impl<F: FnMut(&str)> std::fmt::Debug for CallbackSink<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CallbackSink")
            .field("emitted", &self.emitted)
            .finish()
    }
}

impl<F: FnMut(&str)> TelemetrySink for CallbackSink<F> {
    fn emit(&mut self, event: &TelemetryEvent) {
        (self.callback)(&event.to_json_string());
        self.emitted += 1;
    }
}

/// Streams events as JSON-lines to any [`Write`] (a `BufWriter<File>`
/// for `--trace`, a `Vec<u8>` in tests).
///
/// I/O errors are sticky: the first error stops further writes and is
/// reported by [`JsonLinesSink::finish`].
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    out: W,
    error: Option<io::Error>,
    written: usize,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out,
            error: None,
            written: 0,
        }
    }

    /// Events successfully written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes and returns the writer, or the first I/O error the stream
    /// hit.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TelemetrySink for JsonLinesSink<W> {
    fn emit(&mut self, event: &TelemetryEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_json_string();
        line.push('\n');
        match self.out.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Parses JSON-lines trace text back into events (the read side of
/// [`JsonLinesSink`]); blank lines are ignored.
///
/// # Errors
///
/// Returns the 1-based line number and decode error of the first bad
/// line.
pub fn parse_trace(text: &str) -> Result<Vec<TelemetryEvent>, String> {
    use xplace_testkit::json::FromJson;
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event =
            TelemetryEvent::from_json_str(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IterationRecord, ProfileDelta};

    fn event(i: usize) -> TelemetryEvent {
        TelemetryEvent::Iteration {
            record: IterationRecord {
                iteration: i,
                hpwl: 1.0,
                wa: 1.0,
                overflow: 0.5,
                lambda: 1e-4,
                gamma: 80.0,
                omega: 0.1,
                r_ratio: 1e-5,
                density_skipped: false,
                modeled_ns: 10,
                launches: 2,
            },
            profile: ProfileDelta::default(),
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.emit(&event(0)); // no-op, must not panic
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut s = VecSink::new();
        s.emit(&event(0));
        s.emit(&event(1));
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.to_jsonl().lines().count(), 2);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut s = JsonLinesSink::new(Vec::new());
        s.emit(&event(0));
        s.emit(&event(1));
        assert_eq!(s.written(), 2);
        let bytes = s.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, vec![event(0), event(1)]);
    }

    #[test]
    fn callback_sink_streams_lines_matching_vec_sink() {
        let mut lines: Vec<String> = Vec::new();
        let mut v = VecSink::new();
        {
            let mut c = CallbackSink::new(|line: &str| lines.push(line.to_string()));
            for i in 0..3 {
                c.emit(&event(i));
                v.emit(&event(i));
                // Incremental: the line is available immediately, not at
                // the end of the run.
                assert_eq!(c.emitted(), i + 1);
            }
            assert_eq!(c.emitted(), 3);
        }
        assert_eq!(lines.len(), 3);
        let rebuilt: String = lines.iter().map(|l| format!("{l}\n")).collect();
        assert_eq!(rebuilt, v.to_jsonl(), "streamed lines must match to_jsonl");
        assert!(!lines[0].contains('\n'), "lines arrive without newlines");
    }

    #[test]
    fn jsonl_sink_matches_vec_sink_rendering() {
        let mut v = VecSink::new();
        let mut j = JsonLinesSink::new(Vec::new());
        for i in 0..3 {
            v.emit(&event(i));
            j.emit(&event(i));
        }
        assert_eq!(v.to_jsonl().into_bytes(), j.finish().unwrap());
    }

    #[test]
    fn parse_trace_reports_bad_lines() {
        let err =
            parse_trace("{\"event\":\"skip_window\",\"iteration\":0,\"active\":true}\nnot json\n")
                .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    struct FailAfter(usize);
    impl Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.0 == 0 {
                Err(io::Error::new(io::ErrorKind::Other, "disk full"))
            } else {
                self.0 -= 1;
                Ok(buf.len())
            }
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_errors_are_sticky_and_reported() {
        let mut s = JsonLinesSink::new(FailAfter(1));
        s.emit(&event(0));
        s.emit(&event(1)); // fails
        s.emit(&event(2)); // dropped
        assert_eq!(s.written(), 1);
        assert!(s.finish().is_err());
    }
}
