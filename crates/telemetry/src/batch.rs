//! Batch-run reporting: a manifest-ordered array of [`RunReport`]s with
//! per-job failure status, plus the batch-level regression comparator.
//!
//! The batch scheduler (`xplace-sched`) keys results by job index, never by
//! completion order, so a [`BatchReport`] is deterministic: the same
//! manifest produces the same job order, and each completed job's
//! [`RunReport`] is bit-identical to the report a serial `place` run of
//! that design would have produced.

use crate::{compare_reports, Comparison, RunReport, Tolerances};
use xplace_testkit::json::{FromJson, Json, JsonError, ToJson};

/// Terminal status of one job in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The job ran the full flow and produced a [`RunReport`].
    Completed,
    /// The job panicked or returned an error; siblings were unaffected.
    Failed,
}

impl JobStatus {
    /// The JSON wire string of this status.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
        }
    }
}

impl ToJson for JobStatus {
    fn to_json(&self) -> Json {
        self.as_str().to_json()
    }
}

impl FromJson for JobStatus {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match String::from_json(value)?.as_str() {
            "completed" => Ok(JobStatus::Completed),
            "failed" => Ok(JobStatus::Failed),
            other => Err(JsonError(format!("unknown job status `{other}`"))),
        }
    }
}

/// One job's slot in a [`BatchReport`], in manifest order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job name from the batch manifest (unique within a batch).
    pub name: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Failure message (panic payload or error display); `None` for
    /// completed jobs.
    pub error: Option<String>,
    /// The run summary; `None` for failed jobs.
    pub report: Option<RunReport>,
    /// Retries the scheduler spent on this job (0 = first attempt won).
    pub retries: usize,
    /// Checkpoint snapshots saved across all attempts of this job.
    pub checkpoints: usize,
    /// Whether the job failed its modeled-ns deadline.
    pub deadline_exceeded: bool,
}

impl JobRecord {
    /// A completed job carrying its run report.
    pub fn completed(name: impl Into<String>, report: RunReport) -> Self {
        JobRecord {
            name: name.into(),
            status: JobStatus::Completed,
            error: None,
            report: Some(report),
            retries: 0,
            checkpoints: 0,
            deadline_exceeded: false,
        }
    }

    /// A failed job carrying its failure message.
    pub fn failed(name: impl Into<String>, error: impl Into<String>) -> Self {
        JobRecord {
            name: name.into(),
            status: JobStatus::Failed,
            error: Some(error.into()),
            report: None,
            retries: 0,
            checkpoints: 0,
            deadline_exceeded: false,
        }
    }

    /// Attaches the scheduler's fault bookkeeping to this record.
    pub fn with_fault_stats(
        mut self,
        retries: usize,
        checkpoints: usize,
        deadline_exceeded: bool,
    ) -> Self {
        self.retries = retries;
        self.checkpoints = checkpoints;
        self.deadline_exceeded = deadline_exceeded;
        self
    }
}

/// The batch artifact `xplace batch --report` writes: job records in
/// manifest order plus derived summary counts.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Per-job records, in manifest order (index = job index).
    pub jobs: Vec<JobRecord>,
}

impl BatchReport {
    /// Wraps job records (already in manifest order) into a report.
    pub fn new(jobs: Vec<JobRecord>) -> Self {
        BatchReport { jobs }
    }

    /// Total number of jobs.
    pub fn total(&self) -> usize {
        self.jobs.len()
    }

    /// Number of completed jobs.
    pub fn completed(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.status == JobStatus::Completed)
            .count()
    }

    /// Number of failed jobs.
    pub fn failed(&self) -> usize {
        self.total() - self.completed()
    }

    /// `true` when every job completed.
    pub fn all_completed(&self) -> bool {
        self.failed() == 0
    }

    /// Number of jobs that needed at least one retry.
    pub fn retried(&self) -> usize {
        self.jobs.iter().filter(|j| j.retries > 0).count()
    }

    /// Number of jobs that blew their modeled-ns deadline.
    pub fn deadline_exceeded(&self) -> usize {
        self.jobs.iter().filter(|j| j.deadline_exceeded).count()
    }

    /// Looks up a job record by name.
    pub fn job(&self, name: &str) -> Option<&JobRecord> {
        self.jobs.iter().find(|j| j.name == name)
    }
}

impl ToJson for JobRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("status", self.status.to_json()),
            ("error", self.error.to_json()),
            ("report", self.report.to_json()),
            ("retries", self.retries.to_json()),
            ("checkpoints", self.checkpoints.to_json()),
            ("deadline_exceeded", self.deadline_exceeded.to_json()),
        ])
    }
}

impl FromJson for JobRecord {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(JobRecord {
            name: String::from_json(value.field("name")?)?,
            status: JobStatus::from_json(value.field("status")?)?,
            error: Option::<String>::from_json(value.field("error")?)?,
            report: Option::<RunReport>::from_json(value.field("report")?)?,
            // Fault bookkeeping arrived after the first baselines were
            // captured; absent keys mean a pre-fault-plan record.
            retries: match value.get("retries") {
                Some(v) => usize::from_json(v)?,
                None => 0,
            },
            checkpoints: match value.get("checkpoints") {
                Some(v) => usize::from_json(v)?,
                None => 0,
            },
            deadline_exceeded: match value.get("deadline_exceeded") {
                Some(v) => bool::from_json(v)?,
                None => false,
            },
        })
    }
}

impl ToJson for BatchReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("jobs", self.jobs.to_json()),
            ("total", self.total().to_json()),
            ("completed", self.completed().to_json()),
            ("failed", self.failed().to_json()),
            ("retried", self.retried().to_json()),
            ("deadline_exceeded", self.deadline_exceeded().to_json()),
        ])
    }
}

impl FromJson for BatchReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        // The summary counts are derived; only `jobs` is authoritative.
        Ok(BatchReport {
            jobs: Vec::<JobRecord>::from_json(value.field("jobs")?)?,
        })
    }
}

/// Prefixes every message of `sub` with the job name and merges it into
/// `acc`.
fn merge_prefixed(acc: &mut Comparison, name: &str, sub: Comparison) {
    acc.failures
        .extend(sub.failures.into_iter().map(|m| format!("[{name}] {m}")));
    acc.warnings
        .extend(sub.warnings.into_iter().map(|m| format!("[{name}] {m}")));
    acc.notes
        .extend(sub.notes.into_iter().map(|m| format!("[{name}] {m}")));
}

/// Compares a fresh [`BatchReport`] against a baseline, job by job.
///
/// Jobs are paired by name; the job sets and manifest order must match
/// exactly, as must each job's status (a baseline-completed job failing
/// now — or vice versa — is a hard failure). Paired completed jobs
/// delegate to [`compare_reports`] with their messages prefixed by the
/// job name; paired failed jobs pass (a deliberately injected fault is
/// part of the experiment).
pub fn compare_batch_reports(
    baseline: &BatchReport,
    current: &BatchReport,
    tol: &Tolerances,
) -> Comparison {
    let mut cmp = Comparison::default();
    let base_names: Vec<&str> = baseline.jobs.iter().map(|j| j.name.as_str()).collect();
    let cur_names: Vec<&str> = current.jobs.iter().map(|j| j.name.as_str()).collect();
    if base_names != cur_names {
        cmp.failures.push(format!(
            "job set mismatch: baseline {base_names:?} vs current {cur_names:?}"
        ));
        return cmp;
    }
    for (base, cur) in baseline.jobs.iter().zip(&current.jobs) {
        if base.status != cur.status {
            cmp.failures.push(format!(
                "[{}] status changed: {} -> {}{}",
                base.name,
                base.status.as_str(),
                cur.status.as_str(),
                cur.error
                    .as_deref()
                    .map(|e| format!(" ({e})"))
                    .unwrap_or_default()
            ));
            continue;
        }
        match (&base.report, &cur.report) {
            (Some(b), Some(c)) => merge_prefixed(&mut cmp, &base.name, compare_reports(b, c, tol)),
            _ => cmp
                .notes
                .push(format!("[{}] failed in both runs — not gated", base.name)),
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::tests::sample_report;

    fn sample_batch() -> BatchReport {
        let mut second = sample_report();
        second.design = "second".into();
        BatchReport::new(vec![
            JobRecord::completed("golden", sample_report()),
            JobRecord::completed("second", second),
            JobRecord::failed("broken", "injected failure at GP iteration 5"),
        ])
    }

    #[test]
    fn batch_report_round_trips() {
        let report = sample_batch();
        let text = report.to_json_string();
        assert!(text.contains("\"total\":3"));
        assert!(text.contains("\"completed\":2"));
        assert!(text.contains("\"failed\":1"));
        let back = BatchReport::from_json_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn summary_counts_and_lookup() {
        let report = sample_batch();
        assert_eq!(report.total(), 3);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.failed(), 1);
        assert!(!report.all_completed());
        assert_eq!(report.job("broken").unwrap().status, JobStatus::Failed);
        assert!(report.job("missing").is_none());
    }

    #[test]
    fn identical_batches_pass() {
        let base = sample_batch();
        let cmp = compare_batch_reports(&base, &base.clone(), &Tolerances::default());
        assert!(cmp.passed(), "{:?}", cmp.failures);
        assert!(cmp
            .notes
            .iter()
            .any(|n| n.contains("[broken] failed in both runs")));
    }

    #[test]
    fn per_job_hpwl_regression_fails_with_job_prefix() {
        let base = sample_batch();
        let mut cur = base.clone();
        cur.jobs[1]
            .report
            .as_mut()
            .unwrap()
            .dp
            .as_mut()
            .unwrap()
            .final_hpwl *= 1.10;
        let cmp = compare_batch_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(
            cmp.failures[0].starts_with("[second]") && cmp.failures[0].contains("HPWL regressed"),
            "{:?}",
            cmp.failures
        );
    }

    #[test]
    fn status_flip_fails() {
        let base = sample_batch();
        let mut cur = base.clone();
        cur.jobs[0] = JobRecord::failed("golden", "oops");
        let cmp = compare_batch_reports(&base, &cur, &Tolerances::default());
        assert!(!cmp.passed());
        assert!(
            cmp.failures[0].contains("status changed: completed -> failed (oops)"),
            "{:?}",
            cmp.failures
        );
    }

    #[test]
    fn job_set_mismatch_fails_before_metrics() {
        let base = sample_batch();
        let mut cur = base.clone();
        cur.jobs.remove(1);
        let cmp = compare_batch_reports(&base, &cur, &Tolerances::default());
        assert_eq!(cmp.failures.len(), 1);
        assert!(cmp.failures[0].contains("job set mismatch"));
    }

    #[test]
    fn fault_stats_round_trip_and_summarize() {
        let mut report = sample_batch();
        report.jobs[1] = report.jobs[1].clone().with_fault_stats(2, 3, false);
        report.jobs[2] = report.jobs[2].clone().with_fault_stats(1, 0, true);
        assert_eq!(report.retried(), 2);
        assert_eq!(report.deadline_exceeded(), 1);
        let text = report.to_json_string();
        assert!(text.contains("\"retried\":2"));
        assert!(text.contains("\"deadline_exceeded\":1"));
        let back = BatchReport::from_json_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn records_without_fault_stats_parse_with_defaults() {
        // A baseline captured before the fault-plan fields existed.
        let text = r#"{"name":"old","status":"failed","error":"boom","report":null}"#;
        let record = JobRecord::from_json_str(text).unwrap();
        assert_eq!(record.retries, 0);
        assert_eq!(record.checkpoints, 0);
        assert!(!record.deadline_exceeded);
    }

    #[test]
    fn unknown_status_string_is_rejected() {
        let err = JobStatus::from_json_str("\"exploded\"").unwrap_err();
        assert!(err.to_string().contains("unknown job status"));
    }
}
