//! Property tests for checkpoint durability and branching: randomized
//! Nesterov loop states round-trip bit-exactly through both store kinds,
//! and branching/perturbation is a pure function of (snapshot, seed).

use xplace_core::{
    Checkpoint, CheckpointStore, EngineState, EvalResult, FileCheckpointStore,
    MemoryCheckpointStore, OptimizerState, ParamState, Perturbation, XplaceConfig,
};
use xplace_device::ProfileSnapshot;
use xplace_telemetry::{Stage, ToJson};
use xplace_testkit::prop::Config;
use xplace_testkit::{prop_assert, prop_assert_eq, props, Rng};

/// A randomized but structurally valid checkpoint: every float drawn
/// from a wide range (including negatives and subunity magnitudes whose
/// shortest round-trip rendering stresses the JSON layer), optional
/// sections toggled, and `INFINITY` sentinels exercised.
fn random_checkpoint(seed: u64) -> Checkpoint {
    fn wide(rng: &mut Rng, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| {
                let exp = rng.gen_range(-6i64..7) as i32;
                (rng.f64() - 0.5) * 10f64.powi(exp)
            })
            .collect()
    }
    let mut rng = Rng::seed_from_u64(seed);
    let nodes = rng.gen_range(2usize..24);
    let movable = rng.gen_range(1usize..=nodes);
    let opt_len = rng.gen_range(1usize..16);
    let x = wide(&mut rng, nodes);
    let y = wide(&mut rng, nodes);
    let optimizer = if seed % 3 != 0 {
        Some(OptimizerState {
            u_x: wide(&mut rng, opt_len),
            u_y: wide(&mut rng, opt_len),
            prev_v_x: wide(&mut rng, opt_len),
            prev_v_y: wide(&mut rng, opt_len),
            prev_g_x: wide(&mut rng, opt_len),
            prev_g_y: wide(&mut rng, opt_len),
            a: rng.f64() * 3.0 + 1.0,
            have_prev: rng.next_u64() % 2 == 0,
            initial_step: rng.f64(),
            max_disp: rng.f64() * 100.0,
            last_step: rng.f64(),
        })
    } else {
        None
    };
    let best_u = if seed % 4 == 0 {
        Some((wide(&mut rng, opt_len), wide(&mut rng, opt_len)))
    } else {
        None
    };
    let last_eval = if seed % 5 != 0 {
        Some(EvalResult {
            wa: rng.f64() * 1e6,
            hpwl: rng.f64() * 1e6,
            overflow: rng.f64(),
            wl_grad_l1: rng.f64() * 1e3,
            density_grad_l1: rng.f64() * 1e3,
            r_ratio: rng.f64() * 0.01,
            density_skipped: rng.next_u64() % 2 == 0,
            skip_window: rng.next_u64() % 2 == 0,
            energy: rng.f64() * 1e4,
        })
    } else {
        None
    };
    Checkpoint {
        design: format!("prop-{}", seed % 7),
        cells: nodes,
        movable,
        config: XplaceConfig::xplace().with_seed(seed).echo(),
        iteration: rng.gen_range(0usize..5000),
        x,
        y,
        params: ParamState {
            gamma: rng.f64() * 10.0,
            lambda: rng.f64() * 1e-2 + 1e-9,
            iteration: rng.gen_range(0usize..5000),
            last_hpwl: if seed % 2 == 0 {
                f64::INFINITY
            } else {
                rng.f64() * 1e6
            },
            last_overflow: rng.f64(),
            lambda_initialized: rng.next_u64() % 2 == 0,
        },
        omega: rng.f64(),
        optimizer,
        initial_hpwl: rng.f64() * 1e6,
        initial_overflow: rng.f64(),
        best_overflow: if seed % 6 == 0 {
            f64::INFINITY
        } else {
            rng.f64()
        },
        best_iter: rng.gen_range(0usize..5000),
        best_u,
        stage: match seed % 3 {
            0 => Stage::Early,
            1 => Stage::Intermediate,
            _ => Stage::Final,
        },
        skip_window_open: rng.next_u64() % 2 == 0,
        last_eval,
        engine: EngineState {
            last_r: rng.f64() * 0.01,
            field_age: rng.gen_range(0usize..8),
            has_field: rng.next_u64() % 2 == 0,
            cached_overflow: rng.f64(),
            cached_energy: rng.f64() * 1e4,
            field_x: wide(&mut rng, nodes),
            field_y: wide(&mut rng, nodes),
        },
        profile: ProfileSnapshot {
            launches: rng.next_u64() % 1_000_000,
            syncs: rng.next_u64() % 10_000,
            launch_overhead_ns: rng.next_u64() % u64::pow(10, 12),
            exec_ns: rng.next_u64() % u64::pow(10, 12),
            pipelined_ns: rng.next_u64() % u64::pow(10, 12),
            sync_stall_ns: rng.next_u64() % u64::pow(10, 12),
            cpu_ns: rng.next_u64() % u64::pow(10, 12),
        },
    }
}

props! {
    config = Config::with_cases(64);

    /// A randomized state survives the `Memory` store bit-exactly, and
    /// the payload re-renders to identical bytes.
    fn memory_store_round_trips_bit_exactly(seed in 0u64..1_000_000_000) {
        let cp = random_checkpoint(seed);
        let store = MemoryCheckpointStore::new();
        store.save(cp.iteration, &cp.render()).unwrap();
        let (at, back) = store.latest().unwrap().unwrap();
        prop_assert_eq!(at, cp.iteration);
        prop_assert!(back == cp, "memory round trip changed the checkpoint (seed {})", seed);
        prop_assert_eq!(cp.render(), back.render());
        for (a, b) in cp.x.iter().zip(&back.x) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The same state survives the `File` store bit-exactly (through the
    /// atomic tmp+rename path and a disk read-back).
    fn file_store_round_trips_bit_exactly(seed in 0u64..1_000_000_000) {
        let cp = random_checkpoint(seed);
        let dir = std::env::temp_dir().join("xplace-ckpt-props");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("cp-{seed}-{}.json", std::process::id()));
        let store = FileCheckpointStore::new(&path);
        store.save(cp.iteration, &cp.render()).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert!(back == cp, "file round trip changed the checkpoint (seed {})", seed);
        prop_assert_eq!(cp.render(), back.render());
        for (a, b) in cp.y.iter().zip(&back.y) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Branching is deterministic: same snapshot + same perturbation
    /// seed ⇒ bit-identical branched state (and payload); the branch
    /// adopts the target config echo; positions stay inside the
    /// snapshot's own bounding box (the resume path does not re-clamp).
    fn branch_and_perturb_are_pure(seed in 0u64..1_000_000_000, pseed in 0u64..1_000_000) {
        let cp = random_checkpoint(seed);
        let target = XplaceConfig::xplace().with_seed(seed ^ 0xdead_beef);
        let perturbation = Perturbation::with_seed(pseed);

        let mut a = cp.branch_for(&target);
        a.perturb(&perturbation);
        let mut b = cp.branch_for(&target);
        b.perturb(&perturbation);
        prop_assert!(a == b, "same perturbation seed produced different branches");
        prop_assert_eq!(a.render(), b.render());
        prop_assert_eq!(
            a.config.to_json().render(),
            target.echo().to_json().render()
        );

        // Jitter stays inside the snapshot's position bounding box.
        let bounds = |v: &[f64]| {
            v.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &p| {
                (lo.min(p), hi.max(p))
            })
        };
        let (min_x, max_x) = bounds(&cp.x);
        let (min_y, max_y) = bounds(&cp.y);
        for i in 0..cp.movable {
            prop_assert!(a.x[i] >= min_x && a.x[i] <= max_x);
            prop_assert!(a.y[i] >= min_y && a.y[i] <= max_y);
        }
        // Fixed cells and fillers are untouched.
        for i in cp.movable..cp.x.len() {
            prop_assert_eq!(a.x[i].to_bits(), cp.x[i].to_bits());
            prop_assert_eq!(a.y[i].to_bits(), cp.y[i].to_bits());
        }
        // The branch explores fresh: momentum and rollback state reset.
        prop_assert!(a.optimizer.is_none());
        prop_assert!(a.best_u.is_none());
        prop_assert!(a.best_overflow.is_infinite());
        prop_assert!(!a.engine.has_field);
    }
}
