use xplace_device::DeviceConfig;
use xplace_fault::GpFault;

/// Which operator stream the engine emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framework {
    /// Xplace's lean operator stream (subject to the four toggles).
    Xplace,
    /// The DREAMPlace-like baseline: the same math executed through the
    /// operator stream described in the DREAMPlace paper — merged WA objective+gradient but
    /// separate HPWL kernel, direct (non-extracted) density accumulation,
    /// autograd-driven backward ops, out-of-place tensors, per-readback
    /// synchronization, and the framework glue kernels a PyTorch optimizer
    /// step issues.
    DreamplaceLike,
}

/// The four operator-level optimization toggles of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatorConfig {
    /// §3.1.3 operator reduction: bypass autograd, use in-place kernels,
    /// defer synchronization to the end of the iteration.
    pub reduction: bool,
    /// §3.1.1 operator combination: fuse WA wirelength + WA gradient +
    /// HPWL into one kernel sharing the min/max computation.
    pub combination: bool,
    /// §3.1.2 operator extraction: accumulate the movable density map once
    /// and reuse it for both the overflow ratio and the total map.
    pub extraction: bool,
    /// §3.1.4 operator skipping: while `r < 0.01` and `iteration < 100`,
    /// run the density operator once per 20 iterations.
    pub skipping: bool,
}

impl OperatorConfig {
    /// All four optimizations enabled (the full Xplace configuration).
    pub fn all() -> Self {
        OperatorConfig {
            reduction: true,
            combination: true,
            extraction: true,
            skipping: true,
        }
    }

    /// All optimizations disabled (the "none" ablation row).
    pub fn none() -> Self {
        OperatorConfig {
            reduction: false,
            combination: false,
            extraction: false,
            skipping: false,
        }
    }
}

/// Parameter-scheduling knobs (§3.2 and the ePlace updates Xplace keeps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleConfig {
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Minimum iterations before the stop test applies.
    pub min_iterations: usize,
    /// Stop when the overflow ratio drops below this.
    pub stop_overflow: f64,
    /// γ = `gamma_scale * bin_size * 10^(gamma_k * ovfl + gamma_b)`
    /// (the ePlace coarse-to-sharp smoothing schedule).
    pub gamma_scale: f64,
    /// Slope of the γ exponent in overflow.
    pub gamma_k: f64,
    /// Intercept of the γ exponent.
    pub gamma_b: f64,
    /// λ0 = `lambda_init_factor * |∇WL| / |∇D|` (DREAMPlace's 8e-5).
    pub lambda_init_factor: f64,
    /// Per-update multiplier cap for λ (growth when HPWL behaves).
    pub lambda_mu_max: f64,
    /// Per-update multiplier floor for λ.
    pub lambda_mu_min: f64,
    /// Enable the placement-stage-aware slowdown of Algorithm 1
    /// (parameters update once per 3 iterations while 0.5 < ω < 0.95).
    pub stage_aware: bool,
    /// How many iterations between parameter updates in the intermediate
    /// stage (3 in the paper).
    pub intermediate_update_period: usize,
    /// Early-stop window: give up (and roll back to the best solution)
    /// after this many iterations without an overflow improvement.
    pub plateau_window: usize,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            max_iterations: 1500,
            min_iterations: 30,
            stop_overflow: 0.10,
            gamma_scale: 8.0,
            gamma_k: 20.0 / 9.0,
            gamma_b: -11.0 / 9.0,
            lambda_init_factor: 8e-5,
            lambda_mu_max: 1.1,
            lambda_mu_min: 1.0,
            stage_aware: true,
            intermediate_update_period: 3,
            plateau_window: 250,
        }
    }
}

/// Multilevel (coarsen/uncoarsen) placement controls.
///
/// When enabled and the design has more movable cells than `min_cells`,
/// the placer builds a clustering hierarchy
/// ([`xplace_db::build_hierarchy`]), places the coarsest level with a
/// short ω-driven schedule, seeds each finer level from the coarser
/// solution, and runs the configured full schedule only on the original
/// netlist. Determinism is preserved level by level: coarsening is
/// RNG-free, seeding jitter is hash-derived from the placement seed, and
/// coarse levels trace nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultilevelConfig {
    /// Run multilevel placement (off by default: small designs gain
    /// nothing from the hierarchy).
    pub enabled: bool,
    /// Hierarchy floor: coarsening stops at this many movable cells, and
    /// designs at or below it place flat even when `enabled`.
    pub min_cells: usize,
    /// Hard cap on coarse levels.
    pub max_levels: usize,
    /// Iteration cap per coarse level (the full schedule only runs at the
    /// finest level).
    pub coarse_max_iterations: usize,
    /// Relaxed overflow stop for coarse levels; the effective coarse
    /// target is `max(coarse_stop_overflow, schedule.stop_overflow)`.
    pub coarse_stop_overflow: f64,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            enabled: false,
            min_cells: 5_000,
            max_levels: 8,
            coarse_max_iterations: 200,
            coarse_stop_overflow: 0.15,
        }
    }
}

/// Complete configuration of a [`crate::GlobalPlacer`].
#[derive(Debug, Clone)]
pub struct XplaceConfig {
    /// Which operator stream to emit.
    pub framework: Framework,
    /// The §3.1 toggles (ignored in `DreamplaceLike` mode, which fixes its
    /// own stream).
    pub operators: OperatorConfig,
    /// Scheduling knobs.
    pub schedule: ScheduleConfig,
    /// Device performance model used for the modeled GPU time.
    pub device: DeviceConfig,
    /// Density-grid override (power of two) for experiments; `None` picks
    /// automatically from the design size.
    pub grid: Option<usize>,
    /// Seed for filler spreading.
    pub seed: u64,
    /// Record per-iteration metrics (cheap; on by default).
    pub record: bool,
    /// CPU launch width inside the heavy kernel bodies (wirelength,
    /// density accumulation and the spectral Poisson solve), executed on the
    /// persistent `xplace-parallel` pool. The work decomposition is fixed by
    /// the design — never by this count — so metrics are **bit-identical for
    /// every value**; it only changes wall-clock scheduling, not the modeled
    /// GPU time.
    pub threads: usize,
    /// Multilevel coarsen/uncoarsen controls.
    pub multilevel: MultilevelConfig,
    /// Injected fault resolved from a [`xplace_fault::FaultPlan`] for the
    /// current job attempt (the scheduler fills this in; standalone runs
    /// leave it at [`GpFault::NONE`]).
    ///
    /// Deliberately **excluded** from [`Self::echo`]: it is not a
    /// placement parameter, and a faulted run's trace prefix must stay
    /// byte-identical to the healthy run's.
    pub fault: GpFault,
}

impl XplaceConfig {
    /// The full Xplace configuration: all operator optimizations on,
    /// stage-aware scheduling on.
    pub fn xplace() -> Self {
        XplaceConfig {
            framework: Framework::Xplace,
            operators: OperatorConfig::all(),
            schedule: ScheduleConfig::default(),
            device: DeviceConfig::rtx3090(),
            grid: None,
            seed: 0x5eed,
            record: true,
            threads: 1,
            multilevel: MultilevelConfig::default(),
            fault: GpFault::NONE,
        }
    }

    /// An ablation configuration with explicit §3.1 toggles
    /// (reduction, combination, extraction, skipping).
    pub fn ablation(reduction: bool, combination: bool, extraction: bool, skipping: bool) -> Self {
        let mut cfg = Self::xplace();
        cfg.operators = OperatorConfig {
            reduction,
            combination,
            extraction,
            skipping,
        };
        cfg
    }

    /// The DREAMPlace-like baseline comparator.
    pub fn dreamplace_like() -> Self {
        let mut cfg = Self::xplace();
        cfg.framework = Framework::DreamplaceLike;
        cfg.operators = OperatorConfig::none();
        // DREAMPlace updates parameters every iteration (no stage-aware
        // slowdown) — that is part of Xplace's §3.2 contribution.
        cfg.schedule.stage_aware = false;
        cfg
    }

    /// Sets the density grid override.
    pub fn with_grid(mut self, grid: usize) -> Self {
        self.grid = Some(grid);
        self
    }

    /// Sets the RNG seed for filler spreading.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the CPU worker-thread count for kernel bodies.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables (or disables) multilevel placement with default controls.
    pub fn with_multilevel(mut self, enabled: bool) -> Self {
        self.multilevel.enabled = enabled;
        self
    }

    /// The telemetry configuration echo embedded in traces and reports.
    ///
    /// Excludes the thread count on purpose: metrics are bit-identical
    /// for every `threads` value, and a thread-free echo keeps traces
    /// byte-identical across thread counts (the count is reported in
    /// [`xplace_telemetry::RunReport::threads`] instead).
    pub fn echo(&self) -> xplace_telemetry::ConfigEcho {
        xplace_telemetry::ConfigEcho {
            framework: match self.framework {
                Framework::Xplace => "xplace",
                Framework::DreamplaceLike => "dreamplace_like",
            }
            .to_string(),
            reduction: self.operators.reduction,
            combination: self.operators.combination,
            extraction: self.operators.extraction,
            skipping: self.operators.skipping,
            stage_aware: self.schedule.stage_aware,
            max_iterations: self.schedule.max_iterations,
            stop_overflow: self.schedule.stop_overflow,
            seed: self.seed,
            grid: self.grid,
            multilevel: self.multilevel.enabled,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PlaceError::InvalidConfig`] for inconsistent
    /// schedules (zero iterations, non-positive overflow target, bad γ
    /// scale, or a non-power-of-two grid override).
    pub fn validate(&self) -> Result<(), crate::PlaceError> {
        if self.schedule.max_iterations == 0 {
            return Err(crate::PlaceError::InvalidConfig(
                "max_iterations is zero".into(),
            ));
        }
        if !(self.schedule.stop_overflow > 0.0) {
            return Err(crate::PlaceError::InvalidConfig(
                "stop_overflow must be positive".into(),
            ));
        }
        if !(self.schedule.gamma_scale > 0.0) {
            return Err(crate::PlaceError::InvalidConfig(
                "gamma_scale must be positive".into(),
            ));
        }
        if self.schedule.lambda_mu_min > self.schedule.lambda_mu_max {
            return Err(crate::PlaceError::InvalidConfig(
                "lambda_mu_min exceeds lambda_mu_max".into(),
            ));
        }
        if let Some(g) = self.grid {
            if !xplace_fft::is_power_of_two(g) {
                return Err(crate::PlaceError::InvalidConfig(format!(
                    "grid override {g} is not a power of two"
                )));
            }
        }
        if self.multilevel.enabled {
            if self.multilevel.coarse_max_iterations == 0 {
                return Err(crate::PlaceError::InvalidConfig(
                    "multilevel coarse_max_iterations is zero".into(),
                ));
            }
            if self.multilevel.max_levels == 0 {
                return Err(crate::PlaceError::InvalidConfig(
                    "multilevel max_levels is zero".into(),
                ));
            }
            if !(self.multilevel.coarse_stop_overflow > 0.0) {
                return Err(crate::PlaceError::InvalidConfig(
                    "multilevel coarse_stop_overflow must be positive".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_toggles() {
        let x = XplaceConfig::xplace();
        assert_eq!(x.operators, OperatorConfig::all());
        assert_eq!(x.framework, Framework::Xplace);
        assert!(x.schedule.stage_aware);

        let d = XplaceConfig::dreamplace_like();
        assert_eq!(d.framework, Framework::DreamplaceLike);
        assert!(!d.schedule.stage_aware);

        let a = XplaceConfig::ablation(true, true, false, false);
        assert!(a.operators.reduction && a.operators.combination);
        assert!(!a.operators.extraction && !a.operators.skipping);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = XplaceConfig::xplace();
        c.schedule.max_iterations = 0;
        assert!(c.validate().is_err());
        let mut c = XplaceConfig::xplace();
        c.schedule.stop_overflow = 0.0;
        assert!(c.validate().is_err());
        let mut c = XplaceConfig::xplace();
        c.schedule.lambda_mu_min = 2.0;
        assert!(c.validate().is_err());
        let c = XplaceConfig::xplace().with_grid(48);
        assert!(c.validate().is_err());
        assert!(XplaceConfig::xplace().validate().is_ok());
    }

    #[test]
    fn builders_set_fields() {
        let c = XplaceConfig::xplace().with_grid(64).with_seed(9);
        assert_eq!(c.grid, Some(64));
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn fault_hook_is_excluded_from_the_config_echo() {
        // A faulted run's trace prefix must stay byte-identical to the
        // healthy run's, so the hook must not leak into the echo.
        let healthy = XplaceConfig::xplace();
        assert_eq!(healthy.fault, GpFault::NONE);
        use xplace_telemetry::ToJson;
        let mut faulted = healthy.clone();
        faulted.fault.panic_at = Some(3);
        assert_eq!(
            healthy.echo().to_json_string(),
            faulted.echo().to_json_string()
        );
    }
}
