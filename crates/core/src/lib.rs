//! The Xplace global placement engine.
//!
//! This crate reproduces the paper's core contribution: an
//! electrostatics-based analytical global placer (the ePlace formulation)
//! whose per-iteration operator stream is aggressively optimized at the
//! operator level (§3.1) and whose parameters are scheduled by placement
//! stage (§3.2), with a pluggable neural density guidance hook (§3.3).
//!
//! The module layout mirrors Figure 1 of the paper:
//!
//! * [`GradientEngine`] — computes the preconditioned cell gradient from
//!   the wirelength and density operators, honouring the four
//!   operator-level optimization toggles ([`OperatorConfig`]),
//! * [`NesterovOptimizer`] — Nesterov accelerated gradient with
//!   Barzilai–Borwein step prediction (as in ePlace),
//! * [`Parameters`] / scheduling — γ and λ updates including the
//!   stage-aware slowdown of Algorithm 1,
//! * [`Recorder`] — per-iteration metrics (HPWL, overflow, ω, the
//!   skip ratio r, modeled GPU time),
//! * [`GlobalPlacer`] — the driver tying everything together,
//! * [`DensityGuidance`] — the extension trait a neural model (crate
//!   `xplace-nn`) implements to inject predicted fields (Eq. 14).
//!
//! Presets: [`XplaceConfig::xplace`] (all optimizations), ablation
//! configurations for Table 3, and [`XplaceConfig::dreamplace_like`] — the
//! baseline comparator that executes the same math through DREAMPlace's
//! unfused, autograd-driven, per-operator-synchronizing stream.
//!
//! # Example
//!
//! ```
//! use xplace_core::{GlobalPlacer, XplaceConfig};
//! use xplace_db::synthesis::{synthesize, SynthesisSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut design = synthesize(&SynthesisSpec::new("demo", 400, 420).with_seed(1))?;
//! let mut config = XplaceConfig::xplace();
//! config.schedule.max_iterations = 60; // keep the doc test fast
//! let report = GlobalPlacer::new(config).place(&mut design)?;
//! assert!(report.iterations > 0);
//! assert!(report.final_overflow < report.initial_overflow);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod checkpoint;
mod config;
mod engine;
mod error;
mod guidance;
mod optimizer;
mod params;
mod placer;

pub use checkpoint::{
    Checkpoint, CheckpointOptions, CheckpointStore, FileCheckpointStore, MemoryCheckpointStore,
    Perturbation,
};
pub use config::{Framework, MultilevelConfig, OperatorConfig, ScheduleConfig, XplaceConfig};
pub use engine::{seed_from_coarse, EngineState, EvalResult, GradientEngine};
pub use error::PlaceError;
pub use guidance::{sigma_blend, DensityGuidance};
pub use optimizer::{NesterovOptimizer, OptimizerState};
pub use params::{ParamState, Parameters};
pub use placer::{GlobalPlacer, PlacementReport};
// The recorder block and its record type live in `xplace-telemetry` since
// the telemetry subsystem landed; re-exported here so `xplace_core`
// callers keep compiling unchanged.
pub use xplace_telemetry::{IterationRecord, NullSink, Recorder, TelemetryEvent, TelemetrySink};
