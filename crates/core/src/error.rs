use std::error::Error;
use std::fmt;
use xplace_ops::OpsError;

/// Errors produced by the global placer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlaceError {
    /// The design could not be turned into a placement model, or an
    /// operator failed.
    Ops(OpsError),
    /// The optimization diverged (non-finite objective or positions).
    Diverged {
        /// Iteration at which divergence was detected.
        iteration: usize,
    },
    /// The configuration is inconsistent; describes the problem.
    InvalidConfig(String),
    /// Multilevel coarsening could not build or assemble a level.
    Coarsening(String),
    /// A checkpoint could not be saved, parsed, or applied to this run
    /// (corrupt payload, mismatched design, or storage I/O failure).
    Checkpoint(String),
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::Ops(e) => write!(f, "operator failure: {e}"),
            PlaceError::Diverged { iteration } => {
                write!(f, "optimization diverged at iteration {iteration}")
            }
            PlaceError::InvalidConfig(msg) => write!(f, "invalid placer configuration: {msg}"),
            PlaceError::Coarsening(msg) => write!(f, "multilevel coarsening failure: {msg}"),
            PlaceError::Checkpoint(msg) => write!(f, "checkpoint failure: {msg}"),
        }
    }
}

impl Error for PlaceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlaceError::Ops(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OpsError> for PlaceError {
    fn from(e: OpsError) -> Self {
        PlaceError::Ops(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PlaceError::Diverged { iteration: 12 };
        assert!(e.to_string().contains("12"));
        assert!(e.source().is_none());
        let e: PlaceError = OpsError::InvalidModel("x".into()).into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + Error>() {}
        assert_bounds::<PlaceError>();
    }
}
