//! The global-placement driver: wires the gradient engine, optimizer,
//! scheduler and recorder together (Figure 1 of the paper).

use crate::params::{gamma_for, update_period};
use crate::{
    Checkpoint, CheckpointOptions, DensityGuidance, Framework, GradientEngine, IterationRecord,
    NesterovOptimizer, Parameters, PlaceError, Recorder, XplaceConfig,
};
use std::time::Instant;
use xplace_db::Design;
use xplace_device::{Device, ProfileSnapshot};
use xplace_ops::{precond, PlacementModel};
use xplace_telemetry::{stage_of, GpMetrics, NullSink, Stage, TelemetryEvent, TelemetrySink};

/// Outcome of a global-placement run.
#[derive(Debug)]
pub struct PlacementReport {
    /// Design name.
    pub design: String,
    /// Iterations executed.
    pub iterations: usize,
    /// HPWL at the initial (clustered) state.
    pub initial_hpwl: f64,
    /// HPWL of the final placement (exact, recomputed on the design).
    pub final_hpwl: f64,
    /// Overflow ratio at the initial state.
    pub initial_overflow: f64,
    /// Overflow ratio at the final state.
    pub final_overflow: f64,
    /// Whether the overflow target was reached (vs hitting the iteration
    /// cap or the plateau window).
    pub converged: bool,
    /// Whether the run paused at [`CheckpointOptions::stop_at`] instead
    /// of finishing: the loop state was snapshotted to the store, no
    /// `run_end` was emitted, and the quality fields describe the paused
    /// (not final) state.
    pub paused: bool,
    /// Best overflow seen during the run (the reported placement is the
    /// snapshot at this point when the run did not converge).
    pub best_overflow: f64,
    /// Cumulative modeled-GPU profile of the whole run.
    pub profile: ProfileSnapshot,
    /// Wall-clock CPU time of the run in seconds.
    pub wall_seconds: f64,
    /// Per-iteration metrics (empty when recording is disabled).
    pub recorder: Recorder,
}

impl PlacementReport {
    /// Modeled GPU time of the whole run in seconds (the paper's "GP/s"
    /// column, under the device model).
    pub fn modeled_gp_seconds(&self) -> f64 {
        self.profile.modeled_ns() as f64 / 1e9
    }

    /// Mean modeled time per iteration in milliseconds (Table 3's
    /// "GP / Iter Time").
    pub fn modeled_ms_per_iter(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.profile.modeled_ns() as f64 / 1e6 / self.iterations as f64
        }
    }

    /// The telemetry [`GpMetrics`] of this report (the GP block of a
    /// [`xplace_telemetry::RunReport`]).
    pub fn gp_metrics(&self) -> GpMetrics {
        GpMetrics {
            iterations: self.iterations,
            initial_hpwl: self.initial_hpwl,
            final_hpwl: self.final_hpwl,
            initial_overflow: self.initial_overflow,
            final_overflow: self.final_overflow,
            converged: self.converged,
            modeled_ns: self.profile.modeled_ns(),
            launches: self.profile.launches,
            syncs: self.profile.syncs,
            wall_seconds: self.wall_seconds,
        }
    }
}

/// Field-wise sum of two device profiles; snapshots from the per-level
/// devices of a multilevel run combine into one whole-run profile.
fn accumulate_profile(into: &mut ProfileSnapshot, other: ProfileSnapshot) {
    into.launches += other.launches;
    into.syncs += other.syncs;
    into.launch_overhead_ns += other.launch_overhead_ns;
    into.exec_ns += other.exec_ns;
    into.pipelined_ns += other.pipelined_ns;
    into.sync_stall_ns += other.sync_stall_ns;
    into.cpu_ns += other.cpu_ns;
}

/// The Xplace global placer.
///
/// See the crate-level example. Construct with a [`XplaceConfig`] preset,
/// optionally install a [`DensityGuidance`], then call
/// [`GlobalPlacer::place`] on a design.
#[derive(Debug)]
pub struct GlobalPlacer {
    config: XplaceConfig,
    guidance: Option<Box<dyn DensityGuidance>>,
    pool: Option<&'static xplace_parallel::WorkerPool>,
}

impl GlobalPlacer {
    /// Creates a placer from a configuration.
    pub fn new(config: XplaceConfig) -> Self {
        GlobalPlacer {
            config,
            guidance: None,
            pool: None,
        }
    }

    /// Routes the heavy kernel bodies onto an injected worker pool instead
    /// of the process-global one. Batch schedulers use this so concurrent
    /// placements keep their launches on the scheduler's own pool; results
    /// are bit-identical for any pool (the work decomposition is fixed by
    /// the design).
    pub fn with_pool(mut self, pool: &'static xplace_parallel::WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Installs a neural density guidance (the Xplace-NN extension of
    /// §3.3). The guidance is consumed by the next [`GlobalPlacer::place`]
    /// call.
    pub fn with_guidance(mut self, guidance: Box<dyn DensityGuidance>) -> Self {
        self.guidance = Some(guidance);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &XplaceConfig {
        &self.config
    }

    /// Runs global placement, updating the design's movable-cell positions
    /// in place and returning the run report.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::InvalidConfig`] for inconsistent
    /// configurations, [`PlaceError::Ops`] when the design cannot be
    /// modeled, and [`PlaceError::Diverged`] if the optimization produces
    /// non-finite values.
    pub fn place(&mut self, design: &mut Design) -> Result<PlacementReport, PlaceError> {
        self.place_traced(design, &mut NullSink)
    }

    /// Runs global placement like [`GlobalPlacer::place`], additionally
    /// emitting the telemetry event stream (run header/footer, one
    /// [`xplace_telemetry::IterationRecord`] per iteration with its
    /// modeled-device delta, ω-stage transitions, skip-window flips, λ
    /// updates and rollbacks) into `sink`.
    ///
    /// Event construction is guarded by [`TelemetrySink::enabled`], so
    /// passing a [`NullSink`] costs nothing in the hot loop. Traces carry
    /// no wall-clock quantities: same-seed runs are byte-identical, for
    /// any thread count.
    ///
    /// # Errors
    ///
    /// Same contract as [`GlobalPlacer::place`], plus
    /// [`PlaceError::Coarsening`] when multilevel clustering fails.
    pub fn place_traced(
        &mut self,
        design: &mut Design,
        sink: &mut dyn TelemetrySink,
    ) -> Result<PlacementReport, PlaceError> {
        self.place_traced_opts(design, sink, CheckpointOptions::none())
    }

    /// Runs global placement like [`GlobalPlacer::place_traced`] with
    /// checkpoint/resume control.
    ///
    /// With `ckpt.every > 0` and a store, the full Nesterov loop state is
    /// snapshotted every `every` iterations ([`Checkpoint`]); saving emits
    /// no telemetry, so the trace stays byte-identical to an unmonitored
    /// run. With `ckpt.resume`, the loop restarts from the snapshot and —
    /// this is the determinism contract CI pins — emits a trace whose
    /// post-`run_start` lines are an exact byte suffix of the
    /// uninterrupted run's trace, with a bit-identical final placement,
    /// at any `--threads`. Resume goes straight to the flat loop: the
    /// snapshot already carries post-coarsening positions, so multilevel
    /// coarse levels are not replayed (the coarse iteration/profile
    /// totals are carried inside the snapshot's profile instead).
    ///
    /// # Errors
    ///
    /// Same contract as [`GlobalPlacer::place_traced`], plus
    /// [`PlaceError::Checkpoint`] when a snapshot cannot be saved or a
    /// resume snapshot does not match the design/configuration.
    pub fn place_traced_opts(
        &mut self,
        design: &mut Design,
        sink: &mut dyn TelemetrySink,
        ckpt: CheckpointOptions<'_>,
    ) -> Result<PlacementReport, PlaceError> {
        self.config.validate()?;
        if ckpt.every > 0 && ckpt.store.is_none() {
            return Err(PlaceError::InvalidConfig(
                "checkpoint cadence set but no checkpoint store given".into(),
            ));
        }
        if ckpt.stop_at.is_some() && ckpt.store.is_none() {
            return Err(PlaceError::InvalidConfig(
                "pause iteration set but no checkpoint store given".into(),
            ));
        }
        let ml = self.config.multilevel;
        if ckpt.resume.is_some() {
            self.place_flat(design, sink, ckpt)
        } else if ml.enabled && design.netlist().num_movable() > ml.min_cells {
            self.place_multilevel(design, sink, ckpt)
        } else {
            self.place_flat(design, sink, ckpt)
        }
    }

    /// Multilevel driver: coarsen, place the hierarchy coarsest-first with
    /// the short relaxed schedule, seed each finer level from the coarser
    /// solution ([`crate::seed_from_coarse`]), then run the full configured
    /// schedule on the original netlist — the only traced run, so the
    /// event schema is identical to flat placement. The returned report
    /// covers the whole multilevel run: iterations and the modeled-device
    /// profile accumulate across levels, while the quality fields
    /// (HPWL/overflow) are those of the final full-netlist run.
    fn place_multilevel(
        &mut self,
        design: &mut Design,
        sink: &mut dyn TelemetrySink,
        ckpt: CheckpointOptions<'_>,
    ) -> Result<PlacementReport, PlaceError> {
        let ml = self.config.multilevel;
        let opts = xplace_db::HierarchyOptions {
            min_cells: ml.min_cells,
            max_levels: ml.max_levels,
            stall_fraction: 0.9,
        };
        let mut levels = xplace_db::build_hierarchy(design, &opts)
            .map_err(|e| PlaceError::Coarsening(e.to_string()))?;

        let mut coarse_iterations = 0usize;
        let mut coarse_profile = ProfileSnapshot::default();
        for li in (0..levels.len()).rev() {
            let mut cfg = self.config.clone();
            cfg.multilevel.enabled = false;
            cfg.record = false;
            cfg.fault = xplace_fault::GpFault::NONE;
            cfg.schedule.max_iterations = ml.coarse_max_iterations;
            cfg.schedule.min_iterations = cfg.schedule.min_iterations.min(ml.coarse_max_iterations);
            cfg.schedule.stop_overflow = ml
                .coarse_stop_overflow
                .max(self.config.schedule.stop_overflow);
            let mut placer = GlobalPlacer::new(cfg);
            if let Some(pool) = self.pool {
                placer = placer.with_pool(pool);
            }
            let report = placer.place_flat(
                &mut levels[li].design,
                &mut NullSink,
                CheckpointOptions::none(),
            )?;
            coarse_iterations += report.iterations;
            accumulate_profile(&mut coarse_profile, report.profile);

            if li == 0 {
                let level = &levels[0];
                crate::seed_from_coarse(design, &level.design, &level.map, self.config.seed);
            } else {
                let (finer, coarser) = levels.split_at_mut(li);
                crate::seed_from_coarse(
                    &mut finer[li - 1].design,
                    &coarser[0].design,
                    &coarser[0].map,
                    self.config.seed,
                );
            }
        }

        let mut report = self.place_flat(design, sink, ckpt)?;
        report.iterations += coarse_iterations;
        accumulate_profile(&mut report.profile, coarse_profile);
        Ok(report)
    }

    /// Single-level global placement (the pre-multilevel `place_traced`
    /// body).
    fn place_flat(
        &mut self,
        design: &mut Design,
        sink: &mut dyn TelemetrySink,
        ckpt: CheckpointOptions<'_>,
    ) -> Result<PlacementReport, PlaceError> {
        self.config.validate()?;
        if let Some(cp) = ckpt.resume {
            cp.validate(design, &self.config)?;
        }
        let tracing = sink.enabled();
        if tracing {
            sink.emit(&TelemetryEvent::RunStart {
                design: design.name().to_string(),
                cells: design.netlist().num_cells(),
                nets: design.netlist().num_nets(),
                movable: design.netlist().num_movable(),
                config: self.config.echo(),
            });
        }
        let start = Instant::now();
        let device = Device::new(self.config.device);
        let mut model =
            PlacementModel::from_design_with(design, self.config.grid, true, self.config.seed)?;
        model.clamp_to_region();

        // Symmetry breaking (DREAMPlace adds init noise for the same
        // reason): cells at exactly coincident positions receive identical
        // gradients and would move in lockstep forever. A deterministic,
        // sub-bin jitter separates them without perturbing real starts.
        // A resumed run skips it: the snapshot positions overwrite the
        // fresh model below.
        if ckpt.resume.is_none() {
            let bin = 0.5 * (model.bin_w() + model.bin_h());
            // Degenerate inputs (everything in a couple of bins) need a
            // jitter large enough that cells land in *different* bins and
            // see different field samples; healthy inputs only need noise.
            let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
            for i in 0..model.num_movable() {
                min_x = min_x.min(model.x[i]);
                max_x = max_x.max(model.x[i]);
                min_y = min_y.min(model.y[i]);
                max_y = max_y.max(model.y[i]);
            }
            let spread = (max_x - min_x).max(max_y - min_y);
            let amp = if spread < 4.0 * bin {
                4.0 * bin
            } else {
                0.02 * bin
            };
            let hash = |i: usize, salt: u64| -> f64 {
                let mut h = (i as u64 ^ salt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
                (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            };
            for i in 0..model.num_movable() {
                model.x[i] += amp * hash(i, self.config.seed);
                model.y[i] += amp * hash(i, self.config.seed ^ 0xabcd);
            }
            model.clamp_to_region();
            model.clamp_to_fences();
        }

        let mut engine = GradientEngine::new(self.config.framework, self.config.operators, &model)?;
        engine.set_threads(self.config.threads);
        if let Some(pool) = self.pool {
            engine.set_pool(pool);
        }
        if let Some(g) = self.guidance.take() {
            engine.set_guidance(g);
        }

        let schedule = self.config.schedule;
        let bin_size = 0.5 * (model.bin_w() + model.bin_h());
        let mut params = Parameters::new(&schedule, bin_size);
        let mut recorder = Recorder::new(self.config.record);
        let fused_optimizer =
            self.config.framework == Framework::Xplace && self.config.operators.reduction;

        let mut optimizer: Option<NesterovOptimizer> = None;
        let mut omega = 0.0;
        let mut initial_hpwl = 0.0;
        let mut initial_overflow = 0.0;
        let mut last_eval = None;
        let mut converged = false;
        let mut iterations = 0;
        // Best-solution snapshot (DREAMPlace-style divergence guard): the
        // density system can oscillate once lambda saturates, so track the
        // best overflow seen and roll back if the run does not converge.
        let mut best_overflow = f64::INFINITY;
        let mut best_iter = 0usize;
        let mut best_u: Option<(Vec<f64>, Vec<f64>)> = None;
        // Telemetry state: transitions are emitted on change only.
        let mut cur_stage = Stage::Early;
        let mut skip_window_open = false;
        // Resume state: loop start index and the modeled profile the
        // interrupted run had already accumulated (this run's device
        // starts from zero, so totals add the base back at the end).
        let mut start_iter = 0usize;
        let mut profile_base = ProfileSnapshot::default();

        if let Some(cp) = ckpt.resume {
            if cp.x.len() != model.num_nodes() || cp.y.len() != model.num_nodes() {
                return Err(PlaceError::Checkpoint(format!(
                    "checkpoint has {} nodes, model has {}",
                    cp.x.len(),
                    model.num_nodes()
                )));
            }
            model.x.copy_from_slice(&cp.x);
            model.y.copy_from_slice(&cp.y);
            params = Parameters::from_state(&cp.params);
            omega = cp.omega;
            optimizer = match &cp.optimizer {
                Some(state) => Some(
                    NesterovOptimizer::from_state(&model, state.clone())
                        .map_err(PlaceError::Checkpoint)?,
                ),
                None => None,
            };
            initial_hpwl = cp.initial_hpwl;
            initial_overflow = cp.initial_overflow;
            iterations = cp.iteration;
            best_overflow = cp.best_overflow;
            best_iter = cp.best_iter;
            best_u = cp.best_u.clone();
            cur_stage = cp.stage;
            skip_window_open = cp.skip_window_open;
            last_eval = cp.last_eval;
            engine.restore_state(&cp.engine)?;
            profile_base = cp.profile;
            start_iter = cp.iteration;
        }

        let mut paused = false;

        for iter in start_iter..schedule.max_iterations {
            let pause_here = ckpt.stop_at == Some(iter);
            let cadence_save =
                ckpt.every > 0 && iter > start_iter && iter.is_multiple_of(ckpt.every);
            if pause_here || cadence_save {
                if let Some(store) = ckpt.store {
                    let snapshot = self.snapshot(
                        design,
                        iter,
                        &model,
                        &params,
                        omega,
                        optimizer.as_ref(),
                        initial_hpwl,
                        initial_overflow,
                        best_overflow,
                        best_iter,
                        &best_u,
                        cur_stage,
                        skip_window_open,
                        last_eval,
                        &engine,
                        {
                            let mut p = profile_base;
                            accumulate_profile(&mut p, device.profile());
                            p
                        },
                    );
                    store.save(iter, &snapshot.render()).map_err(|e| {
                        PlaceError::Checkpoint(format!("save at iteration {iter}: {e}"))
                    })?;
                }
            }
            if pause_here {
                // Generation barrier: the snapshot above carries the whole
                // loop state; stop without rollback or `run_end` so a
                // resume continues the trace byte-identically.
                paused = true;
                break;
            }
            if self.config.fault.panic_at == Some(iter) {
                // Injected fault (resolved from a fault plan): simulates a
                // design crashing mid-GP so failure-isolation and retry
                // paths can be exercised.
                panic!("injected failure at GP iteration {iter}");
            }
            let (eval, prof) = {
                let (res, prof) =
                    device.scoped(|| engine.evaluate(&device, &model, &params, omega));
                (res?, prof)
            };
            if iter == 0 {
                initial_hpwl = eval.hpwl;
                initial_overflow = eval.overflow;
                params.initialize_lambda(&schedule, eval.wl_grad_l1, eval.density_grad_l1);
                // γ starts from the observed overflow.
                params.update(&schedule, bin_size, eval.overflow, eval.hpwl);
            }
            let record = IterationRecord {
                iteration: iter,
                hpwl: eval.hpwl,
                wa: eval.wa,
                overflow: eval.overflow,
                lambda: params.lambda,
                gamma: params.gamma,
                omega,
                r_ratio: eval.r_ratio,
                density_skipped: eval.density_skipped,
                modeled_ns: prof.modeled_ns(),
                launches: prof.launches,
            };
            recorder.push(record);
            if tracing {
                sink.emit(&TelemetryEvent::Iteration {
                    record,
                    profile: prof.into(),
                });
                if iter == 0 {
                    // The λ initialization + first scheduler update above.
                    sink.emit(&TelemetryEvent::LambdaUpdate {
                        iteration: iter,
                        lambda: params.lambda,
                        gamma: params.gamma,
                    });
                }
                if eval.skip_window != skip_window_open {
                    skip_window_open = eval.skip_window;
                    sink.emit(&TelemetryEvent::SkipWindow {
                        iteration: iter,
                        active: skip_window_open,
                    });
                }
            }
            iterations = iter + 1;
            last_eval = Some(eval);

            if eval.overflow < schedule.stop_overflow && iter >= schedule.min_iterations {
                converged = true;
                break;
            }
            // The plateau guard only applies once spreading is underway
            // (early WL-dominated iterations legitimately re-compact the
            // cells and raise overflow).
            if best_overflow < 0.5 && iter.saturating_sub(best_iter) > schedule.plateau_window {
                break; // no overflow progress in a long time: roll back
            }

            // Gradient step at the reference solution.
            let opt = match optimizer.as_mut() {
                Some(o) => o,
                None => {
                    let (gx, gy) = engine.grads();
                    let mut max_g: f64 = 0.0;
                    for i in model.optimizable_indices() {
                        max_g = max_g.max(gx[i].abs()).max(gy[i].abs());
                    }
                    let step0 = if max_g > 0.0 {
                        0.5 * bin_size / max_g
                    } else {
                        1.0
                    };
                    optimizer.insert(NesterovOptimizer::new(&model, step0, 5.0 * bin_size))
                }
            };
            // Split borrows: the optimizer reads gradients owned by the
            // engine while mutating the model.
            let (gx, gy) = {
                let (a, b) = engine.grads();
                (a.to_vec(), b.to_vec())
            };
            opt.step(&device, &mut model, &gx, &gy, fused_optimizer);
            model.clamp_to_fences();
            if eval.overflow < best_overflow {
                best_overflow = eval.overflow;
                best_iter = iter;
                best_u = Some(opt.u_clone());
            }

            // Scheduler (Algorithm 1): stage-aware parameter cadence.
            omega = precond::omega(&model, params.lambda);
            if tracing {
                let stage = stage_of(omega);
                if stage != cur_stage {
                    sink.emit(&TelemetryEvent::StageTransition {
                        iteration: iter,
                        from: cur_stage,
                        to: stage,
                        omega,
                    });
                    cur_stage = stage;
                }
            }
            let period = update_period(&schedule, omega);
            params.advance();
            if params.iteration.is_multiple_of(period) {
                params.update(&schedule, bin_size, eval.overflow, eval.hpwl);
                if tracing {
                    sink.emit(&TelemetryEvent::LambdaUpdate {
                        iteration: iter,
                        lambda: params.lambda,
                        gamma: params.gamma,
                    });
                }
            } else {
                // γ still tracks overflow even when λ is frozen.
                params.gamma = gamma_for(&schedule, bin_size, eval.overflow);
            }
        }

        if let Some(opt) = optimizer.as_mut() {
            // If the run ended worse than its best point, restore the
            // snapshot instead of the final oscillating state.
            let final_overflow = last_eval
                .map(|e: crate::EvalResult| e.overflow)
                .unwrap_or(1.0);
            if !paused && !converged && final_overflow > best_overflow {
                if let Some((ux, uy)) = best_u.as_ref() {
                    opt.set_u(ux, uy);
                    if tracing {
                        sink.emit(&TelemetryEvent::Rollback {
                            iteration: iterations.saturating_sub(1),
                            best_iteration: best_iter,
                            best_overflow,
                        });
                    }
                }
            }
            opt.write_u(&mut model);
            model.clamp_to_fences();
        }
        model.apply_to(design);
        let final_hpwl = design.total_hpwl();
        let final_overflow = last_eval
            .map(|e| e.overflow)
            .unwrap_or(1.0)
            .min(best_overflow);

        // Whole-run profile: what this process ran plus whatever the
        // interrupted run had accumulated before the resume point — so a
        // resumed run's `run_end` totals match the uninterrupted run's.
        let total_profile = {
            let mut p = profile_base;
            accumulate_profile(&mut p, device.profile());
            p
        };

        if tracing && !paused {
            sink.emit(&TelemetryEvent::RunEnd {
                iterations,
                converged,
                final_hpwl,
                final_overflow,
                best_overflow: if best_overflow.is_finite() {
                    best_overflow
                } else {
                    final_overflow
                },
                modeled_ns: total_profile.modeled_ns(),
                launches: total_profile.launches,
            });
        }

        Ok(PlacementReport {
            design: design.name().to_string(),
            iterations,
            initial_hpwl,
            final_hpwl,
            initial_overflow,
            final_overflow,
            converged,
            paused,
            best_overflow,
            profile: total_profile,
            wall_seconds: start.elapsed().as_secs_f64(),
            recorder,
        })
    }

    /// Assembles the [`Checkpoint`] snapshot of the loop state at the top
    /// of iteration `iteration`.
    #[allow(clippy::too_many_arguments)]
    fn snapshot(
        &self,
        design: &Design,
        iteration: usize,
        model: &PlacementModel,
        params: &Parameters,
        omega: f64,
        optimizer: Option<&NesterovOptimizer>,
        initial_hpwl: f64,
        initial_overflow: f64,
        best_overflow: f64,
        best_iter: usize,
        best_u: &Option<(Vec<f64>, Vec<f64>)>,
        stage: Stage,
        skip_window_open: bool,
        last_eval: Option<crate::EvalResult>,
        engine: &GradientEngine,
        profile: ProfileSnapshot,
    ) -> Checkpoint {
        Checkpoint {
            design: design.name().to_string(),
            cells: design.netlist().num_cells(),
            movable: design.netlist().num_movable(),
            config: self.config.echo(),
            iteration,
            x: model.x.clone(),
            y: model.y.clone(),
            params: params.state(),
            omega,
            optimizer: optimizer.map(|o| o.state()),
            initial_hpwl,
            initial_overflow,
            best_overflow,
            best_iter,
            best_u: best_u.clone(),
            stage,
            skip_window_open,
            last_eval,
            engine: engine.state(),
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplace_db::synthesis::{synthesize, SynthesisSpec};

    fn small_design(seed: u64) -> Design {
        synthesize(&SynthesisSpec::new("gp", 400, 420).with_seed(seed)).unwrap()
    }

    #[test]
    fn xplace_spreads_cells_and_reduces_overflow() {
        let mut design = small_design(7);
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 700;
        let report = GlobalPlacer::new(cfg).place(&mut design).unwrap();
        assert!(
            report.final_overflow < 0.25,
            "overflow {}",
            report.final_overflow
        );
        assert!(
            report.final_overflow < report.initial_overflow * 0.5,
            "overflow {} -> {}",
            report.initial_overflow,
            report.final_overflow
        );
        assert!(report.final_hpwl.is_finite() && report.final_hpwl > 0.0);
        // The cells must actually have left the center cluster.
        let r = design.region();
        let nl = design.netlist();
        let spread = nl
            .cell_ids()
            .filter(|&c| nl.cell(c).is_movable())
            .filter(|&c| {
                let p = design.position(c);
                (p.x - r.center().x).abs() > r.width() * 0.1
                    || (p.y - r.center().y).abs() > r.height() * 0.1
            })
            .count();
        assert!(spread > 100, "only {spread} cells left the center");
    }

    #[test]
    fn placement_is_deterministic() {
        let mut d1 = small_design(9);
        let mut d2 = small_design(9);
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 120;
        let r1 = GlobalPlacer::new(cfg.clone()).place(&mut d1).unwrap();
        let r2 = GlobalPlacer::new(cfg).place(&mut d2).unwrap();
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.final_hpwl, r2.final_hpwl);
        assert_eq!(d1.positions(), d2.positions());
    }

    #[test]
    fn baseline_and_xplace_reach_similar_quality() {
        let mut cfg_x = XplaceConfig::xplace();
        cfg_x.schedule.max_iterations = 700;
        let mut cfg_d = XplaceConfig::dreamplace_like();
        cfg_d.schedule.max_iterations = 700;
        let mut dx = small_design(11);
        let mut dd = small_design(11);
        let rx = GlobalPlacer::new(cfg_x).place(&mut dx).unwrap();
        let rd = GlobalPlacer::new(cfg_d).place(&mut dd).unwrap();
        let ratio = rx.final_hpwl / rd.final_hpwl;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "HPWL ratio {ratio}: xplace {} vs baseline {}",
            rx.final_hpwl,
            rd.final_hpwl
        );
        // Xplace must be faster per modeled iteration.
        assert!(
            rx.modeled_ms_per_iter() < rd.modeled_ms_per_iter(),
            "xplace {} ms vs baseline {} ms",
            rx.modeled_ms_per_iter(),
            rd.modeled_ms_per_iter()
        );
    }

    #[test]
    fn recorder_captures_every_iteration() {
        let mut design = small_design(13);
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 50;
        let report = GlobalPlacer::new(cfg).place(&mut design).unwrap();
        assert_eq!(report.recorder.len(), report.iterations);
        // r starts ultra-small (§3.1.4 observation).
        let first = &report.recorder.records()[1];
        assert!(first.r_ratio < 0.01, "early r = {}", first.r_ratio);
        // Early iterations skip density under full optimization.
        assert!(report
            .recorder
            .records()
            .iter()
            .take(20)
            .any(|r| r.density_skipped));
    }

    #[test]
    fn recording_can_be_disabled() {
        let mut design = small_design(15);
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 10;
        cfg.record = false;
        let report = GlobalPlacer::new(cfg).place(&mut design).unwrap();
        assert!(report.recorder.is_empty());
    }

    #[test]
    fn invalid_config_is_rejected_before_work() {
        let mut design = small_design(17);
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 0;
        let err = GlobalPlacer::new(cfg).place(&mut design).unwrap_err();
        assert!(matches!(err, PlaceError::InvalidConfig(_)));
    }

    #[test]
    fn plateau_rollback_reports_the_best_solution() {
        // Force an aggressive plateau window so the run stops early and
        // must roll back to its best snapshot.
        let mut design = small_design(21);
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 1000;
        cfg.schedule.stop_overflow = 1e-6; // unreachable: forces plateau/cap path
        cfg.schedule.plateau_window = 40;
        let report = GlobalPlacer::new(cfg).place(&mut design).unwrap();
        assert!(!report.converged);
        // The reported overflow is the best seen, not the last (possibly
        // worse) state.
        assert!(report.final_overflow <= report.best_overflow + 1e-12);
        assert!(report.final_hpwl.is_finite());
        // The design's positions are the rolled-back snapshot: finite and
        // inside the region.
        let r = design.region();
        for p in design.positions() {
            assert!(p.x.is_finite() && p.y.is_finite());
            assert!(p.x >= r.lx - 1e-6 && p.x <= r.ux + 1e-6);
        }
    }

    #[test]
    fn best_overflow_never_exceeds_final_overflow_on_converged_runs() {
        let mut design = small_design(23);
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 900;
        let report = GlobalPlacer::new(cfg).place(&mut design).unwrap();
        assert!(report.converged);
        assert!(report.best_overflow >= report.final_overflow - 0.05);
    }

    #[test]
    fn traced_run_emits_a_well_formed_event_stream() {
        use xplace_telemetry::VecSink;

        let mut design = small_design(27);
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 120;
        let mut sink = VecSink::new();
        let report = GlobalPlacer::new(cfg)
            .place_traced(&mut design, &mut sink)
            .unwrap();

        let events = sink.events();
        assert!(matches!(
            events.first(),
            Some(TelemetryEvent::RunStart { .. })
        ));
        assert!(matches!(events.last(), Some(TelemetryEvent::RunEnd { .. })));

        // One iteration event per placer iteration, numbered contiguously.
        let iters: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Iteration { record, .. } => Some(record.iteration),
                _ => None,
            })
            .collect();
        assert_eq!(iters.len(), report.iterations);
        assert!(iters.iter().enumerate().all(|(i, &it)| i == it));

        // The skip window opens at least once under full optimization, and
        // λ is logged at initialization.
        assert!(events
            .iter()
            .any(|e| matches!(e, TelemetryEvent::SkipWindow { active: true, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TelemetryEvent::LambdaUpdate { iteration: 0, .. })));

        // The end marker agrees with the report.
        if let Some(TelemetryEvent::RunEnd {
            iterations,
            final_hpwl,
            ..
        }) = events.last()
        {
            assert_eq!(*iterations, report.iterations);
            assert_eq!(*final_hpwl, report.final_hpwl);
        }
    }

    #[test]
    fn traces_are_byte_identical_across_runs_and_thread_counts() {
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 90;

        let trace_with = |threads: usize| {
            let mut design = small_design(29);
            let mut sink = xplace_telemetry::VecSink::new();
            GlobalPlacer::new(cfg.clone().with_threads(threads))
                .place_traced(&mut design, &mut sink)
                .unwrap();
            sink.to_jsonl()
        };

        let a = trace_with(1);
        let b = trace_with(1);
        assert_eq!(a, b, "same-seed traces differ");
        let c = trace_with(4);
        assert_eq!(a, c, "threads=4 trace differs from threads=1");
    }

    #[test]
    fn gp_panic_fault_fires_at_the_requested_iteration() {
        let mut design = small_design(31);
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 50;
        cfg.fault.panic_at = Some(5);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            GlobalPlacer::new(cfg).place(&mut design)
        }))
        .unwrap_err();
        let msg = xplace_parallel::panic_message(err.as_ref());
        assert!(
            msg.contains("injected failure at GP iteration 5"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    fn injected_pool_reproduces_global_pool_results_bitwise() {
        static POOL: std::sync::OnceLock<xplace_parallel::WorkerPool> = std::sync::OnceLock::new();
        let pool = POOL.get_or_init(|| xplace_parallel::WorkerPool::new(3));
        let run = |pool: Option<&'static xplace_parallel::WorkerPool>| {
            let mut design = small_design(33);
            let mut cfg = XplaceConfig::xplace().with_threads(3);
            cfg.schedule.max_iterations = 80;
            let mut placer = GlobalPlacer::new(cfg);
            if let Some(p) = pool {
                placer = placer.with_pool(p);
            }
            let report = placer.place(&mut design).unwrap();
            (report.final_hpwl, report.final_overflow)
        };
        let (h1, o1) = run(None);
        let (h2, o2) = run(Some(pool));
        assert_eq!(h1.to_bits(), h2.to_bits());
        assert_eq!(o1.to_bits(), o2.to_bits());
    }

    fn multilevel_cfg(max_final_iters: usize) -> XplaceConfig {
        let mut cfg = XplaceConfig::xplace();
        cfg.multilevel.enabled = true;
        cfg.multilevel.min_cells = 300;
        cfg.multilevel.coarse_max_iterations = 60;
        cfg.schedule.max_iterations = max_final_iters;
        cfg
    }

    #[test]
    fn multilevel_places_a_design_end_to_end() {
        let mut design = synthesize(&SynthesisSpec::new("ml", 1500, 1600).with_seed(41)).unwrap();
        let report = GlobalPlacer::new(multilevel_cfg(400))
            .place(&mut design)
            .unwrap();
        assert!(report.final_hpwl.is_finite() && report.final_hpwl > 0.0);
        assert!(
            report.final_overflow < 0.35,
            "overflow {}",
            report.final_overflow
        );
        // The reported iterations include the coarse levels, so they
        // exceed the final-level cap only when coarse work happened; at
        // minimum they exceed the flat minimum.
        assert!(report.iterations > 0);
        // All cells inside the region.
        let r = design.region();
        for p in design.positions() {
            assert!(p.x.is_finite() && p.y.is_finite());
            assert!(p.x >= r.lx - 1e-6 && p.x <= r.ux + 1e-6);
            assert!(p.y >= r.ly - 1e-6 && p.y <= r.uy + 1e-6);
        }
    }

    #[test]
    fn multilevel_traces_are_byte_identical_across_thread_counts() {
        let trace_with = |threads: usize| {
            let mut design =
                synthesize(&SynthesisSpec::new("ml", 1200, 1300).with_seed(43)).unwrap();
            let mut sink = xplace_telemetry::VecSink::new();
            GlobalPlacer::new(multilevel_cfg(80).with_threads(threads))
                .place_traced(&mut design, &mut sink)
                .unwrap();
            (sink.to_jsonl(), design.positions().to_vec())
        };
        let (t1, p1) = trace_with(1);
        let (t4, p4) = trace_with(4);
        assert_eq!(t1, t4, "multilevel trace differs across thread counts");
        assert_eq!(p1, p4, "multilevel positions differ across thread counts");
        // The trace records that multilevel ran, with the flat event schema.
        assert!(t1.contains("\"multilevel\":true"));
    }

    #[test]
    fn small_designs_place_flat_even_when_multilevel_is_enabled() {
        // Below the hierarchy floor the multilevel path must not perturb
        // results at all.
        let run = |enabled: bool| {
            let mut design = small_design(47);
            let mut cfg = XplaceConfig::xplace();
            cfg.schedule.max_iterations = 90;
            cfg.multilevel.enabled = enabled; // min_cells default 5000 > 400
            GlobalPlacer::new(cfg).place(&mut design).unwrap();
            design.positions().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn checkpointing_does_not_perturb_the_trace() {
        use crate::MemoryCheckpointStore;
        let run = |every: usize| {
            let mut design = small_design(51);
            let mut cfg = XplaceConfig::xplace();
            cfg.schedule.max_iterations = 80;
            let store = MemoryCheckpointStore::new();
            let mut sink = xplace_telemetry::VecSink::new();
            GlobalPlacer::new(cfg)
                .place_traced_opts(
                    &mut design,
                    &mut sink,
                    CheckpointOptions {
                        every,
                        store: if every > 0 { Some(&store) } else { None },
                        resume: None,
                        stop_at: None,
                    },
                )
                .unwrap();
            (sink.to_jsonl(), store.saves())
        };
        let (plain, saves0) = run(0);
        let (monitored, saves25) = run(25);
        assert_eq!(saves0, 0);
        assert!(saves25 >= 2, "expected saves at 25/50/75, got {saves25}");
        assert_eq!(plain, monitored, "checkpoint saves perturbed the trace");
    }

    /// The resume determinism contract: a run killed at iteration N and
    /// resumed from its last checkpoint emits a trace whose
    /// post-`run_start` lines are an exact byte suffix of the
    /// uninterrupted run's trace, and lands on a bit-identical placement.
    fn assert_resume_suffix(threads: usize) {
        use crate::MemoryCheckpointStore;
        let mut cfg = XplaceConfig::xplace().with_threads(threads);
        cfg.schedule.max_iterations = 90;

        // Uninterrupted run, checkpointing every 20 iterations.
        let store = MemoryCheckpointStore::new();
        let mut full_design = small_design(53);
        let mut full_sink = xplace_telemetry::VecSink::new();
        let full_report = GlobalPlacer::new(cfg.clone())
            .place_traced_opts(
                &mut full_design,
                &mut full_sink,
                CheckpointOptions {
                    every: 20,
                    store: Some(&store),
                    resume: None,
                    stop_at: None,
                },
            )
            .unwrap();
        let full_trace = full_sink.to_jsonl();
        let (at, checkpoint) = store.latest().unwrap().unwrap();
        assert!(at >= 40, "expected a late checkpoint, got {at}");

        // Resume from the snapshot ("the machine died" — the design is
        // reloaded from scratch, positions come from the checkpoint).
        let mut resumed_design = small_design(53);
        let mut resumed_sink = xplace_telemetry::VecSink::new();
        let resumed_report = GlobalPlacer::new(cfg)
            .place_traced_opts(
                &mut resumed_design,
                &mut resumed_sink,
                CheckpointOptions {
                    every: 0,
                    store: None,
                    resume: Some(&checkpoint),
                    stop_at: None,
                },
            )
            .unwrap();
        let resumed_trace = resumed_sink.to_jsonl();

        // The resumed trace re-emits run_start, then replays the tail.
        let resumed_lines: Vec<&str> = resumed_trace.lines().collect();
        let full_lines: Vec<&str> = full_trace.lines().collect();
        assert!(resumed_lines[0].contains("run_start"));
        assert_eq!(resumed_lines[0], full_lines[0], "run_start differs");
        let tail = &resumed_lines[1..];
        assert!(
            tail.len() < full_lines.len(),
            "resume replayed the whole run"
        );
        assert_eq!(
            &full_lines[full_lines.len() - tail.len()..],
            tail,
            "resumed trace is not a byte suffix of the full trace"
        );
        assert_eq!(
            full_report.final_hpwl.to_bits(),
            resumed_report.final_hpwl.to_bits()
        );
        assert_eq!(full_design.positions(), resumed_design.positions());
    }

    #[test]
    fn resume_replays_a_byte_identical_trace_suffix_single_threaded() {
        assert_resume_suffix(1);
    }

    #[test]
    fn resume_replays_a_byte_identical_trace_suffix_multi_threaded() {
        assert_resume_suffix(4);
    }

    #[test]
    fn resume_rejects_a_mismatched_design_or_config() {
        use crate::MemoryCheckpointStore;
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 40;
        let store = MemoryCheckpointStore::new();
        let mut design = small_design(57);
        GlobalPlacer::new(cfg.clone())
            .place_traced_opts(
                &mut design,
                &mut NullSink,
                CheckpointOptions {
                    every: 10,
                    store: Some(&store),
                    resume: None,
                    stop_at: None,
                },
            )
            .unwrap();
        let (_, checkpoint) = store.latest().unwrap().unwrap();

        // Different seed => different config echo => refused.
        let mut other = small_design(57);
        let err = GlobalPlacer::new(cfg.clone().with_seed(4242))
            .place_traced_opts(
                &mut other,
                &mut NullSink,
                CheckpointOptions {
                    every: 0,
                    store: None,
                    resume: Some(&checkpoint),
                    stop_at: None,
                },
            )
            .unwrap_err();
        assert!(matches!(err, PlaceError::Checkpoint(_)), "{err}");

        // Different design => refused.
        let mut other = synthesize(&SynthesisSpec::new("other", 300, 320).with_seed(5)).unwrap();
        let err = GlobalPlacer::new(cfg)
            .place_traced_opts(
                &mut other,
                &mut NullSink,
                CheckpointOptions {
                    every: 0,
                    store: None,
                    resume: Some(&checkpoint),
                    stop_at: None,
                },
            )
            .unwrap_err();
        assert!(matches!(err, PlaceError::Checkpoint(_)), "{err}");
    }

    #[test]
    fn checkpoint_cadence_without_a_store_is_rejected() {
        let mut design = small_design(59);
        let err = GlobalPlacer::new(XplaceConfig::xplace())
            .place_traced_opts(
                &mut design,
                &mut NullSink,
                CheckpointOptions {
                    every: 10,
                    store: None,
                    resume: None,
                    stop_at: None,
                },
            )
            .unwrap_err();
        assert!(matches!(err, PlaceError::InvalidConfig(_)));
    }

    /// The pause contract behind the exploration layer's generation
    /// barriers: a run stopped at iteration N via `stop_at`, then resumed
    /// from the pause snapshot, replays the identical remainder — so the
    /// paused segment's trace plus the resumed trace (minus its repeated
    /// `run_start`) are byte-for-byte the uninterrupted run's trace, and
    /// the final placement is bit-identical.
    #[test]
    fn pause_and_resume_stitch_into_the_uninterrupted_trace() {
        use crate::MemoryCheckpointStore;
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 90;

        let mut full_design = small_design(61);
        let mut full_sink = xplace_telemetry::VecSink::new();
        let full_report = GlobalPlacer::new(cfg.clone())
            .place_traced(&mut full_design, &mut full_sink)
            .unwrap();
        let full_trace = full_sink.to_jsonl();

        let store = MemoryCheckpointStore::new();
        let mut paused_design = small_design(61);
        let mut paused_sink = xplace_telemetry::VecSink::new();
        let paused_report = GlobalPlacer::new(cfg.clone())
            .place_traced_opts(
                &mut paused_design,
                &mut paused_sink,
                CheckpointOptions {
                    every: 0,
                    store: Some(&store),
                    resume: None,
                    stop_at: Some(40),
                },
            )
            .unwrap();
        assert!(paused_report.paused);
        assert_eq!(paused_report.iterations, 40);
        let (at, checkpoint) = store.latest().unwrap().unwrap();
        assert_eq!(at, 40);

        let mut resumed_design = small_design(61);
        let mut resumed_sink = xplace_telemetry::VecSink::new();
        let resumed_report = GlobalPlacer::new(cfg)
            .place_traced_opts(
                &mut resumed_design,
                &mut resumed_sink,
                CheckpointOptions {
                    every: 0,
                    store: None,
                    resume: Some(&checkpoint),
                    stop_at: None,
                },
            )
            .unwrap();
        assert!(!resumed_report.paused);

        // Stitch: paused segment + resumed segment without its run_start.
        let resumed_trace = resumed_sink.to_jsonl();
        let resumed_lines: Vec<&str> = resumed_trace.lines().collect();
        assert!(resumed_lines[0].contains("run_start"));
        let mut stitched: Vec<String> = paused_sink
            .to_jsonl()
            .lines()
            .map(|l| l.to_string())
            .collect();
        stitched.extend(resumed_lines[1..].iter().map(|l| l.to_string()));
        let full_lines: Vec<String> = full_trace.lines().map(|l| l.to_string()).collect();
        assert_eq!(
            stitched, full_lines,
            "stitched trace differs from the uninterrupted run"
        );
        assert_eq!(
            full_report.final_hpwl.to_bits(),
            resumed_report.final_hpwl.to_bits()
        );
        assert_eq!(full_design.positions(), resumed_design.positions());
    }

    #[test]
    fn pause_without_a_store_is_rejected() {
        let mut design = small_design(63);
        let err = GlobalPlacer::new(XplaceConfig::xplace())
            .place_traced_opts(
                &mut design,
                &mut NullSink,
                CheckpointOptions {
                    every: 0,
                    store: None,
                    resume: None,
                    stop_at: Some(10),
                },
            )
            .unwrap_err();
        assert!(matches!(err, PlaceError::InvalidConfig(_)));
    }

    /// Branch determinism: two members branched from the same snapshot
    /// with the same perturbation seed replay byte-identical traces, and
    /// a different seed diverges.
    #[test]
    fn same_perturbation_seed_branches_byte_identically() {
        use crate::{MemoryCheckpointStore, Perturbation};
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 80;

        let store = MemoryCheckpointStore::new();
        let mut design = small_design(67);
        GlobalPlacer::new(cfg.clone())
            .place_traced_opts(
                &mut design,
                &mut NullSink,
                CheckpointOptions {
                    every: 0,
                    store: Some(&store),
                    resume: None,
                    stop_at: Some(30),
                },
            )
            .unwrap();
        let (_, snapshot) = store.latest().unwrap().unwrap();

        let branch_trace = |seed: u64| {
            let mut cp = snapshot.branch_for(&cfg);
            cp.perturb(&Perturbation::with_seed(seed));
            let mut d = small_design(67);
            let mut sink = xplace_telemetry::VecSink::new();
            GlobalPlacer::new(cfg.clone())
                .place_traced_opts(
                    &mut d,
                    &mut sink,
                    CheckpointOptions {
                        every: 0,
                        store: None,
                        resume: Some(&cp),
                        stop_at: None,
                    },
                )
                .unwrap();
            sink.to_jsonl()
        };
        let a = branch_trace(77);
        let b = branch_trace(77);
        assert_eq!(a, b, "same perturbation seed produced different traces");
        let c = branch_trace(78);
        assert_ne!(a, c, "different perturbation seeds did not diversify");
    }

    #[test]
    fn hpwl_grows_from_cluster_but_stays_reasonable() {
        // Spreading necessarily increases HPWL from the degenerate
        // all-at-center start; it must not explode.
        let mut design = small_design(19);
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 700;
        let report = GlobalPlacer::new(cfg).place(&mut design).unwrap();
        let region_half_perimeter = design.region().width() + design.region().height();
        let nets = design.netlist().num_nets() as f64;
        assert!(
            report.final_hpwl < nets * region_half_perimeter * 0.5,
            "HPWL {} implausibly large",
            report.final_hpwl
        );
    }
}
