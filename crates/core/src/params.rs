use crate::ScheduleConfig;

/// The live placement parameters the scheduler evolves (γ, λ) together
/// with the bookkeeping needed for their updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Parameters {
    /// WA smoothing parameter γ (Eq. 4/6); smaller = closer to HPWL.
    pub gamma: f64,
    /// Density penalty weight λ (Eq. 3).
    pub lambda: f64,
    /// Current iteration index.
    pub iteration: usize,
    /// HPWL observed at the previous parameter update.
    last_hpwl: f64,
    /// Overflow observed at the previous parameter update.
    last_overflow: f64,
    /// Whether λ has been initialized from the first gradient norms.
    lambda_initialized: bool,
}

impl Parameters {
    /// Fresh parameters: γ for a fully-overflowed design, λ uninitialized
    /// (set after the first gradient evaluation).
    pub fn new(schedule: &ScheduleConfig, bin_size: f64) -> Self {
        Parameters {
            gamma: gamma_for(schedule, bin_size, 1.0),
            lambda: 0.0,
            iteration: 0,
            last_hpwl: f64::INFINITY,
            last_overflow: f64::INFINITY,
            lambda_initialized: false,
        }
    }

    /// Whether λ has been initialized from gradient norms.
    pub fn lambda_initialized(&self) -> bool {
        self.lambda_initialized
    }

    /// Initializes λ from the L1 norms of the wirelength and density
    /// gradients: `λ0 = factor * |∇WL| / |∇D|` (the DREAMPlace rule; the
    /// small factor is why the ratio `r` of §3.1.4 starts ultra-small).
    pub fn initialize_lambda(
        &mut self,
        schedule: &ScheduleConfig,
        wl_grad_norm: f64,
        density_grad_norm: f64,
    ) {
        let ratio = if density_grad_norm > 0.0 {
            // Floor the ratio: a degenerate start (all cells coincident,
            // wirelength gradient ~ 0) must still seed a usable lambda.
            (wl_grad_norm / density_grad_norm).max(1e-6)
        } else {
            1.0
        };
        self.lambda = (schedule.lambda_init_factor * ratio).max(f64::MIN_POSITIVE);
        self.lambda_initialized = true;
    }

    /// One scheduler update (ePlace rules, called at the cadence chosen by
    /// the stage-aware logic): γ follows the overflow, λ is multiplied by
    /// a factor driven by the relative HPWL change since the last update.
    pub fn update(&mut self, schedule: &ScheduleConfig, bin_size: f64, overflow: f64, hpwl: f64) {
        self.gamma = gamma_for(schedule, bin_size, overflow);
        if self.lambda_initialized {
            let mut mu = if self.last_hpwl.is_finite() && self.last_hpwl > 0.0 {
                let rel = (hpwl - self.last_hpwl) / self.last_hpwl;
                // HPWL stable or improving -> grow λ at the cap; HPWL
                // blowing up -> slow the growth (ePlace's μ schedule, made
                // scale-free by using the relative change). λ never
                // shrinks: spreading must eventually win.
                (schedule.lambda_mu_max * 10f64.powf(-rel * 10.0))
                    .clamp(schedule.lambda_mu_min, schedule.lambda_mu_max)
            } else {
                schedule.lambda_mu_max
            };
            // Once the density force has saturated (overflow actively
            // worsening under more pressure), pushing λ harder only
            // oscillates the system — the runaway DREAMPlace's divergence
            // check also guards against.
            if overflow > self.last_overflow + 1e-3 && overflow < 0.5 {
                mu = mu.min(1.02).max(schedule.lambda_mu_min.min(1.02));
            }
            self.lambda *= mu;
        }
        self.last_hpwl = hpwl;
        self.last_overflow = overflow;
    }

    /// Advances the iteration counter.
    pub fn advance(&mut self) {
        self.iteration += 1;
    }

    /// Snapshots the full parameter state (including the private update
    /// bookkeeping) for checkpointing.
    pub fn state(&self) -> ParamState {
        ParamState {
            gamma: self.gamma,
            lambda: self.lambda,
            iteration: self.iteration,
            last_hpwl: self.last_hpwl,
            last_overflow: self.last_overflow,
            lambda_initialized: self.lambda_initialized,
        }
    }

    /// Rebuilds parameters from a checkpointed [`ParamState`]; the exact
    /// inverse of [`Self::state`].
    pub fn from_state(state: &ParamState) -> Parameters {
        Parameters {
            gamma: state.gamma,
            lambda: state.lambda,
            iteration: state.iteration,
            last_hpwl: state.last_hpwl,
            last_overflow: state.last_overflow,
            lambda_initialized: state.lambda_initialized,
        }
    }
}

/// A plain-data snapshot of [`Parameters`] used by GP checkpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamState {
    /// WA smoothing parameter γ.
    pub gamma: f64,
    /// Density penalty weight λ.
    pub lambda: f64,
    /// Iteration counter.
    pub iteration: usize,
    /// HPWL at the previous parameter update (`INFINITY` before the
    /// first update).
    pub last_hpwl: f64,
    /// Overflow at the previous parameter update (`INFINITY` before the
    /// first update).
    pub last_overflow: f64,
    /// Whether λ has been initialized from gradient norms.
    pub lambda_initialized: bool,
}

/// The ePlace γ schedule: `gamma_scale * bin_size * 10^(k * ovfl + b)`.
pub fn gamma_for(schedule: &ScheduleConfig, bin_size: f64, overflow: f64) -> f64 {
    let ovfl = overflow.clamp(0.0, 1.0);
    schedule.gamma_scale * bin_size * 10f64.powf(schedule.gamma_k * ovfl + schedule.gamma_b)
}

/// Stage classification by the precondition weighted ratio ω (§3.2):
/// returns the parameter-update period for the current stage.
pub fn update_period(schedule: &ScheduleConfig, omega: f64) -> usize {
    if schedule.stage_aware && omega > 0.5 && omega < 0.95 {
        schedule.intermediate_update_period.max(1)
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> ScheduleConfig {
        ScheduleConfig::default()
    }

    #[test]
    fn gamma_shrinks_with_overflow() {
        let s = sched();
        let g1 = gamma_for(&s, 10.0, 1.0);
        let g05 = gamma_for(&s, 10.0, 0.5);
        let g01 = gamma_for(&s, 10.0, 0.1);
        assert!(g1 > g05 && g05 > g01);
        // At full overflow: 8 * 10 * 10^(20/9 - 11/9) = 80 * 10 = 800.
        assert!((g1 - 800.0).abs() < 1e-9);
        // At 10% overflow: 8 * 10 * 10^(2/9 - 11/9) = 80 * 0.1 = 8.
        assert!((g01 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_clamps_overflow_to_unit_range() {
        let s = sched();
        assert_eq!(gamma_for(&s, 1.0, 5.0), gamma_for(&s, 1.0, 1.0));
        assert_eq!(gamma_for(&s, 1.0, -1.0), gamma_for(&s, 1.0, 0.0));
    }

    #[test]
    fn lambda_initialization_uses_gradient_ratio() {
        let s = sched();
        let mut p = Parameters::new(&s, 1.0);
        assert!(!p.lambda_initialized());
        p.initialize_lambda(&s, 1000.0, 10.0);
        assert!(p.lambda_initialized());
        assert!((p.lambda - 8e-5 * 100.0).abs() < 1e-12);
        // r = λ|∇D|/|∇WL| = 8e-5: "ultra-small" as the paper observes.
        let r = p.lambda * 10.0 / 1000.0;
        assert!((r - 8e-5).abs() < 1e-12);
    }

    #[test]
    fn lambda_grows_when_hpwl_is_stable() {
        let s = sched();
        let mut p = Parameters::new(&s, 1.0);
        p.initialize_lambda(&s, 100.0, 100.0);
        let l0 = p.lambda;
        p.update(&s, 1.0, 0.9, 1000.0);
        p.update(&s, 1.0, 0.8, 1000.0); // overflow improving, HPWL stable
        assert!((p.lambda - l0 * s.lambda_mu_max * s.lambda_mu_max).abs() < 1e-12);
    }

    #[test]
    fn lambda_growth_damps_when_overflow_stagnates() {
        let s = sched();
        let mut p = Parameters::new(&s, 1.0);
        p.initialize_lambda(&s, 100.0, 100.0);
        p.update(&s, 1.0, 0.3, 1000.0);
        let l_before = p.lambda;
        p.update(&s, 1.0, 0.32, 1000.0); // overflow worsening mid-spread
        let mu = p.lambda / l_before;
        assert!(mu <= 1.02 + 1e-12, "regression must damp growth, mu {mu}");
    }

    #[test]
    fn lambda_growth_slows_when_hpwl_explodes() {
        let s = sched();
        let mut p = Parameters::new(&s, 1.0);
        p.initialize_lambda(&s, 100.0, 100.0);
        p.update(&s, 1.0, 0.9, 1000.0);
        let l_before = p.lambda;
        p.update(&s, 1.0, 0.9, 1500.0); // +50% HPWL
        let mu = p.lambda / l_before;
        assert!(
            mu <= s.lambda_mu_min + 1e-12,
            "mu {mu} should hit the floor"
        );
    }

    #[test]
    fn update_period_follows_stage() {
        let s = sched();
        assert_eq!(update_period(&s, 0.01), 1);
        assert_eq!(update_period(&s, 0.7), 3);
        assert_eq!(update_period(&s, 0.97), 1);
        let mut s2 = s;
        s2.stage_aware = false;
        assert_eq!(update_period(&s2, 0.7), 1);
    }

    #[test]
    fn advance_counts_iterations() {
        let s = sched();
        let mut p = Parameters::new(&s, 1.0);
        p.advance();
        p.advance();
        assert_eq!(p.iteration, 2);
    }
}
