//! GP checkpoint/resume: a complete, JSON-serialized snapshot of the
//! Nesterov loop state, taken every C iterations, from which a killed
//! run restarts and replays a **byte-identical trace suffix** and final
//! placement versus the uninterrupted run — at any `--threads`.
//!
//! The snapshot captures everything the loop carries across iterations:
//! the reference solution held in the model (`x`/`y`, fillers included),
//! the optimizer's main solution / BB history / momentum scalars, the
//! scheduler parameters (γ, λ and their private update bookkeeping), ω,
//! the best-overflow rollback snapshot, the telemetry edge-trigger state
//! (current stage, skip-window flag), the previous evaluation, the
//! engine's skip-window bookkeeping **including the cached electrostatic
//! field** (skipped iterations serve gradients from it), and the modeled
//! device profile accumulated so far (so `RunEnd` totals match).
//!
//! Saving emits no telemetry and reads no clocks, so a checkpointing
//! run's trace is byte-identical to a non-checkpointing run's.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::engine::EngineState;
use crate::optimizer::OptimizerState;
use crate::params::ParamState;
use crate::{EvalResult, PlaceError, XplaceConfig};
use xplace_db::Design;
use xplace_device::ProfileSnapshot;
use xplace_telemetry::{ConfigEcho, FromJson, Json, JsonError, Stage, ToJson};

/// Format tag embedded in every checkpoint payload.
const FORMAT: &str = "xplace-checkpoint";
/// Payload version; bumped on any layout change.
const VERSION: usize = 1;

/// A complete snapshot of the GP loop at the top of one iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Design name (resume validates it).
    pub design: String,
    /// Total cell count of the design.
    pub cells: usize,
    /// Movable cell count.
    pub movable: usize,
    /// Configuration echo of the run that saved the checkpoint; resume
    /// refuses a mismatched configuration (the trace suffix could not be
    /// byte-identical).
    pub config: ConfigEcho,
    /// The iteration the snapshot was taken at (the resume point).
    pub iteration: usize,
    /// Model x positions over all nodes (cells + fillers) — the Nesterov
    /// reference solution `v`.
    pub x: Vec<f64>,
    /// Model y positions.
    pub y: Vec<f64>,
    /// Scheduler parameters (γ, λ, update bookkeeping).
    pub params: ParamState,
    /// Precondition weighted ratio ω after the previous step.
    pub omega: f64,
    /// Optimizer state; `None` if the first step had not happened yet.
    pub optimizer: Option<OptimizerState>,
    /// HPWL at iteration 0.
    pub initial_hpwl: f64,
    /// Overflow at iteration 0.
    pub initial_overflow: f64,
    /// Best overflow seen so far (`INFINITY` encodes as `null`).
    pub best_overflow: f64,
    /// Iteration of the best overflow.
    pub best_iter: usize,
    /// Best-solution snapshot (`u` over optimizable nodes).
    pub best_u: Option<(Vec<f64>, Vec<f64>)>,
    /// Telemetry edge-trigger: current ω stage.
    pub stage: Stage,
    /// Telemetry edge-trigger: whether the skip window was open.
    pub skip_window_open: bool,
    /// Result of the previous iteration's evaluation.
    pub last_eval: Option<EvalResult>,
    /// Engine cross-iteration state (skip bookkeeping + cached field).
    pub engine: EngineState,
    /// Modeled device profile accumulated up to the snapshot.
    pub profile: ProfileSnapshot,
}

fn stage_name(stage: Stage) -> &'static str {
    match stage {
        Stage::Early => "early",
        Stage::Intermediate => "intermediate",
        Stage::Final => "final",
    }
}

fn stage_from(name: &str) -> Result<Stage, JsonError> {
    match name {
        "early" => Ok(Stage::Early),
        "intermediate" => Ok(Stage::Intermediate),
        "final" => Ok(Stage::Final),
        other => Err(JsonError(format!("unknown stage `{other}`"))),
    }
}

/// Decodes a float that may have been `INFINITY` at save time (JSON has
/// no Infinity; the encoder renders it as `null`).
fn f64_or_inf(value: &Json) -> Result<f64, JsonError> {
    match value {
        Json::Null => Ok(f64::INFINITY),
        other => other.as_f64(),
    }
}

fn eval_to_json(eval: &EvalResult) -> Json {
    Json::obj([
        ("wa", Json::num(eval.wa)),
        ("hpwl", Json::num(eval.hpwl)),
        ("overflow", Json::num(eval.overflow)),
        ("wl_grad_l1", Json::num(eval.wl_grad_l1)),
        ("density_grad_l1", Json::num(eval.density_grad_l1)),
        ("r_ratio", Json::num(eval.r_ratio)),
        ("density_skipped", Json::Bool(eval.density_skipped)),
        ("skip_window", Json::Bool(eval.skip_window)),
        ("energy", Json::num(eval.energy)),
    ])
}

fn eval_from_json(value: &Json) -> Result<EvalResult, JsonError> {
    Ok(EvalResult {
        wa: value.field("wa")?.as_f64()?,
        hpwl: value.field("hpwl")?.as_f64()?,
        overflow: value.field("overflow")?.as_f64()?,
        wl_grad_l1: value.field("wl_grad_l1")?.as_f64()?,
        density_grad_l1: value.field("density_grad_l1")?.as_f64()?,
        r_ratio: value.field("r_ratio")?.as_f64()?,
        density_skipped: value.field("density_skipped")?.as_bool()?,
        skip_window: value.field("skip_window")?.as_bool()?,
        energy: value.field("energy")?.as_f64()?,
    })
}

fn params_to_json(p: &ParamState) -> Json {
    Json::obj([
        ("gamma", Json::num(p.gamma)),
        ("lambda", Json::num(p.lambda)),
        ("iteration", Json::num(p.iteration as f64)),
        ("last_hpwl", Json::num(p.last_hpwl)),
        ("last_overflow", Json::num(p.last_overflow)),
        ("lambda_initialized", Json::Bool(p.lambda_initialized)),
    ])
}

fn params_from_json(value: &Json) -> Result<ParamState, JsonError> {
    Ok(ParamState {
        gamma: value.field("gamma")?.as_f64()?,
        lambda: value.field("lambda")?.as_f64()?,
        iteration: value.field("iteration")?.as_usize()?,
        last_hpwl: f64_or_inf(value.field("last_hpwl")?)?,
        last_overflow: f64_or_inf(value.field("last_overflow")?)?,
        lambda_initialized: value.field("lambda_initialized")?.as_bool()?,
    })
}

fn optimizer_to_json(o: &OptimizerState) -> Json {
    Json::obj([
        ("u_x", o.u_x.to_json()),
        ("u_y", o.u_y.to_json()),
        ("prev_v_x", o.prev_v_x.to_json()),
        ("prev_v_y", o.prev_v_y.to_json()),
        ("prev_g_x", o.prev_g_x.to_json()),
        ("prev_g_y", o.prev_g_y.to_json()),
        ("a", Json::num(o.a)),
        ("have_prev", Json::Bool(o.have_prev)),
        ("initial_step", Json::num(o.initial_step)),
        ("max_disp", Json::num(o.max_disp)),
        ("last_step", Json::num(o.last_step)),
    ])
}

fn optimizer_from_json(value: &Json) -> Result<OptimizerState, JsonError> {
    Ok(OptimizerState {
        u_x: Vec::<f64>::from_json(value.field("u_x")?)?,
        u_y: Vec::<f64>::from_json(value.field("u_y")?)?,
        prev_v_x: Vec::<f64>::from_json(value.field("prev_v_x")?)?,
        prev_v_y: Vec::<f64>::from_json(value.field("prev_v_y")?)?,
        prev_g_x: Vec::<f64>::from_json(value.field("prev_g_x")?)?,
        prev_g_y: Vec::<f64>::from_json(value.field("prev_g_y")?)?,
        a: value.field("a")?.as_f64()?,
        have_prev: value.field("have_prev")?.as_bool()?,
        initial_step: value.field("initial_step")?.as_f64()?,
        max_disp: value.field("max_disp")?.as_f64()?,
        last_step: value.field("last_step")?.as_f64()?,
    })
}

fn engine_to_json(e: &EngineState) -> Json {
    Json::obj([
        ("last_r", Json::num(e.last_r)),
        ("field_age", Json::num(e.field_age as f64)),
        ("has_field", Json::Bool(e.has_field)),
        ("cached_overflow", Json::num(e.cached_overflow)),
        ("cached_energy", Json::num(e.cached_energy)),
        ("field_x", e.field_x.to_json()),
        ("field_y", e.field_y.to_json()),
    ])
}

fn engine_from_json(value: &Json) -> Result<EngineState, JsonError> {
    Ok(EngineState {
        last_r: value.field("last_r")?.as_f64()?,
        field_age: value.field("field_age")?.as_usize()?,
        has_field: value.field("has_field")?.as_bool()?,
        cached_overflow: value.field("cached_overflow")?.as_f64()?,
        cached_energy: value.field("cached_energy")?.as_f64()?,
        field_x: Vec::<f64>::from_json(value.field("field_x")?)?,
        field_y: Vec::<f64>::from_json(value.field("field_y")?)?,
    })
}

fn profile_to_json(p: &ProfileSnapshot) -> Json {
    Json::obj([
        ("launches", p.launches.to_json()),
        ("syncs", p.syncs.to_json()),
        ("launch_overhead_ns", p.launch_overhead_ns.to_json()),
        ("exec_ns", p.exec_ns.to_json()),
        ("pipelined_ns", p.pipelined_ns.to_json()),
        ("sync_stall_ns", p.sync_stall_ns.to_json()),
        ("cpu_ns", p.cpu_ns.to_json()),
    ])
}

fn profile_from_json(value: &Json) -> Result<ProfileSnapshot, JsonError> {
    Ok(ProfileSnapshot {
        launches: value.field("launches")?.as_u64()?,
        syncs: value.field("syncs")?.as_u64()?,
        launch_overhead_ns: value.field("launch_overhead_ns")?.as_u64()?,
        exec_ns: value.field("exec_ns")?.as_u64()?,
        pipelined_ns: value.field("pipelined_ns")?.as_u64()?,
        sync_stall_ns: value.field("sync_stall_ns")?.as_u64()?,
        cpu_ns: value.field("cpu_ns")?.as_u64()?,
    })
}

impl ToJson for Checkpoint {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("format", Json::str(FORMAT)),
            ("version", Json::num(VERSION as f64)),
            ("design", Json::str(&self.design)),
            ("cells", Json::num(self.cells as f64)),
            ("movable", Json::num(self.movable as f64)),
            ("config", self.config.to_json()),
            ("iteration", Json::num(self.iteration as f64)),
            ("x", self.x.to_json()),
            ("y", self.y.to_json()),
            ("params", params_to_json(&self.params)),
            ("omega", Json::num(self.omega)),
            (
                "optimizer",
                match &self.optimizer {
                    Some(o) => optimizer_to_json(o),
                    None => Json::Null,
                },
            ),
            ("initial_hpwl", Json::num(self.initial_hpwl)),
            ("initial_overflow", Json::num(self.initial_overflow)),
            ("best_overflow", Json::num(self.best_overflow)),
            ("best_iter", Json::num(self.best_iter as f64)),
            ("stage", Json::str(stage_name(self.stage))),
            ("skip_window_open", Json::Bool(self.skip_window_open)),
            (
                "last_eval",
                match &self.last_eval {
                    Some(e) => eval_to_json(e),
                    None => Json::Null,
                },
            ),
            ("engine", engine_to_json(&self.engine)),
            ("profile", profile_to_json(&self.profile)),
        ];
        if let Some((ux, uy)) = &self.best_u {
            pairs.push(("best_u_x", ux.to_json()));
            pairs.push(("best_u_y", uy.to_json()));
        }
        Json::obj(pairs)
    }
}

impl FromJson for Checkpoint {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let format = value.field("format")?.as_str()?;
        if format != FORMAT {
            return Err(JsonError(format!("not a checkpoint (format `{format}`)")));
        }
        let version = value.field("version")?.as_usize()?;
        if version != VERSION {
            return Err(JsonError(format!(
                "unsupported checkpoint version {version} (this build reads {VERSION})"
            )));
        }
        let best_u = match (value.get("best_u_x"), value.get("best_u_y")) {
            (Some(ux), Some(uy)) => Some((Vec::<f64>::from_json(ux)?, Vec::<f64>::from_json(uy)?)),
            (None, None) => None,
            _ => {
                return Err(JsonError(
                    "checkpoint has only one of best_u_x/best_u_y".to_string(),
                ))
            }
        };
        Ok(Checkpoint {
            design: value.field("design")?.as_str()?.to_string(),
            cells: value.field("cells")?.as_usize()?,
            movable: value.field("movable")?.as_usize()?,
            config: ConfigEcho::from_json(value.field("config")?)?,
            iteration: value.field("iteration")?.as_usize()?,
            x: Vec::<f64>::from_json(value.field("x")?)?,
            y: Vec::<f64>::from_json(value.field("y")?)?,
            params: params_from_json(value.field("params")?)?,
            omega: value.field("omega")?.as_f64()?,
            optimizer: match value.field("optimizer")? {
                Json::Null => None,
                other => Some(optimizer_from_json(other)?),
            },
            initial_hpwl: value.field("initial_hpwl")?.as_f64()?,
            initial_overflow: value.field("initial_overflow")?.as_f64()?,
            best_overflow: f64_or_inf(value.field("best_overflow")?)?,
            best_iter: value.field("best_iter")?.as_usize()?,
            best_u,
            stage: stage_from(value.field("stage")?.as_str()?)?,
            skip_window_open: value.field("skip_window_open")?.as_bool()?,
            last_eval: match value.field("last_eval")? {
                Json::Null => None,
                other => Some(eval_from_json(other)?),
            },
            engine: engine_from_json(value.field("engine")?)?,
            profile: profile_from_json(value.field("profile")?)?,
        })
    }
}

impl Checkpoint {
    /// Serializes the checkpoint to its JSON payload.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parses a checkpoint payload.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::Checkpoint`] for malformed JSON, a wrong
    /// format tag, or an unsupported version.
    pub fn parse(text: &str) -> Result<Checkpoint, PlaceError> {
        let value = Json::parse(text).map_err(|e| PlaceError::Checkpoint(format!("parse: {e}")))?;
        Checkpoint::from_json(&value).map_err(|e| PlaceError::Checkpoint(e.to_string()))
    }

    /// Reads and parses a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::Checkpoint`] for I/O failures and malformed
    /// payloads.
    pub fn load(path: &Path) -> Result<Checkpoint, PlaceError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| PlaceError::Checkpoint(format!("read {}: {e}", path.display())))?;
        Checkpoint::parse(&text)
    }

    /// Validates that this checkpoint belongs to `design` placed under
    /// `config`. Resume refuses mismatches: a different design or
    /// configuration could not replay a byte-identical trace suffix.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::Checkpoint`] naming the first mismatch.
    pub fn validate(&self, design: &Design, config: &XplaceConfig) -> Result<(), PlaceError> {
        if self.design != design.name() {
            return Err(PlaceError::Checkpoint(format!(
                "checkpoint is for design `{}`, run is `{}`",
                self.design,
                design.name()
            )));
        }
        let nl = design.netlist();
        if self.cells != nl.num_cells() || self.movable != nl.num_movable() {
            return Err(PlaceError::Checkpoint(format!(
                "checkpoint design shape {}/{} cells does not match {}/{}",
                self.cells,
                self.movable,
                nl.num_cells(),
                nl.num_movable()
            )));
        }
        let current = config.echo().to_json().render();
        let saved = self.config.to_json().render();
        if current != saved {
            return Err(PlaceError::Checkpoint(
                "checkpoint configuration does not match the run configuration".to_string(),
            ));
        }
        Ok(())
    }

    /// Re-homes this snapshot under another run configuration: a clone
    /// whose config echo is `config.echo()`, so [`Checkpoint::validate`]
    /// accepts it for a run using `config`. This is the branch primitive
    /// of the exploration layer — a population member adopts the best
    /// snapshot even though its own seed (and hence config echo) differs
    /// from the member that saved it. Resumed positions come from the
    /// snapshot, never from the seed's init jitter, so the adopted
    /// trajectory is a deterministic function of the snapshot alone.
    pub fn branch_for(&self, config: &XplaceConfig) -> Checkpoint {
        let mut cp = self.clone();
        cp.config = config.echo();
        cp
    }

    /// Applies a seeded perturbation in place: movable positions receive
    /// deterministic jitter (clamped into the snapshot's own position
    /// bounding box — the resume path trusts snapshot positions and does
    /// not re-clamp), λ is rescaled and ω offset, and the optimizer
    /// momentum plus best-solution rollback state are reset so the
    /// branched trajectory genuinely explores from the perturbed point
    /// instead of being pulled back to the parent's. The cached
    /// electrostatic field is invalidated so the first branched iteration
    /// sees the perturbed density. Same snapshot + same `perturbation`
    /// ⇒ bit-identical branched state.
    pub fn perturb(&mut self, perturbation: &Perturbation) {
        let unit = |i: usize, salt: u64| -> f64 {
            let mut h = (i as u64 ^ salt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let seed = perturbation.seed;
        if perturbation.position_frac > 0.0 && self.movable > 0 {
            let bounds = |v: &[f64]| {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &p in v {
                    lo = lo.min(p);
                    hi = hi.max(p);
                }
                (lo, hi)
            };
            let (min_x, max_x) = bounds(&self.x);
            let (min_y, max_y) = bounds(&self.y);
            let amp_x = (max_x - min_x) * perturbation.position_frac;
            let amp_y = (max_y - min_y) * perturbation.position_frac;
            for i in 0..self.movable.min(self.x.len()) {
                self.x[i] = (self.x[i] + amp_x * unit(i, seed)).clamp(min_x, max_x);
                self.y[i] = (self.y[i] + amp_y * unit(i, seed ^ 0xabcd)).clamp(min_y, max_y);
            }
        }
        // λ rescale (multiplicative, strictly positive for frac < 2) and
        // ω offset: nudge the schedule so the branch walks a different
        // trade-off path than its parent.
        self.params.lambda *= 1.0 + perturbation.lambda_frac * unit(0, seed ^ 0x1a3b);
        self.omega =
            (self.omega + perturbation.omega_shift * unit(1, seed ^ 0x5c7d)).clamp(0.0, 1.0);
        // Fresh momentum, fresh rollback baseline, fresh field.
        self.optimizer = None;
        self.best_overflow = f64::INFINITY;
        self.best_iter = self.iteration;
        self.best_u = None;
        self.engine.has_field = false;
        self.engine.field_age = 0;
    }
}

/// A seeded, deterministic perturbation applied to a branched
/// [`Checkpoint`] — the exploration layer's diversification knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perturbation {
    /// Seed deriving every jitter value (same seed ⇒ same perturbation).
    pub seed: u64,
    /// Position jitter amplitude as a fraction of the snapshot's movable
    /// bounding-box span.
    pub position_frac: f64,
    /// Maximum relative λ rescale (`0.2` ⇒ factor in `[0.9, 1.1)`).
    pub lambda_frac: f64,
    /// Maximum absolute ω offset (result clamped to `[0, 1]`).
    pub omega_shift: f64,
}

impl Perturbation {
    /// The exploration default: noticeable but non-destructive diversity.
    pub fn with_seed(seed: u64) -> Perturbation {
        Perturbation {
            seed,
            position_frac: 0.02,
            lambda_frac: 0.4,
            omega_shift: 0.1,
        }
    }
}

/// Where checkpoints go. Implementations take `&self` (interior
/// mutability) so a store can outlive a panicking placement attempt and
/// hand the latest snapshot to a retry.
pub trait CheckpointStore {
    /// Persists the payload snapshotted at `iteration`. Implementations
    /// replace any previous snapshot (only the latest is ever resumed).
    ///
    /// # Errors
    ///
    /// I/O errors propagate; the placer surfaces them as
    /// [`PlaceError::Checkpoint`] and fails the run rather than silently
    /// continuing without durability.
    fn save(&self, iteration: usize, payload: &str) -> io::Result<()>;
}

/// A checkpoint store writing each snapshot to one file, atomically
/// (write to `<path>.tmp`, then rename): a crash mid-save leaves the
/// previous snapshot intact.
#[derive(Debug)]
pub struct FileCheckpointStore {
    path: PathBuf,
    saves: AtomicUsize,
}

impl FileCheckpointStore {
    /// A store writing to `path`.
    pub fn new(path: impl Into<PathBuf>) -> FileCheckpointStore {
        FileCheckpointStore {
            path: path.into(),
            saves: AtomicUsize::new(0),
        }
    }

    /// The checkpoint file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of snapshots saved.
    pub fn saves(&self) -> usize {
        self.saves.load(Ordering::Relaxed)
    }
}

impl CheckpointStore for FileCheckpointStore {
    fn save(&self, _iteration: usize, payload: &str) -> io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(payload.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.saves.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// An in-memory checkpoint store keeping the latest snapshot — the
/// scheduler's retry loop resumes crashed attempts from it.
#[derive(Debug, Default)]
pub struct MemoryCheckpointStore {
    latest: Mutex<Option<(usize, String)>>,
    saves: AtomicUsize,
}

impl MemoryCheckpointStore {
    /// An empty store.
    pub fn new() -> MemoryCheckpointStore {
        MemoryCheckpointStore::default()
    }

    /// The latest snapshot, parsed, if any was saved.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::Checkpoint`] if the stored payload does not
    /// parse (cannot happen for payloads the placer saved).
    pub fn latest(&self) -> Result<Option<(usize, Checkpoint)>, PlaceError> {
        let guard = self.latest.lock().unwrap();
        match guard.as_ref() {
            Some((iter, payload)) => Ok(Some((*iter, Checkpoint::parse(payload)?))),
            None => Ok(None),
        }
    }

    /// Number of snapshots saved.
    pub fn saves(&self) -> usize {
        self.saves.load(Ordering::Relaxed)
    }
}

impl CheckpointStore for MemoryCheckpointStore {
    fn save(&self, iteration: usize, payload: &str) -> io::Result<()> {
        *self.latest.lock().unwrap() = Some((iteration, payload.to_string()));
        self.saves.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Per-call checkpointing options for
/// [`crate::GlobalPlacer::place_traced_opts`].
#[derive(Clone, Copy, Default)]
#[allow(missing_debug_implementations)] // `&dyn CheckpointStore` is not Debug
pub struct CheckpointOptions<'a> {
    /// Snapshot cadence in iterations; `0` disables saving.
    pub every: usize,
    /// Where snapshots go (required when `every > 0`).
    pub store: Option<&'a dyn CheckpointStore>,
    /// Resume point: restart the loop from this snapshot instead of
    /// iteration 0.
    pub resume: Option<&'a Checkpoint>,
    /// Pause point: snapshot the loop state at the top of this iteration
    /// into the store and stop there instead of running to completion
    /// (requires a store). The paused run emits no `run_end` and skips
    /// the best-solution rollback, so a later resume from the snapshot
    /// continues the trace byte-identically — the exploration driver's
    /// generation barrier.
    pub stop_at: Option<usize>,
}

impl<'a> CheckpointOptions<'a> {
    /// No checkpointing, no resume (the plain placement path).
    pub fn none() -> CheckpointOptions<'static> {
        CheckpointOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_checkpoint() -> Checkpoint {
        Checkpoint {
            design: "d".to_string(),
            cells: 4,
            movable: 3,
            config: XplaceConfig::xplace().echo(),
            iteration: 7,
            x: vec![1.0, 2.5, -0.125, 9.0],
            y: vec![0.0, 4.0, 8.0, -1.5],
            params: ParamState {
                gamma: 3.5,
                lambda: 1e-4,
                iteration: 7,
                last_hpwl: f64::INFINITY,
                last_overflow: 0.8,
                lambda_initialized: true,
            },
            omega: 0.25,
            optimizer: Some(OptimizerState {
                u_x: vec![1.0, 2.0],
                u_y: vec![3.0, 4.0],
                prev_v_x: vec![0.5, 0.5],
                prev_v_y: vec![0.25, 0.25],
                prev_g_x: vec![0.0, -1.0],
                prev_g_y: vec![1.0, 0.0],
                a: 1.5,
                have_prev: true,
                initial_step: 0.1,
                max_disp: 10.0,
                last_step: 0.2,
            }),
            initial_hpwl: 100.0,
            initial_overflow: 0.9,
            best_overflow: f64::INFINITY,
            best_iter: 0,
            best_u: Some((vec![1.0], vec![2.0])),
            stage: Stage::Intermediate,
            skip_window_open: true,
            last_eval: Some(EvalResult {
                wa: 1.0,
                hpwl: 2.0,
                overflow: 0.5,
                wl_grad_l1: 3.0,
                density_grad_l1: 4.0,
                r_ratio: 0.001,
                density_skipped: true,
                skip_window: true,
                energy: 5.0,
            }),
            engine: EngineState {
                last_r: 0.001,
                field_age: 3,
                has_field: true,
                cached_overflow: 0.5,
                cached_energy: 5.0,
                field_x: vec![0.125; 4],
                field_y: vec![-0.25; 4],
            },
            profile: ProfileSnapshot {
                launches: 10,
                syncs: 2,
                launch_overhead_ns: 100,
                exec_ns: 200,
                pipelined_ns: 300,
                sync_stall_ns: 400,
                cpu_ns: 500,
            },
        }
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let cp = tiny_checkpoint();
        let text = cp.render();
        let back = Checkpoint::parse(&text).unwrap();
        assert_eq!(cp, back);
        // Infinity survives the null encoding.
        assert!(back.best_overflow.is_infinite());
        assert!(back.params.last_hpwl.is_infinite());
        // Floats are bit-exact (testkit renders shortest round-trip).
        assert_eq!(cp.x[2].to_bits(), back.x[2].to_bits());
        // Idempotent re-render.
        assert_eq!(text, back.render());
    }

    #[test]
    fn parse_rejects_foreign_payloads() {
        assert!(matches!(
            Checkpoint::parse("{}"),
            Err(PlaceError::Checkpoint(_))
        ));
        assert!(matches!(
            Checkpoint::parse("not json"),
            Err(PlaceError::Checkpoint(_))
        ));
        let mut wrong_version = tiny_checkpoint().to_json();
        if let Json::Obj(pairs) = &mut wrong_version {
            for (k, v) in pairs.iter_mut() {
                if k == "version" {
                    *v = Json::num(99.0);
                }
            }
        }
        assert!(Checkpoint::parse(&wrong_version.render()).is_err());
    }

    #[test]
    fn memory_store_keeps_only_the_latest() {
        let store = MemoryCheckpointStore::new();
        assert!(store.latest().unwrap().is_none());
        let cp = tiny_checkpoint();
        store.save(7, &cp.render()).unwrap();
        let mut later = cp.clone();
        later.iteration = 14;
        store.save(14, &later.render()).unwrap();
        let (iter, loaded) = store.latest().unwrap().unwrap();
        assert_eq!(iter, 14);
        assert_eq!(loaded, later);
        assert_eq!(store.saves(), 2);
    }

    #[test]
    fn file_store_round_trips_and_replaces_atomically() {
        let dir = std::env::temp_dir().join("xplace-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let store = FileCheckpointStore::new(&path);
        let cp = tiny_checkpoint();
        store.save(7, &cp.render()).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, cp);
        let mut later = cp.clone();
        later.iteration = 21;
        store.save(21, &later.render()).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap().iteration, 21);
        assert_eq!(store.saves(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_catches_mismatches() {
        use xplace_db::synthesis::{synthesize, SynthesisSpec};
        let design = synthesize(&SynthesisSpec::new("d", 40, 45).with_seed(1)).unwrap();
        let cfg = XplaceConfig::xplace();
        let mut cp = tiny_checkpoint();
        cp.design = design.name().to_string();
        cp.cells = design.netlist().num_cells();
        cp.movable = design.netlist().num_movable();
        cp.config = cfg.echo();
        assert!(cp.validate(&design, &cfg).is_ok());

        let mut wrong = cp.clone();
        wrong.design = "other".to_string();
        assert!(wrong.validate(&design, &cfg).is_err());
        let mut wrong = cp.clone();
        wrong.cells += 1;
        assert!(wrong.validate(&design, &cfg).is_err());
        let other_cfg = XplaceConfig::xplace().with_seed(999);
        assert!(cp.validate(&design, &other_cfg).is_err());
    }
}
