//! The gradient engine (the core of Figure 1): evaluates the
//! preconditioned placement gradient through one of the operator streams
//! selected by [`Framework`] and [`OperatorConfig`].

use crate::{DensityGuidance, Framework, OperatorConfig, Parameters, PlaceError};
use xplace_db::Design;
use xplace_device::{Device, KernelInfo, Tape};
use xplace_ops::{
    density::DensityOp,
    precond,
    wirelength::{self, WaWorkspace},
    PlacementModel,
};
use xplace_parallel::WorkerPool;

/// Scalar results of one gradient evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// WA smoothed wirelength (Eq. 6).
    pub wa: f64,
    /// Exact HPWL (Eq. 2).
    pub hpwl: f64,
    /// Overflow ratio (Eq. 7); reused from cache on skipped iterations.
    pub overflow: f64,
    /// L1 norm of the wirelength gradient over movable cells.
    pub wl_grad_l1: f64,
    /// L1 norm of the unit-λ density gradient over movable cells.
    pub density_grad_l1: f64,
    /// The skip ratio `r = λ |∇D| / |∇WL|` of §3.1.4.
    pub r_ratio: f64,
    /// Whether the density operators were skipped this iteration.
    pub density_skipped: bool,
    /// Whether the §3.1.4 skip window is open at this iteration: skipping
    /// enabled, `r` below threshold and the iteration below the cap.
    /// (`density_skipped` is false on the periodic refresh iterations
    /// *inside* an open window; telemetry reports window transitions.)
    pub skip_window: bool,
    /// Electrostatic system energy of the last solve.
    pub energy: f64,
}

/// Evaluates wirelength + density gradients with operator-level control.
///
/// Owns the gradient buffers and the [`DensityOp`] (bin grids, spectral
/// solver, cached field). The engine is deliberately *stream-shaped*: the
/// same math runs under every configuration, only the kernel granularity,
/// traffic, autograd usage, synchronization placement and density cadence
/// change — which is exactly the paper's §3.1 experiment.
pub struct GradientEngine {
    framework: Framework,
    ops: OperatorConfig,
    density: DensityOp,
    /// Gradient buffers over all nodes (wirelength writes movable, density
    /// writes movable + fillers).
    grad_x: Vec<f64>,
    grad_y: Vec<f64>,
    cached_overflow: f64,
    cached_energy: f64,
    field_age: usize,
    has_field: bool,
    last_r: f64,
    guidance: Option<Box<dyn DensityGuidance>>,
    /// CPU launch width for the heavy kernel bodies (pool-scheduled;
    /// results are width-invariant).
    threads: usize,
    /// Pool the kernel bodies launch on (the process-global pool by
    /// default; batch schedulers inject their own handle so concurrent
    /// placements do not contend for the same workers).
    pool: &'static WorkerPool,
    /// Reusable per-block scratch for the fused wirelength kernel.
    wa_workspace: WaWorkspace,
}

impl std::fmt::Debug for GradientEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GradientEngine")
            .field("framework", &self.framework)
            .field("ops", &self.ops)
            .field("has_field", &self.has_field)
            .field(
                "guidance",
                &self.guidance.as_ref().map(|g| g.name().to_string()),
            )
            .finish()
    }
}

/// A plain-data snapshot of the engine's cross-iteration state used by
/// GP checkpoints: skip-window bookkeeping plus the cached electrostatic
/// field it serves gradients from on skipped iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineState {
    /// Skip ratio `r` of the previous evaluation.
    pub last_r: f64,
    /// Iterations the cached field has served.
    pub field_age: usize,
    /// Whether a cached field exists.
    pub has_field: bool,
    /// Overflow ratio of the last fresh density evaluation.
    pub cached_overflow: f64,
    /// Electrostatic energy of the last solve.
    pub cached_energy: f64,
    /// Cached field x-component, row-major over the density grid.
    pub field_x: Vec<f64>,
    /// Cached field y-component.
    pub field_y: Vec<f64>,
}

/// How many iterations a cached field may serve under operator skipping.
const SKIP_PERIOD: usize = 20;
/// Operator skipping only applies below this iteration (§3.1.4).
const SKIP_MAX_ITER: usize = 100;
/// ... and only while `r` is below this threshold.
const SKIP_R_THRESHOLD: f64 = 0.01;

impl GradientEngine {
    /// Creates the engine for a model.
    ///
    /// # Errors
    ///
    /// Propagates [`PlaceError::Ops`] if the density operator cannot be
    /// constructed for the model's grid.
    pub fn new(
        framework: Framework,
        ops: OperatorConfig,
        model: &PlacementModel,
    ) -> Result<Self, PlaceError> {
        let density = DensityOp::new(model)?;
        let n = model.num_nodes();
        Ok(GradientEngine {
            framework,
            ops,
            density,
            grad_x: vec![0.0; n],
            grad_y: vec![0.0; n],
            cached_overflow: 1.0,
            cached_energy: 0.0,
            field_age: 0,
            has_field: false,
            last_r: 0.0,
            guidance: None,
            threads: 1,
            pool: xplace_parallel::global(),
            wa_workspace: WaWorkspace::new(),
        })
    }

    /// Sets the CPU launch width for the heavy kernel bodies: the fused
    /// wirelength kernel, density accumulation and (through [`DensityOp`])
    /// the spectral Poisson solve. The blocked decompositions are fixed by
    /// the design, so results are bit-identical for every width.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
        self.density.set_threads(self.threads);
    }

    /// Redirects the heavy kernel bodies (fused wirelength, density
    /// accumulation, spectral solve) onto `pool` instead of the
    /// process-global pool. The blocked decompositions are fixed by the
    /// design, so results are bit-identical regardless of the pool.
    pub fn set_pool(&mut self, pool: &'static WorkerPool) {
        self.pool = pool;
        self.density.set_pool(pool);
    }

    /// Installs a neural density guidance (the Xplace-NN extension).
    pub fn set_guidance(&mut self, guidance: Box<dyn DensityGuidance>) {
        self.guidance = Some(guidance);
    }

    /// Whether a guidance model is installed.
    pub fn has_guidance(&self) -> bool {
        self.guidance.is_some()
    }

    /// The gradient buffers of the last evaluation.
    pub fn grads(&self) -> (&[f64], &[f64]) {
        (&self.grad_x, &self.grad_y)
    }

    /// The density operator (for inspection in tests and tools).
    pub fn density_op(&self) -> &DensityOp {
        &self.density
    }

    /// Snapshots the cross-iteration engine state for checkpointing: the
    /// §3.1.4 skip-window bookkeeping plus the cached field it serves
    /// gradients from. Resuming inside a skip window must replay the same
    /// cached field the interrupted run held, or the resumed trace would
    /// diverge from the uninterrupted one.
    pub fn state(&self) -> EngineState {
        let field = self.density.field();
        EngineState {
            last_r: self.last_r,
            field_age: self.field_age,
            has_field: self.has_field,
            cached_overflow: self.cached_overflow,
            cached_energy: self.cached_energy,
            field_x: field.field_x.as_slice().to_vec(),
            field_y: field.field_y.as_slice().to_vec(),
        }
    }

    /// Restores the cross-iteration state captured by [`Self::state`].
    ///
    /// # Errors
    ///
    /// Propagates [`PlaceError::Ops`] if the field snapshot does not
    /// match this engine's density grid.
    pub fn restore_state(&mut self, state: &EngineState) -> Result<(), PlaceError> {
        self.density
            .restore_field(&state.field_x, &state.field_y, state.cached_energy)?;
        self.last_r = state.last_r;
        self.field_age = state.field_age;
        self.has_field = state.has_field;
        self.cached_overflow = state.cached_overflow;
        self.cached_energy = state.cached_energy;
        Ok(())
    }

    fn effective_ops(&self) -> OperatorConfig {
        match self.framework {
            Framework::Xplace => self.ops,
            // DREAMPlace merges the WA objective+gradient (that much is
            // from [1]) but has none of Xplace's other optimizations.
            Framework::DreamplaceLike => OperatorConfig {
                reduction: false,
                combination: false,
                extraction: false,
                skipping: false,
            },
        }
    }

    fn zero_grads(&mut self, device: &Device, model: &PlacementModel, reduction: bool) {
        let n = model.num_nodes() as u64;
        if reduction {
            let kernel = KernelInfo::new("zero_grad").bytes(n * 16);
            device.launch(kernel, || {
                self.grad_x.fill(0.0);
                self.grad_y.fill(0.0);
            });
        } else {
            // PyTorch zero_grad: one out-of-place op per tensor.
            let kernel = KernelInfo::new("zero_grad_x").bytes(n * 8).out_of_place();
            device.launch(kernel, || self.grad_x.fill(0.0));
            let kernel = KernelInfo::new("zero_grad_y").bytes(n * 8).out_of_place();
            device.launch(kernel, || self.grad_y.fill(0.0));
        }
    }

    fn wl_grad_norm(&self, model: &PlacementModel) -> f64 {
        (0..model.num_movable())
            .map(|i| self.grad_x[i].abs() + self.grad_y[i].abs())
            .sum()
    }

    /// Evaluates the full preconditioned gradient at the model's current
    /// positions. `omega` is the precondition weighted ratio computed by
    /// the caller from the *previous* λ (used for guidance blending).
    ///
    /// # Errors
    ///
    /// Propagates spectral failures and reports divergence via
    /// [`PlaceError::Diverged`] when the objective becomes non-finite.
    pub fn evaluate(
        &mut self,
        device: &Device,
        model: &PlacementModel,
        params: &Parameters,
        omega: f64,
    ) -> Result<EvalResult, PlaceError> {
        let ops = self.effective_ops();
        let dreamplace = self.framework == Framework::DreamplaceLike;

        self.zero_grads(device, model, ops.reduction);

        // --- Wirelength operators. ---
        let (wa, hpwl) = if ops.reduction && ops.combination {
            let out = wirelength::wa_fused_mt_ws(
                device,
                model,
                params.gamma,
                &mut self.grad_x,
                &mut self.grad_y,
                self.threads,
                self.pool,
                &mut self.wa_workspace,
            );
            (out.wa, out.hpwl)
        } else if ops.reduction {
            let wa = wirelength::wa_with_grad(
                device,
                model,
                params.gamma,
                &mut self.grad_x,
                &mut self.grad_y,
            );
            let h = wirelength::hpwl(device, model);
            (wa, h)
        } else if dreamplace {
            // DREAMPlace's merged objective+gradient kernel, separate HPWL,
            // host reads after each (per-op synchronization).
            let wa = wirelength::wa_with_grad(
                device,
                model,
                params.gamma,
                &mut self.grad_x,
                &mut self.grad_y,
            );
            device.synchronize();
            let h = wirelength::hpwl(device, model);
            device.synchronize();
            (wa, h)
        } else {
            // Autograd mode: the forward launch records the backward op on
            // a tape; replaying the tape launches the backward kernel that
            // recomputes the exponent sums and accumulates the gradient —
            // the doubled operator stream of §3.1.3.
            let wa = wirelength::wa_forward(device, model, params.gamma);
            device.synchronize();
            let gamma = params.gamma;
            let grads = (&mut self.grad_x, &mut self.grad_y);
            let mut tape: Tape<'_, (&mut Vec<f64>, &mut Vec<f64>)> = Tape::new(device);
            tape.record(
                KernelInfo::new("wa_backward_tape")
                    .bytes(model.num_pins() as u64 * 56)
                    .flops(model.num_pins() as u64 * 60)
                    .out_of_place(),
                move |g| {
                    wirelength::wa_grad_into(model, gamma, g.0, g.1);
                },
            );
            let mut sink = grads;
            tape.backward(&mut sink);
            let h = wirelength::hpwl(device, model);
            device.synchronize();
            (wa, h)
        };
        if !wa.is_finite() || !hpwl.is_finite() {
            return Err(PlaceError::Diverged {
                iteration: params.iteration,
            });
        }

        let wl_grad_l1 = if ops.combination {
            // Folded into the fused kernel (no extra launch).
            self.wl_grad_norm(model)
        } else {
            let n = model.num_movable() as u64;
            device.launch(
                KernelInfo::new("wl_grad_norm").bytes(n * 16).flops(n * 2),
                || self.wl_grad_norm(model),
            )
        };

        // --- Density operators (with §3.1.4 skipping). ---
        let skip_window =
            ops.skipping && self.last_r < SKIP_R_THRESHOLD && params.iteration < SKIP_MAX_ITER;
        let skip = skip_window && self.has_field && self.field_age < SKIP_PERIOD;
        let mut density_skipped = false;
        if skip {
            self.field_age += 1;
            density_skipped = true;
        } else {
            if ops.extraction {
                self.density.accumulate_movable(device, model);
                self.density.accumulate_fillers(device, model);
                self.density.combine_total(device);
            } else {
                self.density.accumulate_all(device, model);
                self.density.accumulate_movable(device, model);
            }
            self.density.solve_field(device)?;
            self.cached_overflow = self.density.overflow(device, model);
            if dreamplace || !ops.reduction {
                device.synchronize();
            }
            self.cached_energy = self.density.energy();
            self.field_age = 0;
            self.has_field = true;

            // Neural guidance: blend predicted fields after a fresh solve.
            if let Some(guidance) = self.guidance.as_mut() {
                // σ(ω) gives the stage weight; the paper additionally
                // describes σ tracking |∇WL/∇D| (the inverse of r) — the
                // prediction provides *global* guidance while wirelength
                // dominates and hands over to the numerical field once the
                // density force has caught up. Gate on both.
                let r_gate = 1.0 / (1.0 + (self.last_r / 0.05).powi(2));
                let sigma = crate::sigma_blend(omega) * r_gate;
                if sigma > 1e-4 {
                    let (nx, ny) = self.density.grid_dims();
                    let nn_kernel = KernelInfo::new("nn_field_predict")
                        .bytes((nx * ny) as u64 * 8 * 20)
                        .flops((nx * ny) as u64 * 2_000);
                    let total = self.density.total_map.clone();
                    let (mut px, mut py) = device.launch(nn_kernel, || guidance.predict(&total));
                    // Safety clip: an out-of-distribution prediction must
                    // not inject forces far beyond the analytic field's
                    // scale (the guidance is a *hint*, Eq. 14).
                    let rms = |g: &xplace_fft::Grid2| {
                        if g.is_empty() {
                            0.0
                        } else {
                            (g.as_slice().iter().map(|v| v * v).sum::<f64>() / g.len() as f64)
                                .sqrt()
                        }
                    };
                    let analytic =
                        rms(&self.density.field().field_x) + rms(&self.density.field().field_y);
                    let predicted = rms(&px) + rms(&py);
                    if predicted > 2.0 * analytic && predicted > 0.0 {
                        let scale = 2.0 * analytic / predicted;
                        px.scale(scale);
                        py.scale(scale);
                    }
                    self.density.blend_field(device, &px, &py, sigma);
                }
            }
        }

        // Unit-λ density gradient norm (CPU-side readback of the cached
        // field; no kernel — folded into the gradient op's bookkeeping).
        let density_grad_l1 = self.density.gradient_l1_norm(model);

        // --- Density gradient + preconditioner. ---
        if params.lambda > 0.0 {
            self.density.accumulate_gradient(
                device,
                model,
                params.lambda,
                &mut self.grad_x,
                &mut self.grad_y,
            );
        }
        if !ops.reduction {
            // Autograd accumulation of the two gradient sources is two
            // extra out-of-place adds in PyTorch.
            let n = model.num_nodes() as u64;
            device.launch(
                KernelInfo::new("grad_add_x").bytes(n * 24).out_of_place(),
                || {},
            );
            device.launch(
                KernelInfo::new("grad_add_y").bytes(n * 24).out_of_place(),
                || {},
            );
        }
        precond::apply(
            device,
            model,
            params.lambda,
            &mut self.grad_x,
            &mut self.grad_y,
        );

        if dreamplace {
            // PyTorch framework glue per iteration: parameter-group walks,
            // scalar tensor updates, host-side bookkeeping kernels.
            for name in [
                "glue_detach",
                "glue_mul_scalar",
                "glue_add_scalar",
                "glue_copy",
                "glue_item",
                "glue_clamp",
            ] {
                device.launch(KernelInfo::new(name).bytes(4096).out_of_place(), || {});
            }
            device.synchronize();
        }

        // Deferred end-of-iteration synchronization (operator reduction
        // moves all host readbacks here — one sync instead of several).
        if ops.reduction {
            device.synchronize();
        }

        let r_ratio = if wl_grad_l1 > 0.0 {
            params.lambda * density_grad_l1 / wl_grad_l1
        } else {
            0.0
        };
        self.last_r = r_ratio;

        Ok(EvalResult {
            wa,
            hpwl,
            overflow: self.cached_overflow,
            wl_grad_l1,
            density_grad_l1,
            r_ratio,
            density_skipped,
            skip_window,
            energy: self.cached_energy,
        })
    }
}

/// Deterministic unit-interval hash used for uncoarsening jitter; the same
/// mix as the placer's symmetry-breaking noise.
fn unit_hash(i: usize, salt: u64) -> f64 {
    let mut h = (i as u64 ^ salt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

/// Seeds a finer level's movable cells from a coarser placed solution.
///
/// Each movable cell starts at its cluster's position (`map[cell]` indexes
/// the coarse design, as produced by [`xplace_db::coarsen`]), displaced by
/// a deterministic hash jitter of up to half a row height so co-clustered
/// cells separate immediately instead of sharing identical gradients.
/// Fixed cells and terminals keep their own positions. Results depend only
/// on `(finer, coarse, map, seed)` — never on thread count.
pub fn seed_from_coarse(finer: &mut Design, coarse: &Design, map: &[u32], seed: u64) {
    let amp = finer.rows().first().map_or(1.0, |r| r.height) * 0.5;
    let region = finer.region();
    let movable: Vec<usize> = {
        let nl = finer.netlist();
        (0..nl.num_cells())
            .filter(|&i| nl.cells()[i].is_movable())
            .collect()
    };
    let positions = finer.positions_mut();
    for i in movable {
        let target = coarse.position(xplace_db::CellId(map[i]));
        positions[i] = region.clamp_point(xplace_db::Point::new(
            target.x + amp * unit_hash(i, seed ^ 0x756e_636f),
            target.y + amp * unit_hash(i, seed ^ 0x6172_7365),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduleConfig;
    use xplace_db::synthesis::{synthesize, SynthesisSpec};
    use xplace_device::DeviceConfig;

    fn setup(
        framework: Framework,
        ops: OperatorConfig,
    ) -> (PlacementModel, GradientEngine, Device) {
        let design = synthesize(&SynthesisSpec::new("e", 300, 320).with_seed(41)).unwrap();
        let model = PlacementModel::from_design(&design).unwrap();
        let engine = GradientEngine::new(framework, ops, &model).unwrap();
        (model, engine, Device::new(DeviceConfig::rtx3090()))
    }

    fn params(model: &PlacementModel) -> Parameters {
        let s = ScheduleConfig::default();
        let mut p = Parameters::new(&s, model.bin_w());
        p.initialize_lambda(&s, 100.0, 100.0);
        p
    }

    #[test]
    fn all_streams_compute_identical_scalars() {
        let configs = [
            (Framework::Xplace, OperatorConfig::all()),
            (Framework::Xplace, OperatorConfig::none()),
            (
                Framework::Xplace,
                OperatorConfig {
                    reduction: true,
                    combination: false,
                    extraction: true,
                    skipping: false,
                },
            ),
            (Framework::DreamplaceLike, OperatorConfig::none()),
        ];
        let mut results = Vec::new();
        for (fw, ops) in configs {
            let (model, mut engine, device) = setup(fw, ops);
            let p = params(&model);
            let r = engine.evaluate(&device, &model, &p, 0.0).unwrap();
            results.push(r);
        }
        for r in &results[1..] {
            assert!((r.wa - results[0].wa).abs() < 1e-9 * results[0].wa.abs().max(1.0));
            assert!((r.hpwl - results[0].hpwl).abs() < 1e-9 * results[0].hpwl.max(1.0));
            assert!((r.overflow - results[0].overflow).abs() < 1e-9);
        }
    }

    #[test]
    fn all_streams_compute_identical_gradients() {
        let (model, mut e1, d1) = setup(Framework::Xplace, OperatorConfig::all());
        let (_, mut e2, d2) = setup(Framework::DreamplaceLike, OperatorConfig::none());
        let p = params(&model);
        e1.evaluate(&d1, &model, &p, 0.0).unwrap();
        e2.evaluate(&d2, &model, &p, 0.0).unwrap();
        let (gx1, gy1) = e1.grads();
        let (gx2, gy2) = e2.grads();
        for i in 0..model.num_nodes() {
            assert!((gx1[i] - gx2[i]).abs() < 1e-12, "gx mismatch at {i}");
            assert!((gy1[i] - gy2[i]).abs() < 1e-12, "gy mismatch at {i}");
        }
    }

    #[test]
    fn launch_counts_order_by_optimization_level() {
        let levels = [
            OperatorConfig::none(),
            OperatorConfig {
                reduction: true,
                combination: false,
                extraction: false,
                skipping: false,
            },
            OperatorConfig {
                reduction: true,
                combination: true,
                extraction: false,
                skipping: false,
            },
            OperatorConfig {
                reduction: true,
                combination: true,
                extraction: true,
                skipping: false,
            },
        ];
        let mut launches = Vec::new();
        for ops in levels {
            let (model, mut engine, device) = setup(Framework::Xplace, ops);
            let p = params(&model);
            let (_, prof) = device.scoped(|| {
                engine.evaluate(&device, &model, &p, 0.0).unwrap();
            });
            launches.push(prof.launches);
        }
        // Reduction strictly cuts launches; combination cuts one more.
        assert!(launches[1] < launches[0], "{launches:?}");
        assert!(launches[2] < launches[1], "{launches:?}");
        // Extraction trades 2 heavy launches for 3 (one cheap); launches
        // may rise but modeled time must not (checked elsewhere).
        let (model, mut engine, device) = setup(Framework::DreamplaceLike, OperatorConfig::none());
        let p = params(&model);
        let (_, dream) = device.scoped(|| {
            engine.evaluate(&device, &model, &p, 0.0).unwrap();
        });
        assert!(
            dream.launches > launches[0],
            "DREAMPlace stream must be the heaviest"
        );
    }

    #[test]
    fn modeled_time_improves_with_each_technique() {
        // Extraction trades a third (cheap) launch for one fewer heavy
        // accumulation pass, so its benefit shows in the execution-bound
        // regime — exactly what the paper reports ("operator combination,
        // extraction and skipping mainly boost the larger cases"). Use a
        // larger design and a low launch latency to be exec-bound.
        let design = synthesize(&SynthesisSpec::new("big", 3000, 3100).with_seed(43)).unwrap();
        let model = PlacementModel::from_design(&design).unwrap();
        let device = Device::new(DeviceConfig::rtx3090().with_launch_latency_ns(200));
        let levels = [
            OperatorConfig::none(),
            OperatorConfig {
                reduction: true,
                combination: false,
                extraction: false,
                skipping: false,
            },
            OperatorConfig {
                reduction: true,
                combination: true,
                extraction: false,
                skipping: false,
            },
            OperatorConfig {
                reduction: true,
                combination: true,
                extraction: true,
                skipping: false,
            },
        ];
        let mut times = Vec::new();
        for ops in levels {
            let mut engine = GradientEngine::new(Framework::Xplace, ops, &model).unwrap();
            let p = params(&model);
            let (_, prof) = device.scoped(|| {
                engine.evaluate(&device, &model, &p, 0.0).unwrap();
            });
            times.push(prof.modeled_ns());
        }
        for w in times.windows(2) {
            assert!(w[1] <= w[0], "modeled time must not regress: {times:?}");
        }
        assert!(
            times[3] < times[0],
            "full optimization must beat none: {times:?}"
        );
    }

    #[test]
    fn skipping_reuses_the_cached_field() {
        let ops = OperatorConfig::all();
        let (model, mut engine, device) = setup(Framework::Xplace, ops);
        // Initialize λ from the real gradient norms, as the placer does.
        let s = ScheduleConfig::default();
        let mut p = Parameters::new(&s, model.bin_w());
        let warm = engine.evaluate(&device, &model, &p, 0.0).unwrap();
        p.initialize_lambda(&s, warm.wl_grad_l1, warm.density_grad_l1);
        p.advance();
        // Next iteration: r reflects the freshly initialized λ.
        let r0 = engine.evaluate(&device, &model, &p, 0.0).unwrap();
        assert!(
            r0.r_ratio < 0.01,
            "r should start ultra-small, got {}",
            r0.r_ratio
        );
        p.advance();
        let (r1, prof) = {
            let (r, prof) = device.scoped(|| engine.evaluate(&device, &model, &p, 0.0).unwrap());
            (r, prof)
        };
        assert!(
            r1.density_skipped,
            "second early iteration should skip density"
        );
        // Skipped iterations launch far fewer kernels.
        assert!(
            prof.launches <= 6,
            "skipped iteration launched {}",
            prof.launches
        );
        // Overflow is served from cache.
        assert_eq!(r1.overflow, r0.overflow);
    }

    #[test]
    fn skipping_refreshes_after_the_period() {
        let ops = OperatorConfig::all();
        let (model, mut engine, device) = setup(Framework::Xplace, ops);
        let mut p = params(&model);
        let mut skipped = 0;
        let mut full = 0;
        for _ in 0..SKIP_PERIOD + 2 {
            let r = engine.evaluate(&device, &model, &p, 0.0).unwrap();
            if r.density_skipped {
                skipped += 1;
            } else {
                full += 1;
            }
            p.advance();
        }
        assert!(
            full >= 2,
            "density must refresh at least twice in {} iters",
            SKIP_PERIOD + 2
        );
        assert_eq!(skipped + full, SKIP_PERIOD + 2);
    }

    #[test]
    fn divergence_is_detected() {
        let (mut model, mut engine, device) = setup(Framework::Xplace, OperatorConfig::all());
        let p = params(&model);
        model.x[0] = f64::NAN;
        let err = engine.evaluate(&device, &model, &p, 0.0).unwrap_err();
        assert!(matches!(err, PlaceError::Diverged { .. }));
    }

    #[test]
    fn guidance_hook_is_invoked_and_blends() {
        #[derive(Debug)]
        struct ConstGuidance(std::sync::Arc<std::sync::atomic::AtomicUsize>);
        impl DensityGuidance for ConstGuidance {
            fn predict(
                &mut self,
                density: &xplace_fft::Grid2,
            ) -> (xplace_fft::Grid2, xplace_fft::Grid2) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let mut gx = xplace_fft::Grid2::new(density.nx(), density.ny());
                gx.fill(1.0);
                (gx, xplace_fft::Grid2::new(density.nx(), density.ny()))
            }
        }
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let (model, mut engine, device) = setup(
            Framework::Xplace,
            OperatorConfig {
                skipping: false,
                ..OperatorConfig::all()
            },
        );
        engine.set_guidance(Box::new(ConstGuidance(calls.clone())));
        assert!(engine.has_guidance());
        let p = params(&model);
        // omega = 0 -> sigma ~ 0.93: prediction must be requested.
        engine.evaluate(&device, &model, &p, 0.0).unwrap();
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 1);
        // omega = 0.9 -> sigma ~ 0: prediction skipped.
        engine.evaluate(&device, &model, &p, 0.9).unwrap();
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 1);
    }
}
