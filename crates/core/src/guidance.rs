//! The neural-enhancement extension point (§3.3 of the paper).
//!
//! Xplace-NN plugs a Fourier neural operator into the placer: the network
//! predicts the electric-field maps from the density map, and the
//! predicted gradient is blended with the numerical one by a smooth
//! stage-dependent weight `sigma(omega)` (Eq. 14):
//!
//! ```text
//!   grad'D = (1 - sigma) * gradD + sigma * grad_nn D
//! ```
//!
//! The core crate only defines the [`DensityGuidance`] trait and the
//! blending schedule; the `xplace-nn` crate provides the trained FNO
//! implementation. This keeps the placer free of any neural-network
//! dependency — exactly the extensibility claim the paper makes.

use xplace_fft::Grid2;

/// A model that predicts the electric-field maps `(Ex, Ey)` from a total
/// density map (in bin units, same conventions as
/// [`xplace_fft::ElectrostaticSolver`]).
pub trait DensityGuidance: std::fmt::Debug + Send {
    /// Predicts `(field_x, field_y)` for the given density map.
    fn predict(&mut self, density: &Grid2) -> (Grid2, Grid2);

    /// A short display name for reports.
    fn name(&self) -> &str {
        "guidance"
    }
}

/// The blending weight `sigma(omega)` of Eq. (14).
///
/// The paper describes sigma as ~1 in the early (wirelength-dominated)
/// stage so the neural prediction provides global guidance, decaying to 0
/// as `omega` grows so the numerical field takes over for fine-grained
/// spreading. (The formula as typeset in the paper is non-monotone for
/// `omega > 0.05`; we use the standard smooth-decay reading with the same
/// constants, as documented in `DESIGN.md`.)
///
/// ```
/// let early = xplace_core::sigma_blend(0.0);
/// let late = xplace_core::sigma_blend(0.9);
/// assert!(early > 0.9 && late < 0.01);
/// ```
pub fn sigma_blend(omega: f64) -> f64 {
    1.0 - 1.0 / (1.0 + 5.0 * (-(omega - 0.05) / 0.05).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_is_monotone_decreasing_and_bounded() {
        let mut prev = f64::INFINITY;
        for k in 0..=100 {
            let omega = k as f64 / 100.0;
            let s = sigma_blend(omega);
            assert!((0.0..=1.0).contains(&s), "sigma({omega}) = {s}");
            assert!(s <= prev + 1e-12, "sigma must decrease");
            prev = s;
        }
    }

    #[test]
    fn sigma_matches_the_described_stages() {
        // Early stage: neural guidance dominates.
        assert!(sigma_blend(0.0) > 0.9);
        assert!(sigma_blend(0.05) > 0.8);
        // Spreading stage: numerical field takes over.
        assert!(sigma_blend(0.3) < 0.05);
        assert!(sigma_blend(0.95) < 1e-6);
    }

    /// A trivial guidance used by engine tests: returns zero fields.
    #[derive(Debug)]
    pub struct ZeroGuidance;

    impl DensityGuidance for ZeroGuidance {
        fn predict(&mut self, density: &Grid2) -> (Grid2, Grid2) {
            (
                Grid2::new(density.nx(), density.ny()),
                Grid2::new(density.nx(), density.ny()),
            )
        }
    }

    #[test]
    fn trait_objects_work() {
        let mut g: Box<dyn DensityGuidance> = Box::new(ZeroGuidance);
        let d = Grid2::new(4, 4);
        let (ex, ey) = g.predict(&d);
        assert_eq!(ex.dims(), (4, 4));
        assert_eq!(ey.dims(), (4, 4));
        assert_eq!(g.name(), "guidance");
    }
}
