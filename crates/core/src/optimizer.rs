//! Nesterov accelerated gradient with Barzilai–Borwein step prediction.
//!
//! This is the optimizer of ePlace (and therefore of DREAMPlace and
//! Xplace): the gradient is evaluated at the *reference* solution `v`, the
//! main solution `u` takes the gradient step, and `v` extrapolates with
//! the Nesterov momentum coefficient. The step length is predicted by the
//! Barzilai–Borwein rule `|Δv| / |Δg|`, which removes the need for an
//! explicit Lipschitz constant.

use xplace_device::{Device, KernelInfo};
use xplace_ops::PlacementModel;

/// Nesterov optimizer state over the optimizable nodes (movable cells and
/// fillers) of a [`PlacementModel`].
///
/// The model's `x`/`y` arrays always hold the reference solution `v` — the
/// point the gradient engine evaluates at.
#[derive(Debug, Clone)]
pub struct NesterovOptimizer {
    idx: Vec<u32>,
    u_x: Vec<f64>,
    u_y: Vec<f64>,
    prev_v_x: Vec<f64>,
    prev_v_y: Vec<f64>,
    prev_g_x: Vec<f64>,
    prev_g_y: Vec<f64>,
    a: f64,
    have_prev: bool,
    initial_step: f64,
    max_disp: f64,
    last_step: f64,
}

impl NesterovOptimizer {
    /// Creates the optimizer for a model. `initial_step` is the first
    /// step length (before BB prediction kicks in) and `max_disp` caps the
    /// per-iteration displacement of any node (a stability guard).
    pub fn new(model: &PlacementModel, initial_step: f64, max_disp: f64) -> Self {
        let idx: Vec<u32> = model.optimizable_indices().map(|i| i as u32).collect();
        let n = idx.len();
        let gather = |src: &[f64]| -> Vec<f64> { idx.iter().map(|&i| src[i as usize]).collect() };
        NesterovOptimizer {
            u_x: gather(&model.x),
            u_y: gather(&model.y),
            prev_v_x: vec![0.0; n],
            prev_v_y: vec![0.0; n],
            prev_g_x: vec![0.0; n],
            prev_g_y: vec![0.0; n],
            idx,
            a: 1.0,
            have_prev: false,
            initial_step,
            max_disp,
            last_step: initial_step,
        }
    }

    /// Number of optimized scalars (2 per node).
    pub fn num_vars(&self) -> usize {
        self.idx.len() * 2
    }

    /// The last step length used.
    pub fn last_step(&self) -> f64 {
        self.last_step
    }

    /// Barzilai–Borwein step prediction from the stored previous
    /// reference point and gradient.
    fn predict_step(&self, model: &PlacementModel, gx: &[f64], gy: &[f64]) -> f64 {
        if !self.have_prev {
            return self.initial_step;
        }
        let mut dv2 = 0.0;
        let mut dg2 = 0.0;
        for (k, &i) in self.idx.iter().enumerate() {
            let i = i as usize;
            let dvx = model.x[i] - self.prev_v_x[k];
            let dvy = model.y[i] - self.prev_v_y[k];
            let dgx = gx[i] - self.prev_g_x[k];
            let dgy = gy[i] - self.prev_g_y[k];
            dv2 += dvx * dvx + dvy * dvy;
            dg2 += dgx * dgx + dgy * dgy;
        }
        if dg2 <= 0.0 || !dv2.is_finite() || !dg2.is_finite() {
            self.initial_step
        } else {
            (dv2 / dg2).sqrt()
        }
    }

    /// Performs one Nesterov step given the (preconditioned) gradient
    /// evaluated at the current reference solution held in `model`.
    ///
    /// With `fused = true` (operator reduction on) the whole update is one
    /// in-place kernel launch; with `fused = false` it is issued as the
    /// six separate out-of-place tensor ops a PyTorch optimizer performs.
    ///
    /// # Panics
    ///
    /// Panics if the gradient slices are shorter than the node count.
    pub fn step(
        &mut self,
        device: &Device,
        model: &mut PlacementModel,
        gx: &[f64],
        gy: &[f64],
        fused: bool,
    ) {
        assert!(gx.len() >= model.num_nodes() && gy.len() >= model.num_nodes());
        let mut step = self.predict_step(model, gx, gy);
        // Displacement cap.
        let mut max_g: f64 = 0.0;
        for &i in &self.idx {
            let i = i as usize;
            max_g = max_g.max(gx[i].abs()).max(gy[i].abs());
        }
        if max_g * step > self.max_disp {
            step = self.max_disp / max_g;
        }
        self.last_step = step;

        let n = self.idx.len() as u64;
        if !fused {
            // PyTorch-style: each tensor op is its own out-of-place kernel.
            for name in [
                "opt_dv",
                "opt_dg",
                "opt_axpy_u",
                "opt_momentum",
                "opt_axpy_v",
            ] {
                device.launch(KernelInfo::new(name).bytes(n * 32).out_of_place(), || {});
            }
        }
        let kernel_name = if fused { "nesterov_fused" } else { "opt_apply" };
        let kernel = KernelInfo::new(kernel_name).bytes(n * 96).flops(n * 12);
        let a_new = 0.5 * (1.0 + (4.0 * self.a * self.a + 1.0).sqrt());
        let coef = (self.a - 1.0) / a_new;
        device.launch(kernel, || {
            for (k, &i) in self.idx.iter().enumerate() {
                let i = i as usize;
                // Save the reference point and gradient for BB.
                self.prev_v_x[k] = model.x[i];
                self.prev_v_y[k] = model.y[i];
                self.prev_g_x[k] = gx[i];
                self.prev_g_y[k] = gy[i];
                // u_{k+1} = v_k - step * g(v_k)
                let ux_new = model.x[i] - step * gx[i];
                let uy_new = model.y[i] - step * gy[i];
                // v_{k+1} = u_{k+1} + coef * (u_{k+1} - u_k)
                model.x[i] = ux_new + coef * (ux_new - self.u_x[k]);
                model.y[i] = uy_new + coef * (uy_new - self.u_y[k]);
                self.u_x[k] = ux_new;
                self.u_y[k] = uy_new;
            }
        });
        self.a = a_new;
        self.have_prev = true;
        model.clamp_to_region();
    }

    /// Clones the main solution `u` (for best-solution snapshots).
    pub fn u_clone(&self) -> (Vec<f64>, Vec<f64>) {
        (self.u_x.clone(), self.u_y.clone())
    }

    /// Restores a previously snapshotted main solution.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot lengths do not match this optimizer.
    pub fn set_u(&mut self, ux: &[f64], uy: &[f64]) {
        assert_eq!(ux.len(), self.u_x.len(), "snapshot length mismatch");
        assert_eq!(uy.len(), self.u_y.len(), "snapshot length mismatch");
        self.u_x.copy_from_slice(ux);
        self.u_y.copy_from_slice(uy);
    }

    /// Snapshots the full optimizer state for checkpointing. The gather
    /// index list is *not* included: it is a pure function of the model
    /// and is rebuilt on restore.
    pub fn state(&self) -> OptimizerState {
        OptimizerState {
            u_x: self.u_x.clone(),
            u_y: self.u_y.clone(),
            prev_v_x: self.prev_v_x.clone(),
            prev_v_y: self.prev_v_y.clone(),
            prev_g_x: self.prev_g_x.clone(),
            prev_g_y: self.prev_g_y.clone(),
            a: self.a,
            have_prev: self.have_prev,
            initial_step: self.initial_step,
            max_disp: self.max_disp,
            last_step: self.last_step,
        }
    }

    /// Rebuilds an optimizer from a checkpointed [`OptimizerState`],
    /// regathering the index list from `model`.
    ///
    /// # Errors
    ///
    /// Returns a message if the snapshot's vector lengths do not match
    /// the model's optimizable-node count.
    pub fn from_state(model: &PlacementModel, state: OptimizerState) -> Result<Self, String> {
        let idx: Vec<u32> = model.optimizable_indices().map(|i| i as u32).collect();
        let n = idx.len();
        for (name, v) in [
            ("u_x", &state.u_x),
            ("u_y", &state.u_y),
            ("prev_v_x", &state.prev_v_x),
            ("prev_v_y", &state.prev_v_y),
            ("prev_g_x", &state.prev_g_x),
            ("prev_g_y", &state.prev_g_y),
        ] {
            if v.len() != n {
                return Err(format!(
                    "optimizer snapshot {name} has {} entries, model has {n} optimizable nodes",
                    v.len()
                ));
            }
        }
        Ok(NesterovOptimizer {
            idx,
            u_x: state.u_x,
            u_y: state.u_y,
            prev_v_x: state.prev_v_x,
            prev_v_y: state.prev_v_y,
            prev_g_x: state.prev_g_x,
            prev_g_y: state.prev_g_y,
            a: state.a,
            have_prev: state.have_prev,
            initial_step: state.initial_step,
            max_disp: state.max_disp,
            last_step: state.last_step,
        })
    }

    /// Copies the main solution `u` (not the lookahead `v`) into the
    /// model — call once after the final iteration so the reported
    /// placement is the converged solution.
    pub fn write_u(&self, model: &mut PlacementModel) {
        for (k, &i) in self.idx.iter().enumerate() {
            let i = i as usize;
            model.x[i] = self.u_x[k];
            model.y[i] = self.u_y[k];
        }
        model.clamp_to_region();
    }
}

/// A plain-data snapshot of a [`NesterovOptimizer`] used by GP
/// checkpoints: the main solution `u`, the previous reference point and
/// gradient (for BB step prediction), and the momentum scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerState {
    /// Main solution x over optimizable nodes.
    pub u_x: Vec<f64>,
    /// Main solution y over optimizable nodes.
    pub u_y: Vec<f64>,
    /// Previous reference-point x (BB numerator).
    pub prev_v_x: Vec<f64>,
    /// Previous reference-point y.
    pub prev_v_y: Vec<f64>,
    /// Previous gradient x (BB denominator).
    pub prev_g_x: Vec<f64>,
    /// Previous gradient y.
    pub prev_g_y: Vec<f64>,
    /// Nesterov momentum scalar `a`.
    pub a: f64,
    /// Whether a previous reference point/gradient is stored.
    pub have_prev: bool,
    /// First-step length before BB prediction kicks in.
    pub initial_step: f64,
    /// Per-iteration displacement cap.
    pub max_disp: f64,
    /// The last step length used.
    pub last_step: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplace_db::synthesis::{synthesize, SynthesisSpec};
    use xplace_device::DeviceConfig;

    fn tiny_model() -> PlacementModel {
        let design = synthesize(&SynthesisSpec::new("opt", 40, 45).with_seed(1)).unwrap();
        PlacementModel::from_design(&design).unwrap()
    }

    /// Quadratic bowl: f = 0.5 * sum((x - tx)^2 + (y - ty)^2).
    fn quad_grad(model: &PlacementModel, tx: f64, ty: f64, gx: &mut [f64], gy: &mut [f64]) {
        for g in gx.iter_mut().chain(gy.iter_mut()) {
            *g = 0.0;
        }
        for i in model.optimizable_indices() {
            gx[i] = model.x[i] - tx;
            gy[i] = model.y[i] - ty;
        }
    }

    #[test]
    fn converges_on_a_quadratic_bowl() {
        let mut model = tiny_model();
        let device = Device::new(DeviceConfig::instant());
        let c = model.region().center();
        let (tx, ty) = (c.x + 3.0, c.y - 2.0);
        let mut opt = NesterovOptimizer::new(&model, 0.1, model.region().width());
        let n = model.num_nodes();
        let (mut gx, mut gy) = (vec![0.0; n], vec![0.0; n]);
        for _ in 0..200 {
            quad_grad(&model, tx, ty, &mut gx, &mut gy);
            opt.step(&device, &mut model, &gx, &gy, true);
        }
        opt.write_u(&mut model);
        for i in model.optimizable_indices() {
            // Cells can't all reach the exact target (region clamp keeps
            // their rectangles inside), so allow the half-size slack.
            let slack = model.w[i] * 0.5 + model.h[i] * 0.5 + 0.3;
            assert!(
                (model.x[i] - tx).abs() < slack && (model.y[i] - ty).abs() < slack,
                "node {i} at ({}, {}) far from ({tx}, {ty})",
                model.x[i],
                model.y[i]
            );
        }
    }

    #[test]
    fn bb_step_adapts_to_curvature() {
        let mut model = tiny_model();
        let device = Device::new(DeviceConfig::instant());
        let c = model.region().center();
        let mut opt = NesterovOptimizer::new(&model, 0.001, model.region().width());
        let n = model.num_nodes();
        let (mut gx, mut gy) = (vec![0.0; n], vec![0.0; n]);
        quad_grad(&model, c.x, c.y, &mut gx, &mut gy);
        opt.step(&device, &mut model, &gx, &gy, true);
        assert_eq!(opt.last_step(), 0.001);
        quad_grad(&model, c.x, c.y, &mut gx, &mut gy);
        opt.step(&device, &mut model, &gx, &gy, true);
        // For a unit-curvature quadratic the BB step approaches 1.
        assert!(
            opt.last_step() > 0.5,
            "BB step {} should approach 1",
            opt.last_step()
        );
    }

    #[test]
    fn displacement_cap_limits_movement() {
        let mut model = tiny_model();
        let device = Device::new(DeviceConfig::instant());
        let mut opt = NesterovOptimizer::new(&model, 1000.0, 2.0);
        let n = model.num_nodes();
        let (mut gx, mut gy) = (vec![0.0; n], vec![0.0; n]);
        let before: Vec<f64> = model.x.clone();
        quad_grad(
            &model,
            model.region().center().x + 500.0,
            0.0,
            &mut gx,
            &mut gy,
        );
        opt.step(&device, &mut model, &gx, &gy, true);
        for i in model.optimizable_indices() {
            // First step has no momentum, so displacement <= cap.
            assert!((model.x[i] - before[i]).abs() <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn launch_counts_reflect_fusion() {
        let mut model = tiny_model();
        let device = Device::new(DeviceConfig::rtx3090());
        let mut opt = NesterovOptimizer::new(&model, 0.1, 10.0);
        let n = model.num_nodes();
        let (gx, gy) = (vec![0.1; n], vec![0.1; n]);
        let (_, fused) = device.scoped(|| opt.step(&device, &mut model, &gx, &gy, true));
        assert_eq!(fused.launches, 1);
        let (_, split) = device.scoped(|| opt.step(&device, &mut model, &gx, &gy, false));
        assert_eq!(split.launches, 6);
    }

    #[test]
    fn positions_stay_in_region() {
        let mut model = tiny_model();
        let device = Device::new(DeviceConfig::instant());
        let mut opt = NesterovOptimizer::new(&model, 50.0, 1e9);
        let n = model.num_nodes();
        let (mut gx, mut gy) = (vec![0.0; n], vec![0.0; n]);
        for i in model.optimizable_indices() {
            gx[i] = -1e6; // try to fling everything out of the region
            gy[i] = 1e6;
        }
        opt.step(&device, &mut model, &gx, &gy, true);
        let r = model.region();
        for i in model.optimizable_indices() {
            assert!(model.x[i] >= r.lx - 1e-9 && model.x[i] <= r.ux + 1e-9);
            assert!(model.y[i] >= r.ly - 1e-9 && model.y[i] <= r.uy + 1e-9);
        }
    }

    #[test]
    fn write_u_reports_main_solution() {
        let mut model = tiny_model();
        let device = Device::new(DeviceConfig::instant());
        let mut opt = NesterovOptimizer::new(&model, 0.5, 100.0);
        let n = model.num_nodes();
        let (mut gx, mut gy) = (vec![0.0; n], vec![0.0; n]);
        let c = model.region().center();
        quad_grad(&model, c.x + 1.0, c.y, &mut gx, &mut gy);
        opt.step(&device, &mut model, &gx, &gy, true);
        let v_pos = model.x[0];
        opt.write_u(&mut model);
        // u and v differ after a momentum step (v extrapolates past u)
        // unless the step was zero.
        assert!((model.x[0] - v_pos).abs() >= 0.0); // write_u must not panic
    }
}
