//! Per-iteration metric recording (the "recorder" block of Figure 1).

use std::fmt::Write as _;

/// Metrics of one global-placement iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Iteration index.
    pub iteration: usize,
    /// Exact HPWL.
    pub hpwl: f64,
    /// WA smoothed wirelength.
    pub wa: f64,
    /// Overflow ratio (Eq. 7).
    pub overflow: f64,
    /// Density weight λ.
    pub lambda: f64,
    /// WA smoothing γ.
    pub gamma: f64,
    /// Precondition weighted ratio ω (§3.2).
    pub omega: f64,
    /// Gradient ratio `r = λ|∇D| / |∇WL|` (§3.1.4).
    pub r_ratio: f64,
    /// Whether the density operator was skipped this iteration.
    pub density_skipped: bool,
    /// Modeled GPU time of this iteration in nanoseconds.
    pub modeled_ns: u64,
    /// Kernel launches this iteration.
    pub launches: u64,
}

/// Collects [`IterationRecord`]s over a placement run.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    records: Vec<IterationRecord>,
    enabled: bool,
}

impl Recorder {
    /// Creates a recorder; when `enabled` is false, pushes are dropped.
    pub fn new(enabled: bool) -> Self {
        Recorder {
            records: Vec::new(),
            enabled,
        }
    }

    /// Appends a record (no-op when disabled).
    pub fn push(&mut self, record: IterationRecord) {
        if self.enabled {
            self.records.push(record);
        }
    }

    /// The recorded iterations.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes all records as CSV (header + one row per iteration).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "iteration,hpwl,wa,overflow,lambda,gamma,omega,r_ratio,density_skipped,modeled_ns,launches\n",
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{},{:.6},{:.6},{:.6},{:.6e},{:.6e},{:.6},{:.6e},{},{},{}",
                r.iteration,
                r.hpwl,
                r.wa,
                r.overflow,
                r.lambda,
                r.gamma,
                r.omega,
                r.r_ratio,
                r.density_skipped as u8,
                r.modeled_ns,
                r.launches
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: usize) -> IterationRecord {
        IterationRecord {
            iteration: i,
            hpwl: 100.0,
            wa: 90.0,
            overflow: 0.5,
            lambda: 1e-4,
            gamma: 80.0,
            omega: 0.1,
            r_ratio: 1e-5,
            density_skipped: i.is_multiple_of(2),
            modeled_ns: 1000,
            launches: 7,
        }
    }

    #[test]
    fn records_accumulate_when_enabled() {
        let mut r = Recorder::new(true);
        r.push(rec(0));
        r.push(rec(1));
        assert_eq!(r.len(), 2);
        assert_eq!(r.records()[1].iteration, 1);
    }

    #[test]
    fn disabled_recorder_drops_records() {
        let mut r = Recorder::new(false);
        r.push(rec(0));
        assert!(r.is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut r = Recorder::new(true);
        r.push(rec(3));
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("iteration,hpwl"));
        assert!(lines[1].starts_with("3,100.0"));
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
    }
}
