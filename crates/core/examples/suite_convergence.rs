//! Developer check: GP convergence across the ISPD 2005-like suite.
use xplace_core::{GlobalPlacer, XplaceConfig};
use xplace_db::suites::ispd2005_like;
use xplace_db::synthesis::synthesize;

fn main() {
    for entry in &ispd2005_like(0.004) {
        let mut d = synthesize(&entry.spec).unwrap();
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 1500;
        let r = GlobalPlacer::new(cfg).place(&mut d).unwrap();
        println!(
            "{:>10}: iters={:4} converged={} ovfl={:.3} hpwl={:.0}",
            entry.name(),
            r.iterations,
            r.converged,
            r.final_overflow,
            r.final_hpwl
        );
    }
}
