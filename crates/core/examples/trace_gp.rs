//! Developer trace: replicate the placer loop with extra diagnostics.
use xplace_core::{GradientEngine, NesterovOptimizer, Parameters, XplaceConfig};
use xplace_db::synthesis::{synthesize, SynthesisSpec};
use xplace_device::Device;
use xplace_ops::{precond, PlacementModel};

fn main() {
    let design = synthesize(&SynthesisSpec::new("gp", 400, 420).with_seed(7)).unwrap();
    let cfg = XplaceConfig::xplace();
    let device = Device::new(cfg.device);
    let mut model = PlacementModel::from_design_with(&design, None, true, cfg.seed).unwrap();
    model.clamp_to_region();
    let mut engine = GradientEngine::new(cfg.framework, cfg.operators, &model).unwrap();
    let schedule = cfg.schedule;
    let bin = 0.5 * (model.bin_w() + model.bin_h());
    let mut params = Parameters::new(&schedule, bin);
    let mut opt: Option<NesterovOptimizer> = None;
    let mut omega = 0.0;
    println!("region {} bin {bin}", model.region());
    for iter in 0..700 {
        let eval = engine.evaluate(&device, &model, &params, omega).unwrap();
        if iter == 0 {
            params.initialize_lambda(&schedule, eval.wl_grad_l1, eval.density_grad_l1);
            params.update(&schedule, bin, eval.overflow, eval.hpwl);
        }
        let o = match opt.as_mut() {
            Some(o) => o,
            None => {
                let (gx, gy) = engine.grads();
                let mut max_g: f64 = 0.0;
                for i in model.optimizable_indices() {
                    max_g = max_g.max(gx[i].abs()).max(gy[i].abs());
                }
                opt.insert(NesterovOptimizer::new(&model, 0.5 * bin / max_g, 5.0 * bin))
            }
        };
        let (gx, gy) = {
            let (a, b) = engine.grads();
            (a.to_vec(), b.to_vec())
        };
        let before: Vec<f64> = model.x.clone();
        o.step(&device, &mut model, &gx, &gy, true);
        let mut max_disp: f64 = 0.0;
        let mut mean_disp = 0.0;
        let mut cnt = 0;
        for i in model.optimizable_indices() {
            let d = (model.x[i] - before[i]).abs();
            max_disp = max_disp.max(d);
            mean_disp += d;
            cnt += 1;
        }
        mean_disp /= cnt as f64;
        omega = precond::omega(&model, params.lambda);
        params.advance();
        let period = if schedule.stage_aware && omega > 0.5 && omega < 0.95 {
            3
        } else {
            1
        };
        if params.iteration.is_multiple_of(period) {
            params.update(&schedule, bin, eval.overflow, eval.hpwl);
        }
        if iter % 25 == 0 {
            println!(
                "it={iter:4} ovfl={:.4} hpwl={:9.1} lam={:.2e} r={:.2e} step={:.3e} maxd={:.3} meand={:.4} wlg={:.2e} dg={:.2e}",
                eval.overflow, eval.hpwl, params.lambda, eval.r_ratio,
                o.last_step(), max_disp, mean_disp, eval.wl_grad_l1, eval.density_grad_l1
            );
        }
    }
}
