//! Developer probe: compare plain Xplace, Xplace guided by a *perfect*
//! predictor (the exact solver), and Xplace guided by a zero predictor.
use xplace_core::{DensityGuidance, GlobalPlacer, XplaceConfig};
use xplace_db::synthesis::{synthesize, SynthesisSpec};
use xplace_fft::{ElectrostaticSolver, Grid2};

#[derive(Debug)]
struct PerfectGuidance;
impl DensityGuidance for PerfectGuidance {
    fn predict(&mut self, density: &Grid2) -> (Grid2, Grid2) {
        let (nx, ny) = density.dims();
        let mut solver = ElectrostaticSolver::new(nx, ny).unwrap();
        let sol = solver.solve(density).unwrap();
        (sol.field_x, sol.field_y)
    }
}

#[derive(Debug)]
struct ZeroGuidance;
impl DensityGuidance for ZeroGuidance {
    fn predict(&mut self, density: &Grid2) -> (Grid2, Grid2) {
        (
            Grid2::new(density.nx(), density.ny()),
            Grid2::new(density.nx(), density.ny()),
        )
    }
}

fn main() {
    let spec = SynthesisSpec::new("probe", 400, 420).with_seed(9);
    let mut cfg = XplaceConfig::xplace();
    cfg.schedule.max_iterations = 700;

    let mut d = synthesize(&spec).unwrap();
    let plain = GlobalPlacer::new(cfg.clone()).place(&mut d).unwrap();
    println!(
        "plain  : hpwl {:.0} ovfl {:.3} iters {}",
        plain.final_hpwl, plain.final_overflow, plain.iterations
    );

    let mut d = synthesize(&spec).unwrap();
    let perfect = GlobalPlacer::new(cfg.clone())
        .with_guidance(Box::new(PerfectGuidance))
        .place(&mut d)
        .unwrap();
    println!(
        "perfect: hpwl {:.0} ovfl {:.3} iters {}",
        perfect.final_hpwl, perfect.final_overflow, perfect.iterations
    );

    let mut d = synthesize(&spec).unwrap();
    let zero = GlobalPlacer::new(cfg)
        .with_guidance(Box::new(ZeroGuidance))
        .place(&mut d)
        .unwrap();
    println!(
        "zero   : hpwl {:.0} ovfl {:.3} iters {}",
        zero.final_hpwl, zero.final_overflow, zero.iterations
    );
}
