//! Persistent, deterministic worker pool for xplace's data-parallel kernels.
//!
//! The rest of the workspace used to spawn fresh `std::thread::scope` workers
//! on every kernel launch — once per wirelength gradient, once per density
//! accumulation, every iteration. This crate replaces that with a single
//! process-wide pool of long-lived workers ([`global`]) plus an explicit
//! fork/join primitive ([`WorkerPool::run`]).
//!
//! # Determinism contract
//!
//! The pool never decides *what* the work units are — callers decompose their
//! domain into a fixed task list that depends only on problem size, and the
//! pool guarantees:
//!
//! 1. every task index `0..tasks` runs exactly once;
//! 2. results come back as a `Vec` indexed by task, independent of which
//!    worker executed what or in which wall-clock order;
//! 3. tasks never share mutable state through the pool (each writes only its
//!    own result slot / its own `&mut` state in [`WorkerPool::run_mut`]).
//!
//! Because floating-point reduction order is fixed by the *task* order (the
//! caller merges slot 0, then slot 1, …), a fixed decomposition yields
//! bit-identical results for **any** thread count — `threads` only changes
//! scheduling, never arithmetic.
//!
//! # Hermetic policy
//!
//! Zero registry dependencies: the queueing, latching and lifetime management
//! are built from `std` primitives only (`Mutex`, `Condvar`, `VecDeque`).

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

thread_local! {
    /// Set inside pool workers so nested `run` calls degrade to inline serial
    /// execution instead of deadlocking on the (already busy) pool.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Completion latch for one fork/join launch: counts outstanding remote tasks
/// and records whether any of them panicked.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(remote_tasks: usize) -> Self {
        Self {
            remaining: Mutex::new(remote_tasks),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn complete(&self, panicked: bool) {
        if panicked {
            self.panicked.store(true, Ordering::Release);
        }
        let mut remaining = self.remaining.lock().expect("latch mutex poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch mutex poisoned");
        while *remaining != 0 {
            remaining = self
                .done
                .wait(remaining)
                .expect("latch condvar wait poisoned");
        }
    }
}

/// A borrowed task closure with its lifetime erased so it can sit in the
/// long-lived worker queues. Soundness: `execute` blocks on the [`Latch`]
/// until every queued copy has finished, so the referent strictly outlives
/// all uses; the erased reference never escapes a launch.
#[derive(Clone, Copy)]
struct RawJob(&'static (dyn Fn(usize) + Sync));

// SAFETY: the underlying closure is `Sync` (shared by reference across
// workers) and never mutated; sending the reference itself is safe.
unsafe impl Send for RawJob {}

struct Task {
    job: RawJob,
    index: usize,
    latch: Arc<Latch>,
}

/// One worker's inbox: a queue plus a `closed` flag for shutdown.
struct Queue {
    state: Mutex<(VecDeque<Task>, bool)>,
    ready: Condvar,
}

impl Queue {
    fn new() -> Self {
        Self {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, task: Task) {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        state.0.push_back(task);
        self.ready.notify_one();
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        state.1 = true;
        self.ready.notify_all();
    }

    /// Blocks until a task is available or the queue is closed and drained.
    fn pop(&self) -> Option<Task> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        loop {
            if let Some(task) = state.0.pop_front() {
                return Some(task);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).expect("queue condvar wait poisoned");
        }
    }
}

struct Worker {
    queue: Arc<Queue>,
    handle: Option<JoinHandle<()>>,
}

/// A persistent pool of worker threads with deterministic fork/join launches.
///
/// A pool constructed with `threads = N` uses the calling thread as executor
/// 0 and spawns `N - 1` background workers, so a launch of width `N` runs on
/// exactly `N` OS threads. Workers are parked on their queues between
/// launches; per-launch cost is a handful of mutex operations, not a thread
/// spawn/join cycle.
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// Creates a pool that can run launches up to `threads` wide
    /// (`threads.max(1)`; the calling thread always participates).
    pub fn new(threads: usize) -> Self {
        let spawned = threads.max(1) - 1;
        let workers = (0..spawned)
            .map(|i| {
                let queue = Arc::new(Queue::new());
                let worker_queue = Arc::clone(&queue);
                let handle = std::thread::Builder::new()
                    .name(format!("xplace-worker-{i}"))
                    .spawn(move || {
                        IS_POOL_WORKER.with(|flag| flag.set(true));
                        while let Some(task) = worker_queue.pop() {
                            let result =
                                catch_unwind(AssertUnwindSafe(|| (task.job.0)(task.index)));
                            task.latch.complete(result.is_err());
                        }
                    })
                    .expect("failed to spawn pool worker");
                Worker {
                    queue,
                    handle: Some(handle),
                }
            })
            .collect();
        Self { workers }
    }

    /// Maximum launch width this pool supports (background workers + caller).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Core fork/join: runs `job(i)` once for every `i in 0..tasks`, using at
    /// most `width` threads (caller included). Task `i` is assigned to
    /// executor `i % effective_width` — a fixed, thread-count-independent
    /// mapping of tasks, where only the *schedule* varies with `width`.
    fn execute(&self, tasks: usize, width: usize, job: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        let width = width.max(1).min(tasks);
        let executors = width.min(self.workers.len() + 1);
        let nested = IS_POOL_WORKER.with(|flag| flag.get());
        if executors <= 1 || nested {
            for index in 0..tasks {
                job(index);
            }
            return;
        }

        let remote_tasks = tasks - tasks.div_ceil(executors);
        let latch = Arc::new(Latch::new(remote_tasks));
        // SAFETY: see `RawJob` — we wait on the latch before returning, so
        // the erased borrow cannot outlive the closure.
        let raw = RawJob(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        });
        for index in 0..tasks {
            let executor = index % executors;
            if executor == 0 {
                continue; // caller's stride, run below
            }
            self.workers[executor - 1].queue.push(Task {
                job: raw,
                index,
                latch: Arc::clone(&latch),
            });
        }

        let mut caller_panic = None;
        let mut index = 0;
        while index < tasks {
            if caller_panic.is_none() {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(index))) {
                    caller_panic = Some(payload);
                }
            }
            index += executors;
        }
        latch.wait();

        if let Some(payload) = caller_panic {
            resume_unwind(payload);
        }
        if latch.panicked.load(Ordering::Acquire) {
            panic!("xplace-parallel: a pool task panicked");
        }
    }

    /// Runs `f(i)` for each task `i in 0..tasks` across at most `width`
    /// threads and returns the results **in task order**, regardless of
    /// scheduling. This is the primitive every deterministic kernel builds
    /// on: reduce the returned `Vec` front to back and the reduction order
    /// is fixed for any thread count.
    pub fn run<R, F>(&self, tasks: usize, width: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut slots: Vec<Option<R>> = Vec::with_capacity(tasks);
        slots.resize_with(tasks, || None);
        {
            let shared = SharedSlots(slots.as_mut_ptr());
            self.execute(tasks, width, &|index| {
                let value = f(index);
                // SAFETY: each task index is executed exactly once and only
                // touches its own slot, so writes never alias.
                unsafe { shared.write(index, value) };
            });
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("pool task did not produce a result"))
            .collect()
    }

    /// Like [`run`](Self::run), but each task's panic is caught
    /// *individually* and returned as `Err` in that task's result slot
    /// instead of aborting the launch: the job-level scheduling primitive.
    ///
    /// [`run`](Self::run) is the right shape for data-parallel kernel
    /// bodies, where one panicked block means the whole kernel is wrong.
    /// A batch scheduler needs the opposite contract — one failing *job*
    /// must not take its siblings down — so here every task is fenced by
    /// its own `catch_unwind` and the launch always returns `tasks`
    /// results in task order, `Ok` or `Err` per task.
    pub fn run_isolated<R, F>(&self, tasks: usize, width: usize, f: F) -> Vec<Result<R, String>>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.run(tasks, width, |index| {
            catch_unwind(AssertUnwindSafe(|| f(index))).map_err(|p| panic_message(p.as_ref()))
        })
    }

    /// Like [`run`](Self::run), but each task also gets exclusive access to
    /// one element of `states` (task `i` → `states[i]`): per-task scratch
    /// such as transform plans lives across launches without reallocation.
    /// `tasks` is `states.len()`.
    pub fn run_mut<S, R, F>(&self, states: &mut [S], width: usize, f: F) -> Vec<R>
    where
        S: Send,
        R: Send,
        F: Fn(usize, &mut S) -> R + Sync,
    {
        let tasks = states.len();
        let mut slots: Vec<Option<R>> = Vec::with_capacity(tasks);
        slots.resize_with(tasks, || None);
        {
            let shared = SharedSlots(slots.as_mut_ptr());
            let shared_states = SharedStates(states.as_mut_ptr());
            self.execute(tasks, width, &|index| {
                // SAFETY: each task index runs exactly once and dereferences
                // only `states[index]` / `slots[index]`; no aliasing.
                let state = unsafe { shared_states.get(index) };
                let value = f(index, state);
                unsafe { shared.write(index, value) };
            });
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("pool task did not produce a result"))
            .collect()
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for worker in &self.workers {
            worker.queue.close();
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Raw pointer into the result slots; each task writes only its own index.
struct SharedSlots<R>(*mut Option<R>);

impl<R> SharedSlots<R> {
    unsafe fn write(&self, index: usize, value: R) {
        unsafe { *self.0.add(index) = Some(value) };
    }
}

// SAFETY: disjoint per-task writes, results are `Send`.
unsafe impl<R: Send> Send for SharedSlots<R> {}
unsafe impl<R: Send> Sync for SharedSlots<R> {}

/// Raw pointer into the per-task states; each task borrows only its own index.
struct SharedStates<S>(*mut S);

impl<S> SharedStates<S> {
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, index: usize) -> &mut S {
        unsafe { &mut *self.0.add(index) }
    }
}

// SAFETY: disjoint per-task borrows, states are `Send`.
unsafe impl<S: Send> Send for SharedStates<S> {}
unsafe impl<S: Send> Sync for SharedStates<S> {}

/// Extracts the human-readable message from a panic payload (`&str` and
/// `String` payloads; anything else gets a fixed placeholder). Used by
/// [`WorkerPool::run_isolated`] and by job schedulers that fence work with
/// `catch_unwind` themselves.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Number of hardware threads available to this process (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide pool. Sized `max(available_threads(), 8)` so that kernels
/// requesting more width than the hardware offers still exercise real worker
/// threads (time-shared) rather than silently degrading to serial — launches
/// are capped by their `width` argument, so oversizing costs only parked
/// threads.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(available_threads().max(8)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_returns_results_in_task_order() {
        let pool = WorkerPool::new(4);
        let results = pool.run(64, 4, |i| i * 3);
        assert_eq!(results, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_identical_across_widths() {
        let pool = WorkerPool::new(8);
        let reference = pool.run(37, 1, |i| (i as f64).sqrt().sin());
        for width in 2..=8 {
            let got = pool.run(37, width, |i| (i as f64).sqrt().sin());
            for (a, b) in reference.iter().zip(&got) {
                assert_eq!(a.to_bits(), b.to_bits(), "width {width} diverged");
            }
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run(100, 4, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} ran a wrong count");
        }
    }

    #[test]
    fn run_mut_gives_each_task_its_own_state() {
        let pool = WorkerPool::new(4);
        let mut states: Vec<Vec<usize>> = (0..6).map(|_| Vec::new()).collect();
        let results = pool.run_mut(&mut states, 4, |i, state| {
            state.push(i);
            i + 10
        });
        assert_eq!(results, vec![10, 11, 12, 13, 14, 15]);
        for (i, state) in states.iter().enumerate() {
            assert_eq!(state.as_slice(), &[i]);
        }
    }

    #[test]
    fn zero_and_single_task_launches_work() {
        let pool = WorkerPool::new(4);
        let empty: Vec<usize> = pool.run(0, 4, |i| i);
        assert!(empty.is_empty());
        let one = pool.run(1, 4, |i| i + 7);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn pool_of_one_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let results = pool.run(10, 4, |i| i * i);
        assert_eq!(results, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn nested_launches_fall_back_to_inline() {
        let pool = global();
        let results = pool.run(4, 4, |outer| {
            // Nested launch from inside a pool worker must not deadlock.
            let inner = pool.run(3, 4, move |i| outer * 10 + i);
            inner.iter().sum::<usize>()
        });
        assert_eq!(results, vec![3, 33, 63, 93]);
    }

    #[test]
    fn worker_panics_propagate_to_caller() {
        let pool = WorkerPool::new(4);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, 4, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(outcome.is_err(), "panic in a pool task must propagate");
        // Pool must stay usable after a panicked launch.
        let results = pool.run(4, 4, |i| i);
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn run_isolated_reports_failures_without_aborting_siblings() {
        let pool = WorkerPool::new(4);
        let results = pool.run_isolated(8, 4, |i| {
            if i == 3 {
                panic!("job {i} exploded");
            }
            i * 2
        });
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let err = r.as_ref().unwrap_err();
                assert!(err.contains("job 3 exploded"), "{err}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 2, "sibling {i} must complete");
            }
        }
        // Pool stays usable afterwards.
        assert_eq!(pool.run(3, 4, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn run_isolated_is_ordered_and_width_invariant() {
        let pool = WorkerPool::new(4);
        let run = |width: usize| {
            pool.run_isolated(10, width, |i| {
                if i % 4 == 1 {
                    panic!("boom {i}");
                }
                i
            })
        };
        let a = run(1);
        for width in 2..=4 {
            assert_eq!(a, run(width), "width {width} changed outcomes");
        }
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let p = catch_unwind(|| panic!("literal")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "literal");
        let p = catch_unwind(|| panic!("{}", String::from("formatted"))).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted");
        let p = catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }

    #[test]
    fn width_larger_than_pool_is_capped() {
        let pool = WorkerPool::new(2);
        let results = pool.run(16, 64, |i| i);
        assert_eq!(results, (0..16).collect::<Vec<_>>());
    }
}
