use crate::{Device, KernelInfo};

/// A minimal autograd tape mirroring PyTorch's backward pass.
///
/// Forward operators that participate in automatic differentiation record
/// themselves with [`Tape::record`]: the kernel description of their
/// backward operator plus a closure computing the actual gradient math.
/// Calling [`Tape::backward`] replays the entries in reverse order, each as
/// a kernel launch on the device — so a taped iteration launches roughly
/// twice the operators of a hand-derived one, which is precisely the
/// overhead Xplace's operator-reduction technique removes (§3.1.3).
///
/// ```
/// use xplace_device::{Device, DeviceConfig, KernelInfo, Tape};
///
/// let device = Device::new(DeviceConfig::rtx3090());
/// let mut grad = 0.0f64;
/// {
///     let mut tape = Tape::new(&device);
///     // Forward: y = x^2 at x = 3.
///     let x = 3.0f64;
///     let _y = device.launch(KernelInfo::new("square"), || x * x);
///     tape.record(KernelInfo::new("square_backward"), move |g: &mut f64| *g += 2.0 * x);
///     tape.backward(&mut grad);
/// }
/// assert_eq!(grad, 6.0);
/// assert_eq!(device.profile().launches, 2); // forward + backward
/// ```
pub struct Tape<'d, G> {
    device: &'d Device,
    entries: Vec<(KernelInfo, Box<dyn FnOnce(&mut G) + 'd>)>,
}

impl<'d, G> std::fmt::Debug for Tape<'d, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tape")
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl<'d, G> Tape<'d, G> {
    /// Creates an empty tape bound to a device.
    pub fn new(device: &'d Device) -> Self {
        Tape {
            device,
            entries: Vec::new(),
        }
    }

    /// Number of recorded backward operators.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records the backward operator of a forward computation.
    pub fn record(&mut self, kernel: KernelInfo, backward: impl FnOnce(&mut G) + 'd) {
        self.entries.push((kernel, Box::new(backward)));
    }

    /// Replays all recorded backward operators in reverse order, launching
    /// each on the device and accumulating into `grad`. Consumes the
    /// recorded entries (the tape can be reused afterwards).
    pub fn backward(&mut self, grad: &mut G) {
        for (kernel, body) in self.entries.drain(..).rev() {
            self.device.launch(kernel, || body(grad));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceConfig;

    #[test]
    fn backward_runs_in_reverse_order() {
        let device = Device::new(DeviceConfig::instant());
        let mut tape: Tape<'_, Vec<u32>> = Tape::new(&device);
        tape.record(KernelInfo::new("first"), |g| g.push(1));
        tape.record(KernelInfo::new("second"), |g| g.push(2));
        let mut order = Vec::new();
        tape.backward(&mut order);
        assert_eq!(order, vec![2, 1]);
        assert!(tape.is_empty());
    }

    #[test]
    fn backward_launches_one_kernel_per_entry() {
        let device = Device::new(DeviceConfig::rtx3090());
        let mut tape: Tape<'_, f64> = Tape::new(&device);
        for _ in 0..5 {
            tape.record(KernelInfo::new("bwd").bytes(100), |g| *g += 1.0);
        }
        assert_eq!(tape.len(), 5);
        let mut g = 0.0;
        tape.backward(&mut g);
        assert_eq!(g, 5.0);
        assert_eq!(device.profile().launches, 5);
    }

    #[test]
    fn tape_is_reusable_after_backward() {
        let device = Device::new(DeviceConfig::instant());
        let mut tape: Tape<'_, f64> = Tape::new(&device);
        let mut g = 0.0;
        tape.record(KernelInfo::new("a"), |g| *g += 1.0);
        tape.backward(&mut g);
        tape.record(KernelInfo::new("b"), |g| *g += 10.0);
        tape.backward(&mut g);
        assert_eq!(g, 11.0);
    }

    #[test]
    fn empty_backward_is_a_no_op() {
        let device = Device::new(DeviceConfig::rtx3090());
        let mut tape: Tape<'_, f64> = Tape::new(&device);
        let mut g = 0.0;
        tape.backward(&mut g);
        assert_eq!(device.profile().launches, 0);
    }
}
