//! A deterministic GPU execution model.
//!
//! The Xplace paper's efficiency contribution is entirely about the *shape
//! of the GPU operator stream*: how many kernels are launched per global
//! placement iteration, how much memory each pass touches, whether the
//! autograd engine doubles the operator count, and where synchronization
//! points stall the pipeline (§3.1 of the paper). Reproducing that in pure
//! Rust requires making those quantities first-class and measurable — that
//! is this crate.
//!
//! A [`Device`] executes *real* computations (plain Rust closures doing the
//! actual math on the CPU) while accounting, per kernel launch:
//!
//! * one **launch overhead** (the CPU-side cost of queueing a CUDA kernel,
//!   ~5 µs on real hardware),
//! * a modeled **execution time** derived from the kernel's declared memory
//!   traffic and flop count against configurable bandwidth/throughput
//!   (defaults approximate an RTX 3090),
//! * **synchronization stalls** whenever the host reads a result back.
//!
//! The modeled elapsed time of an operator stream uses the standard
//! pipelined bound `sum(max(launch_i, exec_i)) + syncs * sync_latency`: a
//! stream of tiny kernels is launch-bound (what operator *reduction*
//! attacks), a stream of heavy kernels is execution-bound (what operator
//! *combination*/*extraction*/*skipping* attack).
//!
//! The [`Tape`] mirrors PyTorch's autograd: forward ops record a backward
//! closure, and `backward()` replays them as mirrored kernel launches —
//! reproducing the "autograd almost doubles the operator count"
//! observation that motivates §3.1.3.
//!
//! # Example
//!
//! ```
//! use xplace_device::{Device, DeviceConfig, KernelInfo};
//!
//! let device = Device::new(DeviceConfig::rtx3090());
//! let data = vec![1.0f64; 1024];
//! let sum = device.launch(
//!     KernelInfo::new("reduce_sum").bytes(8 * 1024).flops(1024),
//!     || data.iter().sum::<f64>(),
//! );
//! device.synchronize(); // host reads the value
//! assert_eq!(sum, 1024.0);
//! let prof = device.profile();
//! assert_eq!(prof.launches, 1);
//! assert_eq!(prof.syncs, 1);
//! assert!(prof.modeled_ns() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod device;
mod kernel;
mod profile;
mod tape;

pub use config::DeviceConfig;
pub use device::Device;
pub use kernel::KernelInfo;
pub use profile::ProfileSnapshot;
pub use tape::Tape;
