use std::fmt;
use std::ops::Sub;

/// Cumulative execution statistics of a [`crate::Device`].
///
/// Snapshots are monotone; subtract two snapshots to get the cost of a
/// region (e.g. one global-placement iteration):
///
/// ```
/// use xplace_device::{Device, DeviceConfig, KernelInfo};
///
/// let device = Device::new(DeviceConfig::rtx3090());
/// let before = device.profile();
/// device.launch(KernelInfo::new("op").bytes(1024), || ());
/// let delta = device.profile() - before;
/// assert_eq!(delta.launches, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileSnapshot {
    /// Number of kernel launches.
    pub launches: u64,
    /// Number of host synchronizations.
    pub syncs: u64,
    /// Accumulated launch overhead (ns), `launches * launch_latency`.
    pub launch_overhead_ns: u64,
    /// Accumulated modeled kernel execution time (ns).
    pub exec_ns: u64,
    /// Accumulated pipelined time (ns): `sum(max(launch_i, exec_i))`.
    pub pipelined_ns: u64,
    /// Accumulated synchronization stall time (ns).
    pub sync_stall_ns: u64,
    /// Measured host CPU time actually spent inside kernel bodies (ns).
    pub cpu_ns: u64,
}

impl ProfileSnapshot {
    /// The modeled elapsed time of the recorded operator stream:
    /// pipelined kernel time plus synchronization stalls.
    ///
    /// This is the quantity the paper's per-iteration numbers (Table 3)
    /// correspond to.
    pub fn modeled_ns(&self) -> u64 {
        self.pipelined_ns + self.sync_stall_ns
    }

    /// Modeled elapsed time in milliseconds.
    pub fn modeled_ms(&self) -> f64 {
        self.modeled_ns() as f64 / 1.0e6
    }

    /// Fraction of the modeled time that is launch overhead rather than
    /// kernel execution (1.0 = fully launch-bound).
    pub fn launch_bound_fraction(&self) -> f64 {
        let total = self.modeled_ns();
        if total == 0 {
            0.0
        } else {
            (self.pipelined_ns.saturating_sub(self.exec_ns)) as f64 / total as f64
        }
    }
}

impl Sub for ProfileSnapshot {
    type Output = ProfileSnapshot;
    fn sub(self, rhs: ProfileSnapshot) -> ProfileSnapshot {
        ProfileSnapshot {
            launches: self.launches.saturating_sub(rhs.launches),
            syncs: self.syncs.saturating_sub(rhs.syncs),
            launch_overhead_ns: self
                .launch_overhead_ns
                .saturating_sub(rhs.launch_overhead_ns),
            exec_ns: self.exec_ns.saturating_sub(rhs.exec_ns),
            pipelined_ns: self.pipelined_ns.saturating_sub(rhs.pipelined_ns),
            sync_stall_ns: self.sync_stall_ns.saturating_sub(rhs.sync_stall_ns),
            cpu_ns: self.cpu_ns.saturating_sub(rhs.cpu_ns),
        }
    }
}

impl fmt::Display for ProfileSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} launches, {} syncs, modeled {:.3} ms (exec {:.3} ms, launch-bound {:.0}%)",
            self.launches,
            self.syncs,
            self.modeled_ms(),
            self.exec_ns as f64 / 1e6,
            self.launch_bound_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtraction_gives_deltas() {
        let a = ProfileSnapshot {
            launches: 10,
            syncs: 2,
            launch_overhead_ns: 100,
            exec_ns: 50,
            pipelined_ns: 120,
            sync_stall_ns: 20,
            cpu_ns: 999,
        };
        let b = ProfileSnapshot {
            launches: 4,
            syncs: 1,
            launch_overhead_ns: 40,
            exec_ns: 20,
            pipelined_ns: 50,
            sync_stall_ns: 10,
            cpu_ns: 500,
        };
        let d = a - b;
        assert_eq!(d.launches, 6);
        assert_eq!(d.modeled_ns(), 70 + 10);
    }

    #[test]
    fn launch_bound_fraction_extremes() {
        let launch_bound = ProfileSnapshot {
            pipelined_ns: 100,
            exec_ns: 0,
            ..Default::default()
        };
        assert!((launch_bound.launch_bound_fraction() - 1.0).abs() < 1e-12);
        let exec_bound = ProfileSnapshot {
            pipelined_ns: 100,
            exec_ns: 100,
            ..Default::default()
        };
        assert_eq!(exec_bound.launch_bound_fraction(), 0.0);
        assert_eq!(ProfileSnapshot::default().launch_bound_fraction(), 0.0);
    }

    #[test]
    fn display_mentions_launches() {
        let p = ProfileSnapshot {
            launches: 3,
            ..Default::default()
        };
        assert!(p.to_string().contains("3 launches"));
    }
}
