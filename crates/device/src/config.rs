/// Performance parameters of the modeled accelerator.
///
/// Defaults approximate the NVIDIA RTX 3090 the paper evaluates on. All
/// quantities feed the analytic execution model only — the actual math
/// always runs on the host CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// CPU-side cost of queueing one kernel, in nanoseconds.
    pub launch_latency_ns: u64,
    /// Modeled memory bandwidth in bytes per nanosecond
    /// (1 GB/s == 1 byte/ns; the RTX 3090 sustains ~900).
    pub bandwidth_bytes_per_ns: f64,
    /// Modeled arithmetic throughput in flops per nanosecond
    /// (35 TFLOP/s == 35 000 flop/ns).
    pub flops_per_ns: f64,
    /// Pipeline-flush cost of one host synchronization, in nanoseconds.
    pub sync_latency_ns: u64,
    /// Extra memory-traffic multiplier for kernels that are **not**
    /// in-place (the output tensor is freshly allocated and written,
    /// roughly 1.5x the traffic of an in-place update).
    pub out_of_place_traffic_factor: f64,
    /// When `true`, every launch busy-waits `launch_latency_ns` of real
    /// wall-clock time so that wall-clock benchmarks (Criterion) observe
    /// the same launch-bound effects as the analytic model. Off by default
    /// so unit tests stay fast.
    pub emulate_latency: bool,
}

impl DeviceConfig {
    /// Parameters approximating an NVIDIA RTX 3090 driven from PyTorch:
    /// ~5 µs per kernel launch, ~900 GB/s, ~35 TFLOP/s, ~10 µs per sync.
    pub fn rtx3090() -> Self {
        DeviceConfig {
            launch_latency_ns: 5_000,
            bandwidth_bytes_per_ns: 900.0,
            flops_per_ns: 35_000.0,
            sync_latency_ns: 10_000,
            out_of_place_traffic_factor: 1.5,
            emulate_latency: false,
        }
    }

    /// A zero-overhead configuration: no launch cost, no sync cost,
    /// infinite-bandwidth modeling disabled. Useful for numerical tests
    /// where only the computed values matter.
    pub fn instant() -> Self {
        DeviceConfig {
            launch_latency_ns: 0,
            bandwidth_bytes_per_ns: f64::INFINITY,
            flops_per_ns: f64::INFINITY,
            sync_latency_ns: 0,
            out_of_place_traffic_factor: 1.0,
            emulate_latency: false,
        }
    }

    /// Enables real busy-wait emulation of launch latency (see
    /// [`DeviceConfig::emulate_latency`]).
    pub fn with_emulated_latency(mut self, on: bool) -> Self {
        self.emulate_latency = on;
        self
    }

    /// Overrides the launch latency.
    pub fn with_launch_latency_ns(mut self, ns: u64) -> Self {
        self.launch_latency_ns = ns;
        self
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig::rtx3090()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_rtx3090() {
        assert_eq!(DeviceConfig::default(), DeviceConfig::rtx3090());
    }

    #[test]
    fn instant_config_has_no_overheads() {
        let c = DeviceConfig::instant();
        assert_eq!(c.launch_latency_ns, 0);
        assert_eq!(c.sync_latency_ns, 0);
    }

    #[test]
    fn builders_override_fields() {
        let c = DeviceConfig::rtx3090()
            .with_launch_latency_ns(123)
            .with_emulated_latency(true);
        assert_eq!(c.launch_latency_ns, 123);
        assert!(c.emulate_latency);
    }
}
