use crate::{DeviceConfig, KernelInfo, ProfileSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The modeled accelerator: executes kernel bodies on the host while
/// accounting launches, modeled execution time and synchronizations.
///
/// `Device` is cheap to share by reference; all counters are atomic.
/// See the crate-level documentation for the cost model.
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    launches: AtomicU64,
    syncs: AtomicU64,
    launch_overhead_ns: AtomicU64,
    exec_ns: AtomicU64,
    pipelined_ns: AtomicU64,
    sync_stall_ns: AtomicU64,
    cpu_ns: AtomicU64,
}

impl Device {
    /// Creates a device with the given performance model.
    pub fn new(config: DeviceConfig) -> Self {
        Device {
            config,
            launches: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            launch_overhead_ns: AtomicU64::new(0),
            exec_ns: AtomicU64::new(0),
            pipelined_ns: AtomicU64::new(0),
            sync_stall_ns: AtomicU64::new(0),
            cpu_ns: AtomicU64::new(0),
        }
    }

    /// The device's configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Modeled execution time of one kernel in nanoseconds.
    pub fn exec_model_ns(&self, kernel: &KernelInfo) -> u64 {
        let mut bytes = kernel.bytes_accessed() as f64;
        if !kernel.is_in_place() {
            bytes *= self.config.out_of_place_traffic_factor;
        }
        let mem_ns = if self.config.bandwidth_bytes_per_ns.is_finite() {
            bytes / self.config.bandwidth_bytes_per_ns
        } else {
            0.0
        };
        let compute_ns = if self.config.flops_per_ns.is_finite() {
            kernel.flop_count() as f64 / self.config.flops_per_ns
        } else {
            0.0
        };
        mem_ns.max(compute_ns).round() as u64
    }

    /// Launches a kernel: runs `body` on the host, charges one launch
    /// overhead plus the modeled execution time, and returns the body's
    /// result.
    pub fn launch<R>(&self, kernel: KernelInfo, body: impl FnOnce() -> R) -> R {
        let exec = self.exec_model_ns(&kernel);
        let launch = self.config.launch_latency_ns;
        self.launches.fetch_add(1, Ordering::Relaxed);
        self.launch_overhead_ns.fetch_add(launch, Ordering::Relaxed);
        self.exec_ns.fetch_add(exec, Ordering::Relaxed);
        self.pipelined_ns
            .fetch_add(exec.max(launch), Ordering::Relaxed);
        if self.config.emulate_latency && launch > 0 {
            let start = Instant::now();
            while (start.elapsed().as_nanos() as u64) < launch {
                std::hint::spin_loop();
            }
        }
        let start = Instant::now();
        let out = body();
        self.cpu_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    /// Records a host synchronization (reading a value back from the
    /// device), charging the configured pipeline-flush stall.
    pub fn synchronize(&self) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
        self.sync_stall_ns
            .fetch_add(self.config.sync_latency_ns, Ordering::Relaxed);
    }

    /// A snapshot of all cumulative counters.
    pub fn profile(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            launches: self.launches.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            launch_overhead_ns: self.launch_overhead_ns.load(Ordering::Relaxed),
            exec_ns: self.exec_ns.load(Ordering::Relaxed),
            pipelined_ns: self.pipelined_ns.load(Ordering::Relaxed),
            sync_stall_ns: self.sync_stall_ns.load(Ordering::Relaxed),
            cpu_ns: self.cpu_ns.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset_profile(&self) {
        self.launches.store(0, Ordering::Relaxed);
        self.syncs.store(0, Ordering::Relaxed);
        self.launch_overhead_ns.store(0, Ordering::Relaxed);
        self.exec_ns.store(0, Ordering::Relaxed);
        self.pipelined_ns.store(0, Ordering::Relaxed);
        self.sync_stall_ns.store(0, Ordering::Relaxed);
        self.cpu_ns.store(0, Ordering::Relaxed);
    }

    /// Runs `f` and returns its result together with the profile delta it
    /// produced.
    pub fn scoped<R>(&self, f: impl FnOnce() -> R) -> (R, ProfileSnapshot) {
        let before = self.profile();
        let out = f();
        (out, self.profile() - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_runs_body_and_counts() {
        let d = Device::new(DeviceConfig::rtx3090());
        let v = d.launch(KernelInfo::new("k").bytes(9000), || 42);
        assert_eq!(v, 42);
        let p = d.profile();
        assert_eq!(p.launches, 1);
        assert_eq!(p.launch_overhead_ns, 5_000);
        assert_eq!(p.exec_ns, 10); // 9000 B / 900 B-per-ns
        assert_eq!(p.pipelined_ns, 5_000); // launch-bound
    }

    #[test]
    fn heavy_kernel_is_exec_bound() {
        let d = Device::new(DeviceConfig::rtx3090());
        // 90 MB -> 100_000 ns >> 5_000 ns launch.
        d.launch(KernelInfo::new("big").bytes(90_000_000), || ());
        let p = d.profile();
        assert_eq!(p.exec_ns, 100_000);
        assert_eq!(p.pipelined_ns, 100_000);
        assert!(p.launch_bound_fraction() < 1e-9);
    }

    #[test]
    fn out_of_place_costs_more() {
        let d = Device::new(DeviceConfig::rtx3090());
        let inp = d.exec_model_ns(&KernelInfo::new("a").bytes(9_000_000));
        let oop = d.exec_model_ns(&KernelInfo::new("a").bytes(9_000_000).out_of_place());
        assert_eq!(inp, 10_000);
        assert_eq!(oop, 15_000);
    }

    #[test]
    fn flop_bound_kernel_uses_compute_throughput() {
        let d = Device::new(DeviceConfig::rtx3090());
        // 70M flops / 35k flops-per-ns = 2000 ns; only 900 bytes of traffic.
        let t = d.exec_model_ns(&KernelInfo::new("f").bytes(900).flops(70_000_000));
        assert_eq!(t, 2_000);
    }

    #[test]
    fn sync_accumulates_stall() {
        let d = Device::new(DeviceConfig::rtx3090());
        d.synchronize();
        d.synchronize();
        let p = d.profile();
        assert_eq!(p.syncs, 2);
        assert_eq!(p.sync_stall_ns, 20_000);
        assert_eq!(p.modeled_ns(), 20_000);
    }

    #[test]
    fn instant_config_charges_nothing() {
        let d = Device::new(DeviceConfig::instant());
        d.launch(
            KernelInfo::new("k").bytes(u64::MAX / 4).flops(u64::MAX / 4),
            || (),
        );
        d.synchronize();
        assert_eq!(d.profile().modeled_ns(), 0);
    }

    #[test]
    fn reset_clears_counters() {
        let d = Device::new(DeviceConfig::rtx3090());
        d.launch(KernelInfo::new("k"), || ());
        d.reset_profile();
        assert_eq!(d.profile(), ProfileSnapshot::default());
    }

    #[test]
    fn scoped_reports_only_the_region() {
        let d = Device::new(DeviceConfig::rtx3090());
        d.launch(KernelInfo::new("outside"), || ());
        let ((), delta) = d.scoped(|| {
            d.launch(KernelInfo::new("inside"), || ());
            d.launch(KernelInfo::new("inside"), || ());
        });
        assert_eq!(delta.launches, 2);
        assert_eq!(d.profile().launches, 3);
    }

    #[test]
    fn emulated_latency_takes_real_time() {
        let cfg = DeviceConfig::rtx3090()
            .with_launch_latency_ns(200_000)
            .with_emulated_latency(true);
        let d = Device::new(cfg);
        let start = Instant::now();
        d.launch(KernelInfo::new("slow"), || ());
        assert!(start.elapsed().as_nanos() >= 200_000);
    }

    #[test]
    fn cpu_time_is_measured() {
        let d = Device::new(DeviceConfig::instant());
        d.launch(KernelInfo::new("spin"), || {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            assert!(acc > 0);
        });
        assert!(d.profile().cpu_ns > 0);
    }

    #[test]
    fn device_is_send_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<Device>();
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let d = std::sync::Arc::new(Device::new(DeviceConfig::rtx3090()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = d.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    d.launch(KernelInfo::new("mt").bytes(1000), || ());
                }
                d.synchronize();
            }));
        }
        for h in handles {
            h.join().expect("worker thread");
        }
        let p = d.profile();
        assert_eq!(p.launches, 400);
        assert_eq!(p.syncs, 4);
        assert_eq!(p.launch_overhead_ns, 400 * 5_000);
    }

    #[test]
    fn pipelined_model_sums_per_kernel_max() {
        let d = Device::new(DeviceConfig::rtx3090());
        // Small kernel: max(5000, 10) = 5000. Big: max(5000, 100000).
        d.launch(KernelInfo::new("small").bytes(9_000), || ());
        d.launch(KernelInfo::new("big").bytes(90_000_000), || ());
        assert_eq!(d.profile().pipelined_ns, 105_000);
    }
}
