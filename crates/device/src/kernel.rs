/// Workload description of one kernel launch.
///
/// The declared traffic and flop counts drive the analytic execution-time
/// model; they should describe what the equivalent CUDA kernel would touch
/// (each operand read once, each output written once).
///
/// ```
/// use xplace_device::KernelInfo;
///
/// let k = KernelInfo::new("wa_wirelength").bytes(1 << 20).flops(500_000);
/// assert_eq!(k.name(), "wa_wirelength");
/// assert_eq!(k.bytes_accessed(), 1 << 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelInfo {
    name: &'static str,
    bytes_accessed: u64,
    flops: u64,
    in_place: bool,
}

impl KernelInfo {
    /// Creates a kernel description with zero declared workload.
    pub const fn new(name: &'static str) -> Self {
        KernelInfo {
            name,
            bytes_accessed: 0,
            flops: 0,
            in_place: true,
        }
    }

    /// Sets the bytes of memory traffic the kernel generates.
    pub const fn bytes(mut self, bytes: u64) -> Self {
        self.bytes_accessed = bytes;
        self
    }

    /// Sets the floating-point operation count.
    pub const fn flops(mut self, flops: u64) -> Self {
        self.flops = flops;
        self
    }

    /// Marks the kernel as writing a freshly allocated output tensor
    /// instead of updating in place; the device model charges extra
    /// traffic for it (PyTorch's default behaviour that §3.1.3 removes
    /// with in-place operators).
    pub const fn out_of_place(mut self) -> Self {
        self.in_place = false;
        self
    }

    /// The kernel name (shown in profiles).
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Declared memory traffic in bytes.
    pub const fn bytes_accessed(&self) -> u64 {
        self.bytes_accessed
    }

    /// Declared flop count.
    pub const fn flop_count(&self) -> u64 {
        self.flops
    }

    /// Whether the kernel updates its output in place.
    pub const fn is_in_place(&self) -> bool {
        self.in_place
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let k = KernelInfo::new("k").bytes(10).flops(20).out_of_place();
        assert_eq!(k.bytes_accessed(), 10);
        assert_eq!(k.flop_count(), 20);
        assert!(!k.is_in_place());
    }

    #[test]
    fn defaults_are_in_place_and_zero_cost() {
        let k = KernelInfo::new("k");
        assert!(k.is_in_place());
        assert_eq!(k.bytes_accessed(), 0);
        assert_eq!(k.flop_count(), 0);
    }
}
