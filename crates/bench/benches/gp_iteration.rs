//! End-to-end per-iteration benchmark (the quantity of Table 3): one full
//! gradient evaluation + optimizer step under each operator configuration,
//! measured in wall-clock with the emulated kernel-launch latency so the
//! operator-reduction effect is physically visible, not just modeled.

use xplace_core::{
    Framework, GradientEngine, NesterovOptimizer, OperatorConfig, Parameters, ScheduleConfig,
};
use xplace_db::synthesis::{synthesize, SynthesisSpec};
use xplace_device::{Device, DeviceConfig};
use xplace_ops::PlacementModel;
use xplace_testkit::bench::Bench;
use xplace_testkit::{bench_group, bench_main};

fn setup(cells: usize) -> PlacementModel {
    let design = synthesize(&SynthesisSpec::new("gpiter", cells, cells + cells / 20).with_seed(7))
        .expect("synthesis succeeds");
    PlacementModel::from_design(&design).expect("model builds")
}

fn bench_gp_iteration(c: &mut Bench) {
    let mut group = c.benchmark_group("gp_iteration_4k_cells");
    group.sample_size(20);
    let configs: Vec<(&str, Framework, OperatorConfig, usize)> = vec![
        ("xplace_all", Framework::Xplace, OperatorConfig::all(), 1),
        ("xplace_all_t2", Framework::Xplace, OperatorConfig::all(), 2),
        ("xplace_all_t4", Framework::Xplace, OperatorConfig::all(), 4),
        (
            "xplace_no_skipping",
            Framework::Xplace,
            OperatorConfig {
                skipping: false,
                ..OperatorConfig::all()
            },
            1,
        ),
        ("xplace_none", Framework::Xplace, OperatorConfig::none(), 1),
        (
            "dreamplace_like",
            Framework::DreamplaceLike,
            OperatorConfig::none(),
            1,
        ),
    ];
    for (name, fw, ops, threads) in configs {
        group.bench_function(name, |b| {
            let mut model = setup(4000);
            let device = Device::new(DeviceConfig::rtx3090().with_emulated_latency(true));
            let mut engine = GradientEngine::new(fw, ops, &model).expect("engine builds");
            engine.set_threads(threads);
            let schedule = ScheduleConfig::default();
            let bin = 0.5 * (model.bin_w() + model.bin_h());
            let mut params = Parameters::new(&schedule, bin);
            // Warm up: initialize lambda from real norms.
            let warm = engine
                .evaluate(&device, &model, &params, 0.0)
                .expect("warm-up evaluation");
            params.initialize_lambda(&schedule, warm.wl_grad_l1, warm.density_grad_l1);
            let mut opt = NesterovOptimizer::new(&model, 0.1, 5.0 * bin);
            let fused = ops.reduction;
            b.iter(|| {
                let eval = engine
                    .evaluate(&device, &model, &params, 0.0)
                    .expect("evaluation succeeds");
                let (gx, gy) = {
                    let (a, b) = engine.grads();
                    (a.to_vec(), b.to_vec())
                };
                opt.step(&device, &mut model, &gx, &gy, fused);
                params.advance();
                eval.hpwl
            })
        });
    }
    group.finish();
}

bench_group!(benches, bench_gp_iteration);
bench_main!(benches);
