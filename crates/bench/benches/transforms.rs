//! Micro-benchmarks of the spectral substrate: FFT, DCT family and the
//! electrostatic Poisson solve across grid sizes (the `rfft2`/`irfft2`
//! workload of §3.1.2).

use xplace_fft::{Complex, DctPlan, ElectrostaticSolver, FftPlan, Grid2};
use xplace_testkit::bench::{Bench, BenchmarkId};
use xplace_testkit::{bench_group, bench_main};

fn bench_fft(c: &mut Bench) {
    let mut group = c.benchmark_group("fft_1d");
    for &n in &[256usize, 1024, 4096] {
        let plan = FftPlan::new(n).expect("power-of-two plan");
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.1).sin(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf).expect("forward succeeds");
                buf
            })
        });
    }
    group.finish();
}

fn bench_dct(c: &mut Bench) {
    let mut group = c.benchmark_group("dct_analysis_1d");
    for &n in &[256usize, 1024] {
        let mut plan = DctPlan::new(n).expect("power-of-two plan");
        let input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
        let mut out = vec![0.0; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| plan.analyze(&input, &mut out).expect("analysis succeeds"))
        });
    }
    group.finish();
}

/// The packed-real path against the retained length-2N complex reference:
/// one analyze + cosine + sine sweep per iteration, same input.
fn bench_real_vs_complex(c: &mut Bench) {
    let mut group = c.benchmark_group("dct_real_vs_complex_1d");
    for &n in &[256usize, 1024] {
        let input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
        let mut coeffs = vec![0.0; n];
        let mut out = vec![0.0; n];
        let mut real = DctPlan::new(n).expect("power-of-two plan");
        group.bench_with_input(BenchmarkId::new("real", n), &n, |b, _| {
            b.iter(|| {
                real.analyze(&input, &mut coeffs).expect("analyze");
                real.cosine_synthesis(&coeffs, &mut out).expect("idct");
                real.sine_synthesis(&coeffs, &mut out).expect("idxst");
            })
        });
        let mut complex = xplace_fft::reference::ComplexDct::new(n).expect("power-of-two plan");
        group.bench_with_input(BenchmarkId::new("complex", n), &n, |b, _| {
            b.iter(|| {
                complex.analyze(&input, &mut coeffs).expect("analyze");
                complex.cosine_synthesis(&coeffs, &mut out).expect("idct");
                complex.sine_synthesis(&coeffs, &mut out).expect("idxst");
            })
        });
    }
    group.finish();
}

fn bench_poisson(c: &mut Bench) {
    let mut group = c.benchmark_group("electrostatic_solve");
    group.sample_size(20);
    for &n in &[64usize, 128, 256] {
        let mut solver = ElectrostaticSolver::new(n, n).expect("power-of-two grid");
        let density = Grid2::from_fn(n, n, |ix, iy| {
            ((ix as f64 * 0.3).sin() + (iy as f64 * 0.2).cos()).abs()
        });
        let mut out = xplace_fft::FieldSolution::new(n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                solver
                    .solve_into(&density, &mut out)
                    .expect("solve succeeds")
            })
        });
    }
    group.finish();
}

fn bench_poisson_threads(c: &mut Bench) {
    let mut group = c.benchmark_group("electrostatic_solve_threads");
    group.sample_size(20);
    let n = 256usize;
    let density = Grid2::from_fn(n, n, |ix, iy| {
        ((ix as f64 * 0.3).sin() + (iy as f64 * 0.2).cos()).abs()
    });
    for &threads in &[1usize, 2, 4] {
        let mut solver = ElectrostaticSolver::new(n, n).expect("power-of-two grid");
        solver.set_threads(threads);
        let mut out = xplace_fft::FieldSolution::new(n, n);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                solver
                    .solve_into(&density, &mut out)
                    .expect("solve succeeds")
            })
        });
    }
    group.finish();
}

bench_group!(
    benches,
    bench_fft,
    bench_dct,
    bench_real_vs_complex,
    bench_poisson,
    bench_poisson_threads
);
bench_main!(benches);
