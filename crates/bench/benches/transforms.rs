//! Micro-benchmarks of the spectral substrate: FFT, DCT family and the
//! electrostatic Poisson solve across grid sizes (the `rfft2`/`irfft2`
//! workload of §3.1.2).

use xplace_fft::{Complex, DctPlan, ElectrostaticSolver, FftPlan, Grid2};
use xplace_testkit::bench::{Bench, BenchmarkId};
use xplace_testkit::{bench_group, bench_main};

fn bench_fft(c: &mut Bench) {
    let mut group = c.benchmark_group("fft_1d");
    for &n in &[256usize, 1024, 4096] {
        let plan = FftPlan::new(n).expect("power-of-two plan");
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.1).sin(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf).expect("forward succeeds");
                buf
            })
        });
    }
    group.finish();
}

fn bench_dct(c: &mut Bench) {
    let mut group = c.benchmark_group("dct_analysis_1d");
    for &n in &[256usize, 1024] {
        let mut plan = DctPlan::new(n).expect("power-of-two plan");
        let input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
        let mut out = vec![0.0; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| plan.analyze(&input, &mut out).expect("analysis succeeds"))
        });
    }
    group.finish();
}

fn bench_poisson(c: &mut Bench) {
    let mut group = c.benchmark_group("electrostatic_solve");
    group.sample_size(20);
    for &n in &[64usize, 128, 256] {
        let mut solver = ElectrostaticSolver::new(n, n).expect("power-of-two grid");
        let density = Grid2::from_fn(n, n, |ix, iy| {
            ((ix as f64 * 0.3).sin() + (iy as f64 * 0.2).cos()).abs()
        });
        let mut out = xplace_fft::FieldSolution::new(n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                solver
                    .solve_into(&density, &mut out)
                    .expect("solve succeeds")
            })
        });
    }
    group.finish();
}

fn bench_poisson_threads(c: &mut Bench) {
    let mut group = c.benchmark_group("electrostatic_solve_threads");
    group.sample_size(20);
    let n = 256usize;
    let density = Grid2::from_fn(n, n, |ix, iy| {
        ((ix as f64 * 0.3).sin() + (iy as f64 * 0.2).cos()).abs()
    });
    for &threads in &[1usize, 2, 4] {
        let mut solver = ElectrostaticSolver::new(n, n).expect("power-of-two grid");
        solver.set_threads(threads);
        let mut out = xplace_fft::FieldSolution::new(n, n);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                solver
                    .solve_into(&density, &mut out)
                    .expect("solve succeeds")
            })
        });
    }
    group.finish();
}

bench_group!(
    benches,
    bench_fft,
    bench_dct,
    bench_poisson,
    bench_poisson_threads
);
bench_main!(benches);
