//! Operator-level micro-benchmarks backing Tables 2-3: the fused vs split
//! wirelength kernels (operator combination), the extracted vs direct
//! density paths (operator extraction), and the launch-latency effect
//! (operator reduction) measured in real wall-clock time with the
//! device's emulated kernel-launch latency.

use xplace_db::synthesis::{synthesize, SynthesisSpec};
use xplace_device::{Device, DeviceConfig};
use xplace_ops::{density::DensityOp, wirelength, PlacementModel};
use xplace_testkit::bench::Bench;
use xplace_testkit::{bench_group, bench_main};

fn model(cells: usize) -> PlacementModel {
    let design = synthesize(&SynthesisSpec::new("bench", cells, cells + cells / 20).with_seed(77))
        .expect("synthesis succeeds");
    let mut m = PlacementModel::from_design(&design).expect("model builds");
    let r = m.region();
    let ranges = m.ranges();
    for i in ranges.movable.chain(ranges.filler) {
        m.x[i] = r.lx + ((i as f64) * 0.7548).fract() * r.width();
        m.y[i] = r.ly + ((i as f64) * 0.5698).fract() * r.height();
    }
    m.clamp_to_region();
    m
}

/// Operator combination: one fused kernel vs merged-WA + separate HPWL vs
/// the autograd pair (§3.1.1 / §3.1.3).
fn bench_wirelength(c: &mut Bench) {
    let m = model(5000);
    let device = Device::new(DeviceConfig::instant());
    let n = m.num_nodes();
    let gamma = 10.0;
    let mut group = c.benchmark_group("wirelength_5k_cells");
    group.bench_function("fused_wa_grad_hpwl", |b| {
        let (mut gx, mut gy) = (vec![0.0; n], vec![0.0; n]);
        b.iter(|| {
            gx.fill(0.0);
            gy.fill(0.0);
            wirelength::wa_fused(&device, &m, gamma, &mut gx, &mut gy)
        })
    });
    group.bench_function("split_wa_grad_plus_hpwl", |b| {
        let (mut gx, mut gy) = (vec![0.0; n], vec![0.0; n]);
        b.iter(|| {
            gx.fill(0.0);
            gy.fill(0.0);
            let wa = wirelength::wa_with_grad(&device, &m, gamma, &mut gx, &mut gy);
            let h = wirelength::hpwl(&device, &m);
            (wa, h)
        })
    });
    group.bench_function("autograd_forward_backward_hpwl", |b| {
        let (mut gx, mut gy) = (vec![0.0; n], vec![0.0; n]);
        b.iter(|| {
            gx.fill(0.0);
            gy.fill(0.0);
            let wa = wirelength::wa_forward(&device, &m, gamma);
            wirelength::wa_backward(&device, &m, gamma, &mut gx, &mut gy);
            let h = wirelength::hpwl(&device, &m);
            (wa, h)
        })
    });
    group.finish();
}

/// Operator extraction: D + D_fl + add vs direct total + second movable
/// pass (§3.1.2).
fn bench_density(c: &mut Bench) {
    let m = model(5000);
    let device = Device::new(DeviceConfig::instant());
    let mut group = c.benchmark_group("density_5k_cells");
    group.bench_function("extracted_movable_fillers_combine", |b| {
        let mut op = DensityOp::new(&m).expect("density op builds");
        b.iter(|| {
            op.accumulate_movable(&device, &m);
            op.accumulate_fillers(&device, &m);
            op.combine_total(&device);
            op.overflow(&device, &m)
        })
    });
    group.bench_function("direct_all_plus_movable", |b| {
        let mut op = DensityOp::new(&m).expect("density op builds");
        b.iter(|| {
            op.accumulate_all(&device, &m);
            op.accumulate_movable(&device, &m);
            op.overflow(&device, &m)
        })
    });
    group.bench_function("field_solve", |b| {
        let mut op = DensityOp::new(&m).expect("density op builds");
        op.accumulate_all(&device, &m);
        b.iter(|| op.solve_field(&device).expect("solve succeeds"))
    });
    group.finish();
}

/// Operator reduction: the same fused wirelength kernel under zero vs
/// emulated CUDA-like launch latency shows what launch overhead does to
/// small-kernel streams (§3.1.3).
fn bench_launch_latency(c: &mut Bench) {
    // Small kernels make the launch overhead a visible fraction of the
    // wall time: a 150-cell wirelength pass costs ~10-30 us on a CPU
    // core, comparable to the 5 us CUDA-like launch cost being emulated —
    // the regime §3.1.3's operator reduction attacks.
    let m = model(150);
    let n = m.num_nodes();
    let gamma = 10.0;
    let mut group = c.benchmark_group("launch_latency_150_cells");
    for (name, cfg) in [
        ("no_latency_16_kernels", DeviceConfig::instant()),
        (
            "emulated_5us_16_kernels",
            DeviceConfig::rtx3090().with_emulated_latency(true),
        ),
    ] {
        let device = Device::new(cfg);
        group.bench_function(name, |b| {
            let (mut gx, mut gy) = (vec![0.0; n], vec![0.0; n]);
            b.iter(|| {
                for _ in 0..8 {
                    gx.fill(0.0);
                    gy.fill(0.0);
                    wirelength::wa_with_grad(&device, &m, gamma, &mut gx, &mut gy);
                    wirelength::hpwl(&device, &m);
                }
            })
        });
    }
    group.finish();
}

bench_group!(
    benches,
    bench_wirelength,
    bench_density,
    bench_launch_latency
);
bench_main!(benches);
