//! Benchmarks of the post-GP pipeline (the DP/s column of Tables 2 and 4):
//! legalization and detailed placement across design sizes.

use xplace_db::synthesis::{synthesize, SynthesisSpec};
use xplace_db::{Design, Point};
use xplace_legal::{detailed_place, legalize, DpConfig};
use xplace_testkit::bench::{BatchSize, Bench, BenchmarkId};
use xplace_testkit::{bench_group, bench_main};

/// A spread (GP-like) placement without running the placer, so the bench
/// isolates LG/DP cost.
fn spread_design(cells: usize) -> Design {
    let mut d = synthesize(&SynthesisSpec::new("lgbench", cells, cells + cells / 20).with_seed(42))
        .expect("synthesis succeeds");
    let r = d.region();
    let nl = d.netlist();
    let mut pos = d.positions().to_vec();
    for (k, id) in nl.cell_ids().enumerate() {
        if nl.cell(id).is_movable() {
            pos[id.index()] = Point::new(
                r.lx + ((k as f64) * 0.7548).fract() * r.width(),
                r.ly + ((k as f64) * 0.5698).fract() * r.height(),
            );
        }
    }
    d.set_positions(pos);
    d
}

fn bench_legalize(c: &mut Bench) {
    let mut group = c.benchmark_group("legalize");
    group.sample_size(10);
    for &cells in &[1_000usize, 4_000] {
        let design = spread_design(cells);
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter_batched(
                || design.clone(),
                |mut d| legalize(&mut d).expect("legalization succeeds"),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_detailed_place(c: &mut Bench) {
    let mut group = c.benchmark_group("detailed_place");
    group.sample_size(10);
    for &cells in &[1_000usize, 4_000] {
        let mut design = spread_design(cells);
        legalize(&mut design).expect("legalization succeeds");
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter_batched(
                || design.clone(),
                |mut d| detailed_place(&mut d, &DpConfig::default()),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

bench_group!(benches, bench_legalize, bench_detailed_place);
bench_main!(benches);
