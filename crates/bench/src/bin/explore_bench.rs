//! Gated exploration bench: `--explore 8` against a budget-matched
//! single run, written as a gateable JSON report.
//!
//! ```text
//! explore_bench [--smoke] [--threads N] [--out results/explore_bench.json]
//! ```
//!
//! Runs the three-design suite of `xplace_bench::explore`: each design
//! is placed by an 8-member population (4 generations, keep 4) and by
//! one single run holding the population's whole iteration budget. The
//! bench exits non-zero unless the population winner's HPWL is strictly
//! better on at least 2 of the 3 designs and every comparison is
//! budget-fair (the single run converged or outspent the population).
//!
//! The output is the committed case's bare [`ExploreMetrics`] section
//! (`{"members":...,"winner_lineage":...}`), the same shape as the
//! `explore` section of a `RunReport` baseline — `check_regression`
//! accepts it directly against `BENCH_baseline.json`. `--smoke` runs
//! the committed design sizes (the default in CI); without it the
//! designs are grown for manual exploration and no longer match the
//! committed section.

use xplace_bench::explore::{measure_explore, suite_cases, EXPLORE_MEMBERS};
use xplace_bench::{argv_flag, argv_parse, default_workers, fmt, TextTable};
use xplace_telemetry::ToJson;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads: usize = argv_parse("--threads", default_workers());
    let out = argv_flag("--out").unwrap_or_else(|| "results/explore_bench.json".to_string());
    let cases = suite_cases(smoke);

    eprintln!(
        "explore bench: {} case(s), {EXPLORE_MEMBERS} members, {threads} worker(s){}",
        cases.len(),
        if smoke { " [smoke]" } else { "" }
    );

    let mut table = TextTable::new(&[
        "design",
        "single HPWL",
        "explore HPWL",
        "gain %",
        "single ms",
        "explore ms",
        "winner",
    ]);
    let mut wins = 0usize;
    let mut committed = None;
    for (i, case) in cases.iter().enumerate() {
        let comparison = measure_explore(case, threads).unwrap_or_else(|e| {
            eprintln!("error: explore bench failed: {e}");
            std::process::exit(1)
        });
        if !comparison.budget_fair() {
            eprintln!(
                "error: {}: single run stopped early without converging \
                 ({} modeled ns < population's {})",
                comparison.name, comparison.single_modeled_ns, comparison.metrics.total_modeled_ns
            );
            std::process::exit(1)
        }
        if !comparison.quality_fair() {
            eprintln!(
                "error: {}: winner stopped at overflow {:.3} vs the single run's {:.3} — \
                 its HPWL is not comparable",
                comparison.name,
                comparison.winner_overflow(),
                comparison.single_overflow
            );
            std::process::exit(1)
        }
        if comparison.population_wins() {
            wins += 1;
        }
        let gain = 100.0 * (comparison.single_hpwl - comparison.metrics.winner_hpwl)
            / comparison.single_hpwl;
        table.row(vec![
            comparison.name.clone(),
            fmt(comparison.single_hpwl, 1),
            fmt(comparison.metrics.winner_hpwl, 1),
            fmt(gain, 2),
            fmt(comparison.single_modeled_ns as f64 / 1e6, 2),
            fmt(comparison.metrics.total_modeled_ns as f64 / 1e6, 2),
            format!(
                "{} via {:?}",
                comparison.metrics.winner, comparison.metrics.winner_lineage
            ),
        ]);
        if i == 0 {
            committed = Some(comparison.metrics);
        }
    }
    print!("{}", table.render());

    if wins < 2 {
        eprintln!(
            "error: the population beat the single run on only {wins}/{} design(s) \
             (needs at least 2)",
            cases.len()
        );
        std::process::exit(1)
    }
    println!(
        "explore bench: population won on {wins}/{} designs at equal total modeled budget",
        cases.len()
    );

    let metrics = committed.expect("the committed case ran");
    let path = std::path::Path::new(&out);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(path, metrics.to_json().render()).expect("write report");
    eprintln!("wrote {out}");
}
