//! Compares a fresh report against a committed baseline and exits
//! non-zero on regression — the executable half of
//! `scripts/check_regression.sh`.
//!
//! ```text
//! check_regression <baseline.json> <current.json>
//!                  [--hpwl-pct 2.0] [--time-pct 5.0] [--launches-pct 2.0]
//!                  [--inject-hpwl-pct X]
//! ```
//!
//! Single-run [`RunReport`]s, batch [`BatchReport`]s, bare spectral
//! reports (`spectral_bench` output), bare scaling reports
//! (`scaling_bench` output) and bare explore reports (`explore_bench`
//! output) are accepted; the kind is auto-detected (a batch report is
//! an object with a `jobs` array, a spectral report one with a
//! top-level `grids` array, a scaling report one with a top-level
//! `points` array, an explore report one with a top-level
//! `winner_lineage` array). Both sides must be the same kind, except
//! that a spectral, scaling or explore *current* may be gated against
//! the matching section of a run-report *baseline* — the CI smoke paths
//! against `BENCH_baseline.json`. Deterministic quantities (final HPWL,
//! modeled GP time, kernel launch count, iteration count, run structure
//! — per job, for batches; per-grid modeled transform ns for spectral
//! sections; per-cell modeled ns for scaling points; winner HPWL,
//! lineage and total modeled cost for explore sections) hard-fail
//! beyond tolerance; wall-clock drift only warns. `--inject-hpwl-pct`
//! inflates the current report's HPWL by X percent *after loading*
//! (every completed job of a batch), `--inject-spectral-pct` does the
//! same to the per-grid modeled transform times,
//! `--inject-scaling-pct` to the per-point modeled GP times, and
//! `--inject-explore-pct` to the population winner's HPWL — self-test
//! hooks CI uses to prove the gate actually fails on a regression.

use xplace_bench::argv_parse;
use xplace_telemetry::{
    compare_batch_reports, compare_explore, compare_reports, compare_scaling, compare_spectral,
    BatchReport, Comparison, ExploreMetrics, FromJson, Json, RunReport, ScalingMetrics,
    SpectralMetrics, Tolerances,
};

enum Loaded {
    Run(RunReport),
    Batch(BatchReport),
    Spectral(SpectralMetrics),
    Scaling(ScalingMetrics),
    Explore(ExploreMetrics),
}

impl Loaded {
    fn kind(&self) -> &'static str {
        match self {
            Loaded::Run(_) => "run report",
            Loaded::Batch(_) => "batch report",
            Loaded::Spectral(_) => "spectral report",
            Loaded::Scaling(_) => "scaling report",
            Loaded::Explore(_) => "explore report",
        }
    }
}

fn load(path: &str) -> Loaded {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2)
    });
    let json = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path} is not valid JSON: {e}");
        std::process::exit(2)
    });
    let result = if json.get("jobs").is_some() {
        BatchReport::from_json(&json).map(Loaded::Batch)
    } else if json.get("grids").is_some() {
        SpectralMetrics::from_json(&json).map(Loaded::Spectral)
    } else if json.get("points").is_some() {
        ScalingMetrics::from_json(&json).map(Loaded::Scaling)
    } else if json.get("winner_lineage").is_some() {
        ExploreMetrics::from_json(&json).map(Loaded::Explore)
    } else {
        RunReport::from_json(&json).map(Loaded::Run)
    };
    result.unwrap_or_else(|e| {
        eprintln!("error: {path} is not a valid report: {e}");
        std::process::exit(2)
    })
}

/// Self-test hook: fake a quality regression so CI can verify the gate
/// fails when it should.
fn inject_hpwl(report: &mut RunReport, factor: f64) {
    report.gp.final_hpwl *= factor;
    if let Some(lg) = report.lg.as_mut() {
        lg.final_hpwl *= factor;
    }
    if let Some(dp) = report.dp.as_mut() {
        dp.final_hpwl *= factor;
    }
}

/// Self-test hook for the spectral gate: fake a modeled-transform-time
/// regression on every grid.
fn inject_spectral(spectral: &mut SpectralMetrics, factor: f64) {
    for grid in &mut spectral.grids {
        grid.modeled_ns = (grid.modeled_ns as f64 * factor) as u64;
    }
}

/// Self-test hook for the scaling gate: fake a per-cell modeled-cost
/// regression on every point.
fn inject_scaling(scaling: &mut ScalingMetrics, factor: f64) {
    for point in &mut scaling.points {
        point.modeled_ns = (point.modeled_ns as f64 * factor) as u64;
    }
}

/// Self-test hook for the explore gate: fake a population-quality
/// regression on the winner's HPWL.
fn inject_explore(explore: &mut ExploreMetrics, factor: f64) {
    explore.winner_hpwl *= factor;
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Positionals are the tokens that are neither flags nor flag values.
    let mut positionals = Vec::new();
    let mut skip = false;
    for a in &args {
        if skip {
            skip = false;
        } else if a.starts_with("--") {
            skip = true; // every flag of this tool takes a value
        } else {
            positionals.push(a);
        }
    }
    let (baseline_path, current_path) = match positionals.as_slice() {
        [b, c] => (b.as_str(), c.as_str()),
        _ => {
            eprintln!(
                "usage: check_regression <baseline.json> <current.json> \
                 [--hpwl-pct X] [--time-pct X] [--launches-pct X] \
                 [--inject-hpwl-pct X] [--inject-spectral-pct X] \
                 [--inject-scaling-pct X] [--inject-explore-pct X]"
            );
            std::process::exit(2)
        }
    };

    let tol = Tolerances {
        hpwl_pct: argv_parse("--hpwl-pct", 2.0),
        modeled_time_pct: argv_parse("--time-pct", 5.0),
        launches_pct: argv_parse("--launches-pct", 2.0),
        wall_warn_pct: argv_parse("--wall-warn-pct", 50.0),
    };

    let baseline = load(baseline_path);
    let mut current = load(current_path);

    let inject: f64 = argv_parse("--inject-hpwl-pct", 0.0);
    if inject != 0.0 {
        let f = 1.0 + inject / 100.0;
        match &mut current {
            Loaded::Run(report) => inject_hpwl(report, f),
            Loaded::Batch(batch) => {
                for job in &mut batch.jobs {
                    if let Some(report) = job.report.as_mut() {
                        inject_hpwl(report, f);
                    }
                }
            }
            Loaded::Spectral(_) | Loaded::Scaling(_) | Loaded::Explore(_) => {
                eprintln!("error: --inject-hpwl-pct only applies to run and batch reports");
                std::process::exit(2)
            }
        }
        eprintln!("(self-test: injected {inject:+.1}% HPWL into the current report)");
    }

    let inject_sp: f64 = argv_parse("--inject-spectral-pct", 0.0);
    if inject_sp != 0.0 {
        let f = 1.0 + inject_sp / 100.0;
        match &mut current {
            Loaded::Spectral(spectral) => inject_spectral(spectral, f),
            Loaded::Run(report) => match report.spectral.as_mut() {
                Some(spectral) => inject_spectral(spectral, f),
                None => {
                    eprintln!("error: current run report has no spectral section to inject into");
                    std::process::exit(2)
                }
            },
            Loaded::Batch(_) | Loaded::Scaling(_) | Loaded::Explore(_) => {
                eprintln!("error: --inject-spectral-pct only applies to spectral and run reports");
                std::process::exit(2)
            }
        }
        eprintln!(
            "(self-test: injected {inject_sp:+.1}% modeled transform time into the current \
             spectral report)"
        );
    }

    let inject_sc: f64 = argv_parse("--inject-scaling-pct", 0.0);
    if inject_sc != 0.0 {
        let f = 1.0 + inject_sc / 100.0;
        match &mut current {
            Loaded::Scaling(scaling) => inject_scaling(scaling, f),
            Loaded::Run(report) => match report.scaling.as_mut() {
                Some(scaling) => inject_scaling(scaling, f),
                None => {
                    eprintln!("error: current run report has no scaling section to inject into");
                    std::process::exit(2)
                }
            },
            Loaded::Batch(_) | Loaded::Spectral(_) | Loaded::Explore(_) => {
                eprintln!("error: --inject-scaling-pct only applies to scaling and run reports");
                std::process::exit(2)
            }
        }
        eprintln!(
            "(self-test: injected {inject_sc:+.1}% modeled GP time into the current \
             scaling report)"
        );
    }

    let inject_ex: f64 = argv_parse("--inject-explore-pct", 0.0);
    if inject_ex != 0.0 {
        let f = 1.0 + inject_ex / 100.0;
        match &mut current {
            Loaded::Explore(explore) => inject_explore(explore, f),
            Loaded::Run(report) => match report.explore.as_mut() {
                Some(explore) => inject_explore(explore, f),
                None => {
                    eprintln!("error: current run report has no explore section to inject into");
                    std::process::exit(2)
                }
            },
            Loaded::Batch(_) | Loaded::Spectral(_) | Loaded::Scaling(_) => {
                eprintln!("error: --inject-explore-pct only applies to explore and run reports");
                std::process::exit(2)
            }
        }
        eprintln!(
            "(self-test: injected {inject_ex:+.1}% winner HPWL into the current \
             explore report)"
        );
    }

    let cmp: Comparison = match (&baseline, &current) {
        (Loaded::Run(b), Loaded::Run(c)) => compare_reports(b, c, &tol),
        (Loaded::Batch(b), Loaded::Batch(c)) => compare_batch_reports(b, c, &tol),
        (Loaded::Spectral(b), Loaded::Spectral(c)) => {
            let mut cmp = Comparison::default();
            compare_spectral(b, c, &tol, &mut cmp);
            cmp
        }
        (Loaded::Scaling(b), Loaded::Scaling(c)) => {
            let mut cmp = Comparison::default();
            compare_scaling(b, c, &tol, &mut cmp);
            cmp
        }
        // CI smoke path: a bare spectral_bench report gated against the
        // spectral section of the committed run-report baseline.
        (Loaded::Run(b), Loaded::Spectral(c)) => match b.spectral.as_ref() {
            Some(base) => {
                let mut cmp = Comparison::default();
                compare_spectral(base, c, &tol, &mut cmp);
                cmp
            }
            None => {
                eprintln!(
                    "error: baseline {baseline_path} has no spectral section to gate against"
                );
                std::process::exit(2)
            }
        },
        // Same smoke path for a bare scaling_bench report.
        (Loaded::Run(b), Loaded::Scaling(c)) => match b.scaling.as_ref() {
            Some(base) => {
                let mut cmp = Comparison::default();
                compare_scaling(base, c, &tol, &mut cmp);
                cmp
            }
            None => {
                eprintln!("error: baseline {baseline_path} has no scaling section to gate against");
                std::process::exit(2)
            }
        },
        (Loaded::Explore(b), Loaded::Explore(c)) => {
            let mut cmp = Comparison::default();
            compare_explore(b, c, &tol, &mut cmp);
            cmp
        }
        // Same smoke path for a bare explore_bench report.
        (Loaded::Run(b), Loaded::Explore(c)) => match b.explore.as_ref() {
            Some(base) => {
                let mut cmp = Comparison::default();
                compare_explore(base, c, &tol, &mut cmp);
                cmp
            }
            None => {
                eprintln!("error: baseline {baseline_path} has no explore section to gate against");
                std::process::exit(2)
            }
        },
        (b, c) => {
            eprintln!(
                "error: report kind mismatch: {baseline_path} is a {} but {current_path} \
                 is a {}",
                b.kind(),
                c.kind()
            );
            std::process::exit(2)
        }
    };
    print!("{}", cmp.render());
    if cmp.passed() {
        println!("regression gate: PASS");
    } else {
        println!("regression gate: FAIL ({} failure(s))", cmp.failures.len());
        std::process::exit(1)
    }
}
