//! Compares a fresh [`RunReport`] against a committed baseline and exits
//! non-zero on regression — the executable half of
//! `scripts/check_regression.sh`.
//!
//! ```text
//! check_regression <baseline.json> <current.json>
//!                  [--hpwl-pct 2.0] [--time-pct 5.0] [--launches-pct 2.0]
//!                  [--inject-hpwl-pct X]
//! ```
//!
//! Deterministic quantities (final HPWL, modeled GP time, kernel launch
//! count, iteration count, run structure) hard-fail beyond tolerance;
//! wall-clock drift only warns. `--inject-hpwl-pct` inflates the current
//! report's HPWL by X percent *after loading* — a self-test hook CI uses
//! to prove the gate actually fails on a regression.

use xplace_bench::argv_parse;
use xplace_telemetry::{compare_reports, FromJson, RunReport, Tolerances};

fn load(path: &str) -> RunReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2)
    });
    RunReport::from_json_str(&text).unwrap_or_else(|e| {
        eprintln!("error: {path} is not a valid run report: {e}");
        std::process::exit(2)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Positionals are the tokens that are neither flags nor flag values.
    let mut positionals = Vec::new();
    let mut skip = false;
    for a in &args {
        if skip {
            skip = false;
        } else if a.starts_with("--") {
            skip = true; // every flag of this tool takes a value
        } else {
            positionals.push(a);
        }
    }
    let (baseline_path, current_path) = match positionals.as_slice() {
        [b, c] => (b.as_str(), c.as_str()),
        _ => {
            eprintln!(
                "usage: check_regression <baseline.json> <current.json> \
                 [--hpwl-pct X] [--time-pct X] [--launches-pct X] [--inject-hpwl-pct X]"
            );
            std::process::exit(2)
        }
    };

    let tol = Tolerances {
        hpwl_pct: argv_parse("--hpwl-pct", 2.0),
        modeled_time_pct: argv_parse("--time-pct", 5.0),
        launches_pct: argv_parse("--launches-pct", 2.0),
        wall_warn_pct: argv_parse("--wall-warn-pct", 50.0),
    };

    let baseline = load(baseline_path);
    let mut current = load(current_path);

    let inject: f64 = argv_parse("--inject-hpwl-pct", 0.0);
    if inject != 0.0 {
        // Self-test hook: fake a quality regression so CI can verify the
        // gate fails when it should.
        let f = 1.0 + inject / 100.0;
        current.gp.final_hpwl *= f;
        if let Some(lg) = current.lg.as_mut() {
            lg.final_hpwl *= f;
        }
        if let Some(dp) = current.dp.as_mut() {
            dp.final_hpwl *= f;
        }
        eprintln!("(self-test: injected {inject:+.1}% HPWL into the current report)");
    }

    let cmp = compare_reports(&baseline, &current, &tol);
    print!("{}", cmp.render());
    if cmp.passed() {
        println!("regression gate: PASS");
    } else {
        println!("regression gate: FAIL ({} failure(s))", cmp.failures.len());
        std::process::exit(1)
    }
}
