//! Regenerates Table 2 of the paper: HPWL and runtime on the ISPD 2005
//! suite for DREAMPlace (baseline), Xplace and Xplace-NN.
//!
//! Every placer's GP result goes through the *same* legalizer and
//! detailed placer, exactly as the paper runs NTUPlace3 on both. GP time
//! is the modeled GPU time of the device execution model; DP time is
//! wall-clock. Absolute numbers differ from the paper's testbed — the
//! ratios are the reproduction target (Xplace ~1.6x faster GP than the
//! baseline with HPWL within a per-mil; Xplace-NN slightly better HPWL at
//! some GP-time cost).
//!
//! Environment: `XPLACE_SCALE` (default 0.004), `XPLACE_MAX_ITERS`
//! (default 1500).

use xplace_bench::{
    fmt, max_iters_from_env, report_from_flow, run_flow, scale_from_env, write_reports, TextTable,
};
use xplace_core::XplaceConfig;
use xplace_db::suites::ispd2005_like;
use xplace_nn::{train, DataConfig, Fno, FnoConfig, FnoGuidance, TrainConfig};

fn main() {
    let scale = scale_from_env(0.004);
    let max_iters = max_iters_from_env(1500);
    let suite = ispd2005_like(scale);

    // Train the guidance model once (self-generated data, §4.3).
    eprintln!("training the FNO guidance model...");
    let nn_config = FnoConfig {
        width: 8,
        modes: 6,
        num_layers: 3,
        proj_hidden: 32,
    };
    let mut fno = Fno::new(&nn_config, 0xf0).expect("valid config");
    let train_cfg = TrainConfig {
        steps: 300,
        batch: 2,
        lr: 2e-3,
        data: DataConfig {
            grid: 32,
            blobs: 4,
            rects: 2,
            ..Default::default()
        },
        seed: 9_000,
    };
    let report = train(&mut fno, &train_cfg).expect("training succeeds");
    eprintln!("  final training loss: {:.4}", report.final_loss);

    let mut table = TextTable::new(&[
        "design",
        "HPWL(base)",
        "GP/s",
        "DP/s",
        "HPWL(xp)",
        "GP/s",
        "DP/s",
        "HPWL(nn)",
        "GP/s",
        "DP/s",
    ]);
    let mut sums = [0.0f64; 9];
    let mut reports = Vec::new();

    for entry in &suite {
        eprintln!(
            "running {} ({} cells)...",
            entry.name(),
            entry.spec.num_cells
        );
        let mut cfg_base = XplaceConfig::dreamplace_like();
        cfg_base.schedule.max_iterations = max_iters;
        let mut cfg_xp = XplaceConfig::xplace();
        cfg_xp.schedule.max_iterations = max_iters;
        let cfg_nn = cfg_xp.clone();

        let base = run_flow(entry, cfg_base.clone(), None).expect("baseline flow");
        let xp = run_flow(entry, cfg_xp.clone(), None).expect("xplace flow");
        let guidance = FnoGuidance::new(fno.clone());
        let nn = run_flow(entry, cfg_nn.clone(), Some(Box::new(guidance))).expect("xplace-nn flow");
        reports.push(report_from_flow(&cfg_base, &base));
        reports.push(report_from_flow(&cfg_xp, &xp));
        reports.push(report_from_flow(&cfg_nn, &nn));

        let cells = [
            base.hpwl(),
            base.gp_seconds(),
            base.dp_seconds(),
            xp.hpwl(),
            xp.gp_seconds(),
            xp.dp_seconds(),
            nn.hpwl(),
            nn.gp_seconds(),
            nn.dp_seconds(),
        ];
        for (s, c) in sums.iter_mut().zip(&cells) {
            *s += c;
        }
        let mut row = vec![entry.name().to_string()];
        row.extend(cells.iter().enumerate().map(|(i, &v)| {
            if i % 3 == 0 {
                fmt(v / 1e6, 4)
            } else {
                fmt(v, 3)
            }
        }));
        table.row(row);
    }

    let mut sum_row = vec!["Sum".to_string()];
    sum_row.extend(sums.iter().enumerate().map(|(i, &v)| {
        if i % 3 == 0 {
            fmt(v / 1e6, 4)
        } else {
            fmt(v, 3)
        }
    }));
    table.row(sum_row);
    // Ratios vs Xplace (columns 3..6 are Xplace).
    let mut ratio_row = vec!["Ratio".to_string()];
    for i in 0..9 {
        let xp_ref = sums[3 + i % 3];
        ratio_row.push(if xp_ref > 0.0 {
            fmt(sums[i] / xp_ref, 3)
        } else {
            "-".into()
        });
    }
    table.row(ratio_row);

    println!(
        "\nTable 2: ISPD 2005 suite, HPWL (x1e6) and runtime (s). Columns: \
         DREAMPlace-like baseline | Xplace | Xplace-NN\n"
    );
    println!("{}", table.render());
    println!("(GP/s is modeled GPU time; ratios are relative to Xplace = 1.000)");

    let reports_path = std::path::Path::new("results/table2_reports.json");
    match write_reports(reports_path, &reports) {
        Ok(()) => eprintln!("machine-readable reports: {}", reports_path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", reports_path.display()),
    }
}
