//! Regenerates Table 3 of the paper: the ablation of the four
//! operator-level optimization techniques (OR, OC, OE, OS), measured as
//! mean modeled GPU time per global-placement iteration, expressed as a
//! percentage of the fully optimized Xplace configuration (= 100%), plus
//! the DREAMPlace-like baseline row.
//!
//! Each configuration runs `XPLACE_ABLATION_ITERS` (default 400) GP
//! iterations of the real optimization loop on every ISPD 2005-like
//! design (enough that the <100-iteration skipping window is a minority
//! share, as it is in a full run). Expected shape (paper Table 3): time ratios shrink
//! monotonically as techniques are added; operator reduction dominates on
//! smaller designs while combination/extraction/skipping matter more on
//! the larger ones; the DREAMPlace row is around 2-4x.
//!
//! Environment: `XPLACE_SCALE` (default 0.02), `XPLACE_ABLATION_ITERS`.

use xplace_bench::{default_workers, fmt, parallel_map, scale_from_env, TextTable};
use xplace_core::{GlobalPlacer, XplaceConfig};
use xplace_db::suites::ispd2005_like;
use xplace_db::synthesis::synthesize;

fn run_config(entry: &xplace_db::suites::SuiteEntry, mut cfg: XplaceConfig, iters: usize) -> f64 {
    cfg.schedule.max_iterations = iters;
    cfg.schedule.stop_overflow = 1e-12; // never stop early: equal iteration counts
    let mut design = synthesize(&entry.spec).expect("synthesis succeeds");
    let report = GlobalPlacer::new(cfg)
        .place(&mut design)
        .expect("placement succeeds");
    report.modeled_ms_per_iter()
}

fn main() {
    let scale = scale_from_env(0.02);
    let iters: usize = std::env::var("XPLACE_ABLATION_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let suite = ispd2005_like(scale);

    // (label, reduction, combination, extraction, skipping)
    let rows: Vec<(&str, XplaceConfig)> = vec![
        ("none", XplaceConfig::ablation(false, false, false, false)),
        ("OR", XplaceConfig::ablation(true, false, false, false)),
        ("OR+OC", XplaceConfig::ablation(true, true, false, false)),
        ("OR+OC+OE", XplaceConfig::ablation(true, true, true, false)),
        (
            "Xplace (all)",
            XplaceConfig::ablation(true, true, true, true),
        ),
        ("DREAMPlace", XplaceConfig::dreamplace_like()),
    ];

    // Collect per-design ms/iter for every configuration, in parallel
    // (each job is an independent placement run).
    let jobs: Vec<(usize, usize)> = (0..rows.len())
        .flat_map(|ri| (0..suite.len()).map(move |di| (ri, di)))
        .collect();
    eprintln!(
        "running {} ablation jobs on {} workers...",
        jobs.len(),
        default_workers()
    );
    let results = parallel_map(&jobs, default_workers(), |&(ri, di)| {
        run_config(&suite[di], rows[ri].1.clone(), iters)
    });
    let mut ms: Vec<Vec<f64>> = vec![vec![0.0; suite.len()]; rows.len()];
    for (&(ri, di), value) in jobs.iter().zip(results) {
        ms[ri][di] = value;
    }
    let xplace_row = 4; // "Xplace (all)"

    let mut header: Vec<&str> = vec!["method"];
    let names: Vec<String> = suite.iter().map(|e| e.name().to_string()).collect();
    header.extend(names.iter().map(String::as_str));
    header.push("Avg");
    let mut table = TextTable::new(&header);

    for (ri, (label, _)) in rows.iter().enumerate() {
        let mut cells = vec![label.to_string()];
        let mut ratio_sum = 0.0;
        for di in 0..suite.len() {
            let ratio = 100.0 * ms[ri][di] / ms[xplace_row][di];
            ratio_sum += ratio;
            cells.push(format!("{}%", fmt(ratio, 0)));
        }
        cells.push(format!("{}%", fmt(ratio_sum / suite.len() as f64, 0)));
        table.row(cells);
    }
    // Absolute per-iteration times for the reference rows.
    for (label, ri) in [("Xplace ms/iter", xplace_row), ("DREAMPlace ms/iter", 5)] {
        let mut cells = vec![label.to_string()];
        let mut sum = 0.0;
        for di in 0..suite.len() {
            sum += ms[ri][di];
            cells.push(fmt(ms[ri][di], 3));
        }
        cells.push(fmt(sum / suite.len() as f64, 3));
        table.row(cells);
    }

    println!(
        "\nTable 3: ablation of the operator-level optimizations \
         (modeled GPU time per GP iteration, % of full Xplace; {iters} iterations per run)\n"
    );
    println!("{}", table.render());
}
