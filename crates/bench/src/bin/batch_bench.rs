//! Batch-of-K throughput vs K serial invocations.
//!
//! ```text
//! batch_bench [--jobs K] [--cells N] [--iters N] [--threads N]
//! ```
//!
//! Builds a manifest of K synthetic designs (distinct synthesis seeds),
//! places them once serially (one [`run_job`] at a time, fresh cache per
//! job — the cost of K separate `xplace place` invocations, minus process
//! startup) and once as a concurrent batch, then prints both wall-clock
//! times and the speedup. Before timing is trusted, every job's final
//! HPWL is asserted bit-identical between the two modes: the batch
//! scheduler must change scheduling only, never results.

use std::time::Instant;
use xplace_bench::{argv_parse, fmt, TextTable};
use xplace_db::DesignCache;
use xplace_sched::{run_batch, run_job, BatchManifest};

fn main() {
    let jobs: usize = argv_parse("--jobs", 4);
    let cells: usize = argv_parse("--cells", 400);
    let iters: usize = argv_parse("--iters", 150);
    let threads: usize = argv_parse("--threads", xplace_bench::default_workers());

    let entries: Vec<String> = (0..jobs)
        .map(|i| {
            format!(
                r#"{{"name": "job{i}", "synth": {{"cells": {cells}, "nets": {}, "seed": {}}}, "max_iters": {iters}}}"#,
                cells + cells / 20,
                i + 1
            )
        })
        .collect();
    let manifest = BatchManifest::parse(&format!(r#"{{"jobs": [{}]}}"#, entries.join(", ")))
        .expect("generated manifest is valid");
    println!("batch_bench: {jobs} jobs x {cells} cells x {iters} iters, {threads} threads");

    let serial_start = Instant::now();
    let serial: Vec<_> = manifest
        .jobs
        .iter()
        .map(|job| {
            // A fresh cache per job mirrors K independent CLI invocations.
            run_job(job, threads, &DesignCache::new()).expect("serial job failed")
        })
        .collect();
    let serial_s = serial_start.elapsed().as_secs_f64();

    let batch_start = Instant::now();
    let batch = run_batch(&manifest, threads);
    let batch_s = batch_start.elapsed().as_secs_f64();

    assert!(batch.report.all_completed(), "batch had failed jobs");
    for (i, record) in batch.report.jobs.iter().enumerate() {
        let got = record.report.as_ref().unwrap().final_hpwl();
        let want = serial[i].report.final_hpwl();
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "job {i}: batch HPWL {got} != serial HPWL {want}"
        );
    }
    println!("metric check: batch HPWL bit-identical to serial for all {jobs} jobs");

    let mut table = TextTable::new(&["mode", "wall s", "designs/s"]);
    table.row(vec![
        "serial".into(),
        fmt(serial_s, 3),
        fmt(jobs as f64 / serial_s, 2),
    ]);
    table.row(vec![
        "batch".into(),
        fmt(batch_s, 3),
        fmt(jobs as f64 / batch_s, 2),
    ]);
    print!("{}", table.render());
    println!("speedup: {:.2}x", serial_s / batch_s);
}
