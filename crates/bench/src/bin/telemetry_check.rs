//! Validates telemetry artifacts — the CI smoke check for `--trace` and
//! `--report` output.
//!
//! ```text
//! telemetry_check trace  <run.jsonl>   # JSON-lines event stream
//! telemetry_check report <run.json>    # single RunReport or an array
//! ```
//!
//! `trace` parses every line back into a [`TelemetryEvent`] and checks the
//! stream's structure: it opens with `run_start`, closes with `run_end`,
//! iteration events are numbered contiguously from zero, and the end
//! marker agrees with the iteration count. `report` round-trips the JSON
//! through [`RunReport`] decode/encode and rejects lossy parses.

use xplace_telemetry::{parse_trace, FromJson, Json, RunReport, TelemetryEvent, ToJson};

fn die(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| die(format!("cannot read {path}: {e}")))
}

fn check_trace(path: &str) {
    let events = parse_trace(&read(path)).unwrap_or_else(|e| die(format!("{path}: {e}")));
    if events.is_empty() {
        die(format!("{path}: empty trace"));
    }
    if !matches!(events.first(), Some(TelemetryEvent::RunStart { .. })) {
        die(format!("{path}: first event is not run_start"));
    }
    if !matches!(events.last(), Some(TelemetryEvent::RunEnd { .. })) {
        die(format!("{path}: last event is not run_end"));
    }
    let mut expected_iter = 0usize;
    let mut stage_transitions = 0usize;
    let mut skip_flips = 0usize;
    for e in &events {
        match e {
            TelemetryEvent::Iteration { record, .. } => {
                if record.iteration != expected_iter {
                    die(format!(
                        "{path}: iteration events not contiguous: got {} expected {expected_iter}",
                        record.iteration
                    ));
                }
                expected_iter += 1;
            }
            TelemetryEvent::StageTransition { .. } => stage_transitions += 1,
            TelemetryEvent::SkipWindow { .. } => skip_flips += 1,
            _ => {}
        }
    }
    if let Some(TelemetryEvent::RunEnd { iterations, .. }) = events.last() {
        if *iterations != expected_iter {
            die(format!(
                "{path}: run_end reports {iterations} iterations but the trace has {expected_iter}"
            ));
        }
    }
    println!(
        "{path}: OK — {} events, {expected_iter} iterations, {stage_transitions} stage \
         transition(s), {skip_flips} skip-window flip(s)",
        events.len()
    );
}

fn check_report(path: &str) {
    let text = read(path);
    let value = Json::parse(&text).unwrap_or_else(|e| die(format!("{path}: bad JSON: {e}")));
    let reports: Vec<RunReport> = match &value {
        Json::Arr(_) => Vec::<RunReport>::from_json(&value)
            .unwrap_or_else(|e| die(format!("{path}: bad report array: {e}"))),
        _ => vec![RunReport::from_json(&value)
            .unwrap_or_else(|e| die(format!("{path}: bad run report: {e}")))],
    };
    for r in &reports {
        // The decode must be lossless: re-encode and decode again.
        let back = RunReport::from_json_str(&r.to_json_string())
            .unwrap_or_else(|e| die(format!("{path}: report does not round-trip: {e}")));
        if back != *r {
            die(format!("{path}: report round-trip is lossy"));
        }
        if !(r.final_hpwl().is_finite() && r.final_hpwl() > 0.0) {
            die(format!("{path}: non-finite or non-positive final HPWL"));
        }
        if r.gp.iterations == 0 {
            die(format!("{path}: zero GP iterations"));
        }
    }
    println!(
        "{path}: OK — {} report(s), final HPWL {:.1}",
        reports.len(),
        reports[0].final_hpwl()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [kind, path] if kind == "trace" => check_trace(path),
        [kind, path] if kind == "report" => check_report(path),
        _ => {
            eprintln!("usage: telemetry_check trace <run.jsonl> | report <run.json>");
            std::process::exit(2)
        }
    }
}
