//! Regenerates Table 1 of the paper: benchmark statistics for the
//! ISPD 2005 and ISPD 2015 suites.
//!
//! For each design the published contest size is shown next to the
//! statistics of the scaled synthetic twin actually used in the runs.
//! Control the scale with `XPLACE_SCALE` (1.0 = full contest sizes).

use xplace_bench::{fmt, scale_from_env, TextTable};
use xplace_db::suites::{ispd2005_like, ispd2015_like};
use xplace_db::synthesis::synthesize;
use xplace_db::DesignStats;

fn main() {
    let scale = scale_from_env(0.01);
    println!("Table 1: benchmark statistics (scale = {scale}, published sizes in parentheses)\n");
    for (suite_name, suite) in [
        ("ISPD 2005", ispd2005_like(scale)),
        ("ISPD 2015", ispd2015_like(scale)),
    ] {
        let mut table = TextTable::new(&[
            "design",
            "#cells",
            "(published)",
            "#nets",
            "(published)",
            "#pins",
            "avg degree",
            "util",
        ]);
        for entry in &suite {
            let design = match synthesize(&entry.spec) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error synthesizing {}: {e}", entry.name());
                    std::process::exit(1);
                }
            };
            let s = DesignStats::of(&design);
            table.row(vec![
                entry.name().to_string(),
                s.num_cells.to_string(),
                format!("({}k)", entry.published_cells / 1000),
                s.num_nets.to_string(),
                format!("({}k)", entry.published_nets / 1000),
                s.num_pins.to_string(),
                fmt(s.avg_net_degree, 2),
                fmt(s.utilization, 3),
            ]);
        }
        println!("{suite_name}:");
        println!("{}", table.render());
    }
}
