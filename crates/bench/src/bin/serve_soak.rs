//! Soak-tests the serving daemon under sustained multi-client load.
//!
//! ```text
//! serve_soak [--smoke] [--addr HOST:PORT] [--clients N] [--batches N]
//!            [--jobs N] [--cells N] [--iters N] [--designs N]
//!            [--threads N] [--queue-depth N] [--out-dir DIR]
//! ```
//!
//! Spawns an in-process daemon (or attaches to `--addr`) and drives it
//! with `--clients` concurrent clients, each submitting `--batches`
//! manifests of `--jobs` jobs back to back. The queue depth is kept
//! deliberately small so load shedding fires and the polite retry loop
//! is exercised. Afterwards the harness asserts the soak invariants:
//!
//! * **zero lost completions** — every submitted job comes back as a
//!   completed record with an intact trace, and the daemon's
//!   `batches_completed` counter advanced by exactly the number of
//!   submissions;
//! * **fairness** — the per-client completion counts never drift apart
//!   by more than the client count (round-robin admission must not
//!   starve anyone);
//! * **cache hit floor** — all clients draw from one pool of `--designs`
//!   distinct synthetic designs, so the daemon's design cache may miss
//!   at most once per distinct design and must hit everything else.
//!
//! `--smoke` shrinks every knob to a seconds-scale variant for CI.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use xplace_bench::{argv_flag, argv_parse, fmt, TextTable};
use xplace_serve::{Client, ServeConfig, Server, Submission};
use xplace_telemetry::Json;

struct SoakConfig {
    clients: usize,
    batches: usize,
    jobs: usize,
    cells: usize,
    iters: usize,
    designs: usize,
    threads: usize,
    queue_depth: usize,
}

fn soak_config(smoke: bool) -> SoakConfig {
    let (clients, batches, jobs, cells, iters, designs) = if smoke {
        (3, 2, 4, 60, 12, 4)
    } else {
        (4, 5, 10, 80, 20, 8)
    };
    SoakConfig {
        clients: argv_parse("--clients", clients),
        batches: argv_parse("--batches", batches),
        jobs: argv_parse("--jobs", jobs),
        cells: argv_parse("--cells", cells),
        iters: argv_parse("--iters", iters),
        designs: argv_parse("--designs", designs),
        threads: argv_parse("--threads", 2),
        // Small enough that shedding actually fires under full load.
        queue_depth: argv_parse("--queue-depth", 2),
    }
}

/// The manifest client `c` submits as its `b`-th batch: `jobs` jobs
/// cycling through the shared pool of `designs` distinct synth specs.
fn manifest_text(cfg: &SoakConfig, c: usize, b: usize) -> String {
    let entries: Vec<String> = (0..cfg.jobs)
        .map(|j| {
            let design = (c * cfg.batches * cfg.jobs + b * cfg.jobs + j) % cfg.designs;
            format!(
                r#"{{"name": "c{c}b{b}j{j}", "synth": {{"cells": {}, "nets": {}, "seed": {}}}, "max_iters": {}}}"#,
                cfg.cells,
                cfg.cells + cfg.cells / 20,
                design + 1,
                cfg.iters
            )
        })
        .collect();
    format!(r#"{{"jobs": [{}]}}"#, entries.join(", "))
}

fn usize_at(stats: &Json, path: &[&str]) -> usize {
    let mut node = stats;
    for key in path {
        node = node
            .field(key)
            .unwrap_or_else(|e| panic!("/stats field {key}: {e}"));
    }
    node.as_usize()
        .unwrap_or_else(|e| panic!("/stats field {}: {e}", path.join(".")))
}

#[derive(Default)]
struct ClientTally {
    completed: usize,
    jobs_seen: usize,
    retries: usize,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = soak_config(smoke);
    assert!(
        cfg.clients >= 3,
        "a soak needs at least 3 concurrent clients"
    );
    let total_batches = cfg.clients * cfg.batches;
    let total_jobs = total_batches * cfg.jobs;
    println!(
        "serve_soak: {} clients x {} batches x {} jobs = {} jobs over {} designs{}",
        cfg.clients,
        cfg.batches,
        cfg.jobs,
        total_jobs,
        cfg.designs,
        if smoke { " (smoke)" } else { "" }
    );

    // Attach to an external daemon, or spawn one in-process.
    let (addr, server_handle) = match argv_flag("--addr") {
        Some(addr) => (addr, None),
        None => {
            let server = Server::bind(ServeConfig {
                threads: cfg.threads,
                queue_depth: cfg.queue_depth,
                ..Default::default()
            })
            .expect("bind ephemeral port");
            let (addr, handle) = server.spawn();
            (addr.to_string(), Some(handle))
        }
    };
    let probe = Client::new(addr.clone());
    let before = probe.stats().expect("daemon answers /stats");

    // Per-client completion counts, updated under one lock so the
    // fairness spread is measured at every completion instant.
    let counts = Mutex::new(vec![0usize; cfg.clients]);
    let max_spread = Mutex::new(0usize);
    let failed = AtomicBool::new(false);
    let start = Instant::now();

    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                let client = Client::new(addr.clone()).with_identity(format!("soak{c}"));
                let (cfg, counts, max_spread, failed) = (&cfg, &counts, &max_spread, &failed);
                scope.spawn(move || {
                    let mut tally = ClientTally::default();
                    for b in 0..cfg.batches {
                        let manifest = manifest_text(cfg, c, b);
                        let batch = loop {
                            match client.submit(&manifest) {
                                Ok(Submission::Completed(batch)) => break batch,
                                Ok(Submission::Rejected {
                                    status: status @ (429 | 503),
                                    retry_after,
                                    ..
                                }) => {
                                    tally.retries += 1;
                                    let wait = retry_after.unwrap_or(1).clamp(1, 5);
                                    let _ = status;
                                    std::thread::sleep(Duration::from_millis(wait * 50));
                                }
                                Ok(Submission::Rejected {
                                    status, message, ..
                                }) => {
                                    failed.store(true, Ordering::Relaxed);
                                    panic!("client {c} batch {b}: hard {status}: {message}");
                                }
                                Err(e) => {
                                    failed.store(true, Ordering::Relaxed);
                                    panic!("client {c} batch {b}: transport error: {e}");
                                }
                            }
                        };
                        assert!(
                            batch.report.all_completed(),
                            "client {c} batch {b} had failed jobs"
                        );
                        assert_eq!(batch.report.total(), cfg.jobs);
                        assert!(
                            batch.traces.iter().all(Option::is_some),
                            "client {c} batch {b} lost a trace"
                        );
                        tally.completed += 1;
                        tally.jobs_seen += batch.report.total();
                        let mut counts = counts.lock().unwrap();
                        counts[c] += 1;
                        let hi = *counts.iter().max().unwrap();
                        let lo = *counts.iter().min().unwrap();
                        let mut spread = max_spread.lock().unwrap();
                        *spread = (*spread).max(hi - lo);
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    assert!(
        !failed.load(Ordering::Relaxed),
        "a client hit a hard failure"
    );

    let after = probe.stats().expect("daemon still answers /stats");
    let spread = *max_spread.lock().unwrap();
    let retries: usize = tallies.iter().map(|t| t.retries).sum();

    // Zero lost completions: every submission returned, every job record
    // arrived, and the daemon agrees it ran exactly this much work.
    let completed: usize = tallies.iter().map(|t| t.completed).sum();
    let jobs_seen: usize = tallies.iter().map(|t| t.jobs_seen).sum();
    assert_eq!(completed, total_batches, "lost batch completions");
    assert_eq!(jobs_seen, total_jobs, "lost job records");
    let batches_delta =
        usize_at(&after, &["batches_completed"]) - usize_at(&before, &["batches_completed"]);
    assert_eq!(
        batches_delta, total_batches,
        "daemon-side completion counter disagrees"
    );
    let failed_delta = usize_at(&after, &["jobs_failed"]) - usize_at(&before, &["jobs_failed"]);
    assert_eq!(failed_delta, 0, "daemon recorded failed jobs");

    // Fairness: round-robin admission keeps per-client progress close.
    let spread_cap = cfg.clients.max(3);
    assert!(
        spread <= spread_cap,
        "fairness violated: per-client completion spread hit {spread} (cap {spread_cap})"
    );

    // Cache hit floor: one pool of `designs` distinct specs shared by
    // every client — at most one miss per design, hits for the rest.
    let misses_delta = usize_at(&after, &["design_cache", "misses"])
        - usize_at(&before, &["design_cache", "misses"]);
    let hits_delta =
        usize_at(&after, &["design_cache", "hits"]) - usize_at(&before, &["design_cache", "hits"]);
    assert!(
        misses_delta <= cfg.designs,
        "design cache missed {misses_delta} times for {} distinct designs",
        cfg.designs
    );
    assert_eq!(
        hits_delta,
        total_jobs - misses_delta,
        "design cache hit accounting is not exact"
    );
    let plan_hits_delta =
        usize_at(&after, &["plan_cache", "hits"]) - usize_at(&before, &["plan_cache", "hits"]);
    assert!(plan_hits_delta > 0, "DCT plans were never reused");

    let mut table = TextTable::new(&["client", "batches", "jobs", "retries"]);
    for (c, tally) in tallies.iter().enumerate() {
        table.row(vec![
            format!("soak{c}"),
            tally.completed.to_string(),
            tally.jobs_seen.to_string(),
            tally.retries.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "wall {} s, {} jobs/s, {retries} shed-and-retried, fairness spread {spread} (cap {spread_cap})",
        fmt(wall, 2),
        fmt(total_jobs as f64 / wall, 1)
    );
    println!(
        "design cache: {hits_delta} hits / {misses_delta} misses (floor: >= {} hits)",
        total_jobs - cfg.designs
    );

    if let Some(dir) = argv_flag("--out-dir") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create --out-dir");
        let summary = Json::obj([
            ("clients", Json::num(cfg.clients as f64)),
            ("batches", Json::num(total_batches as f64)),
            ("jobs", Json::num(total_jobs as f64)),
            ("retries", Json::num(retries as f64)),
            ("fairness_spread", Json::num(spread as f64)),
            ("cache_hits", Json::num(hits_delta as f64)),
            ("cache_misses", Json::num(misses_delta as f64)),
            ("wall_seconds", Json::num(wall)),
        ]);
        let path = dir.join("serve_soak.json");
        std::fs::write(&path, format!("{}\n", summary.render())).expect("write soak summary");
        println!("summary written to {}", path.display());
    }

    if let Some(handle) = server_handle {
        probe.shutdown().expect("graceful shutdown");
        handle
            .join()
            .expect("server thread")
            .expect("server exits cleanly");
    }
    println!("serve_soak: all invariants held");
}
