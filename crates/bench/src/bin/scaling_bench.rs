//! Standalone scaling bench: per-cell modeled GP cost at size, flat vs
//! multilevel, written as a gateable JSON report.
//!
//! ```text
//! scaling_bench [--smoke] [--out results/scaling_bench.json]
//! scaling_bench --coarsen-smoke CELLS [--topology systolic]
//! ```
//!
//! The output is a bare scaling report (`{"points":[...]}`), the same
//! shape as the `scaling` section of a `RunReport` baseline —
//! `check_regression` accepts it directly against `BENCH_baseline.json`.
//! `--smoke` runs the committed point set (a 10k-cell flat anchor plus a
//! 100k-cell systolic multilevel run; the default in CI); without it a
//! 10k-cell multilevel point is added, which no longer matches the
//! committed point set and is for manual exploration.
//!
//! `--coarsen-smoke CELLS` skips placement entirely: it synthesizes a
//! design at that size and builds the full coarsening hierarchy, exiting
//! non-zero unless the hierarchy reduces below half the input — the CI
//! leg that proves 1M-cell coarsening completes.

use xplace_bench::scaling::{coarsen_smoke, full_cases, measure_scaling, smoke_cases};
use xplace_bench::{argv_flag, argv_parse, fmt, TextTable};
use xplace_db::synthesis::Topology;
use xplace_telemetry::ToJson;

fn main() {
    if let Some(cells) = argv_flag("--coarsen-smoke") {
        let cells: usize = cells.parse().unwrap_or_else(|e| {
            eprintln!("error: invalid --coarsen-smoke cell count: {e}");
            std::process::exit(2)
        });
        let topology = argv_parse("--topology", "systolic".to_string());
        let topology = Topology::parse(&topology).unwrap_or_else(|| {
            eprintln!("error: unknown topology '{topology}' (random|systolic|butterfly)");
            std::process::exit(2)
        });
        eprintln!(
            "coarsening smoke: {cells} cells, {} topology...",
            topology.name()
        );
        let smoke = coarsen_smoke(cells, topology).unwrap_or_else(|e| {
            eprintln!("error: coarsening smoke failed: {e}");
            std::process::exit(1)
        });
        println!(
            "coarsened {} cells through {:?} in {:.2}s (synth {:.2}s, coarsen {:.2}s)",
            smoke.cells,
            smoke.level_cells,
            smoke.wall_seconds,
            smoke.synth_seconds,
            smoke.coarsen_seconds
        );
        let coarsest = smoke.level_cells.last().copied().unwrap_or(smoke.cells);
        if coarsest >= smoke.cells / 2 {
            eprintln!(
                "error: hierarchy barely coarsened ({} -> {coarsest})",
                smoke.cells
            );
            std::process::exit(1)
        }
        return;
    }

    let smoke = std::env::args().any(|a| a == "--smoke");
    let out = argv_flag("--out").unwrap_or_else(|| "results/scaling_bench.json".to_string());
    let cases = if smoke { smoke_cases() } else { full_cases() };

    eprintln!(
        "scaling bench: {} case(s){}",
        cases.len(),
        if smoke { " [smoke]" } else { "" }
    );
    let metrics = measure_scaling(&cases).unwrap_or_else(|e| {
        eprintln!("error: scaling bench failed: {e}");
        std::process::exit(1)
    });

    let mut table = TextTable::new(&[
        "case",
        "cells",
        "iters",
        "modeled ms",
        "ns/cell/iter",
        "overflow",
        "wall s",
    ]);
    for p in &metrics.points {
        table.row(vec![
            format!("{}{}", p.topology, if p.multilevel { "+ml" } else { "" }),
            format!("{}", p.cells),
            format!("{}", p.iterations),
            fmt(p.modeled_ns as f64 / 1e6, 2),
            fmt(p.ns_per_cell_iter(), 3),
            fmt(p.final_overflow, 3),
            fmt(p.wall_seconds, 2),
        ]);
    }
    print!("{}", table.render());

    let path = std::path::Path::new(&out);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(path, metrics.to_json().render()).expect("write report");
    eprintln!("wrote {out}");
}
