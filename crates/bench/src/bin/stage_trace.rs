//! Reproduces the in-text observations of §3.1.4 and §3.2: the gradient
//! ratio `r = lambda|gradD| / |gradWL|` is ultra-small in the early
//! placement stage (justifying operator skipping), and the precondition
//! weighted ratio `omega` traverses the three placement stages
//! (wirelength-dominated < 0.05, spreading, final > 0.95).
//!
//! Prints a per-iteration CSV to stdout plus a stage summary.
//!
//! Environment: `XPLACE_CELLS` (default 2000), `XPLACE_MAX_ITERS`
//! (default 1200).

use xplace_bench::max_iters_from_env;
use xplace_core::{GlobalPlacer, XplaceConfig};
use xplace_db::synthesis::{synthesize, SynthesisSpec};

fn main() {
    let cells: usize = std::env::var("XPLACE_CELLS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    let max_iters = max_iters_from_env(1200);

    let spec = SynthesisSpec::new("stage_trace", cells, cells + cells / 20).with_seed(42);
    let mut design = synthesize(&spec).expect("synthesis succeeds");
    let mut cfg = XplaceConfig::xplace();
    cfg.schedule.max_iterations = max_iters;
    let report = GlobalPlacer::new(cfg)
        .place(&mut design)
        .expect("placement succeeds");

    println!("{}", report.recorder.to_csv());

    let records = report.recorder.records();
    // The skip-eligible window: how long r stays below the 0.01 threshold
    // of SS3.1.4 (the paper caps the technique at iteration 100).
    let r_window = records.iter().take_while(|r| r.r_ratio < 0.01).count();
    let r_at_10 = records.get(10).map(|r| r.r_ratio).unwrap_or(0.0);
    let skipped_early = records
        .iter()
        .take(100.min(records.len()))
        .filter(|r| r.density_skipped)
        .count();
    let omega_start = records.first().map(|r| r.omega).unwrap_or(0.0);
    let omega_end = records.last().map(|r| r.omega).unwrap_or(0.0);
    let crossed_mid = records.iter().any(|r| r.omega > 0.5 && r.omega < 0.95);

    eprintln!("--- stage summary ---");
    eprintln!("iterations:             {}", report.iterations);
    eprintln!("converged:              {}", report.converged);
    eprintln!("r at iteration 10:      {r_at_10:.3e}  (paper: ultra-small early)");
    eprintln!("iterations with r<0.01: {r_window} (skip-eligible window; paper caps at 100)");
    eprintln!("density ops skipped:    {skipped_early} of the first 100 iterations");
    eprintln!("omega start -> end:     {omega_start:.4} -> {omega_end:.4}");
    eprintln!("entered mid stage:      {crossed_mid} (0.5 < omega < 0.95)");
    eprintln!(
        "final overflow / HPWL:  {:.4} / {:.1}",
        report.final_overflow, report.final_hpwl
    );
}
