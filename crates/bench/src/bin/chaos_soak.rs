//! Chaos-soaks the fault-hardened placement stack: random job kills and
//! random client drops from a seeded plan, with conservation and
//! determinism invariants checked after the dust settles.
//!
//! ```text
//! chaos_soak [--smoke] [--seed N] [--jobs N] [--kills N] [--cells N]
//!            [--iters N] [--clients N] [--batches N] [--drops N]
//! ```
//!
//! Three legs, all driven by one seeded pseudo-random schedule so a
//! failure reproduces from the printed seed:
//!
//! 1. **Kill random jobs** — a batch of `--jobs` jobs where `--kills`
//!    randomly chosen jobs crash (injected GP panic, once) under a
//!    retry budget and a checkpoint cadence. Invariants: every job
//!    completes exactly once (zero lost, zero duplicated), killed jobs
//!    record their retry and at least one snapshot, and every final
//!    metric is **bit-identical** to a fault-free run of the same
//!    manifest — at 1 and 4 threads.
//! 2. **Checkpoint-resume bit-equality** — each recovered job's trace is
//!    the resumed suffix; its tail must be a byte-exact suffix of the
//!    fault-free trace.
//! 3. **Drop random clients** — `--clients` concurrent clients submit
//!    `--batches` manifests each to an in-process daemon; `--drops`
//!    randomly chosen submissions sever their connection mid-stream.
//!    Invariants: the daemon finishes every admitted batch (completed +
//!    failed job counts conserve the total exactly — nothing lost,
//!    nothing run twice), and surviving clients' artifacts are
//!    byte-identical to an undisturbed `run_batch`.
//!
//! `--smoke` shrinks every knob to a seconds-scale variant for CI.

use std::time::{Duration, Instant};
use xplace_bench::argv_parse;
use xplace_sched::{run_batch, BatchManifest};
use xplace_serve::{Client, ServeConfig, Server};
use xplace_telemetry::Json;

/// A tiny deterministic PRNG (splitmix64) so the chaos schedule is a
/// pure function of `--seed` — no external dependency, no wall clock.
struct Chaos(u64);

impl Chaos {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform pick in `0..n` (`n > 0`).
    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// `k` distinct indices out of `0..n`, in ascending order.
    fn sample(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut chosen: Vec<usize> = Vec::new();
        while chosen.len() < k.min(n) {
            let candidate = self.pick(n);
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        chosen.sort_unstable();
        chosen
    }
}

struct ChaosConfig {
    seed: u64,
    jobs: usize,
    kills: usize,
    cells: usize,
    iters: usize,
    clients: usize,
    batches: usize,
    drops: usize,
}

fn chaos_config(smoke: bool) -> ChaosConfig {
    let (jobs, kills, cells, iters, clients, batches, drops) = if smoke {
        (6, 2, 60, 50, 3, 2, 2)
    } else {
        (12, 4, 80, 80, 4, 3, 4)
    };
    ChaosConfig {
        seed: argv_parse("--seed", 0xc4a05),
        jobs: argv_parse("--jobs", jobs),
        kills: argv_parse("--kills", kills),
        cells: argv_parse("--cells", cells),
        iters: argv_parse("--iters", iters),
        clients: argv_parse("--clients", clients),
        batches: argv_parse("--batches", batches),
        drops: argv_parse("--drops", drops),
    }
}

fn job_entries(cfg: &ChaosConfig) -> Vec<String> {
    (0..cfg.jobs)
        .map(|j| {
            format!(
                r#"{{"name": "job{j}", "synth": {{"cells": {}, "nets": {}, "seed": {}}}, "max_iters": {}}}"#,
                cfg.cells,
                cfg.cells + cfg.cells / 20,
                j + 1,
                cfg.iters
            )
        })
        .collect()
}

fn usize_at(stats: &Json, path: &[&str]) -> usize {
    let mut node = stats;
    for key in path {
        node = node
            .field(key)
            .unwrap_or_else(|e| panic!("/stats field {key}: {e}"));
    }
    node.as_usize()
        .unwrap_or_else(|e| panic!("/stats field {}: {e}", path.join(".")))
}

/// Leg 1 + 2: kill `cfg.kills` random jobs once each under a retry
/// budget; every metric must recover bit-identically and every
/// recovered trace must resume as a byte-exact suffix.
fn kill_random_jobs(cfg: &ChaosConfig, chaos: &mut Chaos) {
    let entries = job_entries(cfg);
    let killed = chaos.sample(cfg.jobs, cfg.kills);
    let checkpoint_every = (cfg.iters / 5).max(1);
    // Crash strictly after the first snapshot and before the end, so
    // resume (not restart-from-scratch) is what recovery exercises.
    let faults: Vec<String> = killed
        .iter()
        .map(|&j| {
            let lo = checkpoint_every + 1;
            let iteration = lo + chaos.pick(cfg.iters.saturating_sub(lo + 5).max(1));
            format!(
                r#"{{"target": "job{j}", "kind": "gp_panic", "iteration": {iteration}, "times": 1}}"#
            )
        })
        .collect();
    let chaotic = BatchManifest::parse(&format!(
        r#"{{"jobs": [{}], "faults": [{}], "retries": 1, "checkpoint_every": {checkpoint_every}}}"#,
        entries.join(", "),
        faults.join(", ")
    ))
    .expect("chaotic manifest parses");
    let clean = BatchManifest::parse(&format!(r#"{{"jobs": [{}]}}"#, entries.join(", "))).unwrap();

    for threads in [1usize, 4] {
        let reference = run_batch(&clean, threads);
        let recovered = run_batch(&chaotic, threads);

        // Zero lost, zero duplicated: exactly the manifest's jobs, each
        // reported once, all completed.
        assert_eq!(recovered.report.total(), cfg.jobs);
        assert!(
            recovered.report.all_completed(),
            "a killed job failed to recover at {threads} thread(s): {:?}",
            recovered
                .report
                .jobs
                .iter()
                .filter(|j| j.error.is_some())
                .map(|j| (&j.name, &j.error))
                .collect::<Vec<_>>()
        );
        let mut names: Vec<&str> = recovered
            .report
            .jobs
            .iter()
            .map(|j| j.name.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cfg.jobs, "duplicated job records");

        for (i, record) in recovered.report.jobs.iter().enumerate() {
            let got = record.report.as_ref().expect("completed job has a report");
            let want = reference.report.jobs[i].report.as_ref().unwrap();
            assert_eq!(
                got.final_hpwl().to_bits(),
                want.final_hpwl().to_bits(),
                "job {i} HPWL diverged after recovery at {threads} thread(s)"
            );
            assert_eq!(got.gp.modeled_ns, want.gp.modeled_ns);
            assert_eq!(got.gp.iterations, want.gp.iterations);
            if killed.contains(&i) {
                assert_eq!(record.retries, 1, "job {i} must record its retry");
                assert!(record.checkpoints > 0, "job {i} must have snapshotted");
                // Checkpoint-resume bit-equality: the recovered trace is
                // the resumed suffix of the fault-free trace.
                let full: Vec<&str> = reference.traces[i].as_deref().unwrap().lines().collect();
                let resumed: Vec<&str> = recovered.traces[i]
                    .as_deref()
                    .unwrap()
                    .lines()
                    .skip(1)
                    .collect();
                assert!(!resumed.is_empty() && resumed.len() < full.len());
                assert_eq!(
                    &full[full.len() - resumed.len()..],
                    &resumed[..],
                    "job {i} resume suffix diverged at {threads} thread(s)"
                );
            } else {
                assert_eq!(record.retries, 0);
                assert_eq!(
                    recovered.traces[i], reference.traces[i],
                    "undisturbed job {i} trace diverged at {threads} thread(s)"
                );
            }
        }
    }
    println!(
        "kill-random-jobs: {}/{} jobs killed and recovered bit-identically at 1 and 4 threads",
        killed.len(),
        cfg.jobs
    );
}

/// Leg 3: drop random client connections mid-stream; the daemon must
/// conserve every admitted job exactly once and keep surviving clients
/// byte-identical to undisturbed runs.
fn drop_random_clients(cfg: &ChaosConfig, chaos: &mut Chaos) {
    // Width 1 serializes each batch's jobs, so exactly one job is in
    // flight when a connection drops and the next has not started.
    let threads = 1usize;
    let server = Server::bind(ServeConfig {
        threads,
        // Deep enough that chaos never sheds: conservation is exact.
        queue_depth: cfg.clients * cfg.batches,
        max_inflight_per_client: cfg.batches.max(1),
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let (addr, server_handle) = server.spawn();
    let probe = Client::new(addr.to_string());
    let before = probe.stats().expect("daemon answers /stats");

    // Each submission is two jobs (one to be in flight at the drop, one
    // to be skipped); the seeded plan picks which submissions drop and
    // after how many streamed frames. Drops are injected *server-side*
    // via `drop_connection` faults in the victim manifests: the fault
    // counter arms on the first job's start ack, so the sever always
    // lands while job 0 is streaming — no client-side read/close races.
    let total = cfg.clients * cfg.batches;
    let dropped = chaos.sample(total, cfg.drops.min(total.saturating_sub(1)));
    let drop_after: Vec<usize> = dropped.iter().map(|_| 1 + chaos.pick(8)).collect();
    let manifest_for = |c: usize, b: usize, drop_frames: Option<usize>| {
        let faults = match drop_frames {
            Some(frames) => format!(
                r#", "faults": [{{"target": "chaos{c}", "kind": "drop_connection", "after_frames": {frames}}}]"#
            ),
            None => String::new(),
        };
        format!(
            r#"{{"jobs": [
                {{"name": "c{c}b{b}-first", "synth": {{"cells": {}, "nets": {}, "seed": {}}}, "max_iters": {}}},
                {{"name": "c{c}b{b}-second", "synth": {{"cells": {}, "nets": {}, "seed": {}}}, "max_iters": {}}}
            ]{faults}}}"#,
            cfg.cells,
            cfg.cells + 3,
            c + 1,
            // Many more trace frames than any scheduled `after_frames`,
            // so the sever always lands while job 0 is mid-stream.
            cfg.iters * 10,
            cfg.cells,
            cfg.cells + 3,
            b + 1,
            cfg.iters
        )
    };

    let survivors: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                let addr = addr.to_string();
                let (dropped, drop_after) = (&dropped, &drop_after);
                scope.spawn(move || {
                    let client = Client::new(addr.clone()).with_identity(format!("chaos{c}"));
                    let mut survived = Vec::new();
                    for b in 0..cfg.batches {
                        let submission = c * cfg.batches + b;
                        match dropped.iter().position(|&d| d == submission) {
                            Some(slot) => {
                                // The manifest schedules its own sever:
                                // the server drops the stream after the
                                // planned frame count, arming on job 0's
                                // start ack. The client just reads to
                                // EOF and checks the sever landed
                                // mid-stream (start ack delivered, no
                                // terminal chunk).
                                let manifest = manifest_for(c, b, Some(drop_after[slot]));
                                let mut socket =
                                    std::net::TcpStream::connect(&addr).expect("connect");
                                let raw = format!(
                                    "POST /batch HTTP/1.1\r\nHost: x\r\nX-Client: chaos{c}\r\nContent-Length: {}\r\n\r\n{manifest}",
                                    manifest.len()
                                );
                                std::io::Write::write_all(&mut socket, raw.as_bytes())
                                    .expect("submit");
                                let mut wire = Vec::new();
                                std::io::Read::read_to_end(&mut socket, &mut wire)
                                    .expect("severed stream still reads to EOF");
                                let text = String::from_utf8_lossy(&wire);
                                assert!(
                                    text.contains(r#""frame":"start""#),
                                    "dropped batch c{c}b{b} never saw job 0's start ack"
                                );
                                assert!(
                                    !text.contains(r#""frame":"batch""#)
                                        && !text.ends_with("0\r\n\r\n"),
                                    "dropped batch c{c}b{b} was not severed mid-stream"
                                );
                            }
                            None => {
                                let manifest = manifest_for(c, b, None);
                                let batch = client
                                    .submit(&manifest)
                                    .expect("surviving submission flows")
                                    .expect_completed();
                                assert!(
                                    batch.report.all_completed(),
                                    "surviving batch c{c}b{b} had failures"
                                );
                                let reference =
                                    run_batch(&BatchManifest::parse(&manifest).unwrap(), threads);
                                assert_eq!(
                                    batch.traces, reference.traces,
                                    "surviving batch c{c}b{b} diverged from an undisturbed run"
                                );
                                survived.push((c, b));
                            }
                        }
                    }
                    survived
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });

    // The daemon drains abandoned batches in the background; wait for
    // the completion counter to conserve every submission.
    let deadline = Instant::now() + Duration::from_secs(120);
    let after = loop {
        let stats = probe.stats().expect("daemon still answers /stats");
        let done =
            usize_at(&stats, &["batches_completed"]) - usize_at(&before, &["batches_completed"]);
        if done == total {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "daemon finished only {done}/{total} batches; stats: {}",
            stats.render()
        );
        std::thread::sleep(Duration::from_millis(20));
    };

    // Conservation: every job of every admitted batch is accounted for
    // exactly once — completed or (for a dropped client's unstarted
    // work) failed-as-skipped. Nothing lost, nothing run twice.
    let completed = usize_at(&after, &["jobs_completed"]) - usize_at(&before, &["jobs_completed"]);
    let failed = usize_at(&after, &["jobs_failed"]) - usize_at(&before, &["jobs_failed"]);
    assert_eq!(
        completed + failed,
        total * 2,
        "job conservation violated: {completed} completed + {failed} failed != {} jobs",
        total * 2
    );
    assert_eq!(
        completed,
        survivors.len() * 2 + dropped.len(),
        "each dropped batch must drain exactly its in-flight job"
    );
    assert_eq!(failed, dropped.len(), "each drop skips exactly one job");

    probe.shutdown().expect("graceful shutdown");
    server_handle
        .join()
        .expect("server thread")
        .expect("server exits cleanly");
    println!(
        "drop-random-clients: {}/{total} submissions dropped mid-stream; {completed} completed + {failed} skipped = {} jobs conserved",
        dropped.len(),
        total * 2
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = chaos_config(smoke);
    println!(
        "chaos_soak: seed {:#x}, {} jobs ({} killed), {} clients x {} batches ({} dropped){}",
        cfg.seed,
        cfg.jobs,
        cfg.kills,
        cfg.clients,
        cfg.batches,
        cfg.drops,
        if smoke { " (smoke)" } else { "" }
    );
    // Injected GP panics are the point of the exercise; keep their
    // backtraces out of the log while real failures still print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.contains("injected failure at GP iteration"))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));
    let start = Instant::now();
    let mut chaos = Chaos(cfg.seed);
    kill_random_jobs(&cfg, &mut chaos);
    drop_random_clients(&cfg, &mut chaos);
    println!(
        "chaos_soak: all invariants held in {:.2} s",
        start.elapsed().as_secs_f64()
    );
}
