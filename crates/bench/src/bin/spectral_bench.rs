//! Standalone spectral microbench: per-iteration transform cost at
//! production grid sizes, written as a gateable JSON report.
//!
//! ```text
//! spectral_bench [--smoke] [--reps N] [--out results/spectral_bench.json]
//! ```
//!
//! The output is a bare spectral report (`{"grids":[...]}`), the same
//! shape as the `spectral` section of a [`RunReport`] baseline —
//! `check_regression` accepts it directly against `BENCH_baseline.json`.
//! `--smoke` drops to one repetition per timing for CI; the grid set is
//! unchanged so the gate's grid-set check still applies.

use xplace_bench::spectral::{measure_spectral, SPECTRAL_GRIDS};
use xplace_bench::{argv_parse, fmt, TextTable};
use xplace_telemetry::ToJson;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let default_reps = if smoke { 1 } else { 5 };
    let reps: usize = argv_parse("--reps", default_reps);
    let out = xplace_bench::argv_flag("--out")
        .unwrap_or_else(|| "results/spectral_bench.json".to_string());

    eprintln!(
        "spectral microbench: grids {SPECTRAL_GRIDS:?}, {reps} rep(s){}",
        if smoke { " [smoke]" } else { "" }
    );
    let metrics = measure_spectral(&SPECTRAL_GRIDS, reps);

    let mut table = TextTable::new(&[
        "grid",
        "modeled us",
        "solve us",
        "real sweep us",
        "complex sweep us",
        "speedup",
    ]);
    for g in &metrics.grids {
        table.row(vec![
            format!("{n}x{n}", n = g.n),
            fmt(g.modeled_ns as f64 / 1e3, 1),
            fmt(g.solve_wall_ns as f64 / 1e3, 1),
            fmt(g.real_wall_ns as f64 / 1e3, 1),
            fmt(g.complex_wall_ns as f64 / 1e3, 1),
            format!(
                "{:.2}x",
                g.complex_wall_ns as f64 / g.real_wall_ns.max(1) as f64
            ),
        ]);
    }
    print!("{}", table.render());

    let path = std::path::Path::new(&out);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(path, metrics.to_json().render()).expect("write report");
    eprintln!("wrote {out}");
}
