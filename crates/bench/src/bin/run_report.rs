//! Produces the canonical [`RunReport`] the regression gate compares
//! against `BENCH_baseline.json`.
//!
//! The flow is the golden flow of `tests/golden_flow.rs` — 500 cells,
//! 525 nets, seed 20220714, 400 GP iterations — extended through
//! legalization, detailed placement and routability estimation, so every
//! gated quantity (HPWL, modeled GP time, launch count, iteration count)
//! is deterministic across machines.
//!
//! ```text
//! run_report [--out results/run_report.json] [--max-iters 400]
//!            [--cells 500] [--nets 525] [--seed 20220714] [--threads N]
//!            [--no-spectral] [--spectral-reps 3] [--no-scaling]
//!            [--no-explore]
//! ```
//!
//! The report also embeds the spectral microbench section (unless
//! `--no-spectral`), so the committed baseline carries per-grid modeled
//! transform times for the spectral regression gate; the scaling
//! bench's smoke point set (unless `--no-scaling`), so the baseline
//! carries per-cell modeled GP costs for the scaling regression gate;
//! and the exploration bench's committed case (unless `--no-explore`),
//! so the baseline carries the population winner's HPWL, lineage and
//! total modeled cost for the explore regression gate.
//!
//! Regenerating the committed baseline after an intentional change:
//! `cargo run --release -p xplace-bench --bin run_report -- --out BENCH_baseline.json`

use std::path::PathBuf;
use xplace_bench::{argv_flag, argv_parse, report_from_flow, run_flow};
use xplace_core::XplaceConfig;
use xplace_db::suites::SuiteEntry;
use xplace_db::synthesis::SynthesisSpec;
use xplace_telemetry::ToJson;

fn main() {
    let out =
        PathBuf::from(argv_flag("--out").unwrap_or_else(|| "results/run_report.json".to_string()));
    let cells: usize = argv_parse("--cells", 500);
    let nets: usize = argv_parse("--nets", 525);
    let seed: u64 = argv_parse("--seed", 20_220_714);
    let max_iters: usize = argv_parse("--max-iters", 400);
    let threads: usize = argv_parse("--threads", 1);

    let entry = SuiteEntry {
        published_cells: cells,
        published_nets: nets,
        fence_removed: false,
        spec: SynthesisSpec::new("golden", cells, nets).with_seed(seed),
    };
    let mut config = XplaceConfig::xplace().with_threads(threads.max(1));
    config.schedule.max_iterations = max_iters;

    eprintln!(
        "running the canonical flow ({cells} cells, {nets} nets, seed {seed}, \
         {max_iters} iters)..."
    );
    let flow = run_flow(&entry, config.clone(), None).unwrap_or_else(|e| {
        eprintln!("error: flow failed: {e}");
        std::process::exit(1)
    });
    let mut report = report_from_flow(&config, &flow);
    if !std::env::args().any(|a| a == "--no-spectral") {
        let reps: usize = argv_parse("--spectral-reps", 3);
        eprintln!(
            "measuring the spectral microbench (grids {:?}, {reps} reps)...",
            xplace_bench::spectral::SPECTRAL_GRIDS
        );
        report.spectral = Some(xplace_bench::spectral::measure_spectral(
            &xplace_bench::spectral::SPECTRAL_GRIDS,
            reps,
        ));
    }
    if !std::env::args().any(|a| a == "--no-scaling") {
        let cases = xplace_bench::scaling::smoke_cases();
        eprintln!("measuring the scaling bench ({} case(s))...", cases.len());
        report.scaling = Some(
            xplace_bench::scaling::measure_scaling(&cases).unwrap_or_else(|e| {
                eprintln!("error: scaling bench failed: {e}");
                std::process::exit(1)
            }),
        );
    }
    if !std::env::args().any(|a| a == "--no-explore") {
        let case = xplace_bench::explore::committed_case();
        eprintln!(
            "measuring the exploration bench ({}, {} members)...",
            case.spec.name,
            xplace_bench::explore::EXPLORE_MEMBERS
        );
        let comparison =
            xplace_bench::explore::measure_explore(&case, xplace_bench::default_workers())
                .unwrap_or_else(|e| {
                    eprintln!("error: exploration bench failed: {e}");
                    std::process::exit(1)
                });
        report.explore = Some(comparison.metrics);
    }
    eprintln!(
        "GP {} iters, HPWL {:.1}, modeled {:.3}s, {} launches; final HPWL {:.1}",
        report.gp.iterations,
        report.gp.final_hpwl,
        report.gp.modeled_seconds(),
        report.gp.launches,
        report.final_hpwl()
    );
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out, report.to_json_string()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", out.display());
        std::process::exit(1)
    });
    println!("report written to {}", out.display());
}
