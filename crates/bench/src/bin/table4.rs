//! Regenerates Table 4 of the paper: HPWL, top5 overflow and runtime on
//! the ISPD 2015 suite (fence regions removed, as the paper does) for the
//! DREAMPlace-like baseline and Xplace.
//!
//! Routability comes from the RUDY congestion estimator (the documented
//! NCTUgr substitution); both placers are scored by the same estimator,
//! so the paper's comparison — Xplace faster with comparable top5
//! overflow and slightly better HPWL — is preserved.
//!
//! Environment: `XPLACE_SCALE` (default 0.004), `XPLACE_MAX_ITERS`
//! (default 1500).

use xplace_bench::{
    default_workers, fmt, max_iters_from_env, parallel_map, report_from_flow, run_flow,
    scale_from_env, write_reports, TextTable,
};
use xplace_core::XplaceConfig;
use xplace_db::suites::ispd2015_like;
use xplace_route::{estimate_congestion, RouteConfig};

fn main() {
    let scale = scale_from_env(0.004);
    let max_iters = max_iters_from_env(1500);
    let suite = ispd2015_like(scale);

    let mut table = TextTable::new(&[
        "design",
        "HPWL(base)",
        "OVFL-5",
        "GP/s",
        "DP/s",
        "HPWL(xp)",
        "OVFL-5",
        "GP/s",
        "DP/s",
    ]);
    let mut sums = [0.0f64; 8];

    eprintln!(
        "running {} designs on {} workers...",
        suite.len(),
        default_workers()
    );
    let per_design = parallel_map(&suite, default_workers(), |entry| {
        let mut cfg_base = XplaceConfig::dreamplace_like();
        cfg_base.schedule.max_iterations = max_iters;
        let mut cfg_xp = XplaceConfig::xplace();
        cfg_xp.schedule.max_iterations = max_iters;

        let base = run_flow(entry, cfg_base.clone(), None).expect("baseline flow");
        let xp = run_flow(entry, cfg_xp.clone(), None).expect("xplace flow");
        let route_cfg = RouteConfig::default();
        let base_ovfl = estimate_congestion(&base.design, &route_cfg).top_overflow(0.05);
        let xp_ovfl = estimate_congestion(&xp.design, &route_cfg).top_overflow(0.05);
        let reports = vec![
            report_from_flow(&cfg_base, &base),
            report_from_flow(&cfg_xp, &xp),
        ];
        (base, base_ovfl, xp, xp_ovfl, reports)
    });

    let mut reports = Vec::new();
    let per_design: Vec<_> = per_design
        .into_iter()
        .map(|(base, base_ovfl, xp, xp_ovfl, rs)| {
            reports.extend(rs);
            (base, base_ovfl, xp, xp_ovfl)
        })
        .collect();
    let reports_path = std::path::Path::new("results/table4_reports.json");
    match write_reports(reports_path, &reports) {
        Ok(()) => eprintln!("machine-readable reports: {}", reports_path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", reports_path.display()),
    }

    for (entry, (base, base_ovfl, xp, xp_ovfl)) in suite.iter().zip(per_design) {
        let cells = [
            base.hpwl(),
            base_ovfl,
            base.gp_seconds(),
            base.dp_seconds(),
            xp.hpwl(),
            xp_ovfl,
            xp.gp_seconds(),
            xp.dp_seconds(),
        ];
        for (s, c) in sums.iter_mut().zip(&cells) {
            *s += c;
        }
        let name = if entry.fence_removed {
            format!("{}+", entry.name())
        } else {
            entry.name().to_string()
        };
        let mut row = vec![name];
        row.extend(cells.iter().enumerate().map(|(i, &v)| match i % 4 {
            0 => fmt(v / 1e6, 4),
            1 => fmt(v, 2),
            _ => fmt(v, 3),
        }));
        table.row(row);
    }

    let mut sum_row = vec!["Sum".to_string()];
    sum_row.extend(sums.iter().enumerate().map(|(i, &v)| match i % 4 {
        0 => fmt(v / 1e6, 4),
        1 => fmt(v, 2),
        _ => fmt(v, 3),
    }));
    table.row(sum_row);
    let mut ratio_row = vec!["Ratio".to_string()];
    for i in 0..8 {
        let xp_ref = sums[4 + i % 4];
        ratio_row.push(if xp_ref > 0.0 {
            fmt(sums[i] / xp_ref, 3)
        } else {
            "-".into()
        });
    }
    table.row(ratio_row);

    println!(
        "\nTable 4: ISPD 2015 suite, HPWL (x1e6), top5 overflow, runtime (s). \
         Columns: DREAMPlace-like baseline | Xplace. \
         `+` marks designs the paper ran with fence regions removed.\n"
    );
    println!("{}", table.render());
    println!("(ratios relative to Xplace = 1.000)");
}
