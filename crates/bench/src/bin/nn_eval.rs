//! Reproduces the §4.3 neural-network metrics:
//!
//! * parameter count of the paper-scale model (the paper quotes 471k,
//!   60% of U-Net),
//! * training on self-generated data and the held-out relative-L2 loss,
//! * resolution transfer (trained low-res, evaluated high-res),
//! * y-direction generalization via input transposition.
//!
//! Environment: `XPLACE_NN_STEPS` (default 400), `XPLACE_NN_GRID`
//! (default 32), `XPLACE_NN_PAPER=1` to train the full paper-scale model
//! instead of the fast small one.

use xplace_core::DensityGuidance;
use xplace_nn::{
    generate_sample, relative_l2, train, DataConfig, Fno, FnoConfig, FnoGuidance, TrainConfig,
};

fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

fn main() {
    let steps: usize = std::env::var("XPLACE_NN_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let grid: usize = std::env::var("XPLACE_NN_GRID")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let paper_scale = std::env::var("XPLACE_NN_PAPER")
        .map(|v| v == "1")
        .unwrap_or(false);

    // Parameter-count check against the paper's 471k.
    let paper_model = Fno::new(&FnoConfig::paper(), 1).expect("paper config is valid");
    println!(
        "paper-scale FNO parameters: {} (paper: 471k)",
        paper_model.num_params()
    );

    let config = if paper_scale {
        FnoConfig::paper()
    } else {
        FnoConfig {
            width: 8,
            modes: 6,
            num_layers: 3,
            proj_hidden: 32,
        }
    };
    let mut fno = Fno::new(&config, 2024).expect("config is valid");
    println!(
        "training model: width={} modes={} layers={} -> {} parameters",
        config.width,
        config.modes,
        config.num_layers,
        fno.num_params()
    );

    let data = DataConfig {
        grid,
        blobs: 5,
        rects: 2,
        ..Default::default()
    };
    let train_cfg = TrainConfig {
        steps,
        batch: 2,
        lr: 2e-3,
        data,
        seed: 7,
    };
    let report = train(&mut fno, &train_cfg).expect("training succeeds");
    println!(
        "training steps: {steps}, final training loss (rel-L2): {:.4}",
        report.final_loss
    );

    // Held-out evaluation (zero predictor scores 1.0).
    let held_out = eval_loss(&mut fno, &data, 5_000_000, 16);
    println!("held-out rel-L2 ({grid}x{grid}):       {held_out:.4}  (zero predictor: 1.0)");

    // Resolution transfer.
    let hi = DataConfig {
        grid: grid * 2,
        blobs: 5,
        rects: 2,
        ..Default::default()
    };
    let transfer = eval_loss(&mut fno, &hi, 6_000_000, 8);
    println!(
        "resolution transfer rel-L2 ({0}x{0}): {transfer:.4}  (trained at {grid}x{grid})",
        grid * 2
    );

    // y-direction via transposition (the PDE-symmetry trick of §3.3).
    let mut guidance = FnoGuidance::new(fno);
    let mut corr_x = 0.0;
    let mut corr_y = 0.0;
    let trials = 8;
    for k in 0..trials {
        let s = generate_sample(&data, 7_000_000 + k).expect("sample generation");
        let density = xplace_fft::Grid2::from_vec(grid, grid, s.density.clone());
        let (fx, fy) = guidance.predict(&density);
        corr_x += correlation(fx.as_slice(), &s.field_x);
        corr_y += correlation(fy.as_slice(), &s.field_y);
    }
    println!(
        "field correlation vs exact solver: x = {:.3}, y = {:.3} (y via transposed input)",
        corr_x / trials as f64,
        corr_y / trials as f64
    );
}

fn eval_loss(fno: &mut Fno, data: &DataConfig, seed: u64, n: usize) -> f64 {
    let mut total = 0.0;
    for k in 0..n {
        let s = generate_sample(data, seed + k as u64).expect("sample generation");
        let pred = fno
            .predict_field_x(&s.density, data.grid, data.grid)
            .expect("prediction succeeds");
        let (loss, _) = relative_l2(&pred, &s.field_x);
        total += loss;
    }
    total / n as f64
}
