//! Population-exploration bench: proves `--explore K` beats a single
//! run of equal total modeled budget, and produces the gateable
//! [`ExploreMetrics`] section for `BENCH_baseline.json`.
//!
//! The committed case (see [`committed_case`]) is what `run_report`
//! embeds into the baseline and what `explore_bench --smoke` re-measures
//! for the regression gate; the rest of [`suite_cases`] exists to prove
//! the quality win is not a single lucky design.
//!
//! The comparison is budget-fair: the single-run reference gets the
//! population's whole iteration budget (`members x max_iterations`), so
//! its modeled cost is at least the population's total unless it
//! converges first — in which case extra budget could not have helped
//! it. "Population wins" therefore means: best-of-K under the same
//! total modeled spend strictly beats one run that was never starved.

use xplace_core::{GlobalPlacer, XplaceConfig};
use xplace_db::synthesis::{synthesize, SynthesisSpec};
use xplace_sched::{run_population, PopulationOptions};
use xplace_telemetry::ExploreMetrics;

/// Population size of the committed bench (`--explore 8`).
pub const EXPLORE_MEMBERS: usize = 8;
/// Generations (culling barriers) of the committed bench.
pub const EXPLORE_GENERATIONS: usize = 4;
/// Survivors per cull in the committed bench.
pub const EXPLORE_KEEP: usize = 4;

/// One exploration bench case: a synthetic design plus the base seed
/// and per-member iteration cap the population runs under.
#[derive(Debug, Clone)]
pub struct ExploreCase {
    /// The design to synthesize.
    pub spec: SynthesisSpec,
    /// Base placement seed (slot 0 runs it unperturbed).
    pub seed: u64,
    /// Per-member GP iteration cap.
    pub max_iterations: usize,
}

/// The case whose [`ExploreMetrics`] is committed in
/// `BENCH_baseline.json` — every quantity it produces is deterministic,
/// so re-measuring it must reproduce the section exactly (up to the
/// gate tolerances).
pub fn committed_case() -> ExploreCase {
    ExploreCase {
        spec: SynthesisSpec::new("explore-a", 320, 340).with_seed(11),
        seed: 0xe8a,
        // High enough that every member *converges* during the final
        // generation (stop_overflow, not the cap, ends the run): HPWL is
        // only comparable between runs at comparable density overflow.
        max_iterations: 800,
    }
}

/// The three-design suite the win condition is checked over. Index 0 is
/// always [`committed_case`]; `smoke` keeps the committed sizes, while
/// the full variant grows the designs for manual exploration (its
/// metrics no longer match the committed baseline section).
pub fn suite_cases(smoke: bool) -> Vec<ExploreCase> {
    let scale = if smoke { 1 } else { 3 };
    let mut cases = vec![committed_case()];
    cases.push(ExploreCase {
        spec: SynthesisSpec::new("explore-b", 360 * scale, 380 * scale).with_seed(12),
        seed: 0xe8b,
        max_iterations: 800,
    });
    cases.push(ExploreCase {
        spec: SynthesisSpec::new("explore-c", 300 * scale, 330 * scale).with_seed(13),
        seed: 0xe8c,
        max_iterations: 800,
    });
    if !smoke {
        cases[0].spec.num_cells *= scale;
        cases[0].spec.num_nets *= scale;
    }
    cases
}

/// Result of one case: the population's lineage metrics next to the
/// budget-matched single-run reference.
#[derive(Debug, Clone)]
pub struct ExploreComparison {
    /// Design name.
    pub name: String,
    /// Single-run final GP HPWL (the quantity the population must beat).
    pub single_hpwl: f64,
    /// Single-run final density overflow.
    pub single_overflow: f64,
    /// Single-run modeled GP cost.
    pub single_modeled_ns: u64,
    /// Whether the single run converged before exhausting its budget.
    pub single_converged: bool,
    /// The population's recorded metrics (winner HPWL, lineage, total
    /// modeled cost).
    pub metrics: ExploreMetrics,
}

impl ExploreComparison {
    /// The win condition: the population winner's GP HPWL is strictly
    /// below the single run's.
    pub fn population_wins(&self) -> bool {
        self.metrics.winner_hpwl < self.single_hpwl
    }

    /// The budget-fairness invariant: the single run either converged on
    /// its own or spent at least the population's total modeled cost.
    pub fn budget_fair(&self) -> bool {
        self.single_converged || self.single_modeled_ns >= self.metrics.total_modeled_ns
    }

    /// The winner's final density overflow (from the last generation's
    /// recorded member entries).
    pub fn winner_overflow(&self) -> f64 {
        let last = self
            .metrics
            .generations
            .last()
            .expect("generations recorded");
        last.members[self.metrics.winner].overflow
    }

    /// The quality-fairness invariant: HPWL is only comparable at
    /// comparable density, so the winner must have spread at least as
    /// far as the single run (up to 5% slack) — a winner that "won" by
    /// stopping early at high overflow does not count.
    pub fn quality_fair(&self) -> bool {
        self.winner_overflow() <= self.single_overflow * 1.05 + 1e-9
    }
}

/// Runs one case: the `--explore 8` population and the budget-matched
/// single run, over a pool of `threads` workers (wall-clock only; every
/// reported quantity is thread-count-independent).
///
/// # Errors
///
/// Propagates synthesis and placement failures with case context.
pub fn measure_explore(case: &ExploreCase, threads: usize) -> Result<ExploreComparison, String> {
    let design =
        synthesize(&case.spec).map_err(|e| format!("synthesizing {}: {e}", case.spec.name))?;
    let mut config = XplaceConfig::xplace().with_seed(case.seed);
    config.schedule.max_iterations = case.max_iterations;

    let options = PopulationOptions {
        members: EXPLORE_MEMBERS,
        generations: EXPLORE_GENERATIONS,
        keep: EXPLORE_KEEP,
        threads,
    };
    let outcome = run_population(&design, &config, &options)
        .map_err(|e| format!("population on {}: {e}", case.spec.name))?;
    let metrics = outcome
        .report
        .explore
        .ok_or_else(|| "population report lost its explore section".to_string())?;

    // The single-run reference: one seed, the whole population's
    // iteration budget.
    let mut single_config = config.clone();
    single_config.schedule.max_iterations = case.max_iterations * EXPLORE_MEMBERS;
    let mut single_design = design.clone();
    let single = GlobalPlacer::new(single_config)
        .place(&mut single_design)
        .map_err(|e| format!("single run on {}: {e}", case.spec.name))?;

    Ok(ExploreComparison {
        name: case.spec.name.clone(),
        single_hpwl: single.final_hpwl,
        single_overflow: single.final_overflow,
        single_modeled_ns: single.gp_metrics().modeled_ns,
        single_converged: single.converged,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_committed_case_heads_both_suites() {
        let committed = committed_case();
        for smoke in [true, false] {
            let cases = suite_cases(smoke);
            assert_eq!(cases.len(), 3);
            assert_eq!(cases[0].spec.name, committed.spec.name);
            assert_eq!(cases[0].seed, committed.seed);
        }
        // Smoke keeps the committed sizes exactly — that is what the
        // baseline section is recorded from.
        assert_eq!(
            suite_cases(true)[0].spec.num_cells,
            committed.spec.num_cells
        );
        assert!(suite_cases(false)[0].spec.num_cells > committed.spec.num_cells);
    }
}
