//! The spectral microbench: per-GP-iteration transform cost of the
//! electrostatic Poisson solve at production grid sizes.
//!
//! Four quantities per grid, matching [`SpectralGrid`]:
//!
//! * `modeled_ns` — the deterministic device-model cost of the two
//!   spectral kernels ([`DensityOp::spectral_kernels`]) on the reference
//!   GPU profile. Pure cost-model arithmetic, identical on every machine,
//!   so the regression gate hard-fails on it.
//! * `solve_wall_ns` — minimum wall-clock ns of one full
//!   [`ElectrostaticSolver::solve_into`] (analysis + fused field
//!   synthesis). Machine-dependent; the gate only warns.
//! * `real_wall_ns` / `complex_wall_ns` — minimum wall-clock ns of the
//!   same fixed row batch (analyze + cosine + sine synthesis per row)
//!   through the packed-real [`DctPlan`] and through the retained
//!   length-2N complex reference path. Informational: the pair is the
//!   measured evidence for the real-FFT speedup.

use xplace_device::{Device, DeviceConfig};
use xplace_fft::{reference::ComplexDct, DctPlan, ElectrostaticSolver, FieldSolution, Grid2};
use xplace_ops::density::DensityOp;
use xplace_telemetry::{SpectralGrid, SpectralMetrics};

/// Grid sizes the committed baseline records (256/512/1024, the range the
/// paper's benchmarks bin their density maps at).
pub const SPECTRAL_GRIDS: [usize; 3] = [256, 512, 1024];

/// Rows per transform-sweep batch (fixed so real/complex timings compare
/// like for like and smoke runs stay fast).
const SWEEP_ROWS: usize = 16;

/// A deterministic, structured test density: smooth bumps plus a lattice
/// ripple, so no transform input is trivially zero.
fn test_density(n: usize) -> Grid2 {
    let mut density = Grid2::new(n, n);
    for x in 0..n {
        for y in 0..n {
            let fx = x as f64 / n as f64;
            let fy = y as f64 / n as f64;
            density[(x, y)] =
                (6.3 * fx).sin() * (4.7 * fy).cos() + 0.25 * ((x * 31 + y * 17) % 7) as f64;
        }
    }
    density
}

fn min_wall_ns(reps: usize, mut body: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps.max(1) {
        let start = std::time::Instant::now();
        body();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

/// Measures one grid size with `reps` timing repetitions (minimum taken).
///
/// # Panics
///
/// Panics if `n` is not a supported solver grid size (power of two ≥ 2).
pub fn measure_grid(n: usize, reps: usize) -> SpectralGrid {
    // Deterministic modeled cost: launch the exact kernel descriptors the
    // GP loop charges per field solve on the reference GPU profile.
    let device = Device::new(DeviceConfig::rtx3090());
    let (_, profile) = device.scoped(|| {
        for kernel in DensityOp::spectral_kernels(n, n) {
            device.launch(kernel, || {});
        }
    });
    let modeled_ns = profile.modeled_ns();

    // Wall-clock full solve (warm plans, min over reps).
    let mut solver = ElectrostaticSolver::new(n, n).expect("bench grid is a power of two");
    let density = test_density(n);
    let mut fields = FieldSolution::new(n, n);
    solver.solve_into(&density, &mut fields).expect("solve");
    let solve_wall_ns = min_wall_ns(reps, || {
        solver.solve_into(&density, &mut fields).expect("solve");
    });

    // Real vs complex transform sweep over the same fixed row batch.
    let rows: Vec<&[f64]> = (0..SWEEP_ROWS.min(n))
        .map(|r| &density.as_slice()[r * n..(r + 1) * n])
        .collect();
    let mut coeffs = vec![0.0; n];
    let mut out = vec![0.0; n];
    let mut real_plan = DctPlan::new(n).expect("bench grid is a power of two");
    let real_wall_ns = min_wall_ns(reps, || {
        for row in &rows {
            real_plan.analyze(row, &mut coeffs).expect("analyze");
            real_plan.cosine_synthesis(&coeffs, &mut out).expect("idct");
            real_plan.sine_synthesis(&coeffs, &mut out).expect("idxst");
        }
    });
    let mut complex_plan = ComplexDct::new(n).expect("bench grid is a power of two");
    let complex_wall_ns = min_wall_ns(reps, || {
        for row in &rows {
            complex_plan.analyze(row, &mut coeffs).expect("analyze");
            complex_plan
                .cosine_synthesis(&coeffs, &mut out)
                .expect("idct");
            complex_plan
                .sine_synthesis(&coeffs, &mut out)
                .expect("idxst");
        }
    });

    SpectralGrid {
        n,
        modeled_ns,
        solve_wall_ns,
        real_wall_ns,
        complex_wall_ns,
    }
}

/// Runs the microbench over `grids` with `reps` repetitions per timing.
pub fn measure_spectral(grids: &[usize], reps: usize) -> SpectralMetrics {
    SpectralMetrics {
        grids: grids.iter().map(|&n| measure_grid(n, reps)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_cost_is_deterministic_and_wall_is_positive() {
        let a = measure_grid(64, 1);
        let b = measure_grid(64, 1);
        assert_eq!(a.modeled_ns, b.modeled_ns);
        assert!(a.modeled_ns > 0);
        assert!(a.solve_wall_ns > 0);
        assert!(a.real_wall_ns > 0);
        assert!(a.complex_wall_ns > 0);
    }

    #[test]
    fn measure_spectral_preserves_grid_order() {
        let m = measure_spectral(&[256, 1024], 1);
        let ns: Vec<usize> = m.grids.iter().map(|g| g.n).collect();
        assert_eq!(ns, vec![256, 1024]);
        // Small grids are launch-latency-bound (equal modeled cost), but a
        // 1024 grid is memory-bound and must model strictly slower.
        assert!(m.grids[1].modeled_ns > m.grids[0].modeled_ns);
    }
}
