//! Shared infrastructure for the table-regeneration binaries.
//!
//! Every table of the paper's evaluation section has a binary in
//! `src/bin` (see `DESIGN.md` for the experiment index). This library
//! provides the common pieces: the full GP -> LG -> DP flow, suite
//! scaling via the `XPLACE_SCALE` environment variable, and plain-text
//! table formatting.

#![warn(missing_docs)]

pub mod explore;
pub mod scaling;
pub mod spectral;

use xplace_core::{GlobalPlacer, PlacementReport, XplaceConfig};
use xplace_db::suites::SuiteEntry;
use xplace_db::synthesis::synthesize;
use xplace_db::{DbError, Design};
use xplace_legal::{check_legality, detailed_place, legalize, DpConfig, DpReport, LegalizeReport};
use xplace_route::{estimate_congestion, RouteConfig};
use xplace_telemetry::{DpMetrics, LgMetrics, RouteMetrics, RunReport, ToJson};

/// Result of one complete placement flow on one design.
#[derive(Debug)]
pub struct FlowResult {
    /// The placed, legalized design.
    pub design: Design,
    /// Global-placement report.
    pub gp: PlacementReport,
    /// Legalization report.
    pub lg: LegalizeReport,
    /// Detailed-placement report.
    pub dp: DpReport,
}

impl FlowResult {
    /// Final (post-DP) HPWL.
    pub fn hpwl(&self) -> f64 {
        self.dp.final_hpwl
    }

    /// Modeled GP seconds (the paper's GP/s column).
    pub fn gp_seconds(&self) -> f64 {
        self.gp.modeled_gp_seconds()
    }

    /// LG + DP wall-clock seconds (the paper's DP/s column).
    pub fn dp_seconds(&self) -> f64 {
        self.lg.wall_seconds + self.dp.wall_seconds
    }
}

/// Runs the full flow (synthesize -> GP -> legalize -> DP -> legality
/// check) for one suite entry under one placer configuration, optionally
/// with a neural guidance.
///
/// # Errors
///
/// Propagates synthesis, placement and legalization failures as boxed
/// errors with context.
pub fn run_flow(
    entry: &SuiteEntry,
    config: XplaceConfig,
    guidance: Option<Box<dyn xplace_core::DensityGuidance>>,
) -> Result<FlowResult, Box<dyn std::error::Error>> {
    let mut design = synthesize(&entry.spec)?;
    let mut placer = GlobalPlacer::new(config);
    if let Some(g) = guidance {
        placer = placer.with_guidance(g);
    }
    let gp = placer.place(&mut design)?;
    let lg = legalize(&mut design)?;
    let dp = detailed_place(&mut design, &DpConfig::default());
    check_legality(&design)?;
    Ok(FlowResult { design, gp, lg, dp })
}

/// Builds the machine-readable [`RunReport`] for one completed flow
/// (routability estimated on the final placement with default settings).
pub fn report_from_flow(config: &XplaceConfig, flow: &FlowResult) -> RunReport {
    let congestion = estimate_congestion(&flow.design, &RouteConfig::default());
    RunReport {
        design: flow.design.name().to_string(),
        cells: flow.design.netlist().num_cells(),
        nets: flow.design.netlist().num_nets(),
        config: config.echo(),
        threads: config.threads,
        gp: flow.gp.gp_metrics(),
        lg: Some(LgMetrics {
            initial_hpwl: flow.lg.initial_hpwl,
            final_hpwl: flow.lg.final_hpwl,
            mean_displacement: flow.lg.mean_displacement,
            max_displacement: flow.lg.max_displacement,
            wall_seconds: flow.lg.wall_seconds,
        }),
        dp: Some(DpMetrics {
            initial_hpwl: flow.dp.initial_hpwl,
            final_hpwl: flow.dp.final_hpwl,
            slides: flow.dp.slides,
            reorders: flow.dp.reorders,
            swaps: flow.dp.swaps,
            wall_seconds: flow.dp.wall_seconds,
        }),
        route: Some(RouteMetrics {
            top5_overflow: congestion.top_overflow(0.05),
            max_utilization: congestion.max_utilization(),
        }),
        spectral: None,
        scaling: None,
        explore: None,
        trace_error: None,
    }
}

/// Writes a slice of [`RunReport`]s as one JSON array, creating parent
/// directories as needed (the `results/` convention of the table
/// binaries).
///
/// # Errors
///
/// Propagates directory-creation and write failures.
pub fn write_reports(path: &std::path::Path, reports: &[RunReport]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let array = xplace_telemetry::Json::Arr(reports.iter().map(ToJson::to_json).collect());
    std::fs::write(path, array.render())
}

/// Returns the value following `--flag` in the process arguments, `None`
/// when absent (bin helper; a following `--other-flag` is not a value).
pub fn argv_flag(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .filter(|v| !v.starts_with("--"))
        .cloned()
}

/// Parses the value of `--flag` from the process arguments, exiting with
/// a clear error on unparseable input (bin helper).
pub fn argv_parse<T>(flag: &str, default: T) -> T
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    match argv_flag(flag) {
        None => default,
        Some(v) => match v.parse() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: invalid value '{v}' for {flag}: {e}");
                std::process::exit(2)
            }
        },
    }
}

/// Reads the suite scale factor from `XPLACE_SCALE` (default `default`).
/// Published contest sizes correspond to scale 1.0.
pub fn scale_from_env(default: f64) -> f64 {
    std::env::var("XPLACE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0)
        .unwrap_or(default)
}

/// Reads an iteration cap from `XPLACE_MAX_ITERS` (default `default`).
pub fn max_iters_from_env(default: usize) -> usize {
    std::env::var("XPLACE_MAX_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &usize| *v > 0)
        .unwrap_or(default)
}

/// Runs `f` over `items` on up to `workers` threads, returning results in
/// input order. Each item's work is independent (one design / one
/// configuration), so parallelism changes nothing but wall-clock time.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                tx.send((i, r)).expect("result channel open");
            });
        }
        drop(tx);
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in rx.iter() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every item produced a result"))
        .collect()
}

/// The default worker count: the machine's parallelism, capped at 8.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

/// A plain-text table printer with right-aligned numeric columns.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row length mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given number of decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Synthesizes a design for quick experiments, panicking with context on
/// failure (binaries only).
pub fn must_synthesize(entry: &SuiteEntry) -> Design {
    match synthesize(&entry.spec) {
        Ok(d) => d,
        Err(e) => panic!("failed to synthesize {}: {e}", entry.name()),
    }
}

/// A uniform error wrapper for the binaries.
pub fn die(e: DbError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplace_db::suites::ispd2005_like;

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.5".into()]);
        t.row(vec!["long-name".into(), "23.25".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn text_table_rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn env_overrides_parse() {
        // Unset -> default.
        std::env::remove_var("XPLACE_SCALE");
        assert_eq!(scale_from_env(0.01), 0.01);
        assert_eq!(max_iters_from_env(700), 700);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..37).collect();
        let doubled = parallel_map(&items, 4, |&i| i * 2);
        assert_eq!(doubled, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_edge_worker_counts() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 0, |&i| i + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(&items, 100, |&i| i + 1), vec![2, 3, 4]);
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(&empty, 4, |&i| i).is_empty());
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn full_flow_runs_on_a_tiny_entry() {
        let mut entry = ispd2005_like(0.002)[0].clone();
        entry.spec.num_cells = 300;
        entry.spec.num_nets = 320;
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 150;
        let flow = run_flow(&entry, cfg, None).unwrap();
        assert!(flow.hpwl() > 0.0);
        assert!(flow.gp_seconds() > 0.0);
        assert!(flow.dp_seconds() >= 0.0);
        assert!(flow.dp.final_hpwl <= flow.lg.final_hpwl + 1e-9);
    }
}
