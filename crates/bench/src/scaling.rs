//! The scaling bench: per-cell modeled GP cost at the sizes the paper's
//! headline claim lives at, flat vs multilevel.
//!
//! Each case synthesizes a design at a fixed seed, runs global placement
//! only (no LG/DP — scaling is a GP property) and records one
//! [`ScalingPoint`]. The gated quantity is `modeled_ns / (cells *
//! iterations)`: the per-cell, per-iteration cost under the device model,
//! which is pure arithmetic and therefore identical on every machine.
//! Wall-clock is recorded but only ever warns.
//!
//! The smoke set (a 10k-cell flat anchor plus a 100k-cell systolic
//! multilevel run) is what `run_report` embeds into `BENCH_baseline.json`
//! and what CI gates; [`full_cases`] adds a 10k-cell multilevel point for
//! manual exploration (gating a full run requires re-recording the
//! baseline with the same point set). [`coarsen_smoke`] exercises
//! coarsening alone at sizes too large to place in CI (the 1M-cell leg).

use xplace_core::{GlobalPlacer, XplaceConfig};
use xplace_db::cluster::{build_hierarchy, HierarchyOptions};
use xplace_db::synthesis::{synthesize, SynthesisSpec, Topology};
use xplace_telemetry::{ScalingMetrics, ScalingPoint};

/// Seed shared by every scaling case (the golden seed, so the bench and
/// the canonical flow stress the same RNG stream).
pub const SCALING_SEED: u64 = 20_220_714;

/// One scaling-bench case: a design size/topology and a placer mode.
#[derive(Debug, Clone)]
pub struct ScalingCase {
    /// Standard-cell count to synthesize.
    pub cells: usize,
    /// Synthesis topology.
    pub topology: Topology,
    /// Run the multilevel (coarsen/uncoarsen) phase.
    pub multilevel: bool,
    /// Iteration cap of the final (finest) level.
    pub max_iterations: usize,
    /// Iteration cap per coarse level (`None` keeps the config default).
    pub coarse_max_iterations: Option<usize>,
}

/// The gated smoke set, committed inside `BENCH_baseline.json`: a
/// 10k-cell flat anchor, and a 100k-cell systolic multilevel run whose
/// per-cell modeled cost must stay at or below the anchor's — the
/// framework's scaling claim, pinned into the regression gate. (A
/// same-size multilevel run can never beat flat: small grids are
/// launch-latency-bound, so the modeled per-iteration cost is flat in
/// cell count and extra coarse iterations only add to it. The payoff is
/// per-cell amortization at scale.)
pub fn smoke_cases() -> Vec<ScalingCase> {
    vec![
        ScalingCase {
            cells: 10_000,
            topology: Topology::Random,
            multilevel: false,
            max_iterations: 60,
            coarse_max_iterations: None,
        },
        ScalingCase {
            cells: 100_000,
            topology: Topology::SystolicGrid,
            multilevel: true,
            max_iterations: 40,
            coarse_max_iterations: Some(60),
        },
    ]
}

/// The full set: the smoke points plus a 10k-cell multilevel run that
/// records the (expected) small-scale multilevel overhead. Its point set
/// no longer matches the committed baseline, so it is for manual
/// exploration, not the gate.
pub fn full_cases() -> Vec<ScalingCase> {
    let mut cases = smoke_cases();
    cases.push(ScalingCase {
        cells: 10_000,
        topology: Topology::Random,
        multilevel: true,
        max_iterations: 60,
        coarse_max_iterations: Some(60),
    });
    cases
}

fn spec_for(case: &ScalingCase) -> SynthesisSpec {
    let name = format!(
        "scale-{}k-{}",
        case.cells / 1000,
        if case.multilevel { "ml" } else { "flat" }
    );
    SynthesisSpec::new(name, case.cells, case.cells + case.cells / 20)
        .with_seed(SCALING_SEED)
        .with_topology(case.topology)
}

/// Measures one scaling case: synthesize, place (GP only), record.
///
/// # Errors
///
/// Propagates synthesis and placement failures.
pub fn measure_case(case: &ScalingCase) -> Result<ScalingPoint, Box<dyn std::error::Error>> {
    let mut design = synthesize(&spec_for(case))?;
    let mut config = XplaceConfig::xplace();
    config.schedule.max_iterations = case.max_iterations;
    config.multilevel.enabled = case.multilevel;
    if let Some(cap) = case.coarse_max_iterations {
        config.multilevel.coarse_max_iterations = cap;
    }
    let cells = design.netlist().num_cells();
    let nets = design.netlist().num_nets();
    let start = std::time::Instant::now();
    let report = GlobalPlacer::new(config).place(&mut design)?;
    Ok(ScalingPoint {
        cells,
        nets,
        topology: case.topology.name().to_string(),
        multilevel: case.multilevel,
        iterations: report.iterations,
        modeled_ns: report.profile.modeled_ns(),
        final_overflow: report.final_overflow,
        wall_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Runs the bench over `cases` in order.
///
/// # Errors
///
/// Fails on the first case that cannot synthesize or place.
pub fn measure_scaling(
    cases: &[ScalingCase],
) -> Result<ScalingMetrics, Box<dyn std::error::Error>> {
    let mut points = Vec::with_capacity(cases.len());
    for case in cases {
        points.push(measure_case(case)?);
    }
    Ok(ScalingMetrics { points })
}

/// Result of a coarsening-only smoke at a size too large to place in CI.
#[derive(Debug, Clone)]
pub struct CoarsenSmoke {
    /// Cell count of the synthesized design.
    pub cells: usize,
    /// Cell count at each hierarchy level, coarsest last.
    pub level_cells: Vec<usize>,
    /// Wall-clock seconds for synthesis alone.
    pub synth_seconds: f64,
    /// Wall-clock seconds for hierarchy construction alone.
    pub coarsen_seconds: f64,
    /// Wall-clock seconds for synthesis + hierarchy construction.
    pub wall_seconds: f64,
}

/// Synthesizes `cells` cells of `topology` and builds the full coarsening
/// hierarchy without placing — the 1M-cell CI smoke.
///
/// # Errors
///
/// Propagates synthesis and coarsening failures.
pub fn coarsen_smoke(
    cells: usize,
    topology: Topology,
) -> Result<CoarsenSmoke, Box<dyn std::error::Error>> {
    let spec = SynthesisSpec::new("coarsen-smoke", cells, cells + cells / 20)
        .with_seed(SCALING_SEED)
        .with_topology(topology);
    let start = std::time::Instant::now();
    let design = synthesize(&spec)?;
    let synth_seconds = start.elapsed().as_secs_f64();
    let total = design.netlist().num_cells();
    let coarsen_start = std::time::Instant::now();
    let levels = build_hierarchy(&design, &HierarchyOptions::default())?;
    Ok(CoarsenSmoke {
        cells: total,
        level_cells: levels
            .iter()
            .map(|l| l.design.netlist().num_cells())
            .collect(),
        synth_seconds,
        coarsen_seconds: coarsen_start.elapsed().as_secs_f64(),
        wall_seconds: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_flat() -> ScalingCase {
        ScalingCase {
            cells: 600,
            topology: Topology::Random,
            multilevel: false,
            max_iterations: 30,
            coarse_max_iterations: None,
        }
    }

    #[test]
    fn modeled_cost_is_deterministic_and_positive() {
        let a = measure_case(&tiny_flat()).unwrap();
        let b = measure_case(&tiny_flat()).unwrap();
        assert_eq!(a.modeled_ns, b.modeled_ns);
        assert_eq!(a.iterations, b.iterations);
        assert!(a.modeled_ns > 0);
        assert!(a.ns_per_cell_iter() > 0.0);
        assert!(a.wall_seconds > 0.0);
    }

    #[test]
    fn measure_scaling_preserves_case_order() {
        let mut small = tiny_flat();
        small.max_iterations = 10;
        let mut structured = small.clone();
        structured.topology = Topology::SystolicGrid;
        let m = measure_scaling(&[small, structured]).unwrap();
        assert_eq!(m.points.len(), 2);
        assert_eq!(m.points[0].topology, "random");
        assert_eq!(m.points[1].topology, "systolic");
    }

    #[test]
    fn coarsen_smoke_reduces_and_terminates() {
        let smoke = coarsen_smoke(20_000, Topology::SystolicGrid).unwrap();
        assert!(smoke.cells >= 20_000);
        assert!(!smoke.level_cells.is_empty());
        let coarsest = *smoke.level_cells.last().unwrap();
        assert!(coarsest < smoke.cells / 2, "hierarchy barely coarsened");
    }
}
