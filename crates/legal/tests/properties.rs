//! Property-based tests: legalization and detailed placement preserve
//! legality from arbitrary starting positions.

use xplace_db::synthesis::{synthesize, SynthesisSpec};
use xplace_db::Point;
use xplace_legal::{check_legality, detailed_place, legalize, DpConfig};
use xplace_testkit::prop::Config;
use xplace_testkit::{prop_assert, props};

props! {
    config = Config::with_cases(10);

    /// Whatever the (in-region) starting positions, legalize produces a
    /// legal placement and DP keeps it legal while not worsening HPWL.
    fn legalize_then_dp_is_always_legal(
        cells in 60usize..250,
        seed in 0u64..10_000,
        spread_seed in 0u64..10_000,
        macros in 0usize..4,
    ) {
        let spec = SynthesisSpec::new("lgprop", cells, cells + 15)
            .with_seed(seed)
            .with_macro_count(macros);
        let mut design = synthesize(&spec).expect("synthesis");
        // Scatter movable cells pseudo-randomly.
        let r = design.region();
        let nl = design.netlist();
        let mut pos = design.positions().to_vec();
        for (k, id) in nl.cell_ids().enumerate() {
            if nl.cell(id).is_movable() {
                let fx = (((k as u64).wrapping_mul(0x9e37) ^ spread_seed) % 9973) as f64 / 9973.0;
                let fy = (((k as u64).wrapping_mul(0x51c7) ^ spread_seed) % 9973) as f64 / 9973.0;
                pos[id.index()] = Point::new(
                    r.lx + fx * r.width(),
                    r.ly + fy * r.height(),
                );
            }
        }
        design.set_positions(pos);

        let lg = legalize(&mut design).expect("legalization succeeds");
        check_legality(&design).expect("legal after LG");
        prop_assert!(lg.mean_displacement.is_finite());
        prop_assert!(lg.max_displacement >= lg.mean_displacement);

        let dp = detailed_place(&mut design, &DpConfig::default());
        check_legality(&design).expect("legal after DP");
        prop_assert!(dp.final_hpwl <= dp.initial_hpwl + 1e-9);
        prop_assert!((design.total_hpwl() - dp.final_hpwl).abs() < 1e-6 * dp.final_hpwl.max(1.0));
    }

    /// Legalization is idempotent: legalizing a legal placement moves
    /// nothing by more than a site.
    fn legalize_is_nearly_idempotent(cells in 60usize..200, seed in 0u64..10_000) {
        let spec = SynthesisSpec::new("idem", cells, cells + 15).with_seed(seed);
        let mut design = synthesize(&spec).expect("synthesis");
        legalize(&mut design).expect("first legalization");
        let first = design.positions().to_vec();
        legalize(&mut design).expect("second legalization");
        let mut max_move: f64 = 0.0;
        for (a, b) in first.iter().zip(design.positions()) {
            max_move = max_move.max(a.manhattan_distance(*b));
        }
        // Abacus may re-balance within a site or two but the placement is
        // already legal, so nothing should travel.
        prop_assert!(max_move <= 2.0 + 1e-9, "idempotence violated: moved {}", max_move);
    }
}
