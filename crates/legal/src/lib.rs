//! Legalization and detailed placement for `xplace`.
//!
//! The paper treats legalization (LG) and detailed placement (DP) as a
//! fixed post-pass applied identically to every global placer's output
//! (NTUPlace3 for ISPD 2005, DREAMPlace-LG + ABCDPlace for ISPD 2015).
//! This crate is the in-repo substitute:
//!
//! * [`legalize`] — a Tetris-style greedy assignment into row segments
//!   (fixed macros carve blockages out of the rows) followed by an
//!   Abacus-style per-segment least-squares refinement that minimizes
//!   total squared displacement,
//! * [`detailed_place`] — HPWL-driven detailed placement: intra-row
//!   sliding toward each cell's optimal region, adjacent-cell reordering
//!   and same-width global swaps,
//! * [`check_legality`] — the invariant checker (no overlaps, row and
//!   site alignment, everything inside the region) used by the tests and
//!   the benchmark harness.
//!
//! # Example
//!
//! ```
//! use xplace_db::synthesis::{synthesize, SynthesisSpec};
//! use xplace_legal::{check_legality, detailed_place, legalize, DpConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut design = synthesize(&SynthesisSpec::new("lg", 300, 320).with_seed(3))?;
//! let lg = legalize(&mut design)?;
//! check_legality(&design)?;
//! let dp = detailed_place(&mut design, &DpConfig::default());
//! assert!(dp.final_hpwl <= lg.final_hpwl * 1.000001);
//! check_legality(&design)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod check;
mod detailed;
mod error;
mod legalize;
mod rows;

pub use check::check_legality;
pub use detailed::{detailed_place, DpConfig, DpReport};
pub use error::LegalError;
pub use legalize::{legalize, LegalizeReport};
