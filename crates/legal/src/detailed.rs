//! HPWL-driven detailed placement on a legalized design.
//!
//! Three classic local moves, applied in passes:
//!
//! 1. **intra-row slide** — move a cell inside the free gap between its
//!    row neighbours toward the median of its nets' other pins,
//! 2. **adjacent reorder** — swap two neighbouring cells in a row when
//!    that shortens their nets,
//! 3. **global swap** — exchange two same-footprint cells anywhere on the
//!    die when the total HPWL improves.
//!
//! Every move preserves legality by construction (cells stay inside their
//! gaps / exchange exact footprints), which the tests verify with
//! [`crate::check_legality`].

use crate::rows::build_rows;
use std::time::Instant;
use xplace_db::{CellId, Design, NetId, Point};
use xplace_testkit::Rng;

/// Detailed-placement knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpConfig {
    /// Number of full passes over the design.
    pub passes: usize,
    /// Global-swap attempts per pass, as a multiple of the cell count.
    pub swap_trials_per_cell: f64,
    /// RNG seed for the global-swap sampling.
    pub seed: u64,
}

impl Default for DpConfig {
    fn default() -> Self {
        DpConfig {
            passes: 2,
            swap_trials_per_cell: 2.0,
            seed: 0xd95eed,
        }
    }
}

/// Outcome of a detailed-placement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpReport {
    /// HPWL before detailed placement.
    pub initial_hpwl: f64,
    /// HPWL after detailed placement (never worse).
    pub final_hpwl: f64,
    /// Applied intra-row slides.
    pub slides: usize,
    /// Applied adjacent reorders.
    pub reorders: usize,
    /// Applied global swaps.
    pub swaps: usize,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
}

struct DpState<'a> {
    design: &'a Design,
    positions: Vec<Point>,
    /// Nets touching each cell (deduplicated).
    cell_nets: Vec<Vec<NetId>>,
    /// Movable cells per row, sorted by x.
    row_cells: Vec<Vec<CellId>>,
    /// Row index of each movable cell (usize::MAX for non-movable).
    cell_row: Vec<usize>,
}

impl<'a> DpState<'a> {
    fn net_hpwl(&self, net: NetId) -> f64 {
        let nl = self.design.netlist();
        let n = nl.net(net);
        if n.degree() < 2 {
            return 0.0;
        }
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for pid in n.pins() {
            let pin = nl.pin(pid);
            let p = self.positions[pin.cell.index()] + pin.offset;
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        n.weight() * ((max_x - min_x) + (max_y - min_y))
    }

    fn nets_hpwl(&self, nets: &[NetId]) -> f64 {
        nets.iter().map(|&n| self.net_hpwl(n)).sum()
    }

    /// Median x of the other pins on the cell's nets — the slide target.
    fn optimal_x(&self, cell: CellId) -> Option<f64> {
        let nl = self.design.netlist();
        let mut xs: Vec<f64> = Vec::new();
        for &net in &self.cell_nets[cell.index()] {
            for pid in nl.net(net).pins() {
                let pin = nl.pin(pid);
                if pin.cell != cell {
                    xs.push(self.positions[pin.cell.index()].x + pin.offset.x);
                }
            }
        }
        if xs.is_empty() {
            return None;
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite pin positions"));
        Some(xs[xs.len() / 2])
    }
}

/// Runs detailed placement on a legalized design, improving HPWL in place.
/// The result is always at least as good as the input and remains legal.
pub fn detailed_place(design: &mut Design, config: &DpConfig) -> DpReport {
    let start = Instant::now();
    let initial_hpwl = design.total_hpwl();
    let rows = match build_rows(design) {
        Ok(r) => r,
        Err(_) => {
            return DpReport {
                initial_hpwl,
                final_hpwl: initial_hpwl,
                slides: 0,
                reorders: 0,
                swaps: 0,
                wall_seconds: start.elapsed().as_secs_f64(),
            }
        }
    };
    let nl = design.netlist();

    // Per-cell net lists.
    let mut cell_nets: Vec<Vec<NetId>> = vec![Vec::new(); nl.num_cells()];
    for id in nl.cell_ids() {
        let mut nets: Vec<NetId> = nl.pins_of_cell(id).iter().map(|&p| nl.pin(p).net).collect();
        nets.sort();
        nets.dedup();
        cell_nets[id.index()] = nets;
    }

    // Assign movable cells to rows by their bottom edge.
    let mut row_cells: Vec<Vec<CellId>> = vec![Vec::new(); rows.len()];
    let mut cell_row = vec![usize::MAX; nl.num_cells()];
    for id in nl.cell_ids() {
        let c = nl.cell(id);
        if !c.is_movable() {
            continue;
        }
        let ly = design.position(id).y - c.height() * 0.5;
        if let Some(ri) = rows.iter().position(|r| (r.y - ly).abs() < 1e-6) {
            row_cells[ri].push(id);
            cell_row[id.index()] = ri;
        }
    }
    for cells in &mut row_cells {
        cells.sort_by(|&a, &b| {
            design
                .position(a)
                .x
                .partial_cmp(&design.position(b).x)
                .expect("finite positions")
        });
    }

    let mut state = DpState {
        design,
        positions: design.positions().to_vec(),
        cell_nets,
        row_cells,
        cell_row,
    };

    let mut slides = 0usize;
    let mut reorders = 0usize;
    let mut swaps = 0usize;
    let mut rng = Rng::seed_from_u64(config.seed);

    for _pass in 0..config.passes {
        // --- 1. Intra-row slides. ---
        for ri in 0..rows.len() {
            let row = &rows[ri];
            for k in 0..state.row_cells[ri].len() {
                let cell = state.row_cells[ri][k];
                if design.fence_of(cell).is_some() {
                    continue; // fenced cells hold their legalized spot
                }
                let w = nl.cell(cell).width();
                let x = state.positions[cell.index()].x;
                // Free gap between neighbours, clipped to the segment.
                let lo_neighbor = if k > 0 {
                    let p = state.row_cells[ri][k - 1];
                    state.positions[p.index()].x + nl.cell(p).width() * 0.5
                } else {
                    f64::NEG_INFINITY
                };
                let hi_neighbor = if k + 1 < state.row_cells[ri].len() {
                    let p = state.row_cells[ri][k + 1];
                    state.positions[p.index()].x - nl.cell(p).width() * 0.5
                } else {
                    f64::INFINITY
                };
                let seg = row
                    .segments
                    .iter()
                    .find(|s| x - w * 0.5 >= s.x0 - 1e-6 && x + w * 0.5 <= s.x1 + 1e-6);
                let Some(seg) = seg else { continue };
                let lo = lo_neighbor.max(seg.x0) + w * 0.5;
                let hi = hi_neighbor.min(seg.x1) - w * 0.5;
                if hi <= lo {
                    continue;
                }
                let Some(target) = state.optimal_x(cell) else {
                    continue;
                };
                let snapped = row.snap_down(target.clamp(lo, hi) - w * 0.5) + w * 0.5;
                let newx = snapped.clamp(lo, hi);
                if (newx - x).abs() < 1e-9 {
                    continue;
                }
                let nets = state.cell_nets[cell.index()].clone();
                let before = state.nets_hpwl(&nets);
                state.positions[cell.index()].x = newx;
                let after = state.nets_hpwl(&nets);
                if after < before - 1e-9 {
                    slides += 1;
                } else {
                    state.positions[cell.index()].x = x;
                }
            }
        }

        // --- 2. Adjacent reorders. ---
        for ri in 0..rows.len() {
            for k in 0..state.row_cells[ri].len().saturating_sub(1) {
                let a = state.row_cells[ri][k];
                let b = state.row_cells[ri][k + 1];
                if design.fence_of(a).is_some() || design.fence_of(b).is_some() {
                    continue;
                }
                let (wa, wb) = (nl.cell(a).width(), nl.cell(b).width());
                let a_left = state.positions[a.index()].x - wa * 0.5;
                // After the swap: b starts at a's left edge, a follows b.
                let new_b = a_left + wb * 0.5;
                let new_a = a_left + wb + wa * 0.5;
                // The pair must stay left of b's old right edge — always
                // true since the combined width is unchanged; legality is
                // preserved when a and b stay inside the original span.
                let b_right = state.positions[b.index()].x + wb * 0.5;
                if new_a + wa * 0.5 > b_right + 1e-9 {
                    continue;
                }
                // a and b must share one free segment: a macro may sit
                // between row-order neighbours, and the swap must not
                // slide either cell into it.
                let same_segment = rows[ri]
                    .segments
                    .iter()
                    .any(|s| a_left >= s.x0 - 1e-6 && b_right <= s.x1 + 1e-6);
                if !same_segment {
                    continue;
                }
                let mut nets = state.cell_nets[a.index()].clone();
                nets.extend_from_slice(&state.cell_nets[b.index()]);
                nets.sort();
                nets.dedup();
                let before = state.nets_hpwl(&nets);
                let (old_a, old_b) = (state.positions[a.index()].x, state.positions[b.index()].x);
                state.positions[a.index()].x = new_a;
                state.positions[b.index()].x = new_b;
                let after = state.nets_hpwl(&nets);
                if after < before - 1e-9 {
                    state.row_cells[ri].swap(k, k + 1);
                    reorders += 1;
                } else {
                    state.positions[a.index()].x = old_a;
                    state.positions[b.index()].x = old_b;
                }
            }
        }

        // --- 3. Global same-footprint swaps. ---
        let movable: Vec<CellId> = nl
            .cell_ids()
            .filter(|&c| {
                nl.cell(c).is_movable()
                    && state.cell_row[c.index()] != usize::MAX
                    && design.fence_of(c).is_none()
            })
            .collect();
        if movable.len() >= 2 {
            let trials = (movable.len() as f64 * config.swap_trials_per_cell) as usize;
            for _ in 0..trials {
                let a = movable[rng.gen_range(0..movable.len())];
                let b = movable[rng.gen_range(0..movable.len())];
                if a == b {
                    continue;
                }
                let (ca, cb) = (nl.cell(a), nl.cell(b));
                if (ca.width() - cb.width()).abs() > 1e-9
                    || (ca.height() - cb.height()).abs() > 1e-9
                {
                    continue;
                }
                let mut nets = state.cell_nets[a.index()].clone();
                nets.extend_from_slice(&state.cell_nets[b.index()]);
                nets.sort();
                nets.dedup();
                let before = state.nets_hpwl(&nets);
                let (pa, pb) = (state.positions[a.index()], state.positions[b.index()]);
                state.positions[a.index()] = pb;
                state.positions[b.index()] = pa;
                let after = state.nets_hpwl(&nets);
                if after < before - 1e-9 {
                    // Keep: fix up the row bookkeeping.
                    let (ra, rb) = (state.cell_row[a.index()], state.cell_row[b.index()]);
                    if ra != rb {
                        let ia = state.row_cells[ra].iter().position(|&c| c == a).unwrap();
                        let ib = state.row_cells[rb].iter().position(|&c| c == b).unwrap();
                        state.row_cells[ra][ia] = b;
                        state.row_cells[rb][ib] = a;
                        state.cell_row[a.index()] = rb;
                        state.cell_row[b.index()] = ra;
                    } else {
                        // Same row: order may flip.
                        state.row_cells[ra].sort_by(|&p, &q| {
                            state.positions[p.index()]
                                .x
                                .partial_cmp(&state.positions[q.index()].x)
                                .expect("finite positions")
                        });
                    }
                    swaps += 1;
                } else {
                    state.positions[a.index()] = pa;
                    state.positions[b.index()] = pb;
                }
            }
        }
    }

    let positions = state.positions.clone();
    design.set_positions(positions);
    DpReport {
        initial_hpwl,
        final_hpwl: design.total_hpwl(),
        slides,
        reorders,
        swaps,
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_legality, legalize};
    use xplace_db::synthesis::{synthesize, SynthesisSpec};

    fn legalized_design(cells: usize, seed: u64) -> Design {
        let mut d =
            synthesize(&SynthesisSpec::new("dp", cells, cells + 30).with_seed(seed)).unwrap();
        let r = d.region();
        let nl = d.netlist();
        let mut pos = d.positions().to_vec();
        for (k, id) in nl.cell_ids().enumerate() {
            if nl.cell(id).is_movable() {
                pos[id.index()] = Point::new(
                    r.lx + ((k as f64) * 0.7548).fract() * r.width(),
                    r.ly + ((k as f64) * 0.5698).fract() * r.height(),
                );
            }
        }
        d.set_positions(pos);
        legalize(&mut d).unwrap();
        d
    }

    #[test]
    fn dp_improves_hpwl_and_stays_legal() {
        let mut d = legalized_design(400, 3);
        let report = detailed_place(&mut d, &DpConfig::default());
        assert!(
            report.final_hpwl < report.initial_hpwl,
            "DP should improve HPWL: {} -> {}",
            report.initial_hpwl,
            report.final_hpwl
        );
        assert!(report.slides + report.reorders + report.swaps > 0);
        check_legality(&d).unwrap();
        assert!((d.total_hpwl() - report.final_hpwl).abs() < 1e-6);
    }

    #[test]
    fn dp_is_deterministic() {
        let mut d1 = legalized_design(200, 5);
        let mut d2 = legalized_design(200, 5);
        let r1 = detailed_place(&mut d1, &DpConfig::default());
        let r2 = detailed_place(&mut d2, &DpConfig::default());
        assert_eq!(r1.final_hpwl, r2.final_hpwl);
        assert_eq!(d1.positions(), d2.positions());
    }

    #[test]
    fn more_passes_never_hurt() {
        let mut d1 = legalized_design(200, 7);
        let mut d2 = legalized_design(200, 7);
        let one = detailed_place(
            &mut d1,
            &DpConfig {
                passes: 1,
                ..DpConfig::default()
            },
        );
        let three = detailed_place(
            &mut d2,
            &DpConfig {
                passes: 3,
                ..DpConfig::default()
            },
        );
        assert!(three.final_hpwl <= one.final_hpwl + 1e-9);
    }

    #[test]
    fn dp_with_macros_respects_blockages() {
        let mut d = synthesize(
            &SynthesisSpec::new("dpm", 300, 320)
                .with_seed(9)
                .with_macro_count(4),
        )
        .unwrap();
        legalize(&mut d).unwrap();
        detailed_place(&mut d, &DpConfig::default());
        check_legality(&d).unwrap();
    }

    #[test]
    fn dp_on_rowless_design_is_a_no_op() {
        use xplace_db::netlist::{CellKind, NetlistBuilder};
        use xplace_db::Rect;
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 0.0, 0.0, CellKind::Terminal);
        b.add_net("n", vec![(a, Point::default())]).unwrap();
        let nl = b.finish().unwrap();
        let mut d = Design::new(
            "empty",
            nl,
            Rect::new(0.0, 0.0, 10.0, 10.0),
            vec![],
            0.9,
            vec![Point::default()],
        )
        .unwrap();
        let report = detailed_place(&mut d, &DpConfig::default());
        assert_eq!(report.initial_hpwl, report.final_hpwl);
    }
}
