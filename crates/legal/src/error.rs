use std::error::Error;
use std::fmt;

/// Errors produced by legalization and the legality checker.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LegalError {
    /// The design has no rows and none could be synthesized.
    NoRows,
    /// A cell could not be placed into any row segment.
    NoSpace {
        /// Name of the unplaceable cell.
        cell: String,
    },
    /// Two cells overlap after legalization.
    Overlap {
        /// First cell name.
        a: String,
        /// Second cell name.
        b: String,
    },
    /// A cell is not aligned to a row or site.
    Misaligned {
        /// Cell name.
        cell: String,
        /// What is misaligned ("row" or "site").
        what: &'static str,
    },
    /// A cell lies (partly) outside the placement region.
    OutOfRegion {
        /// Cell name.
        cell: String,
    },
    /// A fenced cell lies (partly) outside its fence region.
    OutOfFence {
        /// Cell name.
        cell: String,
        /// Fence name.
        fence: String,
    },
}

impl fmt::Display for LegalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalError::NoRows => write!(f, "design has no placement rows"),
            LegalError::NoSpace { cell } => write!(f, "no legal position found for cell `{cell}`"),
            LegalError::Overlap { a, b } => write!(f, "cells `{a}` and `{b}` overlap"),
            LegalError::Misaligned { cell, what } => {
                write!(f, "cell `{cell}` is not {what}-aligned")
            }
            LegalError::OutOfRegion { cell } => {
                write!(f, "cell `{cell}` lies outside the placement region")
            }
            LegalError::OutOfFence { cell, fence } => {
                write!(f, "cell `{cell}` lies outside its fence region `{fence}`")
            }
        }
    }
}

impl Error for LegalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_cells() {
        let e = LegalError::Overlap {
            a: "u1".into(),
            b: "u2".into(),
        };
        assert!(e.to_string().contains("u1") && e.to_string().contains("u2"));
        assert!(LegalError::NoRows.to_string().contains("rows"));
    }
}
