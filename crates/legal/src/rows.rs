//! Internal row/segment model shared by the legalizer and detailed placer.

use crate::LegalError;
use xplace_db::{CellKind, Design, Rect};

/// A free interval `[x0, x1)` of one row (between blockages).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Segment {
    pub x0: f64,
    pub x1: f64,
}

impl Segment {
    pub(crate) fn width(&self) -> f64 {
        self.x1 - self.x0
    }
}

/// One placement row with its free segments.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RowModel {
    pub y: f64,
    pub height: f64,
    pub site: f64,
    /// Origin of the site grid (the row's original left edge); all
    /// snapping is relative to this, independent of blockage carving.
    pub origin: f64,
    pub segments: Vec<Segment>,
}

impl RowModel {
    /// Center y of the row.
    pub(crate) fn center_y(&self) -> f64 {
        self.y + 0.5 * self.height
    }

    /// Snaps an x coordinate to the row's site grid (toward negative
    /// infinity).
    pub(crate) fn snap_down(&self, x: f64) -> f64 {
        self.origin + ((x - self.origin) / self.site).floor() * self.site
    }

    /// Snaps an x coordinate to the row's site grid (toward positive
    /// infinity).
    pub(crate) fn snap_up(&self, x: f64) -> f64 {
        self.origin + ((x - self.origin) / self.site).ceil() * self.site
    }
}

/// Builds the row/segment model of a design: uses the declared rows (or
/// synthesizes them from the region and the modal movable-cell height) and
/// carves out fixed-cell blockages.
pub(crate) fn build_rows(design: &Design) -> Result<Vec<RowModel>, LegalError> {
    let region = design.region();
    let mut rows: Vec<RowModel> = if design.rows().is_empty() {
        // Synthesize rows from the modal movable height.
        let nl = design.netlist();
        let mut heights: Vec<f64> = nl
            .cells()
            .iter()
            .filter(|c| c.is_movable())
            .map(|c| c.height())
            .collect();
        if heights.is_empty() {
            return Err(LegalError::NoRows);
        }
        heights.sort_by(|a, b| a.partial_cmp(b).expect("finite heights"));
        let h = heights[heights.len() / 2];
        if h <= 0.0 {
            return Err(LegalError::NoRows);
        }
        let n = (region.height() / h).floor() as usize;
        (0..n)
            .map(|i| RowModel {
                y: region.ly + i as f64 * h,
                height: h,
                site: 1.0,
                origin: region.lx,
                segments: vec![Segment {
                    x0: region.lx,
                    x1: region.ux,
                }],
            })
            .collect()
    } else {
        design
            .rows()
            .iter()
            .map(|r| RowModel {
                y: r.y,
                height: r.height,
                site: r.site_width,
                origin: r.x_min,
                segments: vec![Segment {
                    x0: r.x_min,
                    x1: r.x_max,
                }],
            })
            .collect()
    };
    if rows.is_empty() {
        return Err(LegalError::NoRows);
    }
    rows.sort_by(|a, b| a.y.partial_cmp(&b.y).expect("finite row y"));

    // Carve fixed blockages.
    let nl = design.netlist();
    let blockages: Vec<Rect> = nl
        .cell_ids()
        .filter(|&c| nl.cell(c).kind() == CellKind::Fixed)
        .map(|c| design.cell_rect(c))
        .collect();
    for row in &mut rows {
        let strip = Rect::new(region.lx, row.y, region.ux, row.y + row.height);
        for b in &blockages {
            if !b.intersects(&strip) {
                continue;
            }
            let mut next = Vec::with_capacity(row.segments.len() + 1);
            for seg in &row.segments {
                if b.ux <= seg.x0 || b.lx >= seg.x1 {
                    next.push(*seg);
                    continue;
                }
                if b.lx > seg.x0 {
                    next.push(Segment {
                        x0: seg.x0,
                        x1: b.lx,
                    });
                }
                if b.ux < seg.x1 {
                    next.push(Segment {
                        x0: b.ux,
                        x1: seg.x1,
                    });
                }
            }
            row.segments = next;
        }
        // Snap segment starts up to the row's site grid so every position
        // derived from a segment bound is automatically site-aligned,
        // then drop slivers narrower than one site.
        for seg in &mut row.segments {
            let snapped = row.origin + ((seg.x0 - row.origin) / row.site).ceil() * row.site;
            seg.x0 = snapped;
        }
        row.segments.retain(|s| s.width() >= row.site);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplace_db::synthesis::{synthesize, SynthesisSpec};

    #[test]
    fn rows_come_from_the_design() {
        let d = synthesize(&SynthesisSpec::new("r", 100, 110).with_seed(1)).unwrap();
        let rows = build_rows(&d).unwrap();
        assert_eq!(rows.len(), d.rows().len());
        assert!(rows.windows(2).all(|w| w[0].y < w[1].y));
    }

    #[test]
    fn macros_carve_blockages() {
        let d = synthesize(
            &SynthesisSpec::new("rb", 200, 210)
                .with_seed(2)
                .with_macro_count(1),
        )
        .unwrap();
        let rows = build_rows(&d).unwrap();
        // Some row must have been split or trimmed by the macro.
        let nl = d.netlist();
        let macro_rect = nl
            .cell_ids()
            .find(|&c| nl.cell(c).kind() == CellKind::Fixed)
            .map(|c| d.cell_rect(c))
            .unwrap();
        let mut saw_carved = false;
        for row in &rows {
            if macro_rect.ly < row.y + row.height && macro_rect.uy > row.y {
                for seg in &row.segments {
                    // No free segment may overlap the macro interior.
                    assert!(
                        seg.x1 <= macro_rect.lx + 1e-9 || seg.x0 >= macro_rect.ux - 1e-9,
                        "segment [{}, {}] overlaps macro {macro_rect}",
                        seg.x0,
                        seg.x1
                    );
                }
                saw_carved = true;
            }
        }
        assert!(saw_carved, "macro did not intersect any row");
    }

    #[test]
    fn snapping_is_consistent() {
        let row = RowModel {
            y: 0.0,
            height: 12.0,
            site: 2.0,
            origin: 0.0,
            segments: vec![],
        };
        assert_eq!(row.snap_down(5.1), 4.0);
        assert_eq!(row.snap_up(5.1), 6.0);
        assert_eq!(row.snap_down(6.0), 6.0);
        assert_eq!(row.snap_up(6.0), 6.0);
    }

    #[test]
    fn rowless_design_synthesizes_rows() {
        use xplace_db::netlist::{CellKind as CK, NetlistBuilder};
        use xplace_db::Point;
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 2.0, 4.0, CK::Movable);
        let c = b.add_cell("c", 2.0, 4.0, CK::Movable);
        b.add_net("n", vec![(a, Point::default()), (c, Point::default())])
            .unwrap();
        let nl = b.finish().unwrap();
        let d = Design::new(
            "norow",
            nl,
            Rect::new(0.0, 0.0, 40.0, 40.0),
            vec![],
            0.9,
            vec![Point::new(10.0, 10.0), Point::new(20.0, 20.0)],
        )
        .unwrap();
        let rows = build_rows(&d).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].height, 4.0);
    }
}
