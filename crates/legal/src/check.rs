//! Legality checking: the invariants a legal placement must satisfy.

use crate::rows::build_rows;
use crate::LegalError;
use xplace_db::{CellKind, Design};

/// Verifies that every movable cell is inside the region, aligned to a
/// row and to the site grid, free of overlap with other movable cells and
/// with fixed macros, and (when the design has fence regions) contained
/// in its fence.
///
/// # Errors
///
/// Returns the first violated invariant as a [`LegalError`].
pub fn check_legality(design: &Design) -> Result<(), LegalError> {
    let rows = build_rows(design)?;
    let nl = design.netlist();
    let region = design.region();
    let eps = 1e-6;

    // Collect movable rectangles with names.
    struct Item {
        name: String,
        lx: f64,
        ly: f64,
        ux: f64,
        uy: f64,
    }
    let mut items: Vec<Item> = Vec::new();
    for id in nl.cell_ids() {
        let c = nl.cell(id);
        if !c.is_movable() {
            continue;
        }
        let r = design.cell_rect(id);
        if r.lx < region.lx - eps
            || r.ux > region.ux + eps
            || r.ly < region.ly - eps
            || r.uy > region.uy + eps
        {
            return Err(LegalError::OutOfRegion {
                cell: c.name().to_string(),
            });
        }
        // Row alignment: the cell's bottom must sit on some row's y.
        let row = rows
            .iter()
            .find(|row| (r.ly - row.y).abs() < eps)
            .ok_or_else(|| LegalError::Misaligned {
                cell: c.name().to_string(),
                what: "row",
            })?;
        // Site alignment within that row's origin.
        let offset = (r.lx - row.origin) / row.site;
        if (offset - offset.round()).abs() > 1e-4 {
            return Err(LegalError::Misaligned {
                cell: c.name().to_string(),
                what: "site",
            });
        }
        // Fence containment.
        if let Some(fi) = design.fence_of(id) {
            if !design.fences()[fi].contains_rect(&r) {
                return Err(LegalError::OutOfFence {
                    cell: c.name().to_string(),
                    fence: design.fences()[fi].name().to_string(),
                });
            }
        }
        items.push(Item {
            name: c.name().to_string(),
            lx: r.lx,
            ly: r.ly,
            ux: r.ux,
            uy: r.uy,
        });
    }

    // Overlap among movable cells: sweep by row band then x.
    items.sort_by(|a, b| {
        (a.ly, a.lx)
            .partial_cmp(&(b.ly, b.lx))
            .expect("finite coordinates")
    });
    for w in items.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if (a.ly - b.ly).abs() < eps && b.lx < a.ux - eps && a.lx < b.ux - eps {
            return Err(LegalError::Overlap {
                a: a.name.clone(),
                b: b.name.clone(),
            });
        }
    }

    // Overlap against fixed macros.
    let macros: Vec<(String, xplace_db::Rect)> = nl
        .cell_ids()
        .filter(|&c| nl.cell(c).kind() == CellKind::Fixed)
        .map(|c| (nl.cell(c).name().to_string(), design.cell_rect(c)))
        .collect();
    for item in &items {
        for (mname, m) in &macros {
            if item.lx < m.ux - eps
                && m.lx < item.ux - eps
                && item.ly < m.uy - eps
                && m.ly < item.uy - eps
            {
                return Err(LegalError::Overlap {
                    a: item.name.clone(),
                    b: mname.clone(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplace_db::netlist::{CellKind, NetlistBuilder};
    use xplace_db::{Point, Rect, Row};

    fn two_cell_design(p0: Point, p1: Point) -> Design {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 2.0, 4.0, CellKind::Movable);
        let c = b.add_cell("c", 2.0, 4.0, CellKind::Movable);
        b.add_net("n", vec![(a, Point::default()), (c, Point::default())])
            .unwrap();
        let nl = b.finish().unwrap();
        Design::new(
            "chk",
            nl,
            Rect::new(0.0, 0.0, 20.0, 8.0),
            vec![
                Row {
                    y: 0.0,
                    height: 4.0,
                    x_min: 0.0,
                    x_max: 20.0,
                    site_width: 1.0,
                },
                Row {
                    y: 4.0,
                    height: 4.0,
                    x_min: 0.0,
                    x_max: 20.0,
                    site_width: 1.0,
                },
            ],
            0.9,
            vec![p0, p1],
        )
        .unwrap()
    }

    #[test]
    fn legal_placement_passes() {
        let d = two_cell_design(Point::new(1.0, 2.0), Point::new(5.0, 6.0));
        check_legality(&d).unwrap();
    }

    #[test]
    fn overlap_is_detected() {
        let d = two_cell_design(Point::new(1.0, 2.0), Point::new(2.0, 2.0));
        assert!(matches!(
            check_legality(&d),
            Err(LegalError::Overlap { .. })
        ));
    }

    #[test]
    fn row_misalignment_is_detected() {
        let d = two_cell_design(Point::new(1.0, 3.0), Point::new(5.0, 2.0));
        assert!(matches!(
            check_legality(&d),
            Err(LegalError::Misaligned { what: "row", .. })
        ));
    }

    #[test]
    fn site_misalignment_is_detected() {
        let d = two_cell_design(Point::new(1.5, 2.0), Point::new(5.0, 2.0));
        assert!(matches!(
            check_legality(&d),
            Err(LegalError::Misaligned { what: "site", .. })
        ));
    }

    #[test]
    fn out_of_region_is_detected() {
        let d = two_cell_design(Point::new(-1.0, 2.0), Point::new(5.0, 2.0));
        assert!(matches!(
            check_legality(&d),
            Err(LegalError::OutOfRegion { .. })
        ));
    }

    #[test]
    fn touching_cells_are_legal() {
        let d = two_cell_design(Point::new(1.0, 2.0), Point::new(3.0, 2.0));
        check_legality(&d).unwrap();
    }
}
