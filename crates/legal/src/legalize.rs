//! Tetris-style greedy legalization with Abacus least-squares refinement.

use crate::rows::{build_rows, RowModel};
use crate::LegalError;
use std::time::Instant;
use xplace_db::{CellId, Design, Point};

/// Outcome of a legalization run.
#[derive(Debug, Clone, PartialEq)]
pub struct LegalizeReport {
    /// HPWL before legalization (the global-placement result).
    pub initial_hpwl: f64,
    /// HPWL after legalization.
    pub final_hpwl: f64,
    /// Mean displacement of movable cells.
    pub mean_displacement: f64,
    /// Maximum displacement of a movable cell.
    pub max_displacement: f64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
}

/// Per-segment packing state used by the Tetris pass: the list of free
/// gaps (so space skipped while honouring a cell's desired position can
/// still be used by later cells).
#[derive(Debug)]
struct SegState {
    row: usize,
    seg: usize,
    gaps: Vec<(f64, f64)>,
}

/// A cell placed into a segment (left edge + desired left edge), input to
/// the Abacus refinement.
#[derive(Debug, Clone, Copy)]
struct Placed {
    cell: CellId,
    width: f64,
    desired_x: f64,
    /// Fenced cells keep their Tetris position (their segment skips the
    /// Abacus pass so the least-squares clustering cannot slide them out
    /// of the fence).
    fenced: bool,
}

/// Legalizes all movable cells of a design in place: every cell ends up
/// row-aligned, site-aligned, inside a free row segment and overlap-free.
///
/// # Errors
///
/// Returns [`LegalError::NoRows`] for designs without derivable rows and
/// [`LegalError::NoSpace`] when a cell cannot be packed anywhere (the
/// design is over-full).
pub fn legalize(design: &mut Design) -> Result<LegalizeReport, LegalError> {
    let start = Instant::now();
    let initial_hpwl = design.total_hpwl();
    let rows = build_rows(design)?;
    let nl = design.netlist();

    // Movable cells: fenced cells first (their usable space is scarce and
    // unfenced cells may otherwise squat in it), then widest first
    // (first-fit-decreasing: wide cells see the large gaps before
    // fragmentation), ties broken left-to-right.
    let mut cells: Vec<CellId> = nl.cell_ids().filter(|&c| nl.cell(c).is_movable()).collect();
    cells.sort_by(|&a, &b| {
        let fa = design.fence_of(a).is_none(); // false (fenced) sorts first
        let fb = design.fence_of(b).is_none();
        let wa = nl.cell(a).width();
        let wb = nl.cell(b).width();
        let xa = design.position(a).x - wa * 0.5;
        let xb = design.position(b).x - wb * 0.5;
        (fa, wb, xa)
            .partial_cmp(&(fb, wa, xb))
            .expect("finite positions")
    });

    // Free gaps per (row, segment).
    let mut states: Vec<SegState> = Vec::new();
    for (ri, row) in rows.iter().enumerate() {
        for (si, seg) in row.segments.iter().enumerate() {
            states.push(SegState {
                row: ri,
                seg: si,
                gaps: vec![(seg.x0, seg.x1)],
            });
        }
    }
    // Row-sorted index for the nearest-row search.
    let mut per_row_state: Vec<Vec<usize>> = vec![Vec::new(); rows.len()];
    for (k, s) in states.iter().enumerate() {
        per_row_state[s.row].push(k);
    }

    // Contents per segment for the Abacus pass.
    let mut contents: Vec<Vec<Placed>> = (0..states.len()).map(|_| Vec::new()).collect();

    let mut positions = design.positions().to_vec();
    let original = design.positions().to_vec();

    for &cell in &cells {
        let c = nl.cell(cell);
        let (w, h) = (c.width(), c.height());
        let desired = original[cell.index()];
        let desired_left = desired.x - w * 0.5;
        let fence = design.fence_of(cell).map(|fi| &design.fences()[fi]);

        // Rows sorted by |row center - desired y|; stop once the vertical
        // distance alone exceeds the best cost so far.
        let mut row_order: Vec<usize> = (0..rows.len())
            .filter(|&ri| rows[ri].height + 1e-9 >= h)
            .collect();
        if row_order.is_empty() {
            return Err(LegalError::NoSpace {
                cell: c.name().to_string(),
            });
        }
        // Fenced cells may only use rows whose band lies inside one of the
        // fence rectangles' y-range.
        if let Some(fence) = fence {
            row_order.retain(|&ri| {
                let row = &rows[ri];
                fence
                    .rects()
                    .iter()
                    .any(|fr| row.y >= fr.ly - 1e-9 && row.y + h <= fr.uy + 1e-9)
            });
            if row_order.is_empty() {
                return Err(LegalError::NoSpace {
                    cell: c.name().to_string(),
                });
            }
        }
        row_order.sort_by(|&a, &b| {
            let da = (rows[a].center_y() - desired.y).abs();
            let db = (rows[b].center_y() - desired.y).abs();
            da.partial_cmp(&db).expect("finite rows")
        });

        let mut best: Option<(usize, usize, f64, f64)> = None; // (state, gap, x, cost)
        for &ri in &row_order {
            let row = &rows[ri];
            let dy = (row.center_y() - desired.y).abs();
            if let Some((.., cost)) = best {
                if dy >= cost {
                    break;
                }
            }
            for &sk in &per_row_state[ri] {
                let st = &states[sk];
                for (gi, &(g0, g1)) in st.gaps.iter().enumerate() {
                    // Clip the usable gap to the cell's fence (the fence
                    // rect covering this row, if any).
                    let (f0, f1) = match fence {
                        Some(fence) => {
                            let covering = fence.rects().iter().find(|fr| {
                                row.y >= fr.ly - 1e-9
                                    && row.y + h <= fr.uy + 1e-9
                                    && fr.lx < g1
                                    && fr.ux > g0
                            });
                            match covering {
                                Some(fr) => (g0.max(fr.lx), g1.min(fr.ux)),
                                None => continue,
                            }
                        }
                        None => (g0, g1),
                    };
                    let lo = row.snap_up(f0);
                    let hi = row.snap_down(f1 - w);
                    if hi < lo - 1e-9 || hi + w > f1 + 1e-9 {
                        continue; // gap too small
                    }
                    let x = row.snap_down(desired_left.clamp(lo, hi)).max(lo);
                    let cost = (x - desired_left).abs() + dy;
                    if best.map(|(.., bc)| cost < bc).unwrap_or(true) {
                        best = Some((sk, gi, x, cost));
                    }
                }
            }
        }
        let (sk, gi, x, _) = best.ok_or_else(|| LegalError::NoSpace {
            cell: c.name().to_string(),
        })?;
        // Split the chosen gap around the placed cell.
        let (g0, g1) = states[sk].gaps.remove(gi);
        let site = rows[states[sk].row].site;
        if x - g0 >= site - 1e-9 {
            states[sk].gaps.insert(gi, (g0, x));
        }
        if g1 - (x + w) >= site - 1e-9 {
            let at = if x - g0 >= site - 1e-9 { gi + 1 } else { gi };
            states[sk].gaps.insert(at, (x + w, g1));
        }
        contents[sk].push(Placed {
            cell,
            width: w,
            desired_x: desired_left,
            fenced: fence.is_some(),
        });
        let row = &rows[states[sk].row];
        positions[cell.index()] = Point::new(x + w * 0.5, row.y + h * 0.5);
    }

    // Abacus refinement: per segment, least-squares clustering toward the
    // desired positions (cells keep their packing order).
    for (sk, placed) in contents.iter_mut().enumerate() {
        if placed.is_empty() || placed.iter().any(|p| p.fenced) {
            // Segments holding fenced cells keep their gap-based packing:
            // Abacus clustering could slide a member across its fence
            // boundary.
            continue;
        }
        // Abacus processes the physical left-to-right order.
        placed.sort_by(|a, b| {
            positions[a.cell.index()]
                .x
                .partial_cmp(&positions[b.cell.index()].x)
                .expect("finite positions")
        });
        let st = &states[sk];
        let row = &rows[st.row];
        let seg = row.segments[st.seg];
        let xs = abacus_segment(placed, seg.x0, seg.x1, row);
        for (p, x_left) in placed.iter().zip(xs) {
            let h = nl.cell(p.cell).height();
            positions[p.cell.index()] = Point::new(x_left + p.width * 0.5, row.y + h * 0.5);
        }
    }

    let mut mean_disp = 0.0;
    let mut max_disp: f64 = 0.0;
    let mut count = 0usize;
    for &cell in &cells {
        let d = positions[cell.index()].manhattan_distance(original[cell.index()]);
        mean_disp += d;
        max_disp = max_disp.max(d);
        count += 1;
    }
    if count > 0 {
        mean_disp /= count as f64;
    }

    design.set_positions(positions);
    Ok(LegalizeReport {
        initial_hpwl,
        final_hpwl: design.total_hpwl(),
        mean_displacement: mean_disp,
        max_displacement: max_disp,
        wall_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Classic Abacus over one segment: returns the left edge of every cell
/// (in the given order), minimizing total squared displacement to
/// `desired_x` subject to non-overlap and the segment bounds. Results are
/// site-aligned.
fn abacus_segment(cells: &[Placed], x0: f64, x1: f64, row: &RowModel) -> Vec<f64> {
    #[derive(Debug, Clone, Copy)]
    struct Cluster {
        /// Number of cells.
        e: f64,
        /// Sum of (desired - offset within cluster).
        q: f64,
        /// Total width.
        w: f64,
        /// First cell index.
        first: usize,
        /// One past the last cell index.
        last: usize,
        /// Optimal (unclamped-then-clamped) left edge.
        x: f64,
    }

    let mut clusters: Vec<Cluster> = Vec::with_capacity(cells.len());
    for (i, c) in cells.iter().enumerate() {
        let mut cl = Cluster {
            e: 1.0,
            q: c.desired_x,
            w: c.width,
            first: i,
            last: i + 1,
            x: 0.0,
        };
        cl.x = cl.q.clamp(x0, (x1 - cl.w).max(x0));
        clusters.push(cl);
        // Collapse while the new cluster overlaps its predecessor.
        while clusters.len() > 1 {
            let cur = clusters[clusters.len() - 1];
            let prev = clusters[clusters.len() - 2];
            if prev.x + prev.w <= cur.x + 1e-12 {
                break;
            }
            // Merge cur into prev.
            let merged_q = prev.q + (cur.q - cur.e * prev.w);
            let merged = Cluster {
                e: prev.e + cur.e,
                q: merged_q,
                w: prev.w + cur.w,
                first: prev.first,
                last: cur.last,
                x: 0.0,
            };
            clusters.pop();
            let m = clusters.len() - 1;
            clusters[m] = merged;
            let cl = &mut clusters[m];
            cl.x = (cl.q / cl.e).clamp(x0, (x1 - cl.w).max(x0));
        }
    }

    // Emit site-aligned positions; snapping down keeps everything inside
    // because cluster widths are site multiples in our flows, and we
    // re-clamp defensively.
    let mut out = vec![0.0; cells.len()];
    for cl in &clusters {
        let mut x = row.snap_down(cl.x).max(x0);
        if x + cl.w > x1 + 1e-9 {
            x = row.snap_down(x1 - cl.w).max(x0);
        }
        for i in cl.first..cl.last {
            out[i] = x;
            x += cells[i].width;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_legality;
    use xplace_db::synthesis::{synthesize, SynthesisSpec};

    fn spread_design(cells: usize, seed: u64) -> Design {
        let mut d =
            synthesize(&SynthesisSpec::new("lg", cells, cells + 20).with_seed(seed)).unwrap();
        // Pseudo-random spread (as if a GP had run).
        let r = d.region();
        let nl = d.netlist();
        let mut pos = d.positions().to_vec();
        for (k, id) in nl.cell_ids().enumerate() {
            if nl.cell(id).is_movable() {
                pos[id.index()] = Point::new(
                    r.lx + ((k as f64) * 0.7548).fract() * r.width(),
                    r.ly + ((k as f64) * 0.5698).fract() * r.height(),
                );
            }
        }
        d.set_positions(pos);
        d
    }

    #[test]
    fn legalized_result_passes_the_checker() {
        let mut d = spread_design(400, 3);
        legalize(&mut d).unwrap();
        check_legality(&d).unwrap();
    }

    #[test]
    fn legalization_respects_macro_blockages() {
        let mut d = synthesize(
            &SynthesisSpec::new("lgm", 300, 320)
                .with_seed(5)
                .with_macro_count(4),
        )
        .unwrap();
        // Cells start clustered at the center — the hardest case.
        legalize(&mut d).unwrap();
        check_legality(&d).unwrap();
    }

    #[test]
    fn displacement_is_small_for_a_spread_placement() {
        let mut d = spread_design(500, 7);
        let report = legalize(&mut d).unwrap();
        let bin = d.region().width() / 16.0;
        assert!(
            report.mean_displacement < bin,
            "mean displacement {} too large (bin {bin})",
            report.mean_displacement
        );
        assert!(report.max_displacement.is_finite());
    }

    #[test]
    fn hpwl_change_is_bounded() {
        let mut d = spread_design(400, 9);
        let report = legalize(&mut d).unwrap();
        // Legalizing a spread placement should not blow HPWL up.
        assert!(
            report.final_hpwl < report.initial_hpwl * 1.5,
            "HPWL {} -> {}",
            report.initial_hpwl,
            report.final_hpwl
        );
    }

    #[test]
    fn abacus_places_cells_at_desired_positions_when_disjoint() {
        let row = RowModel {
            y: 0.0,
            height: 12.0,
            site: 1.0,
            origin: 0.0,
            segments: vec![],
        };
        let cells = vec![
            Placed {
                cell: CellId(0),
                width: 2.0,
                desired_x: 3.0,
                fenced: false,
            },
            Placed {
                cell: CellId(1),
                width: 2.0,
                desired_x: 10.0,
                fenced: false,
            },
        ];
        let xs = abacus_segment(&cells, 0.0, 20.0, &row);
        assert_eq!(xs, vec![3.0, 10.0]);
    }

    #[test]
    fn abacus_resolves_overlap_by_least_squares() {
        let row = RowModel {
            y: 0.0,
            height: 12.0,
            site: 1.0,
            origin: 0.0,
            segments: vec![],
        };
        // Both want x = 5; least squares packs them around it.
        let cells = vec![
            Placed {
                cell: CellId(0),
                width: 2.0,
                desired_x: 5.0,
                fenced: false,
            },
            Placed {
                cell: CellId(1),
                width: 2.0,
                desired_x: 5.0,
                fenced: false,
            },
        ];
        let xs = abacus_segment(&cells, 0.0, 20.0, &row);
        assert_eq!(xs[1] - xs[0], 2.0, "cells must abut");
        // Cluster optimum is (5 + (5-2))/2 = 4.
        assert_eq!(xs[0], 4.0);
    }

    #[test]
    fn abacus_clamps_to_segment_bounds() {
        let row = RowModel {
            y: 0.0,
            height: 12.0,
            site: 1.0,
            origin: 0.0,
            segments: vec![],
        };
        let cells = vec![
            Placed {
                cell: CellId(0),
                width: 3.0,
                desired_x: -10.0,
                fenced: false,
            },
            Placed {
                cell: CellId(1),
                width: 3.0,
                desired_x: 100.0,
                fenced: false,
            },
        ];
        let xs = abacus_segment(&cells, 0.0, 10.0, &row);
        assert!(xs[0] >= 0.0);
        assert!(xs[1] + 3.0 <= 10.0 + 1e-9);
        assert!(xs[1] >= xs[0] + 3.0 - 1e-9);
    }

    #[test]
    fn overfull_design_reports_no_space() {
        use xplace_db::netlist::{CellKind, NetlistBuilder};
        use xplace_db::{Rect, Row};
        let mut b = NetlistBuilder::new();
        let mut pins = Vec::new();
        for i in 0..6 {
            let id = b.add_cell(format!("c{i}"), 4.0, 4.0, CellKind::Movable);
            pins.push((id, Point::default()));
        }
        b.add_net("n", pins).unwrap();
        let nl = b.finish().unwrap();
        // Region fits 2 cells per row x 2 rows = 4 < 6 cells, but the
        // design-level density checks pass because utilization <= 1 is
        // violated -> construct directly.
        let d = Design::new(
            "full",
            nl,
            Rect::new(0.0, 0.0, 9.0, 8.0),
            vec![
                Row {
                    y: 0.0,
                    height: 4.0,
                    x_min: 0.0,
                    x_max: 9.0,
                    site_width: 1.0,
                },
                Row {
                    y: 4.0,
                    height: 4.0,
                    x_min: 0.0,
                    x_max: 9.0,
                    site_width: 1.0,
                },
            ],
            1.0,
            vec![Point::new(4.5, 4.0); 6],
        );
        let mut d = match d {
            Ok(d) => d,
            Err(_) => return, // construction may already reject it
        };
        let result = legalize(&mut d);
        assert!(matches!(result, Err(LegalError::NoSpace { .. })));
    }
}
