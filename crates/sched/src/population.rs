//! Population-based exploration: parallel perturbed restarts with
//! deterministic checkpoint branching.
//!
//! `xplace place --explore K` runs `K` global-placement members
//! concurrently over the worker pool. Members pause at fixed checkpoint
//! barriers (the generation boundaries), where the driver scores every
//! member (HPWL weighted by density overflow), culls the worst, and
//! refills the culled slots by branching the best survivor's snapshot
//! under a seeded [`Perturbation`] (position jitter plus λ/ω schedule
//! offsets). The final generation runs members to completion; the winner
//! is finished through legalization and detailed placement.
//!
//! Determinism contract: the whole population is a pure function of
//! `(design, config, options)`. Members are keyed by slot index, every
//! segment is bit-identical for any pool width by the workspace
//! determinism contract, and culling ties resolve to the lower slot
//! index — so the winner's stitched trace and its report are
//! byte-identical for any `--threads`. The full lineage (who branched
//! from whom, under which perturbation seed) is recorded in the
//! report's [`ExploreMetrics`] section, which is enough to replay any
//! member from scratch.
//!
//! With `K = 1` no culling ever happens and the single member's
//! pause/resume segments stitch into exactly the uninterrupted run's
//! trace (the core checkpoint stitching contract), so `--explore 1`
//! degenerates to a plain `xplace place` run.

use xplace_core::{
    Checkpoint, CheckpointOptions, GlobalPlacer, MemoryCheckpointStore, Perturbation,
    PlacementReport, XplaceConfig,
};
use xplace_db::Design;
use xplace_legal::{check_legality, detailed_place, legalize, DpConfig};
use xplace_route::{estimate_congestion, RouteConfig};
use xplace_telemetry::{
    DpMetrics, ExploreGeneration, ExploreMember, ExploreMetrics, LgMetrics, RouteMetrics,
    RunReport, VecSink,
};

/// How a population explores: member count, barrier schedule, and cull
/// survivor count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationOptions {
    /// Population size `K` (slot 0 carries the unperturbed base seed).
    pub members: usize,
    /// Number of generations. Barriers fall at
    /// `(g + 1) * max_iterations / generations` for every generation but
    /// the last, which runs members to completion.
    pub generations: usize,
    /// Survivors per cull (the rest are rebranched from the best
    /// survivor's snapshot).
    pub keep: usize,
    /// Worker-pool width members are spread over. Never changes the
    /// outcome — only wall-clock time.
    pub threads: usize,
}

impl PopulationOptions {
    /// Defaults for a population of `members`: 4 generations, half the
    /// population (at least one) surviving each cull.
    pub fn for_members(members: usize) -> Self {
        PopulationOptions {
            members,
            generations: 4,
            keep: (members / 2).max(1),
            threads: 1,
        }
    }
}

/// The result of a population run: the winner's report (with the
/// [`ExploreMetrics`] lineage section), its stitched trace, and its
/// finished design.
#[derive(Debug, Clone)]
pub struct PopulationOutcome {
    /// The winner's run summary; `report.explore` holds the full
    /// population history.
    pub report: RunReport,
    /// The winner's stitched JSON-lines trace: its whole lineage from
    /// iteration 0, byte-identical for any thread count.
    pub trace: String,
    /// The winner's design after legalization and detailed placement.
    pub design: Design,
}

/// One member's segment between two barriers.
struct SegmentEnd {
    report: PlacementReport,
    trace: String,
    design: Design,
    snapshot: Option<Checkpoint>,
}

/// Splitmix-style seed derivation: decorrelates member seeds (and
/// perturbation seeds) from the base seed without any shared stream.
/// Masked to 32 bits so seeds survive the JSON telemetry layer exactly
/// (integers above 2^53 do not round-trip through JSON numbers).
fn derive_seed(base: u64, lane: u64) -> u64 {
    let mut h = base ^ lane.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 29;
    h & 0xffff_ffff
}

/// The perturbation seed for refilling `slot` at the barrier after
/// `generation` — unique per (base seed, generation, slot).
fn perturbation_seed(base: u64, generation: usize, slot: usize) -> u64 {
    derive_seed(base ^ ((generation as u64 + 1) << 32), slot as u64 + 1)
}

/// Selection score at a barrier: HPWL weighted by how far the member is
/// from meeting density (lower is better). Ties resolve to the lower
/// slot index.
fn score_of(hpwl: f64, overflow: f64) -> f64 {
    hpwl * (1.0 + overflow)
}

/// Runs one member segment: a GP run over `base`'s clone, optionally
/// resumed from `resume`, optionally pausing at `stop_at`.
fn run_segment(
    base: &Design,
    config: &XplaceConfig,
    resume: Option<&Checkpoint>,
    stop_at: Option<usize>,
) -> Result<SegmentEnd, String> {
    let mut design = base.clone();
    let store = MemoryCheckpointStore::new();
    let mut sink = VecSink::new();
    let ckpt = CheckpointOptions {
        every: 0,
        store: Some(&store),
        resume,
        stop_at,
    };
    let report = GlobalPlacer::new(config.clone())
        .place_traced_opts(&mut design, &mut sink, ckpt)
        .map_err(|e| format!("global placement: {e}"))?;
    let snapshot = if report.paused {
        store
            .latest()
            .map_err(|e| format!("reading pause snapshot: {e}"))?
            .map(|(_, cp)| cp)
    } else {
        None
    };
    Ok(SegmentEnd {
        report,
        trace: sink.to_jsonl(),
        design,
        snapshot,
    })
}

/// Appends a segment's trace to a member's stitched trace. Resumed
/// segments re-emit `run_start`; dropping that first line makes the
/// stitched text byte-identical to an uninterrupted run's (the core
/// checkpoint stitching contract).
fn stitch(stitched: &mut String, segment: &str, resumed: bool) {
    if !resumed {
        stitched.push_str(segment);
    } else if let Some(pos) = segment.find('\n') {
        stitched.push_str(&segment[pos + 1..]);
    }
}

/// Runs a population of perturbed GP members over the worker pool and
/// finishes the winner through legalization and detailed placement.
///
/// Slot 0 runs `config` as given; slot `i > 0` runs with a seed derived
/// from `(config.seed, i)`. All members run with kernel width 1 —
/// population parallelism replaces kernel parallelism (nested launches
/// would degrade to serial inline execution anyway), and it keeps the
/// report independent of `options.threads`.
///
/// # Errors
///
/// Returns the failure text for invalid options, placement errors, and
/// legality failures of the winner.
pub fn run_population(
    design: &Design,
    config: &XplaceConfig,
    options: &PopulationOptions,
) -> Result<PopulationOutcome, String> {
    let k = options.members;
    if k == 0 {
        return Err("population needs at least one member (--explore K, K >= 1)".into());
    }
    if options.keep == 0 || options.keep > k {
        return Err(format!(
            "population keep count must be in 1..={k}, got {}",
            options.keep
        ));
    }
    if options.generations == 0 {
        return Err("population needs at least one generation".into());
    }
    let max_iterations = config.schedule.max_iterations;
    if max_iterations < options.generations {
        return Err(format!(
            "population needs max_iterations >= generations \
             ({max_iterations} < {})",
            options.generations
        ));
    }

    // Per-slot member configs: slot 0 is the unperturbed base seed.
    let configs: Vec<XplaceConfig> = (0..k)
        .map(|i| {
            let mut c = config.clone();
            c.threads = 1;
            if i > 0 {
                c.seed = derive_seed(config.seed, i as u64);
            }
            c
        })
        .collect();

    // Per-slot state across generations.
    let mut traces: Vec<String> = vec![String::new(); k];
    let mut snapshots: Vec<Option<Checkpoint>> = vec![None; k];
    let mut reports: Vec<Option<PlacementReport>> = (0..k).map(|_| None).collect();
    let mut designs: Vec<Option<Design>> = (0..k).map(|_| None).collect();
    let mut history: Vec<Vec<usize>> = (0..k).map(|_| Vec::new()).collect();
    let mut cumulative_ns: Vec<u64> = vec![0; k];
    // `live[i]`: slot i runs a segment this generation. Culled slots go
    // dormant until refilled; converged slots stay finished.
    let mut live: Vec<bool> = vec![true; k];
    // Refills applied at the *start* of generation g, recorded into
    // generation g's member entries: (branched_from, perturbation_seed).
    let mut branch_info: Vec<Option<(usize, u64)>> = vec![None; k];

    let mut generations: Vec<ExploreGeneration> = Vec::with_capacity(options.generations);
    let mut total_modeled_ns: u64 = 0;
    let pool = xplace_parallel::global();

    for generation in 0..options.generations {
        let last = generation + 1 == options.generations;
        let barrier = ((generation + 1) * max_iterations) / options.generations;
        let stop_at = if last { None } else { Some(barrier) };

        for (slot, h) in history.iter_mut().enumerate() {
            h.push(slot);
        }

        // Run every live member's segment concurrently; results are
        // keyed by slot, so collection order is deterministic.
        let running: Vec<usize> = (0..k).filter(|&i| live[i]).collect();
        let results = pool.run_isolated(running.len(), options.threads.max(1), |idx| {
            let slot = running[idx];
            run_segment(design, &configs[slot], snapshots[slot].as_ref(), stop_at)
        });
        for (idx, result) in results.into_iter().enumerate() {
            let slot = running[idx];
            let end = result
                .map_err(|panic| format!("member {slot} crashed: {panic}"))?
                .map_err(|e| format!("member {slot}: {e}"))?;
            let resumed = snapshots[slot].is_some();
            stitch(&mut traces[slot], &end.trace, resumed);
            let modeled_ns = end.report.gp_metrics().modeled_ns;
            total_modeled_ns += modeled_ns.saturating_sub(cumulative_ns[slot]);
            cumulative_ns[slot] = modeled_ns;
            if !end.report.paused {
                // Converged (or completed) before the barrier: finished.
                live[slot] = false;
            }
            snapshots[slot] = end.snapshot;
            reports[slot] = Some(end.report);
            designs[slot] = Some(end.design);
        }

        // Score the whole population at this barrier (dormant slots keep
        // the stale score they were culled with — they stay worst).
        let scores: Vec<f64> = (0..k)
            .map(|i| {
                let r = reports[i].as_ref().expect("every slot ran at least once");
                score_of(r.final_hpwl, r.final_overflow)
            })
            .collect();
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
        let best = order[0];

        let mut culled = vec![false; k];
        if !last {
            for &slot in &order[options.keep..] {
                culled[slot] = true;
            }
        }
        generations.push(ExploreGeneration {
            generation,
            iteration: if last { max_iterations } else { barrier },
            members: (0..k)
                .map(|i| {
                    let r = reports[i].as_ref().expect("slot ran");
                    ExploreMember {
                        member: i,
                        hpwl: r.final_hpwl,
                        overflow: r.final_overflow,
                        score: scores[i],
                        culled: culled[i],
                        branched_from: branch_info[i].map(|(from, _)| from),
                        perturbation_seed: branch_info[i].map(|(_, seed)| seed),
                    }
                })
                .collect(),
            best,
        });

        if last {
            break;
        }

        // Refill culled slots by branching the best survivor that still
        // holds a barrier snapshot (a survivor that converged early has
        // none — nothing left to explore from it).
        branch_info = vec![None; k];
        let source = order[..options.keep]
            .iter()
            .copied()
            .find(|&s| snapshots[s].is_some());
        if let Some(source) = source {
            for slot in 0..k {
                if !culled[slot] {
                    continue;
                }
                let seed = perturbation_seed(config.seed, generation, slot);
                let mut cp = snapshots[source]
                    .as_ref()
                    .expect("source holds a snapshot")
                    .branch_for(&configs[slot]);
                cp.perturb(&Perturbation::with_seed(seed));
                snapshots[slot] = Some(cp);
                traces[slot] = traces[source].clone();
                history[slot] = history[source].clone();
                cumulative_ns[slot] = cumulative_ns[source];
                live[slot] = true;
                branch_info[slot] = Some((source, seed));
            }
        } else {
            for slot in 0..k {
                if culled[slot] {
                    live[slot] = false;
                }
            }
        }
    }

    // The winner: best score after the final generation (ties to the
    // lower slot, same rule as culling).
    let final_gen = generations.last().expect("at least one generation ran");
    let winner = final_gen.best;
    let winner_report = reports[winner].take().expect("winner ran");
    let mut winner_design = designs[winner].take().expect("winner ran");

    // Finish the winner through the serial back half of the flow.
    let lg = legalize(&mut winner_design).map_err(|e| format!("legalization: {e}"))?;
    let dp = detailed_place(&mut winner_design, &DpConfig::default());
    check_legality(&winner_design).map_err(|e| format!("legality check: {e}"))?;
    let congestion = estimate_congestion(&winner_design, &RouteConfig::default());

    let explore = ExploreMetrics {
        members: k,
        keep: options.keep,
        generations,
        winner,
        winner_lineage: history[winner].clone(),
        winner_hpwl: winner_report.final_hpwl,
        total_modeled_ns,
    };
    let report = RunReport {
        design: winner_design.name().to_string(),
        cells: winner_design.netlist().num_cells(),
        nets: winner_design.netlist().num_nets(),
        config: config.echo(),
        threads: 1,
        // Wall-clock fields are zeroed: the winner's stitched lineage
        // never ran as one wall-clock run, and dropping the only
        // machine-dependent quantities makes the population report
        // byte-identical for any thread count (the modeled-ns fields
        // carry the deterministic cost).
        gp: {
            let mut gp = winner_report.gp_metrics();
            gp.wall_seconds = 0.0;
            gp
        },
        lg: Some(LgMetrics {
            initial_hpwl: lg.initial_hpwl,
            final_hpwl: lg.final_hpwl,
            mean_displacement: lg.mean_displacement,
            max_displacement: lg.max_displacement,
            wall_seconds: 0.0,
        }),
        dp: Some(DpMetrics {
            initial_hpwl: dp.initial_hpwl,
            final_hpwl: dp.final_hpwl,
            slides: dp.slides,
            reorders: dp.reorders,
            swaps: dp.swaps,
            wall_seconds: 0.0,
        }),
        route: Some(RouteMetrics {
            top5_overflow: congestion.top_overflow(0.05),
            max_utilization: congestion.max_utilization(),
        }),
        spectral: None,
        scaling: None,
        explore: Some(explore),
        trace_error: None,
    };
    Ok(PopulationOutcome {
        report,
        trace: std::mem::take(&mut traces[winner]),
        design: winner_design,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplace_db::synthesis::{synthesize, SynthesisSpec};
    use xplace_telemetry::ToJson;

    fn small_design(seed: u64) -> Design {
        synthesize(&SynthesisSpec::new("pop", 300, 320).with_seed(seed))
            .expect("synthesis succeeds")
    }

    fn small_config() -> XplaceConfig {
        let mut c = XplaceConfig::xplace().with_seed(0x5eed);
        c.schedule.max_iterations = 60;
        c
    }

    #[test]
    fn population_is_deterministic_for_any_pool_width() {
        let design = small_design(5);
        let config = small_config();
        let mut opts = PopulationOptions::for_members(3);
        opts.generations = 3;
        opts.threads = 1;
        let serial = run_population(&design, &config, &opts).unwrap();
        opts.threads = 4;
        let wide = run_population(&design, &config, &opts).unwrap();
        assert_eq!(
            serial.trace, wide.trace,
            "winner trace must not depend on width"
        );
        assert_eq!(
            serial.report.to_json_string(),
            wide.report.to_json_string(),
            "winner report must not depend on width"
        );
    }

    #[test]
    fn single_member_population_degenerates_to_the_plain_run() {
        let design = small_design(5);
        let config = small_config();
        let opts = PopulationOptions {
            members: 1,
            generations: 4,
            keep: 1,
            threads: 2,
        };
        let pop = run_population(&design, &config, &opts).unwrap();
        // The uninterrupted reference run.
        let mut reference_design = design.clone();
        let mut member_config = config.clone();
        member_config.threads = 1;
        let mut sink = VecSink::new();
        let reference = GlobalPlacer::new(member_config)
            .place_traced_opts(&mut reference_design, &mut sink, CheckpointOptions::none())
            .unwrap();
        assert_eq!(
            pop.trace,
            sink.to_jsonl(),
            "K=1 must stitch to the plain trace"
        );
        assert_eq!(
            pop.report.gp.modeled_ns,
            reference.gp_metrics().modeled_ns,
            "K=1 modeled cost equals the plain run's"
        );
        let explore = pop.report.explore.as_ref().unwrap();
        assert_eq!(explore.winner, 0);
        assert_eq!(explore.winner_lineage, vec![0, 0, 0, 0]);
        assert!(explore
            .generations
            .iter()
            .all(|g| g.members.iter().all(|m| !m.culled)));
    }

    #[test]
    fn culling_refills_slots_from_the_best_snapshot() {
        let design = small_design(5);
        let config = small_config();
        let opts = PopulationOptions {
            members: 4,
            generations: 3,
            keep: 2,
            threads: 2,
        };
        let pop = run_population(&design, &config, &opts).unwrap();
        let explore = pop.report.explore.as_ref().unwrap();
        assert_eq!(explore.generations.len(), 3);
        // Two slots are culled at each intermediate barrier...
        let culled0: Vec<usize> = explore.generations[0]
            .members
            .iter()
            .filter(|m| m.culled)
            .map(|m| m.member)
            .collect();
        assert_eq!(culled0.len(), 2);
        // ...and reappear branched in the next generation, citing their
        // source and perturbation seed.
        for m in &explore.generations[1].members {
            if culled0.contains(&m.member) {
                assert!(m.branched_from.is_some(), "culled slot must be rebranched");
                assert!(m.perturbation_seed.is_some());
            } else {
                assert!(m.branched_from.is_none());
            }
        }
        // Lineage length equals the generation count and ends at the
        // winner's own slot.
        assert_eq!(explore.winner_lineage.len(), 3);
        assert_eq!(*explore.winner_lineage.last().unwrap(), explore.winner);
        assert!(explore.total_modeled_ns > 0);
    }

    #[test]
    fn invalid_options_are_rejected() {
        let design = small_design(5);
        let config = small_config();
        for (members, generations, keep) in [(0, 4, 1), (4, 0, 2), (4, 4, 0), (4, 4, 5)] {
            let opts = PopulationOptions {
                members,
                generations,
                keep,
                threads: 1,
            };
            assert!(
                run_population(&design, &config, &opts).is_err(),
                "members={members} generations={generations} keep={keep} must be rejected"
            );
        }
        let mut tight = config.clone();
        tight.schedule.max_iterations = 2;
        let opts = PopulationOptions::for_members(2);
        let err = run_population(&design, &tight, &opts).unwrap_err();
        assert!(err.contains("max_iterations >= generations"), "{err}");
    }
}
