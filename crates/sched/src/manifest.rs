//! The batch manifest: which designs to place, under which configurations.
//!
//! A manifest is a single JSON object with a `jobs` array. Each job names
//! its design source — either a Bookshelf `.aux` file or a synthesis spec —
//! plus optional per-job placer overrides:
//!
//! ```json
//! {"jobs": [
//!   {"name": "tiny",  "synth": {"cells": 300, "nets": 320, "seed": 3},
//!    "max_iters": 120, "seed": 7},
//!   {"name": "board", "aux": "bench/board.aux", "density": 0.9,
//!    "baseline": true, "grid": 64}
//! ]}
//! ```
//!
//! Job names must be unique: they key the [`JobRecord`]s of the resulting
//! [`BatchReport`](xplace_telemetry::BatchReport), and the regression
//! comparator pairs baseline and current jobs by name.
//!
//! [`JobRecord`]: xplace_telemetry::JobRecord

use std::path::PathBuf;
use xplace_core::XplaceConfig;
use xplace_db::synthesis::SynthesisSpec;
use xplace_fault::FaultPlan;
use xplace_telemetry::{FromJson, Json, JsonError};

/// Where a job's design comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignSource {
    /// A Bookshelf benchmark on disk (`"aux"` + optional `"density"`).
    Aux {
        /// Path to the `.aux` file.
        path: PathBuf,
        /// Target placement density (default 0.9).
        density: f64,
    },
    /// A synthesized benchmark (`"synth"` object).
    Synth {
        /// Number of movable cells (required).
        cells: usize,
        /// Number of nets (default `cells + cells / 20`).
        nets: usize,
        /// Synthesis seed (default 1).
        seed: u64,
        /// Number of fixed macros (default 0).
        macros: usize,
    },
}

impl DesignSource {
    /// The synthesis spec of a `Synth` source.
    ///
    /// The design name is derived from the parameters — not the job name —
    /// so jobs placing the same synthetic design under different configs
    /// share one [`DesignCache`](xplace_db::DesignCache) entry.
    pub fn synth_spec(&self) -> Option<SynthesisSpec> {
        match self {
            DesignSource::Aux { .. } => None,
            DesignSource::Synth {
                cells,
                nets,
                seed,
                macros,
            } => {
                let name = format!("synth_c{cells}_n{nets}_s{seed}_m{macros}");
                Some(
                    SynthesisSpec::new(name, *cells, *nets)
                        .with_seed(*seed)
                        .with_macro_count(*macros),
                )
            }
        }
    }
}

/// One job: a design source plus per-job placer overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique job name (keys the batch report).
    pub name: String,
    /// Design source.
    pub source: DesignSource,
    /// GP iteration cap override (`"max_iters"`).
    pub max_iters: Option<usize>,
    /// Placer seed override (`"seed"`).
    pub seed: Option<u64>,
    /// Run the DREAMPlace-like baseline config (`"baseline"`, default
    /// `false`).
    pub baseline: bool,
    /// Density-grid override (`"grid"`, power of two).
    pub grid: Option<usize>,
    /// Modeled-ns deadline override for this job (`"deadline_ns"`).
    /// Falls back to [`BatchManifest::deadline_ns`] when absent.
    pub deadline_ns: Option<u64>,
    /// Checkpoint cadence override for this job (`"checkpoint_every"`,
    /// GP iterations between snapshots). Falls back to
    /// [`BatchManifest::checkpoint_every`] when absent.
    pub checkpoint_every: Option<usize>,
}

impl JobSpec {
    /// Builds this job's placer configuration.
    ///
    /// Starts from [`XplaceConfig::xplace`] (or
    /// [`XplaceConfig::dreamplace_like`] with `baseline`), applies the
    /// overrides, and sets the kernel thread width — metrics are
    /// bit-identical for any width, so sharing the batch-level count is
    /// safe.
    pub fn config(&self, threads: usize) -> XplaceConfig {
        let mut cfg = if self.baseline {
            XplaceConfig::dreamplace_like()
        } else {
            XplaceConfig::xplace()
        };
        if let Some(n) = self.max_iters {
            cfg.schedule.max_iterations = n;
        }
        if let Some(s) = self.seed {
            cfg.seed = s;
        }
        if let Some(g) = self.grid {
            cfg.grid = Some(g);
        }
        // The fault hook stays disarmed here: the scheduler resolves the
        // batch's fault plan per attempt and arms `cfg.fault` itself.
        cfg.threads = threads.max(1);
        cfg
    }
}

/// The parsed batch manifest: a non-empty list of uniquely named jobs
/// plus batch-wide robustness policy (fault plan, retry budget,
/// deadlines, checkpoint cadence).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchManifest {
    /// Jobs in manifest order (the order of the batch report).
    pub jobs: Vec<JobSpec>,
    /// Deterministic fault schedule (`"faults"` array, keyed by job
    /// name). Empty by default.
    pub faults: FaultPlan,
    /// Retry budget per job (`"retries"`, default 0): how many times a
    /// job that panicked or hit a sink I/O error is re-run.
    pub retries: usize,
    /// Batch-default modeled-ns deadline per job (`"deadline_ns"`).
    /// `None` means no deadline.
    pub deadline_ns: Option<u64>,
    /// Batch-default checkpoint cadence in GP iterations
    /// (`"checkpoint_every"`, 0 = disabled).
    pub checkpoint_every: usize,
}

impl BatchManifest {
    /// A manifest over `jobs` with no faults, retries, deadlines, or
    /// checkpoints — the pre-robustness behavior.
    pub fn plain(jobs: Vec<JobSpec>) -> Self {
        BatchManifest {
            jobs,
            faults: FaultPlan::none(),
            retries: 0,
            deadline_ns: None,
            checkpoint_every: 0,
        }
    }
}

impl BatchManifest {
    /// Parses manifest JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for malformed JSON, a missing or empty
    /// `jobs` array, a job without exactly one design source, or a
    /// duplicate job name.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json_str(text)
    }
}

fn opt_field<T: FromJson>(value: &Json, key: &str) -> Result<Option<T>, JsonError> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => T::from_json(v)
            .map(Some)
            .map_err(|e| JsonError(format!("field `{key}`: {e}"))),
    }
}

fn parse_source(value: &Json, name: &str) -> Result<DesignSource, JsonError> {
    let aux = opt_field::<String>(value, "aux")?;
    let synth = value.get("synth").filter(|v| !matches!(v, Json::Null));
    match (aux, synth) {
        (Some(path), None) => Ok(DesignSource::Aux {
            path: PathBuf::from(path),
            density: opt_field(value, "density")?.unwrap_or(0.9),
        }),
        (None, Some(spec)) => {
            let cells: usize = spec
                .field("cells")
                .and_then(usize::from_json)
                .map_err(|e| JsonError(format!("job `{name}` synth: {e}")))?;
            Ok(DesignSource::Synth {
                cells,
                nets: opt_field(spec, "nets")?.unwrap_or(cells + cells / 20),
                seed: opt_field(spec, "seed")?.unwrap_or(1),
                macros: opt_field(spec, "macros")?.unwrap_or(0),
            })
        }
        (Some(_), Some(_)) => Err(JsonError(format!(
            "job `{name}` has both `aux` and `synth` design sources"
        ))),
        (None, None) => Err(JsonError(format!(
            "job `{name}` has no design source (need `aux` or `synth`)"
        ))),
    }
}

impl FromJson for JobSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let name = String::from_json(value.field("name")?)?;
        if name.is_empty() {
            return Err(JsonError("job name must be non-empty".into()));
        }
        Ok(JobSpec {
            source: parse_source(value, &name)?,
            max_iters: opt_field(value, "max_iters")?,
            seed: opt_field(value, "seed")?,
            baseline: opt_field(value, "baseline")?.unwrap_or(false),
            grid: opt_field(value, "grid")?,
            deadline_ns: opt_field(value, "deadline_ns")?,
            checkpoint_every: opt_field(value, "checkpoint_every")?,
            name,
        })
    }
}

impl FromJson for BatchManifest {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let jobs = Vec::<JobSpec>::from_json(value.field("jobs")?)?;
        if jobs.is_empty() {
            return Err(JsonError("manifest has no jobs".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for job in &jobs {
            if !seen.insert(job.name.as_str()) {
                return Err(JsonError(format!("duplicate job name `{}`", job.name)));
            }
        }
        let faults = match value.get("faults") {
            None | Some(Json::Null) => FaultPlan::none(),
            Some(v) => FaultPlan::from_json(v).map_err(|e| JsonError(format!("faults: {e}")))?,
        };
        Ok(BatchManifest {
            jobs,
            faults,
            retries: opt_field(value, "retries")?.unwrap_or(0),
            deadline_ns: opt_field(value, "deadline_ns")?,
            checkpoint_every: opt_field(value, "checkpoint_every")?.unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"jobs": [
        {"name": "tiny", "synth": {"cells": 300, "nets": 320, "seed": 3},
         "max_iters": 120, "seed": 7},
        {"name": "board", "aux": "bench/board.aux", "density": 0.8,
         "baseline": true, "grid": 64, "deadline_ns": 5000000,
         "checkpoint_every": 25}
    ],
    "faults": [{"target": "board", "kind": "gp_panic", "iteration": 5,
                "times": 1}],
    "retries": 2, "checkpoint_every": 50}"#;

    #[test]
    fn good_manifest_parses_in_order() {
        let m = BatchManifest::parse(GOOD).unwrap();
        assert_eq!(m.jobs.len(), 2);
        assert_eq!(m.jobs[0].name, "tiny");
        assert_eq!(
            m.jobs[0].source,
            DesignSource::Synth {
                cells: 300,
                nets: 320,
                seed: 3,
                macros: 0
            }
        );
        assert_eq!(m.jobs[0].max_iters, Some(120));
        assert_eq!(m.jobs[0].seed, Some(7));
        assert!(!m.jobs[0].baseline);
        assert_eq!(
            m.jobs[1].source,
            DesignSource::Aux {
                path: PathBuf::from("bench/board.aux"),
                density: 0.8
            }
        );
        assert!(m.jobs[1].baseline);
        assert_eq!(m.jobs[1].grid, Some(64));
        assert_eq!(m.jobs[1].deadline_ns, Some(5_000_000));
        assert_eq!(m.jobs[1].checkpoint_every, Some(25));
        assert_eq!(m.retries, 2);
        assert_eq!(m.deadline_ns, None);
        assert_eq!(m.checkpoint_every, 50);
        assert_eq!(m.faults.gp_fault("board", 0).panic_at, Some(5));
        assert_eq!(m.faults.gp_fault("board", 1).panic_at, None);
    }

    #[test]
    fn robustness_policy_defaults_to_off() {
        let m =
            BatchManifest::parse(r#"{"jobs": [{"name": "d", "synth": {"cells": 100}}]}"#).unwrap();
        assert!(m.faults.is_empty());
        assert_eq!(m.retries, 0);
        assert_eq!(m.deadline_ns, None);
        assert_eq!(m.checkpoint_every, 0);
        assert_eq!(m, BatchManifest::plain(m.jobs.clone()));
    }

    #[test]
    fn malformed_fault_plans_are_rejected_with_context() {
        let err = BatchManifest::parse(
            r#"{"jobs": [{"name": "a", "synth": {"cells": 10}}],
                "faults": [{"target": "a", "kind": "nope"}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("faults:"), "{err}");
        assert!(err.to_string().contains("unknown fault kind"), "{err}");
    }

    #[test]
    fn synth_defaults_fill_in() {
        let m =
            BatchManifest::parse(r#"{"jobs": [{"name": "d", "synth": {"cells": 100}}]}"#).unwrap();
        assert_eq!(
            m.jobs[0].source,
            DesignSource::Synth {
                cells: 100,
                nets: 105,
                seed: 1,
                macros: 0
            }
        );
        let spec = m.jobs[0].source.synth_spec().unwrap();
        assert_eq!(spec.name, "synth_c100_n105_s1_m0");
        assert_eq!(spec.num_cells, 100);
    }

    #[test]
    fn config_applies_overrides() {
        let m = BatchManifest::parse(GOOD).unwrap();
        let cfg = m.jobs[0].config(4);
        assert_eq!(cfg.schedule.max_iterations, 120);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.fault, xplace_fault::GpFault::NONE);
        let cfg = m.jobs[1].config(0);
        assert_eq!(cfg.framework, xplace_core::Framework::DreamplaceLike);
        assert_eq!(cfg.grid, Some(64));
        // Faults are armed by the scheduler per attempt, never here.
        assert_eq!(cfg.fault, xplace_fault::GpFault::NONE);
        assert_eq!(cfg.threads, 1);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(BatchManifest::parse("{not json").is_err());
        let err = BatchManifest::parse("{}").unwrap_err();
        assert!(err.to_string().contains("jobs"), "{err}");
    }

    #[test]
    fn empty_job_list_is_rejected() {
        let err = BatchManifest::parse(r#"{"jobs": []}"#).unwrap_err();
        assert!(err.to_string().contains("no jobs"), "{err}");
    }

    #[test]
    fn duplicate_job_names_are_rejected() {
        let err = BatchManifest::parse(
            r#"{"jobs": [{"name": "a", "synth": {"cells": 10}},
                         {"name": "a", "synth": {"cells": 20}}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate job name `a`"), "{err}");
    }

    #[test]
    fn design_source_must_be_exactly_one() {
        let err = BatchManifest::parse(r#"{"jobs": [{"name": "a"}]}"#).unwrap_err();
        assert!(err.to_string().contains("no design source"), "{err}");
        let err = BatchManifest::parse(
            r#"{"jobs": [{"name": "a", "aux": "x.aux", "synth": {"cells": 10}}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("both `aux` and `synth`"), "{err}");
        let err = BatchManifest::parse(r#"{"jobs": [{"name": "a", "synth": {}}]}"#).unwrap_err();
        assert!(err.to_string().contains("cells"), "{err}");
    }

    #[test]
    fn bad_override_types_are_rejected_with_context() {
        let err = BatchManifest::parse(
            r#"{"jobs": [{"name": "a", "synth": {"cells": 10}, "max_iters": "lots"}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("max_iters"), "{err}");
    }

    #[test]
    fn empty_name_is_rejected() {
        let err = BatchManifest::parse(r#"{"jobs": [{"name": "", "synth": {"cells": 10}}]}"#)
            .unwrap_err();
        assert!(err.to_string().contains("non-empty"), "{err}");
    }
}
