//! Batch placement scheduling for the xplace workspace.
//!
//! The paper's workflow evaluates a placer across a *suite* of designs;
//! this crate runs such a suite as one batch over the persistent
//! [`xplace_parallel`] worker pool. The contract:
//!
//! * **Deterministic ordering** — results are keyed by job index (manifest
//!   order), never by completion order. Job `i`'s slot in the
//!   [`BatchReport`] and its trace are the same for every thread count.
//! * **Bit-identical to serial** — each job runs the exact GP → LG → DP
//!   flow a serial `xplace place` run would, and every kernel
//!   decomposition is thread-count-invariant, so a job's metrics and its
//!   JSON-lines trace are byte-identical to the serial run's.
//! * **Failure isolation** — each job is fenced by its own `catch_unwind`
//!   ([`WorkerPool::run_isolated`](xplace_parallel::WorkerPool::run_isolated)):
//!   a panicking or erroring design is reported as a failed [`JobRecord`]
//!   while its siblings complete normally.
//! * **Retry & recovery** — crashes (panics, injected sink write
//!   failures) are *retryable* up to the manifest's `retries` budget,
//!   with deterministic exponential backoff charged in modeled time;
//!   structured errors (load failures, divergence, poisoned manifest
//!   entries) are *fatal*. With `checkpoint_every > 0` each attempt
//!   snapshots GP state in memory, and a retry resumes from the latest
//!   snapshot — the resumed run's metrics are bit-identical to an
//!   uninterrupted run's by the core resume contract.
//! * **Deadlines** — a job whose modeled cost (GP modeled-ns + injected
//!   stalls + retry backoff) exceeds its modeled-ns deadline fails with
//!   [`DEADLINE_MSG`] and `deadline_exceeded` set in its record.
//! * **Shared caches** — jobs share one read-only [`DesignCache`], so a
//!   design placed under several configs is parsed or synthesized once,
//!   and spectral solver plans are reused across jobs of the same grid
//!   size through the process-wide DCT plan cache.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod manifest;
mod population;

pub use manifest::{BatchManifest, DesignSource, JobSpec};
pub use population::{run_population, PopulationOptions, PopulationOutcome};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use xplace_core::{Checkpoint, CheckpointOptions, GlobalPlacer, MemoryCheckpointStore};
use xplace_db::DesignCache;
use xplace_fault::{FaultPlan, GpFault};
use xplace_legal::{check_legality, detailed_place, legalize, DpConfig};
use xplace_route::{estimate_congestion, RouteConfig};
use xplace_telemetry::{
    BatchReport, CallbackSink, DpMetrics, JobRecord, LgMetrics, RouteMetrics, RunReport,
    TelemetrySink, VecSink,
};

/// The failure message of a job skipped because its batch was cancelled
/// before the job started. In-flight jobs are never interrupted — only
/// not-yet-started jobs observe the cancel flag.
pub const CANCELLED_MSG: &str = "cancelled before start";

/// The failure message of a job skipped because its requesting client
/// disconnected before the job started.
pub const DISCONNECTED_MSG: &str = "client disconnected before start";

/// The failure message of a job whose manifest entry is poisoned by the
/// fault plan: it fails fatally before any work starts and is never
/// retried.
pub const POISONED_MSG: &str = "poisoned manifest entry";

/// The failure-message prefix of a job that blew its modeled-ns deadline
/// (its record also sets [`JobRecord::deadline_exceeded`]).
pub const DEADLINE_MSG: &str = "deadline exceeded";

/// Deterministic retry backoff charged in modeled time: 1 ms doubling
/// per retry, capped at 64 ms. Pure arithmetic — no clocks — so retry
/// accounting is bit-identical on every run.
pub fn backoff_ns(retry: usize) -> u64 {
    (1_000_000u64 << retry.min(6)).min(64_000_000)
}

/// One completed job: its run summary plus the trace text a serial
/// `--trace` run would have written.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The run summary (same shape as `xplace place --report`).
    pub report: RunReport,
    /// JSON-lines telemetry trace (byte-identical to the serial run's).
    pub trace: String,
}

/// The result of a whole batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-job records in manifest order.
    pub report: BatchReport,
    /// Per-job traces in manifest order; `None` for failed jobs.
    pub traces: Vec<Option<String>>,
    /// Design-cache `(hits, misses)` across the batch.
    pub cache_stats: (usize, usize),
}

/// Runs one job of a manifest: load (through `cache`) → GP → LG → DP →
/// legality check → congestion estimate.
///
/// `threads` is the kernel launch width; it never changes metrics, only
/// wall-clock time. When the job runs on a pool worker (a concurrent
/// batch), nested kernel launches degrade to inline serial execution —
/// bit-identical by the workspace determinism contract.
///
/// # Errors
///
/// Returns the failure message that becomes the job's
/// [`JobRecord::error`]: design load errors, placement errors, and
/// legality-check failures. Panics (including injected GP faults) are
/// *not* caught here — [`run_batch`] fences them per job.
pub fn run_job(job: &JobSpec, threads: usize, cache: &DesignCache) -> Result<JobOutcome, String> {
    let mut sink = VecSink::new();
    let report = run_job_with_sink(job, threads, cache, &mut sink)?;
    Ok(JobOutcome {
        report,
        trace: sink.to_jsonl(),
    })
}

/// Like [`run_job`], but the caller supplies the telemetry sink — the
/// streaming entry point. With a
/// [`CallbackSink`](xplace_telemetry::CallbackSink) the job's trace
/// lines leave the process while GP iterates instead of buffering until
/// the job ends; with a [`VecSink`] this is exactly [`run_job`].
///
/// # Errors
///
/// Same contract as [`run_job`].
pub fn run_job_with_sink(
    job: &JobSpec,
    threads: usize,
    cache: &DesignCache,
    sink: &mut dyn TelemetrySink,
) -> Result<RunReport, String> {
    run_job_attempt(
        job,
        threads,
        cache,
        sink,
        GpFault::NONE,
        CheckpointOptions::none(),
    )
}

/// One attempt of a job under the scheduler's fault machinery: `fault`
/// is the GP fault resolved from the batch plan for this attempt, and
/// `ckpt` carries the checkpoint cadence/store plus an optional snapshot
/// to resume from.
fn run_job_attempt(
    job: &JobSpec,
    threads: usize,
    cache: &DesignCache,
    sink: &mut dyn TelemetrySink,
    fault: GpFault,
    ckpt: CheckpointOptions<'_>,
) -> Result<RunReport, String> {
    let mut design = match &job.source {
        DesignSource::Aux { path, density } => cache
            .get_or_read_aux(path, *density)
            .map_err(|e| format!("loading {}: {e}", path.display()))?,
        DesignSource::Synth { .. } => {
            let spec = job.source.synth_spec().expect("synth source has a spec");
            cache
                .get_or_synthesize(&spec)
                .map_err(|e| format!("synthesizing {}: {e}", spec.name))?
        }
    };
    let mut config = job.config(threads);
    config.fault = fault;
    let gp = GlobalPlacer::new(config.clone())
        .place_traced_opts(&mut design, sink, ckpt)
        .map_err(|e| format!("global placement: {e}"))?;
    let lg = legalize(&mut design).map_err(|e| format!("legalization: {e}"))?;
    let dp = detailed_place(&mut design, &DpConfig::default());
    check_legality(&design).map_err(|e| format!("legality check: {e}"))?;
    let congestion = estimate_congestion(&design, &RouteConfig::default());
    let report = RunReport {
        design: design.name().to_string(),
        cells: design.netlist().num_cells(),
        nets: design.netlist().num_nets(),
        config: config.echo(),
        threads: config.threads,
        gp: gp.gp_metrics(),
        lg: Some(LgMetrics {
            initial_hpwl: lg.initial_hpwl,
            final_hpwl: lg.final_hpwl,
            mean_displacement: lg.mean_displacement,
            max_displacement: lg.max_displacement,
            wall_seconds: lg.wall_seconds,
        }),
        dp: Some(DpMetrics {
            initial_hpwl: dp.initial_hpwl,
            final_hpwl: dp.final_hpwl,
            slides: dp.slides,
            reorders: dp.reorders,
            swaps: dp.swaps,
            wall_seconds: dp.wall_seconds,
        }),
        route: Some(RouteMetrics {
            top5_overflow: congestion.top_overflow(0.05),
            max_utilization: congestion.max_utilization(),
        }),
        spectral: None,
        scaling: None,
        explore: None,
        trace_error: None,
    };
    Ok(report)
}

/// One incremental progress notification of a running batch, delivered
/// to a [`BatchSession`] observer from whichever pool thread produced
/// it, the moment it is produced.
#[derive(Debug)]
pub enum BatchEvent<'a> {
    /// Job `job` is about to start executing on a pool thread. Skipped
    /// jobs (cancelled, disconnected) never emit this — a `JobStart` is
    /// the positive ack that the job's trace stream is live, which is
    /// what downstream fault injectors must arm on (a job can finish so
    /// fast that waiting for its *first trace line* races its
    /// completion).
    JobStart {
        /// Manifest index of the starting job.
        job: usize,
    },
    /// One rendered JSON trace line of job `job` (no trailing newline).
    /// Lines of a single job arrive in trace order; lines of different
    /// jobs interleave with pool scheduling.
    TraceLine {
        /// Manifest index of the job the line belongs to.
        job: usize,
        /// The rendered JSON-lines event text.
        line: &'a str,
    },
    /// Job `job` reached a terminal state.
    JobDone {
        /// Manifest index of the finished job.
        job: usize,
        /// The job's record (completed or failed), exactly as it will
        /// appear in the final [`BatchReport`].
        record: &'a JobRecord,
    },
}

/// How a batch executes: thread width, which design cache to warm, an
/// optional cancel flag, and an optional progress observer.
///
/// This is the manifest-source-agnostic submission path a long-running
/// service uses: manifests arrive as in-memory values (parsed from a
/// network request, built programmatically), the cache outlives any one
/// batch, and progress streams out while jobs run.
pub struct BatchSession<'a> {
    /// Kernel launch width shared by every job (never changes metrics).
    pub threads: usize,
    /// The design cache jobs load through. Passing the same cache to
    /// consecutive sessions keeps designs warm across batches; hit/miss
    /// accounting is exact (see [`DesignCache::stats`]).
    pub cache: &'a DesignCache,
    /// When set before a job starts, that job fails with
    /// [`CANCELLED_MSG`] instead of running. Jobs already in flight
    /// finish normally — cancellation drains, it never corrupts.
    pub cancel: Option<&'a AtomicBool>,
    /// Request-scoped cancel: set when the requesting client
    /// disconnects mid-stream. Unstarted jobs of *this* session fail
    /// with [`DISCONNECTED_MSG`]; in-flight jobs still drain to their
    /// bit-identical completion, and sessions sharing the pool or cache
    /// are untouched.
    pub client_gone: Option<&'a AtomicBool>,
    /// Progress callback; called from pool threads, so it must be
    /// `Sync`. `None` runs silently.
    pub observer: Option<&'a (dyn Fn(BatchEvent<'_>) + Sync)>,
}

impl<'a> std::fmt::Debug for BatchSession<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchSession")
            .field("threads", &self.threads)
            .field("cancel", &self.cancel.map(|c| c.load(Ordering::Relaxed)))
            .field(
                "client_gone",
                &self.client_gone.map(|c| c.load(Ordering::Relaxed)),
            )
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl<'a> BatchSession<'a> {
    /// A session over `cache` with neither cancellation nor observer.
    pub fn new(threads: usize, cache: &'a DesignCache) -> Self {
        BatchSession {
            threads,
            cache,
            cancel: None,
            client_gone: None,
            observer: None,
        }
    }

    /// Adds a cancel flag.
    pub fn with_cancel(mut self, cancel: &'a AtomicBool) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Adds a request-scoped client-disconnect flag.
    pub fn with_client_gone(mut self, client_gone: &'a AtomicBool) -> Self {
        self.client_gone = Some(client_gone);
        self
    }

    /// Adds a progress observer.
    pub fn with_observer(mut self, observer: &'a (dyn Fn(BatchEvent<'_>) + Sync)) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The skip message an unstarted job should fail with, if either
    /// cancel flag is set (batch-wide cancel wins).
    fn skip_reason(&self) -> Option<&'static str> {
        let raised =
            |flag: Option<&AtomicBool>| flag.map(|c| c.load(Ordering::Acquire)).unwrap_or(false);
        if raised(self.cancel) {
            Some(CANCELLED_MSG)
        } else if raised(self.client_gone) {
            Some(DISCONNECTED_MSG)
        } else {
            None
        }
    }
}

/// Runs every job of `manifest` concurrently on up to `threads` threads
/// of the process-wide worker pool, with a private design cache.
///
/// Jobs are dispatched with the pool's fixed task→executor mapping and
/// collected by job index, so the [`BatchOutcome`] is deterministic for
/// any thread count. A job that panics or errors becomes a failed
/// [`JobRecord`] (with the panic payload or error text) without
/// affecting its siblings — the batch itself always returns.
pub fn run_batch(manifest: &BatchManifest, threads: usize) -> BatchOutcome {
    let cache = DesignCache::new();
    run_batch_session(manifest, &BatchSession::new(threads, &cache))
}

/// [`run_batch`] against a caller-owned cache: consecutive batches share
/// design loads, which is how a serving daemon keeps caches warm across
/// requests. The returned [`BatchOutcome::cache_stats`] are the cache's
/// *cumulative* counters, not this batch's delta.
pub fn run_batch_with_cache(
    manifest: &BatchManifest,
    threads: usize,
    cache: &DesignCache,
) -> BatchOutcome {
    run_batch_session(manifest, &BatchSession::new(threads, cache))
}

/// The full-control batch entry point: runs `manifest` under `session`
/// (shared cache, optional cancellation, optional streaming observer).
///
/// Per job, the observer sees every trace line as it is emitted and one
/// terminal [`BatchEvent::JobDone`]; the returned [`BatchOutcome`] is
/// identical to [`run_batch`]'s for the same manifest and thread count
/// (byte-identical traces, same report) — observation never perturbs
/// execution.
pub fn run_batch_session(manifest: &BatchManifest, session: &BatchSession<'_>) -> BatchOutcome {
    let pool = xplace_parallel::global();
    let results = pool.run_isolated(manifest.jobs.len(), session.threads.max(1), |i| {
        let job = &manifest.jobs[i];
        let policy = JobPolicy {
            plan: &manifest.faults,
            retries: manifest.retries,
            deadline_ns: job.deadline_ns.or(manifest.deadline_ns),
            checkpoint_every: job.checkpoint_every.unwrap_or(manifest.checkpoint_every),
        };
        let (record, trace) = if let Some(reason) = session.skip_reason() {
            (JobRecord::failed(&job.name, reason), None)
        } else {
            if let Some(observer) = session.observer {
                observer(BatchEvent::JobStart { job: i });
            }
            run_job_fenced(job, i, session, &policy)
        };
        if let Some(observer) = session.observer {
            observer(BatchEvent::JobDone {
                job: i,
                record: &record,
            });
        }
        (record, trace)
    });
    let mut jobs = Vec::with_capacity(manifest.jobs.len());
    let mut traces = Vec::with_capacity(manifest.jobs.len());
    for (job, result) in manifest.jobs.iter().zip(results) {
        match result {
            Ok((record, trace)) => {
                jobs.push(record);
                traces.push(trace);
            }
            // Unreachable in practice (job panics are fenced inside the
            // task), but an observer panic still fails only its own job.
            Err(error) => {
                jobs.push(JobRecord::failed(&job.name, error));
                traces.push(None);
            }
        }
    }
    BatchOutcome {
        report: BatchReport::new(jobs),
        traces,
        cache_stats: session.cache.stats(),
    }
}

/// Per-job robustness policy, resolved from the manifest.
struct JobPolicy<'a> {
    plan: &'a FaultPlan,
    retries: usize,
    deadline_ns: Option<u64>,
    checkpoint_every: usize,
}

/// How one attempt of a job ended.
enum AttemptEnd {
    /// The full flow finished and produced a report.
    Completed(RunReport),
    /// The attempt crashed (panic — including injected sink write
    /// failures). Retryable.
    Crashed(String),
    /// The attempt returned a structured error (load failure,
    /// divergence, legality failure). Fatal.
    Errored(String),
}

/// Runs one job with its own panic fence, retry loop, and deadline
/// accounting, streaming trace lines to the session observer while
/// accumulating the trace text of the current attempt.
///
/// Classification: *crashes* (panics, which is how injected GP faults
/// and sink write faults surface) are retried up to `policy.retries`
/// times with deterministic modeled-time backoff; *structured errors*
/// are fatal on first sight. With a checkpoint cadence, retries resume
/// from the latest in-memory snapshot of the crashed attempt, so a
/// recovered job's metrics are bit-identical to an uninterrupted run's;
/// its stored trace is the successful attempt's trace (a resume suffix
/// when a snapshot was available).
fn run_job_fenced(
    job: &JobSpec,
    index: usize,
    session: &BatchSession<'_>,
    policy: &JobPolicy<'_>,
) -> (JobRecord, Option<String>) {
    if policy.plan.poisoned(&job.name) {
        return (JobRecord::failed(&job.name, POISONED_MSG), None);
    }
    let store = MemoryCheckpointStore::new();
    // Modeled-time cost of the job beyond placement itself: injected
    // stalls plus retry backoff. Charged against the deadline.
    let mut overhead_ns: u64 = 0;
    let mut attempt = 0;
    loop {
        overhead_ns += policy.plan.stall_ns(&job.name, attempt);
        let resumed: Option<(usize, Checkpoint)> = if attempt > 0 && policy.checkpoint_every > 0 {
            store.latest().ok().flatten()
        } else {
            None
        };
        let (end, trace) = run_one_attempt(job, index, session, policy, attempt, &store, &resumed);
        match end {
            AttemptEnd::Completed(report) => {
                let total_ns = overhead_ns.saturating_add(report.gp.modeled_ns);
                if let Some(deadline) = policy.deadline_ns {
                    if total_ns > deadline {
                        let record = JobRecord::failed(
                            &job.name,
                            format!("{DEADLINE_MSG}: {total_ns} modeled ns > {deadline} ns"),
                        )
                        .with_fault_stats(attempt, store.saves(), true);
                        return (record, None);
                    }
                }
                let record = JobRecord::completed(&job.name, report).with_fault_stats(
                    attempt,
                    store.saves(),
                    false,
                );
                return (record, Some(trace));
            }
            AttemptEnd::Errored(error) => {
                let record = JobRecord::failed(&job.name, error).with_fault_stats(
                    attempt,
                    store.saves(),
                    false,
                );
                return (record, None);
            }
            AttemptEnd::Crashed(error) => {
                if attempt >= policy.retries {
                    let record = JobRecord::failed(&job.name, error).with_fault_stats(
                        attempt,
                        store.saves(),
                        false,
                    );
                    return (record, None);
                }
                overhead_ns += backoff_ns(attempt);
                if let Some(deadline) = policy.deadline_ns {
                    if overhead_ns > deadline {
                        let record = JobRecord::failed(
                            &job.name,
                            format!(
                                "{DEADLINE_MSG} during retry backoff: \
                                 {overhead_ns} modeled ns > {deadline} ns ({error})"
                            ),
                        )
                        .with_fault_stats(attempt, store.saves(), true);
                        return (record, None);
                    }
                }
                attempt += 1;
            }
        }
    }
}

/// One fenced attempt: resolves the attempt's faults from the plan,
/// wires the checkpoint store (and any resume snapshot) into the run,
/// and injects the sink byte budget into the trace callback.
fn run_one_attempt(
    job: &JobSpec,
    index: usize,
    session: &BatchSession<'_>,
    policy: &JobPolicy<'_>,
    attempt: usize,
    store: &MemoryCheckpointStore,
    resumed: &Option<(usize, Checkpoint)>,
) -> (AttemptEnd, String) {
    let gp_fault = policy.plan.gp_fault(&job.name, attempt);
    let sink_budget = policy.plan.sink_error_after(&job.name, attempt);
    let ckpt = if policy.checkpoint_every > 0 {
        CheckpointOptions {
            every: policy.checkpoint_every,
            store: Some(store),
            resume: resumed.as_ref().map(|(_, cp)| cp),
            stop_at: None,
        }
    } else {
        CheckpointOptions::none()
    };
    let mut trace = String::new();
    let result = {
        let trace = &mut trace;
        let mut budget = sink_budget;
        let mut sink = CallbackSink::new(|line: &str| {
            // The injected sink fault: once the byte budget is spent,
            // the next line "fails to write" — surfaced as a crash so
            // the retry loop classifies it as retryable.
            if let Some(remaining) = budget.as_mut() {
                let bytes = line.len() + 1;
                if bytes > *remaining {
                    panic!("{}", xplace_fault::INJECTED_WRITE_ERROR);
                }
                *remaining -= bytes;
            }
            trace.push_str(line);
            trace.push('\n');
            if let Some(observer) = session.observer {
                observer(BatchEvent::TraceLine { job: index, line });
            }
        });
        catch_unwind(AssertUnwindSafe(|| {
            run_job_attempt(
                job,
                session.threads,
                session.cache,
                &mut sink,
                gp_fault,
                ckpt,
            )
        }))
    };
    let end = match result {
        Ok(Ok(report)) => AttemptEnd::Completed(report),
        Ok(Err(error)) => AttemptEnd::Errored(error),
        Err(payload) => AttemptEnd::Crashed(xplace_parallel::panic_message(payload.as_ref())),
    };
    (end, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplace_telemetry::{JobStatus, ToJson};

    fn manifest(jobs: &str) -> BatchManifest {
        BatchManifest::parse(&format!("{{\"jobs\": [{jobs}]}}")).expect("test manifest parses")
    }

    const TINY_A: &str =
        r#"{"name": "a", "synth": {"cells": 200, "nets": 210, "seed": 3}, "max_iters": 60}"#;
    const TINY_B: &str =
        r#"{"name": "b", "synth": {"cells": 220, "nets": 230, "seed": 4}, "max_iters": 60}"#;

    #[test]
    fn batch_matches_serial_for_any_thread_count() {
        let m = manifest(&format!("{TINY_A}, {TINY_B}"));
        let serial_cache = DesignCache::new();
        let serial: Vec<JobOutcome> = m
            .jobs
            .iter()
            .map(|j| run_job(j, 1, &serial_cache).unwrap())
            .collect();
        for threads in [1, 4] {
            let batch = run_batch(&m, threads);
            assert!(batch.report.all_completed());
            for (i, job) in batch.report.jobs.iter().enumerate() {
                let got = job.report.as_ref().unwrap();
                let want = &serial[i].report;
                assert_eq!(
                    got.final_hpwl().to_bits(),
                    want.final_hpwl().to_bits(),
                    "job {i} HPWL diverged at {threads} threads"
                );
                assert_eq!(
                    got.gp.final_overflow.to_bits(),
                    want.gp.final_overflow.to_bits()
                );
                assert_eq!(
                    batch.traces[i].as_deref(),
                    Some(serial[i].trace.as_str()),
                    "job {i} trace diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn failing_job_is_isolated_from_siblings() {
        let broken = r#"{"name": "broken", "synth": {"cells": 200, "nets": 210, "seed": 3},
                "max_iters": 60}"#;
        let m = BatchManifest::parse(&format!(
            r#"{{"jobs": [{TINY_A}, {broken}, {TINY_B}],
                 "faults": [{{"target": "broken", "kind": "gp_panic", "iteration": 5}}]}}"#
        ))
        .unwrap();
        let batch = run_batch(&m, 4);
        assert_eq!(batch.report.total(), 3);
        assert_eq!(batch.report.failed(), 1);
        let record = batch.report.job("broken").unwrap();
        assert_eq!(record.status, JobStatus::Failed);
        assert!(
            record
                .error
                .as_deref()
                .unwrap()
                .contains("injected failure at GP iteration 5"),
            "{:?}",
            record.error
        );
        assert!(record.report.is_none());
        assert_eq!(record.retries, 0, "no retry budget was configured");
        assert!(batch.traces[1].is_none());
        for name in ["a", "b"] {
            let sibling = batch.report.job(name).unwrap();
            assert_eq!(sibling.status, JobStatus::Completed, "{name} must finish");
            assert!(sibling.report.as_ref().unwrap().final_hpwl() > 0.0);
        }
    }

    #[test]
    fn transient_crash_is_retried_to_a_bit_identical_completion() {
        // The fault fires on attempt 0 only; with one retry and a
        // checkpoint cadence, the job recovers by resuming the crashed
        // attempt's latest snapshot. The recovered report must be
        // bit-identical to a fault-free run's.
        let flaky = r#"{"name": "flaky", "synth": {"cells": 200, "nets": 210, "seed": 3},
                "max_iters": 60}"#;
        let faulted = BatchManifest::parse(&format!(
            r#"{{"jobs": [{flaky}],
                 "faults": [{{"target": "flaky", "kind": "gp_panic",
                              "iteration": 40, "times": 1}}],
                 "retries": 1, "checkpoint_every": 10}}"#
        ))
        .unwrap();
        let clean = BatchManifest::parse(&format!(r#"{{"jobs": [{flaky}]}}"#)).unwrap();
        let recovered = run_batch(&faulted, 2);
        let reference = run_batch(&clean, 2);
        assert!(recovered.report.all_completed(), "{:?}", recovered.report);
        let got = recovered.report.jobs[0].report.as_ref().unwrap();
        let want = reference.report.jobs[0].report.as_ref().unwrap();
        assert_eq!(got.final_hpwl().to_bits(), want.final_hpwl().to_bits());
        assert_eq!(got.gp.modeled_ns, want.gp.modeled_ns);
        assert_eq!(got.gp.iterations, want.gp.iterations);
        let record = &recovered.report.jobs[0];
        assert_eq!(record.retries, 1);
        assert!(record.checkpoints > 0, "snapshots must have been saved");
        assert!(!record.deadline_exceeded);
        // The recovered trace is the resumed suffix: its tail must be a
        // byte-exact suffix of the fault-free trace.
        let full = reference.traces[0].as_deref().unwrap();
        let resumed = recovered.traces[0].as_deref().unwrap();
        let tail: Vec<&str> = resumed.lines().skip(1).collect();
        let full_lines: Vec<&str> = full.lines().collect();
        assert!(!tail.is_empty() && tail.len() < full_lines.len());
        assert_eq!(&full_lines[full_lines.len() - tail.len()..], &tail[..]);
    }

    #[test]
    fn sink_write_fault_is_retryable() {
        // Attempt 0 hits the injected write fault after 2 KiB of trace;
        // attempt 1 is fault-free and completes.
        let torn = r#"{"name": "torn", "synth": {"cells": 200, "nets": 210, "seed": 3},
                "max_iters": 60}"#;
        let m = BatchManifest::parse(&format!(
            r#"{{"jobs": [{torn}],
                 "faults": [{{"target": "torn", "kind": "sink_error",
                              "after_bytes": 2048, "times": 1}}],
                 "retries": 1}}"#
        ))
        .unwrap();
        let batch = run_batch(&m, 2);
        assert!(batch.report.all_completed(), "{:?}", batch.report);
        assert_eq!(batch.report.jobs[0].retries, 1);
        // Without a retry budget the same fault is terminal.
        let mut exhausted = m.clone();
        exhausted.retries = 0;
        let batch = run_batch(&exhausted, 2);
        assert_eq!(batch.report.failed(), 1);
        assert!(
            batch.report.jobs[0]
                .error
                .as_deref()
                .unwrap()
                .contains(xplace_fault::INJECTED_WRITE_ERROR),
            "{:?}",
            batch.report.jobs[0].error
        );
    }

    #[test]
    fn poisoned_manifest_entry_fails_fatally_without_retries() {
        let m = BatchManifest::parse(&format!(
            r#"{{"jobs": [{TINY_A}],
                 "faults": [{{"target": "a", "kind": "poison_manifest"}}],
                 "retries": 3}}"#
        ))
        .unwrap();
        let batch = run_batch(&m, 2);
        assert_eq!(batch.report.failed(), 1);
        let record = &batch.report.jobs[0];
        assert_eq!(record.error.as_deref(), Some(POISONED_MSG));
        assert_eq!(record.retries, 0, "poisoned jobs are never attempted");
        assert_eq!(batch.cache_stats, (0, 0), "no design was ever loaded");
    }

    #[test]
    fn stall_fault_blows_a_modeled_deadline() {
        // The job itself would finish well under the deadline; the
        // injected stall pushes the modeled cost past it.
        let slow = r#"{"name": "slow", "synth": {"cells": 200, "nets": 210, "seed": 3},
                "max_iters": 60}"#;
        let m = BatchManifest::parse(&format!(
            r#"{{"jobs": [{slow}],
                 "faults": [{{"target": "slow", "kind": "stall",
                              "modeled_ns": 1000000000000}}],
                 "deadline_ns": 1000000000}}"#
        ))
        .unwrap();
        let batch = run_batch(&m, 2);
        assert_eq!(batch.report.failed(), 1);
        let record = &batch.report.jobs[0];
        assert!(record.deadline_exceeded);
        assert!(
            record.error.as_deref().unwrap().starts_with(DEADLINE_MSG),
            "{:?}",
            record.error
        );
        assert!(batch
            .report
            .to_json_string()
            .contains("\"deadline_exceeded\":1"));
        // Without the stall the same deadline is comfortably met.
        let mut clean = m.clone();
        clean.faults = xplace_fault::FaultPlan::none();
        let batch = run_batch(&clean, 2);
        assert!(batch.report.all_completed(), "{:?}", batch.report);
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        assert_eq!(backoff_ns(0), 1_000_000);
        assert_eq!(backoff_ns(1), 2_000_000);
        assert_eq!(backoff_ns(5), 32_000_000);
        assert_eq!(backoff_ns(6), 64_000_000);
        assert_eq!(backoff_ns(60), 64_000_000);
    }

    #[test]
    fn load_errors_fail_the_job_not_the_batch() {
        let missing = r#"{"name": "missing", "aux": "/nonexistent/never.aux"}"#;
        let m = manifest(&format!("{TINY_A}, {missing}"));
        let batch = run_batch(&m, 2);
        assert_eq!(batch.report.completed(), 1);
        let record = batch.report.job("missing").unwrap();
        assert_eq!(record.status, JobStatus::Failed);
        assert!(
            record.error.as_deref().unwrap().contains("never.aux"),
            "{:?}",
            record.error
        );
    }

    #[test]
    fn same_design_is_loaded_once_across_jobs() {
        // Two jobs, same synth spec, different placer seeds: one cache
        // miss, one hit, and the runs still differ (seed is a placer
        // parameter, not a design parameter).
        let m = manifest(
            r#"{"name": "s1", "synth": {"cells": 200, "nets": 210, "seed": 3},
                "max_iters": 60, "seed": 1},
               {"name": "s2", "synth": {"cells": 200, "nets": 210, "seed": 3},
                "max_iters": 60, "seed": 2}"#,
        );
        let batch = run_batch(&m, 2);
        assert!(batch.report.all_completed());
        assert_eq!(batch.cache_stats, (1, 1));
        let h1 = batch.report.jobs[0].report.as_ref().unwrap().final_hpwl();
        let h2 = batch.report.jobs[1].report.as_ref().unwrap().final_hpwl();
        assert_ne!(h1.to_bits(), h2.to_bits());
    }

    #[test]
    fn in_memory_manifest_runs_without_touching_disk() {
        // The submission path a network service uses: a manifest built
        // programmatically (no file, no JSON text) runs identically to
        // the same manifest parsed from disk-shaped text.
        let built = BatchManifest::plain(vec![JobSpec {
            name: "a".into(),
            source: DesignSource::Synth {
                cells: 200,
                nets: 210,
                seed: 3,
                macros: 0,
            },
            max_iters: Some(60),
            seed: None,
            baseline: false,
            grid: None,
            deadline_ns: None,
            checkpoint_every: None,
        }]);
        let parsed = manifest(TINY_A);
        assert_eq!(built, parsed, "programmatic and parsed manifests agree");
        let from_built = run_batch(&built, 2);
        let from_parsed = run_batch(&parsed, 2);
        assert!(from_built.report.all_completed());
        assert_eq!(from_built.traces, from_parsed.traces);
    }

    #[test]
    fn warm_cache_hit_counts_are_exact_across_consecutive_batches() {
        // Two consecutive batches over one shared cache — the serving
        // pattern. Batch 1 (two jobs, same design): 1 miss + 1 hit.
        // Batch 2 (same design again, twice): 2 more hits, 0 misses.
        let m = manifest(
            r#"{"name": "s1", "synth": {"cells": 200, "nets": 210, "seed": 3},
                "max_iters": 60, "seed": 1},
               {"name": "s2", "synth": {"cells": 200, "nets": 210, "seed": 3},
                "max_iters": 60, "seed": 2}"#,
        );
        let cache = DesignCache::new();
        let first = run_batch_with_cache(&m, 2, &cache);
        assert!(first.report.all_completed());
        assert_eq!(first.cache_stats, (1, 1), "cold batch: one miss, one hit");
        let second = run_batch_with_cache(&m, 2, &cache);
        assert!(second.report.all_completed());
        assert_eq!(
            second.cache_stats,
            (3, 1),
            "warm batch: both jobs hit, no new misses"
        );
        // Warm-cache runs are byte-identical to cold-cache runs.
        assert_eq!(first.traces, second.traces);
    }

    #[test]
    fn cancelled_batch_skips_unstarted_jobs() {
        let m = manifest(&format!("{TINY_A}, {TINY_B}"));
        let cancel = AtomicBool::new(true);
        let cache = DesignCache::new();
        let session = BatchSession::new(1, &cache).with_cancel(&cancel);
        let outcome = run_batch_session(&m, &session);
        assert_eq!(outcome.report.failed(), 2);
        for record in &outcome.report.jobs {
            assert_eq!(record.error.as_deref(), Some(CANCELLED_MSG));
        }
        assert_eq!(outcome.cache_stats, (0, 0), "no design was ever loaded");
    }

    #[test]
    fn departed_client_skips_unstarted_jobs_and_drains_the_in_flight_one() {
        // Width 1 makes execution sequential: the client "disconnects"
        // after job 0 completes, so job 0 must drain bit-identically and
        // job 1 must be skipped with the disconnect message (distinct
        // from CANCELLED_MSG — a sibling's drain is not a shutdown).
        let m = manifest(&format!("{TINY_A}, {TINY_B}"));
        let gone = AtomicBool::new(false);
        let cache = DesignCache::new();
        let observer = |event: BatchEvent<'_>| {
            if let BatchEvent::JobDone { job: 0, .. } = event {
                gone.store(true, Ordering::Release);
            }
        };
        let session = BatchSession::new(1, &cache)
            .with_client_gone(&gone)
            .with_observer(&observer);
        let outcome = run_batch_session(&m, &session);
        assert_eq!(outcome.report.jobs[0].status, JobStatus::Completed);
        assert_eq!(
            outcome.report.jobs[1].error.as_deref(),
            Some(DISCONNECTED_MSG),
            "jobs after the disconnect must be skipped, not run for nobody"
        );
        let reference = run_batch(&m, 1);
        assert_eq!(outcome.traces[0], reference.traces[0]);

        // When both a drain and a disconnect are pending, the batch-wide
        // cancel wins the skip message.
        let cancel = AtomicBool::new(true);
        let gone = AtomicBool::new(true);
        let session = BatchSession::new(1, &cache)
            .with_cancel(&cancel)
            .with_client_gone(&gone);
        let outcome = run_batch_session(&m, &session);
        for record in &outcome.report.jobs {
            assert_eq!(record.error.as_deref(), Some(CANCELLED_MSG));
        }
    }

    #[test]
    fn cancel_mid_batch_drains_in_flight_job_and_skips_the_rest() {
        // Width 1 makes execution sequential: the observer cancels after
        // job 0 completes, so job 0 must finish cleanly (drained, trace
        // intact) and job 1 must be skipped.
        let m = manifest(&format!("{TINY_A}, {TINY_B}"));
        let cancel = AtomicBool::new(false);
        let cache = DesignCache::new();
        let observer = |event: BatchEvent<'_>| {
            if let BatchEvent::JobDone { job: 0, .. } = event {
                cancel.store(true, Ordering::Release);
            }
        };
        let session = BatchSession::new(1, &cache)
            .with_cancel(&cancel)
            .with_observer(&observer);
        let outcome = run_batch_session(&m, &session);
        assert_eq!(outcome.report.jobs[0].status, JobStatus::Completed);
        assert_eq!(
            outcome.report.jobs[1].error.as_deref(),
            Some(CANCELLED_MSG),
            "job after the cancel point must be skipped"
        );
        // The drained job is bit-identical to an uncancelled run's.
        let reference = run_batch(&m, 1);
        assert_eq!(outcome.traces[0], reference.traces[0]);
    }

    #[test]
    fn observer_streams_the_exact_trace_bytes() {
        use std::sync::Mutex;
        let m = manifest(&format!("{TINY_A}, {TINY_B}"));
        let streamed: Mutex<Vec<String>> = Mutex::new(vec![String::new(), String::new()]);
        let started: Mutex<Vec<bool>> = Mutex::new(vec![false, false]);
        let done: Mutex<Vec<bool>> = Mutex::new(vec![false, false]);
        let observer = |event: BatchEvent<'_>| match event {
            BatchEvent::JobStart { job } => {
                started.lock().unwrap()[job] = true;
            }
            BatchEvent::TraceLine { job, line } => {
                assert!(
                    started.lock().unwrap()[job],
                    "job {job}: trace lines must follow the start ack"
                );
                let mut s = streamed.lock().unwrap();
                s[job].push_str(line);
                s[job].push('\n');
            }
            BatchEvent::JobDone { job, record } => {
                assert_eq!(record.status, JobStatus::Completed);
                done.lock().unwrap()[job] = true;
            }
        };
        let cache = DesignCache::new();
        let session = BatchSession::new(4, &cache).with_observer(&observer);
        let outcome = run_batch_session(&m, &session);
        assert!(outcome.report.all_completed());
        assert_eq!(*started.lock().unwrap(), vec![true, true]);
        assert_eq!(*done.lock().unwrap(), vec![true, true]);
        let streamed = streamed.lock().unwrap();
        for (i, trace) in outcome.traces.iter().enumerate() {
            assert_eq!(
                Some(streamed[i].as_str()),
                trace.as_deref(),
                "job {i}: streamed lines must reassemble the stored trace"
            );
        }
        // And observation never perturbs the run.
        let silent = run_batch(&m, 4);
        assert_eq!(silent.traces, outcome.traces);
    }

    #[test]
    fn batch_is_reproducible_run_to_run() {
        let m = manifest(&format!("{TINY_A}, {TINY_B}"));
        let first = run_batch(&m, 4);
        let second = run_batch(&m, 2);
        assert_eq!(first.traces, second.traces);
        let cmp = xplace_telemetry::compare_batch_reports(
            &first.report,
            &second.report,
            &xplace_telemetry::Tolerances::default(),
        );
        assert!(cmp.passed(), "{:?}", cmp.failures);
    }
}
