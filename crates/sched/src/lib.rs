//! Batch placement scheduling for the xplace workspace.
//!
//! The paper's workflow evaluates a placer across a *suite* of designs;
//! this crate runs such a suite as one batch over the persistent
//! [`xplace_parallel`] worker pool. The contract:
//!
//! * **Deterministic ordering** — results are keyed by job index (manifest
//!   order), never by completion order. Job `i`'s slot in the
//!   [`BatchReport`] and its trace are the same for every thread count.
//! * **Bit-identical to serial** — each job runs the exact GP → LG → DP
//!   flow a serial `xplace place` run would, and every kernel
//!   decomposition is thread-count-invariant, so a job's metrics and its
//!   JSON-lines trace are byte-identical to the serial run's.
//! * **Failure isolation** — each job is fenced by its own `catch_unwind`
//!   ([`WorkerPool::run_isolated`](xplace_parallel::WorkerPool::run_isolated)):
//!   a panicking or erroring design is reported as a failed [`JobRecord`]
//!   while its siblings complete normally.
//! * **Shared caches** — jobs share one read-only [`DesignCache`], so a
//!   design placed under several configs is parsed or synthesized once,
//!   and spectral solver plans are reused across jobs of the same grid
//!   size through the process-wide DCT plan cache.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod manifest;

pub use manifest::{BatchManifest, DesignSource, JobSpec};

use xplace_core::GlobalPlacer;
use xplace_db::DesignCache;
use xplace_legal::{check_legality, detailed_place, legalize, DpConfig};
use xplace_route::{estimate_congestion, RouteConfig};
use xplace_telemetry::{
    BatchReport, DpMetrics, JobRecord, LgMetrics, RouteMetrics, RunReport, VecSink,
};

/// One completed job: its run summary plus the trace text a serial
/// `--trace` run would have written.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The run summary (same shape as `xplace place --report`).
    pub report: RunReport,
    /// JSON-lines telemetry trace (byte-identical to the serial run's).
    pub trace: String,
}

/// The result of a whole batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-job records in manifest order.
    pub report: BatchReport,
    /// Per-job traces in manifest order; `None` for failed jobs.
    pub traces: Vec<Option<String>>,
    /// Design-cache `(hits, misses)` across the batch.
    pub cache_stats: (usize, usize),
}

/// Runs one job of a manifest: load (through `cache`) → GP → LG → DP →
/// legality check → congestion estimate.
///
/// `threads` is the kernel launch width; it never changes metrics, only
/// wall-clock time. When the job runs on a pool worker (a concurrent
/// batch), nested kernel launches degrade to inline serial execution —
/// bit-identical by the workspace determinism contract.
///
/// # Errors
///
/// Returns the failure message that becomes the job's
/// [`JobRecord::error`]: design load errors, placement errors, and
/// legality-check failures. Panics (including the `fail_at` fault hook)
/// are *not* caught here — [`run_batch`] fences them per job.
pub fn run_job(job: &JobSpec, threads: usize, cache: &DesignCache) -> Result<JobOutcome, String> {
    let mut design = match &job.source {
        DesignSource::Aux { path, density } => cache
            .get_or_read_aux(path, *density)
            .map_err(|e| format!("loading {}: {e}", path.display()))?,
        DesignSource::Synth { .. } => {
            let spec = job.source.synth_spec().expect("synth source has a spec");
            cache
                .get_or_synthesize(&spec)
                .map_err(|e| format!("synthesizing {}: {e}", spec.name))?
        }
    };
    let config = job.config(threads);
    let mut sink = VecSink::new();
    let gp = GlobalPlacer::new(config.clone())
        .place_traced(&mut design, &mut sink)
        .map_err(|e| format!("global placement: {e}"))?;
    let lg = legalize(&mut design).map_err(|e| format!("legalization: {e}"))?;
    let dp = detailed_place(&mut design, &DpConfig::default());
    check_legality(&design).map_err(|e| format!("legality check: {e}"))?;
    let congestion = estimate_congestion(&design, &RouteConfig::default());
    let report = RunReport {
        design: design.name().to_string(),
        cells: design.netlist().num_cells(),
        nets: design.netlist().num_nets(),
        config: config.echo(),
        threads: config.threads,
        gp: gp.gp_metrics(),
        lg: Some(LgMetrics {
            initial_hpwl: lg.initial_hpwl,
            final_hpwl: lg.final_hpwl,
            mean_displacement: lg.mean_displacement,
            max_displacement: lg.max_displacement,
            wall_seconds: lg.wall_seconds,
        }),
        dp: Some(DpMetrics {
            initial_hpwl: dp.initial_hpwl,
            final_hpwl: dp.final_hpwl,
            slides: dp.slides,
            reorders: dp.reorders,
            swaps: dp.swaps,
            wall_seconds: dp.wall_seconds,
        }),
        route: Some(RouteMetrics {
            top5_overflow: congestion.top_overflow(0.05),
            max_utilization: congestion.max_utilization(),
        }),
    };
    Ok(JobOutcome {
        report,
        trace: sink.to_jsonl(),
    })
}

/// Runs every job of `manifest` concurrently on up to `threads` threads
/// of the process-wide worker pool.
///
/// Jobs are dispatched with the pool's fixed task→executor mapping and
/// collected by job index, so the [`BatchOutcome`] is deterministic for
/// any thread count. A job that panics or errors becomes a failed
/// [`JobRecord`] (with the panic payload or error text) without
/// affecting its siblings — the batch itself always returns.
pub fn run_batch(manifest: &BatchManifest, threads: usize) -> BatchOutcome {
    let cache = DesignCache::new();
    let pool = xplace_parallel::global();
    let results = pool.run_isolated(manifest.jobs.len(), threads.max(1), |i| {
        run_job(&manifest.jobs[i], threads, &cache)
    });
    let mut jobs = Vec::with_capacity(manifest.jobs.len());
    let mut traces = Vec::with_capacity(manifest.jobs.len());
    for (job, result) in manifest.jobs.iter().zip(results) {
        match result {
            Ok(Ok(outcome)) => {
                jobs.push(JobRecord::completed(&job.name, outcome.report));
                traces.push(Some(outcome.trace));
            }
            Ok(Err(error)) | Err(error) => {
                jobs.push(JobRecord::failed(&job.name, error));
                traces.push(None);
            }
        }
    }
    BatchOutcome {
        report: BatchReport::new(jobs),
        traces,
        cache_stats: cache.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplace_telemetry::JobStatus;

    fn manifest(jobs: &str) -> BatchManifest {
        BatchManifest::parse(&format!("{{\"jobs\": [{jobs}]}}")).expect("test manifest parses")
    }

    const TINY_A: &str =
        r#"{"name": "a", "synth": {"cells": 200, "nets": 210, "seed": 3}, "max_iters": 60}"#;
    const TINY_B: &str =
        r#"{"name": "b", "synth": {"cells": 220, "nets": 230, "seed": 4}, "max_iters": 60}"#;

    #[test]
    fn batch_matches_serial_for_any_thread_count() {
        let m = manifest(&format!("{TINY_A}, {TINY_B}"));
        let serial_cache = DesignCache::new();
        let serial: Vec<JobOutcome> = m
            .jobs
            .iter()
            .map(|j| run_job(j, 1, &serial_cache).unwrap())
            .collect();
        for threads in [1, 4] {
            let batch = run_batch(&m, threads);
            assert!(batch.report.all_completed());
            for (i, job) in batch.report.jobs.iter().enumerate() {
                let got = job.report.as_ref().unwrap();
                let want = &serial[i].report;
                assert_eq!(
                    got.final_hpwl().to_bits(),
                    want.final_hpwl().to_bits(),
                    "job {i} HPWL diverged at {threads} threads"
                );
                assert_eq!(
                    got.gp.final_overflow.to_bits(),
                    want.gp.final_overflow.to_bits()
                );
                assert_eq!(
                    batch.traces[i].as_deref(),
                    Some(serial[i].trace.as_str()),
                    "job {i} trace diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn failing_job_is_isolated_from_siblings() {
        let broken = r#"{"name": "broken", "synth": {"cells": 200, "nets": 210, "seed": 3},
                "max_iters": 60, "fail_at": 5}"#;
        let m = manifest(&format!("{TINY_A}, {broken}, {TINY_B}"));
        let batch = run_batch(&m, 4);
        assert_eq!(batch.report.total(), 3);
        assert_eq!(batch.report.failed(), 1);
        let record = batch.report.job("broken").unwrap();
        assert_eq!(record.status, JobStatus::Failed);
        assert!(
            record
                .error
                .as_deref()
                .unwrap()
                .contains("injected failure at GP iteration 5"),
            "{:?}",
            record.error
        );
        assert!(record.report.is_none());
        assert!(batch.traces[1].is_none());
        for name in ["a", "b"] {
            let sibling = batch.report.job(name).unwrap();
            assert_eq!(sibling.status, JobStatus::Completed, "{name} must finish");
            assert!(sibling.report.as_ref().unwrap().final_hpwl() > 0.0);
        }
    }

    #[test]
    fn load_errors_fail_the_job_not_the_batch() {
        let missing = r#"{"name": "missing", "aux": "/nonexistent/never.aux"}"#;
        let m = manifest(&format!("{TINY_A}, {missing}"));
        let batch = run_batch(&m, 2);
        assert_eq!(batch.report.completed(), 1);
        let record = batch.report.job("missing").unwrap();
        assert_eq!(record.status, JobStatus::Failed);
        assert!(
            record.error.as_deref().unwrap().contains("never.aux"),
            "{:?}",
            record.error
        );
    }

    #[test]
    fn same_design_is_loaded_once_across_jobs() {
        // Two jobs, same synth spec, different placer seeds: one cache
        // miss, one hit, and the runs still differ (seed is a placer
        // parameter, not a design parameter).
        let m = manifest(
            r#"{"name": "s1", "synth": {"cells": 200, "nets": 210, "seed": 3},
                "max_iters": 60, "seed": 1},
               {"name": "s2", "synth": {"cells": 200, "nets": 210, "seed": 3},
                "max_iters": 60, "seed": 2}"#,
        );
        let batch = run_batch(&m, 2);
        assert!(batch.report.all_completed());
        assert_eq!(batch.cache_stats, (1, 1));
        let h1 = batch.report.jobs[0].report.as_ref().unwrap().final_hpwl();
        let h2 = batch.report.jobs[1].report.as_ref().unwrap().final_hpwl();
        assert_ne!(h1.to_bits(), h2.to_bits());
    }

    #[test]
    fn batch_is_reproducible_run_to_run() {
        let m = manifest(&format!("{TINY_A}, {TINY_B}"));
        let first = run_batch(&m, 4);
        let second = run_batch(&m, 2);
        assert_eq!(first.traces, second.traces);
        let cmp = xplace_telemetry::compare_batch_reports(
            &first.report,
            &second.report,
            &xplace_telemetry::Tolerances::default(),
        );
        assert!(cmp.passed(), "{:?}", cmp.failures);
    }
}
