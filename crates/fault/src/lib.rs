//! Deterministic fault injection for the xplace workspace.
//!
//! A [`FaultPlan`] is a JSON-described schedule of faults to inject into
//! an otherwise healthy run: GP panics at a chosen iteration, sink I/O
//! errors after a byte budget, modeled-time stalls, connection drops
//! after a frame count, and poisoned manifest entries. Plans are plain
//! data — the crate has no clocks and no randomness, so the same plan
//! applied to the same workload produces the same failures in the same
//! places on every run, at any thread count.
//!
//! Faults are *attempt-aware*: a fault with `times: K` fires on the
//! first `K` attempts of its target and then stops, which is what lets
//! the scheduler's retry loop deterministically recover from an injected
//! crash. A fault with no `times` field fires on every attempt.
//!
//! The crate also provides [`FailingWriter`], an `io::Write` adapter
//! that injects a sticky I/O error after a byte budget — the primitive
//! behind the sink-error fault and the torn-write property suites.

#![warn(missing_docs)]

use std::io::{self, Write};

use xplace_testkit::json::{FromJson, Json, JsonError, ToJson};

/// The GP-engine slice of a fault plan: what the core placer loop needs
/// to know, resolved for one job attempt. Embedded in `XplaceConfig` so
/// `xplace-core` does not need the full plan machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpFault {
    /// Panic at the start of this GP iteration (`injected failure at GP
    /// iteration N`). `None` disables the hook.
    pub panic_at: Option<usize>,
}

impl GpFault {
    /// A fault that never fires.
    pub const NONE: GpFault = GpFault { panic_at: None };
}

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the GP loop at the start of the given iteration.
    GpPanic {
        /// Iteration index at which the panic fires.
        iteration: usize,
    },
    /// Telemetry sink I/O error once this many bytes have been written.
    SinkError {
        /// Byte budget before writes start failing.
        after_bytes: usize,
    },
    /// Modeled-time stall charged against the job's deadline budget.
    Stall {
        /// Stall duration in modeled nanoseconds.
        modeled_ns: u64,
    },
    /// Drop the client connection after this many streamed frames.
    DropConnection {
        /// Number of frames delivered before the drop.
        after_frames: usize,
    },
    /// The manifest entry itself is poisoned: the job fails fatally
    /// before any work starts (never retried).
    PoisonManifest,
}

impl FaultKind {
    fn name(&self) -> &'static str {
        match self {
            FaultKind::GpPanic { .. } => "gp_panic",
            FaultKind::SinkError { .. } => "sink_error",
            FaultKind::Stall { .. } => "stall",
            FaultKind::DropConnection { .. } => "drop_connection",
            FaultKind::PoisonManifest => "poison_manifest",
        }
    }
}

/// One scheduled fault: a kind, the job or client it applies to, and
/// how many attempts it fires on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Job name (for GP/sink/stall/poison faults) or client identity
    /// (for connection drops) the fault applies to.
    pub target: String,
    /// What to inject.
    pub kind: FaultKind,
    /// Number of attempts the fault fires on: attempts `0..times`.
    /// `None` means every attempt.
    pub times: Option<usize>,
}

impl Fault {
    /// Whether this fault fires on the given (zero-based) attempt.
    pub fn fires_on(&self, attempt: usize) -> bool {
        match self.times {
            Some(times) => attempt < times,
            None => true,
        }
    }
}

impl ToJson for Fault {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("target", Json::str(&self.target)),
            ("kind", Json::str(self.kind.name())),
        ];
        match self.kind {
            FaultKind::GpPanic { iteration } => {
                pairs.push(("iteration", Json::num(iteration as f64)));
            }
            FaultKind::SinkError { after_bytes } => {
                pairs.push(("after_bytes", Json::num(after_bytes as f64)));
            }
            FaultKind::Stall { modeled_ns } => pairs.push(("modeled_ns", modeled_ns.to_json())),
            FaultKind::DropConnection { after_frames } => {
                pairs.push(("after_frames", Json::num(after_frames as f64)));
            }
            FaultKind::PoisonManifest => {}
        }
        if let Some(times) = self.times {
            pairs.push(("times", Json::num(times as f64)));
        }
        Json::obj(pairs)
    }
}

impl FromJson for Fault {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let target = value.field("target")?.as_str()?.to_string();
        if target.is_empty() {
            return Err(JsonError("fault `target` must be non-empty".to_string()));
        }
        let kind_name = value.field("kind")?.as_str()?;
        let kind = match kind_name {
            "gp_panic" => FaultKind::GpPanic {
                iteration: value.field("iteration")?.as_usize()?,
            },
            "sink_error" => FaultKind::SinkError {
                after_bytes: value.field("after_bytes")?.as_usize()?,
            },
            "stall" => FaultKind::Stall {
                modeled_ns: value.field("modeled_ns")?.as_u64()?,
            },
            "drop_connection" => FaultKind::DropConnection {
                after_frames: value.field("after_frames")?.as_usize()?,
            },
            "poison_manifest" => FaultKind::PoisonManifest,
            other => {
                return Err(JsonError(format!("unknown fault kind `{other}`")));
            }
        };
        let times = match value.get("times") {
            Some(v) => Some(v.as_usize()?),
            None => None,
        };
        Ok(Fault {
            target,
            kind,
            times,
        })
    }
}

/// A deterministic schedule of faults, keyed by target name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults, in declaration order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults ever fire).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parse a plan from JSON text. Accepts either a bare array of
    /// faults or an object with a `"faults"` array.
    pub fn parse(text: &str) -> Result<FaultPlan, JsonError> {
        FaultPlan::from_json(&Json::parse(text)?)
    }

    fn firing<'a>(
        &'a self,
        target: &'a str,
        attempt: usize,
    ) -> impl Iterator<Item = &'a Fault> + 'a {
        self.faults
            .iter()
            .filter(move |f| f.target == target && f.fires_on(attempt))
    }

    /// Resolve the GP-engine fault for one attempt of a job. If several
    /// GP panics fire, the earliest iteration wins.
    pub fn gp_fault(&self, target: &str, attempt: usize) -> GpFault {
        let panic_at = self
            .firing(target, attempt)
            .filter_map(|f| match f.kind {
                FaultKind::GpPanic { iteration } => Some(iteration),
                _ => None,
            })
            .min();
        GpFault { panic_at }
    }

    /// Byte budget before the job's telemetry sink starts erroring on
    /// this attempt, if a sink fault fires (smallest budget wins).
    pub fn sink_error_after(&self, target: &str, attempt: usize) -> Option<usize> {
        self.firing(target, attempt)
            .filter_map(|f| match f.kind {
                FaultKind::SinkError { after_bytes } => Some(after_bytes),
                _ => None,
            })
            .min()
    }

    /// Total modeled-time stall charged to this attempt of the job.
    pub fn stall_ns(&self, target: &str, attempt: usize) -> u64 {
        self.firing(target, attempt)
            .map(|f| match f.kind {
                FaultKind::Stall { modeled_ns } => modeled_ns,
                _ => 0,
            })
            .sum()
    }

    /// Whether the manifest entry for this job is poisoned.
    pub fn poisoned(&self, target: &str) -> bool {
        self.faults
            .iter()
            .any(|f| f.target == target && matches!(f.kind, FaultKind::PoisonManifest))
    }

    /// Frame budget before the client's connection is dropped, if a
    /// drop fault fires for this client (smallest budget wins).
    pub fn drop_after_frames(&self, target: &str, attempt: usize) -> Option<usize> {
        self.firing(target, attempt)
            .filter_map(|f| match f.kind {
                FaultKind::DropConnection { after_frames } => Some(after_frames),
                _ => None,
            })
            .min()
    }
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> Json {
        Json::obj([("faults", self.faults.to_json())])
    }
}

impl FromJson for FaultPlan {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let faults_value = match value {
            Json::Arr(_) => value,
            _ => match value.get("faults") {
                Some(v) => v,
                None => return Ok(FaultPlan::none()),
            },
        };
        let faults = Vec::<Fault>::from_json(faults_value)?;
        // An exact duplicate entry is never meaningful (distinct faults
        // on one target — even of the same kind — are fine; the
        // resolvers document how they combine) and always an authoring
        // mistake, so reject it loudly instead of silently collapsing.
        for (i, fault) in faults.iter().enumerate() {
            if faults[..i].contains(fault) {
                return Err(JsonError(format!(
                    "duplicate fault entry for target `{}` kind `{}`",
                    fault.target,
                    fault.kind.name()
                )));
            }
        }
        Ok(FaultPlan { faults })
    }
}

/// An `io::Write` adapter that injects a sticky error once a byte
/// budget is exhausted. Writes that straddle the budget are truncated
/// to the remaining budget (a short write), and every write after the
/// budget is spent fails with [`io::ErrorKind::BrokenPipe`] — the same
/// shape as a real torn pipe.
#[derive(Debug)]
pub struct FailingWriter<W> {
    inner: W,
    remaining: usize,
}

/// The message carried by every error a [`FailingWriter`] injects.
pub const INJECTED_WRITE_ERROR: &str = "injected write fault";

impl<W: Write> FailingWriter<W> {
    /// Wrap `inner`, allowing `budget` bytes through before failing.
    pub fn new(inner: W, budget: usize) -> FailingWriter<W> {
        FailingWriter {
            inner,
            remaining: budget,
        }
    }

    /// Bytes still allowed through before the injected failure.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.remaining == 0 {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                INJECTED_WRITE_ERROR,
            ));
        }
        let n = buf.len().min(self.remaining);
        let written = self.inner.write(&buf[..n])?;
        self.remaining -= written;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLAN: &str = r#"{
        "faults": [
            {"target": "crash", "kind": "gp_panic", "iteration": 5, "times": 2},
            {"target": "crash", "kind": "stall", "modeled_ns": 1000},
            {"target": "torn", "kind": "sink_error", "after_bytes": 64},
            {"target": "client-1", "kind": "drop_connection", "after_frames": 3},
            {"target": "bad", "kind": "poison_manifest"}
        ]
    }"#;

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::parse(PLAN).unwrap();
        let rendered = plan.to_json().render();
        let reparsed = FaultPlan::parse(&rendered).unwrap();
        assert_eq!(plan, reparsed);
        assert_eq!(plan.faults.len(), 5);
    }

    #[test]
    fn gp_panic_respects_the_attempt_budget() {
        let plan = FaultPlan::parse(PLAN).unwrap();
        assert_eq!(plan.gp_fault("crash", 0).panic_at, Some(5));
        assert_eq!(plan.gp_fault("crash", 1).panic_at, Some(5));
        assert_eq!(plan.gp_fault("crash", 2), GpFault::NONE);
        assert_eq!(plan.gp_fault("other", 0), GpFault::NONE);
    }

    #[test]
    fn unlimited_faults_fire_on_every_attempt() {
        let plan = FaultPlan::parse(PLAN).unwrap();
        for attempt in 0..10 {
            assert_eq!(plan.stall_ns("crash", attempt), 1000);
            assert_eq!(plan.sink_error_after("torn", attempt), Some(64));
            assert_eq!(plan.drop_after_frames("client-1", attempt), Some(3));
        }
        assert_eq!(plan.stall_ns("torn", 0), 0);
        assert!(plan.poisoned("bad"));
        assert!(!plan.poisoned("crash"));
    }

    #[test]
    fn earliest_gp_panic_wins_when_several_fire() {
        let plan = FaultPlan::parse(
            r#"[{"target": "j", "kind": "gp_panic", "iteration": 9},
                {"target": "j", "kind": "gp_panic", "iteration": 4}]"#,
        )
        .unwrap();
        assert_eq!(plan.gp_fault("j", 0).panic_at, Some(4));
    }

    #[test]
    fn malformed_plans_are_rejected_with_exact_messages() {
        // Table-driven: each rejected plan must produce *exactly* this
        // message — callers (CLI, manifests, CI logs) surface these
        // strings verbatim, so wording drift is a breaking change.
        let cases: &[(&str, &str)] = &[
            (
                r#"[{"target": "j", "kind": "nope"}]"#,
                "unknown fault kind `nope`",
            ),
            (
                r#"[{"target": "j", "kind": "gp_panic"}]"#,
                "missing field `iteration`",
            ),
            (
                r#"[{"target": "j", "kind": "sink_error"}]"#,
                "missing field `after_bytes`",
            ),
            (
                r#"[{"target": "j", "kind": "drop_connection"}]"#,
                "missing field `after_frames`",
            ),
            (r#"[{"kind": "poison_manifest"}]"#, "missing field `target`"),
            (
                r#"[{"target": "", "kind": "poison_manifest"}]"#,
                "fault `target` must be non-empty",
            ),
            (
                r#"[{"target": "j", "kind": "stall", "modeled_ns": -3}]"#,
                "expected u64, got -3",
            ),
            (
                r#"[{"target": "j", "kind": "gp_panic", "iteration": -1}]"#,
                "expected unsigned integer, got -1",
            ),
            (
                r#"[{"target": "j", "kind": "sink_error", "after_bytes": 1.5}]"#,
                "expected unsigned integer, got 1.5",
            ),
            (
                r#"[{"target": "j", "kind": "gp_panic", "iteration": 3, "times": -2}]"#,
                "expected unsigned integer, got -2",
            ),
            (
                r#"[{"target": "j", "kind": "gp_panic", "iteration": 3},
                    {"target": "j", "kind": "gp_panic", "iteration": 3}]"#,
                "duplicate fault entry for target `j` kind `gp_panic`",
            ),
            (
                r#"[{"target": "c", "kind": "drop_connection", "after_frames": 2},
                    {"target": "c", "kind": "drop_connection", "after_frames": 2}]"#,
                "duplicate fault entry for target `c` kind `drop_connection`",
            ),
        ];
        for (plan, want) in cases {
            let err = FaultPlan::parse(plan).expect_err(plan);
            assert_eq!(err.0, *want, "for plan {plan}");
        }
    }

    #[test]
    fn distinct_same_kind_faults_on_one_target_are_allowed() {
        // Not a duplicate: same target and kind but different payloads —
        // the resolvers combine them (earliest/smallest wins, stalls
        // sum), which `earliest_gp_panic_wins_when_several_fire` pins.
        let plan = FaultPlan::parse(
            r#"[{"target": "j", "kind": "gp_panic", "iteration": 9},
                {"target": "j", "kind": "gp_panic", "iteration": 4},
                {"target": "j", "kind": "stall", "modeled_ns": 7}]"#,
        )
        .unwrap();
        assert_eq!(plan.faults.len(), 3);
    }

    #[test]
    fn empty_object_parses_as_the_empty_plan() {
        let plan = FaultPlan::parse("{}").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.gp_fault("x", 0), GpFault::NONE);
    }

    #[test]
    fn failing_writer_truncates_at_the_budget_then_errors() {
        let mut w = FailingWriter::new(Vec::new(), 5);
        assert_eq!(w.write(b"abc").unwrap(), 3);
        assert_eq!(w.write(b"defg").unwrap(), 2);
        let err = w.write(b"h").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(err.to_string(), INJECTED_WRITE_ERROR);
        assert_eq!(w.into_inner(), b"abcde");
    }
}
