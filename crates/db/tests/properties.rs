//! Property-based tests of geometry, synthesis and the Bookshelf
//! round trip.

use xplace_db::synthesis::{synthesize, SynthesisSpec};
use xplace_db::{bookshelf, DesignStats, Point, Rect};
use xplace_testkit::prop::Config;
use xplace_testkit::{prop_assert, prop_assert_eq, props, Strategy};

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (
        -100.0..100.0f64,
        -100.0..100.0f64,
        0.0..50.0f64,
        0.0..50.0f64,
    )
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

props! {
    config = Config::with_cases(128);

    /// Overlap is symmetric, non-negative and bounded by both areas.
    fn overlap_properties(a in rect_strategy(), b in rect_strategy()) {
        let ab = a.overlap_area(&b);
        let ba = b.overlap_area(&a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab >= 0.0);
        prop_assert!(ab <= a.area() + 1e-9);
        prop_assert!(ab <= b.area() + 1e-9);
        // Intersection consistency.
        prop_assert_eq!(ab > 1e-12, a.intersects(&b));
    }

    /// Union contains both inputs and has at least their max area.
    fn union_contains(a in rect_strategy(), b in rect_strategy()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() >= a.area().max(b.area()) - 1e-9);
    }

    /// Clamping always lands inside (or on the boundary).
    fn clamp_lands_inside(r in rect_strategy(), x in -500.0..500.0f64, y in -500.0..500.0f64) {
        let p = r.clamp_point(Point::new(x, y));
        prop_assert!(p.x >= r.lx - 1e-12 && p.x <= r.ux + 1e-12);
        prop_assert!(p.y >= r.ly - 1e-12 && p.y <= r.uy + 1e-12);
    }
}

props! {
    config = Config::with_cases(12);

    /// Any valid spec synthesizes a design that validates, with the
    /// requested movable count and every movable cell connected.
    fn synthesis_invariants(
        cells in 50usize..400,
        seed in 0u64..1_000_000,
        util in 0.3..0.8f64,
        macros in 0usize..5,
    ) {
        let spec = SynthesisSpec::new("prop", cells, cells + cells / 10)
            .with_seed(seed)
            .with_utilization(util)
            .with_target_density((util + 0.15).min(0.95))
            .with_macro_count(macros);
        let design = synthesize(&spec).expect("valid spec synthesizes");
        design.validate().expect("synthesized design validates");
        let stats = DesignStats::of(&design);
        prop_assert_eq!(stats.num_movable, cells);
        prop_assert_eq!(stats.num_fixed, macros);
        let nl = design.netlist();
        for c in nl.cell_ids() {
            if nl.cell(c).is_movable() {
                prop_assert!(!nl.pins_of_cell(c).is_empty());
            }
        }
    }

    /// Bookshelf write -> read preserves counts, kinds and HPWL.
    fn bookshelf_round_trip(cells in 30usize..150, seed in 0u64..10_000) {
        let spec = SynthesisSpec::new("bsprop", cells, cells + 10).with_seed(seed);
        let design = synthesize(&spec).expect("synthesis");
        let dir = std::env::temp_dir()
            .join(format!("xplace_prop_bs_{}_{seed}", std::process::id()));
        let aux = bookshelf::write_design(&design, &dir).expect("write");
        let back = bookshelf::read_aux(&aux, design.target_density()).expect("read");
        prop_assert_eq!(back.netlist().num_cells(), design.netlist().num_cells());
        prop_assert_eq!(back.netlist().num_nets(), design.netlist().num_nets());
        prop_assert_eq!(back.netlist().num_pins(), design.netlist().num_pins());
        let (a, b) = (design.total_hpwl(), back.total_hpwl());
        prop_assert!((a - b).abs() < 1e-6 * a.max(1.0), "hpwl {} vs {}", a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
