//! Property-based tests of geometry, synthesis and the Bookshelf
//! round trip.

use xplace_db::synthesis::{synthesize, SynthesisSpec, Topology};
use xplace_db::{bookshelf, DesignStats, Netlist, Point, Rect};
use xplace_testkit::prop::Config;
use xplace_testkit::{prop_assert, prop_assert_eq, props, Strategy};

/// Structural invariants of the flat CSR netlist layout, checked on every
/// synthesized design: monotone net spans covering all pins exactly once,
/// back-pointers consistent, no duplicate cell on a net, degree >= 2.
fn assert_csr_valid(nl: &Netlist) {
    let starts = nl.net_start();
    assert_eq!(starts.len(), nl.num_nets() + 1);
    assert_eq!(starts[0], 0);
    assert_eq!(*starts.last().unwrap() as usize, nl.num_pins());
    for net in nl.nets() {
        let span = net.pin_range();
        assert!(span.start <= span.end, "net {} span reversed", net.id());
        assert!(
            net.degree() >= 2,
            "net {} has degree {}",
            net.id(),
            net.degree()
        );
        let mut cells: Vec<_> = nl.pin_cells()[span.clone()].to_vec();
        for &p in &nl.pin_nets()[span.clone()] {
            assert_eq!(p, net.id(), "pin back-pointer disagrees with its span");
        }
        cells.sort();
        let before = cells.len();
        cells.dedup();
        assert_eq!(before, cells.len(), "net {} repeats a cell", net.id());
    }
    // Every pin is reachable through exactly one cell's pin list.
    let total: usize = nl.cell_ids().map(|c| nl.pins_of_cell(c).len()).sum();
    assert_eq!(total, nl.num_pins());
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (
        -100.0..100.0f64,
        -100.0..100.0f64,
        0.0..50.0f64,
        0.0..50.0f64,
    )
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

props! {
    config = Config::with_cases(128);

    /// Overlap is symmetric, non-negative and bounded by both areas.
    fn overlap_properties(a in rect_strategy(), b in rect_strategy()) {
        let ab = a.overlap_area(&b);
        let ba = b.overlap_area(&a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab >= 0.0);
        prop_assert!(ab <= a.area() + 1e-9);
        prop_assert!(ab <= b.area() + 1e-9);
        // Intersection consistency.
        prop_assert_eq!(ab > 1e-12, a.intersects(&b));
    }

    /// Union contains both inputs and has at least their max area.
    fn union_contains(a in rect_strategy(), b in rect_strategy()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() >= a.area().max(b.area()) - 1e-9);
    }

    /// Clamping always lands inside (or on the boundary).
    fn clamp_lands_inside(r in rect_strategy(), x in -500.0..500.0f64, y in -500.0..500.0f64) {
        let p = r.clamp_point(Point::new(x, y));
        prop_assert!(p.x >= r.lx - 1e-12 && p.x <= r.ux + 1e-12);
        prop_assert!(p.y >= r.ly - 1e-12 && p.y <= r.uy + 1e-12);
    }
}

props! {
    config = Config::with_cases(12);

    /// Any valid spec synthesizes a design that validates, with the
    /// requested movable count and every movable cell connected.
    fn synthesis_invariants(
        cells in 50usize..400,
        seed in 0u64..1_000_000,
        util in 0.3..0.8f64,
        macros in 0usize..5,
    ) {
        let spec = SynthesisSpec::new("prop", cells, cells + cells / 10)
            .with_seed(seed)
            .with_utilization(util)
            .with_target_density((util + 0.15).min(0.95))
            .with_macro_count(macros);
        let design = synthesize(&spec).expect("valid spec synthesizes");
        design.validate().expect("synthesized design validates");
        let stats = DesignStats::of(&design);
        prop_assert_eq!(stats.num_movable, cells);
        prop_assert_eq!(stats.num_fixed, macros);
        let nl = design.netlist();
        for c in nl.cell_ids() {
            if nl.cell(c).is_movable() {
                prop_assert!(!nl.pins_of_cell(c).is_empty());
            }
        }
    }

    /// Tiny designs (1-8 cells) synthesize without panicking — the
    /// net-window math used to underflow (`n - window`) whenever the
    /// sampled degree exceeded the cell count — and stay CSR-valid.
    fn tiny_designs_synthesize(
        cells in 1usize..9,
        seed in 0u64..1_000_000,
        terminals in 0usize..9,
    ) {
        let spec = SynthesisSpec::new("tiny", cells, cells + 2)
            .with_seed(seed)
            .with_terminals(terminals);
        let design = synthesize(&spec).expect("tiny spec synthesizes");
        design.validate().expect("tiny design validates");
        assert_csr_valid(design.netlist());
    }

    /// Degree caps far beyond the cell count are clamped, never drawn as
    /// duplicate pins on one net.
    fn huge_degree_specs_synthesize(
        cells in 3usize..120,
        seed in 0u64..1_000_000,
        max_degree in 2usize..400,
    ) {
        let mut spec = SynthesisSpec::new("deg", cells, cells + 8).with_seed(seed);
        spec.max_net_degree = max_degree;
        let design = synthesize(&spec).expect("huge-degree spec synthesizes");
        assert_csr_valid(design.netlist());
        let nl = design.netlist();
        for net in nl.nets() {
            prop_assert!(net.degree() <= max_degree.max(2) + 1);
        }
    }

    /// Macro- and fence-heavy floorplans still produce CSR-valid designs.
    fn macro_and_fence_heavy_specs_synthesize(
        cells in 100usize..400,
        seed in 0u64..1_000_000,
        macros in 5usize..16,
        fences in 1usize..6,
    ) {
        let spec = SynthesisSpec::new("heavy", cells, cells + cells / 8)
            .with_seed(seed)
            .with_macro_count(macros)
            .with_fences(fences);
        let design = synthesize(&spec).expect("heavy spec synthesizes");
        design.validate().expect("heavy design validates");
        assert_csr_valid(design.netlist());
        prop_assert_eq!(DesignStats::of(&design).num_fixed, macros);
    }

    /// The structured array/dataflow topologies connect every movable cell
    /// and keep the CSR invariants at any size.
    fn structured_topologies_synthesize(
        cells in 1usize..600,
        seed in 0u64..1_000_000,
        which in 0usize..2,
    ) {
        let topo = [Topology::SystolicGrid, Topology::FftButterfly][which];
        let spec = SynthesisSpec::new("arr", cells, cells)
            .with_seed(seed)
            .with_topology(topo);
        let design = synthesize(&spec).expect("structured spec synthesizes");
        design.validate().expect("structured design validates");
        assert_csr_valid(design.netlist());
        let nl = design.netlist();
        for c in nl.cell_ids() {
            if nl.cell(c).is_movable() {
                prop_assert!(!nl.pins_of_cell(c).is_empty(), "unconnected PE");
            }
        }
    }

    /// Bookshelf write -> read preserves counts, kinds and HPWL.
    fn bookshelf_round_trip(cells in 30usize..150, seed in 0u64..10_000) {
        let spec = SynthesisSpec::new("bsprop", cells, cells + 10).with_seed(seed);
        let design = synthesize(&spec).expect("synthesis");
        let dir = std::env::temp_dir()
            .join(format!("xplace_prop_bs_{}_{seed}", std::process::id()));
        let aux = bookshelf::write_design(&design, &dir).expect("write");
        let back = bookshelf::read_aux(&aux, design.target_density()).expect("read");
        prop_assert_eq!(back.netlist().num_cells(), design.netlist().num_cells());
        prop_assert_eq!(back.netlist().num_nets(), design.netlist().num_nets());
        prop_assert_eq!(back.netlist().num_pins(), design.netlist().num_pins());
        let (a, b) = (design.total_hpwl(), back.total_hpwl());
        prop_assert!((a - b).abs() < 1e-6 * a.max(1.0), "hpwl {} vs {}", a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
