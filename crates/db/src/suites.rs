//! Named benchmark suites mirroring the paper's Table 1.
//!
//! Each suite entry carries the *published* statistics of the corresponding
//! ISPD contest design and a [`SynthesisSpec`] that reproduces those
//! statistics at a configurable scale factor (so the whole evaluation runs
//! on a laptop). `scale = 1.0` regenerates full-size instances.

use crate::synthesis::SynthesisSpec;

/// One design of a benchmark suite.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteEntry {
    /// Published cell count of the contest design.
    pub published_cells: usize,
    /// Published net count of the contest design.
    pub published_nets: usize,
    /// Whether the paper ran this design with fence regions removed
    /// (the dagger mark in Table 4).
    pub fence_removed: bool,
    /// Generator spec for the scaled synthetic twin.
    pub spec: SynthesisSpec,
}

impl SuiteEntry {
    /// The design name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }
}

fn entry(
    name: &str,
    cells_k: usize,
    nets_k: usize,
    scale: f64,
    seed: u64,
    macros: usize,
    macro_frac: f64,
    utilization: f64,
    fence_removed: bool,
) -> SuiteEntry {
    let cells = ((cells_k * 1000) as f64 * scale).round().max(400.0) as usize;
    let nets = ((nets_k * 1000) as f64 * scale).round().max(400.0) as usize;
    let mut spec = SynthesisSpec::new(name, cells, nets)
        .with_seed(seed)
        .with_utilization(utilization)
        .with_target_density((utilization + 0.25).min(0.97))
        .with_terminals((cells / 40).clamp(32, 1024));
    if macros > 0 {
        spec = spec
            .with_macro_count(macros)
            .with_macro_area_fraction(macro_frac);
    }
    SuiteEntry {
        published_cells: cells_k * 1000,
        published_nets: nets_k * 1000,
        fence_removed,
        spec,
    }
}

/// The ISPD 2005 contest suite (adaptec1-4, bigblue1-4) at `scale`.
///
/// ```
/// let suite = xplace_db::suites::ispd2005_like(0.01);
/// assert_eq!(suite.len(), 8);
/// assert_eq!(suite[0].name(), "adaptec1");
/// ```
pub fn ispd2005_like(scale: f64) -> Vec<SuiteEntry> {
    vec![
        entry("adaptec1", 211, 221, scale, 101, 12, 0.18, 0.62, false),
        entry("adaptec2", 255, 266, scale, 102, 16, 0.22, 0.58, false),
        entry("adaptec3", 452, 467, scale, 103, 20, 0.20, 0.55, false),
        entry("adaptec4", 496, 516, scale, 104, 24, 0.21, 0.52, false),
        entry("bigblue1", 278, 284, scale, 105, 8, 0.10, 0.60, false),
        entry("bigblue2", 558, 577, scale, 106, 18, 0.16, 0.56, false),
        entry("bigblue3", 1097, 1123, scale, 107, 25, 0.14, 0.58, false),
        entry("bigblue4", 2177, 2230, scale, 108, 30, 0.12, 0.55, false),
    ]
}

/// The ISPD 2015 contest suite (20 designs) at `scale`. Designs the paper
/// evaluated with fence regions removed are flagged `fence_removed`.
///
/// ```
/// let suite = xplace_db::suites::ispd2015_like(0.02);
/// assert_eq!(suite.len(), 20);
/// assert!(suite.iter().filter(|e| e.fence_removed).count() == 9);
/// ```
pub fn ispd2015_like(scale: f64) -> Vec<SuiteEntry> {
    vec![
        entry("des_perf_1", 113, 113, scale, 201, 0, 0.0, 0.72, false),
        entry("fft_1", 35, 33, scale, 202, 0, 0.0, 0.68, false),
        entry("fft_2", 35, 33, scale, 203, 0, 0.0, 0.50, false),
        entry("fft_a", 34, 32, scale, 204, 4, 0.12, 0.40, false),
        entry("fft_b", 34, 32, scale, 205, 4, 0.12, 0.45, false),
        entry("matrix_mult_1", 160, 159, scale, 206, 0, 0.0, 0.60, false),
        entry("matrix_mult_2", 160, 159, scale, 207, 0, 0.0, 0.55, false),
        entry("matrix_mult_a", 154, 154, scale, 208, 6, 0.10, 0.42, false),
        entry("superblue12", 1293, 1293, scale, 209, 24, 0.15, 0.55, false),
        entry("superblue14", 634, 620, scale, 210, 16, 0.14, 0.56, false),
        entry("superblue19", 522, 512, scale, 211, 14, 0.13, 0.52, false),
        entry("des_perf_a", 108, 115, scale, 212, 4, 0.08, 0.50, true),
        entry("des_perf_b", 113, 113, scale, 213, 0, 0.0, 0.50, true),
        entry("edit_dist_a", 127, 134, scale, 214, 6, 0.10, 0.46, true),
        entry("matrix_mult_b", 146, 152, scale, 215, 4, 0.08, 0.42, true),
        entry("matrix_mult_c", 146, 152, scale, 216, 4, 0.08, 0.42, true),
        entry("pci_bridge32_a", 30, 34, scale, 217, 4, 0.10, 0.38, true),
        entry("pci_bridge32_b", 29, 33, scale, 218, 6, 0.20, 0.30, true),
        entry("superblue11_a", 926, 936, scale, 219, 20, 0.14, 0.52, true),
        entry("superblue16_a", 680, 697, scale, 220, 14, 0.12, 0.50, true),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::synthesize;
    use crate::DesignStats;

    #[test]
    fn suites_have_the_published_design_lists() {
        let s05 = ispd2005_like(0.01);
        let names: Vec<&str> = s05.iter().map(SuiteEntry::name).collect();
        assert_eq!(
            names,
            [
                "adaptec1", "adaptec2", "adaptec3", "adaptec4", "bigblue1", "bigblue2", "bigblue3",
                "bigblue4"
            ]
        );
        let s15 = ispd2015_like(0.01);
        assert_eq!(s15.len(), 20);
        assert_eq!(s15[8].name(), "superblue12");
        assert_eq!(s15[8].published_cells, 1_293_000);
    }

    #[test]
    fn scale_controls_instance_size() {
        let small = ispd2005_like(0.005);
        let big = ispd2005_like(0.02);
        assert!(big[0].spec.num_cells > 3 * small[0].spec.num_cells);
        // Published stats are scale-independent.
        assert_eq!(small[7].published_cells, big[7].published_cells);
        assert_eq!(small[7].published_cells, 2_177_000);
    }

    #[test]
    fn scaled_entries_synthesize_and_validate() {
        for e in ispd2005_like(0.003).iter().take(2) {
            let d = synthesize(&e.spec).unwrap();
            d.validate().unwrap();
            let s = DesignStats::of(&d);
            assert_eq!(s.num_movable, e.spec.num_cells);
        }
    }

    #[test]
    fn relative_sizes_match_the_contest_ordering() {
        let s = ispd2005_like(0.01);
        // bigblue4 is the largest, adaptec1 the smallest of its family.
        let sizes: Vec<usize> = s.iter().map(|e| e.spec.num_cells).collect();
        assert!(sizes[7] > sizes[6] && sizes[6] > sizes[5]);
        assert!(sizes[0] < sizes[1]);
    }

    #[test]
    fn ispd2015_entries_synthesize_and_validate() {
        for e in ispd2015_like(0.003).iter().take(3) {
            let d = synthesize(&e.spec).unwrap();
            d.validate().unwrap();
            let s = DesignStats::of(&d);
            assert_eq!(s.num_movable, e.spec.num_cells);
        }
    }

    #[test]
    fn fence_flags_match_table4() {
        let s = ispd2015_like(0.01);
        let flagged: Vec<&str> = s
            .iter()
            .filter(|e| e.fence_removed)
            .map(SuiteEntry::name)
            .collect();
        assert_eq!(
            flagged,
            [
                "des_perf_a",
                "des_perf_b",
                "edit_dist_a",
                "matrix_mult_b",
                "matrix_mult_c",
                "pci_bridge32_a",
                "pci_bridge32_b",
                "superblue11_a",
                "superblue16_a"
            ]
        );
    }

    #[test]
    fn minimum_size_clamp_applies_at_tiny_scales() {
        let s = ispd2015_like(0.001);
        for e in &s {
            assert!(e.spec.num_cells >= 400);
        }
    }
}
