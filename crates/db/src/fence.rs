//! Fence regions (the ISPD 2015 constraint the paper defers to future
//! work — implemented here as the framework extension it calls for).
//!
//! A fence region confines a named group of movable cells to a set of
//! rectangles. This module defines the data model and validation; the
//! placer clamps members into their fence each iteration, the legalizer
//! restricts their candidate row segments, and the legality checker
//! verifies containment (see `xplace-core` / `xplace-legal`).

use crate::{CellId, DbError, Design, Rect};
use xplace_testkit::{FromJson, Json, JsonError, ToJson};

/// A named fence: member cells must be placed inside one of the rects.
#[derive(Debug, Clone, PartialEq)]
pub struct FenceRegion {
    name: String,
    rects: Vec<Rect>,
    members: Vec<CellId>,
}

impl FenceRegion {
    /// Creates a fence region.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::InvalidDesign`] for a fence with no rectangles
    /// or a degenerate rectangle.
    pub fn new(
        name: impl Into<String>,
        rects: Vec<Rect>,
        members: Vec<CellId>,
    ) -> Result<Self, DbError> {
        let name = name.into();
        if rects.is_empty() {
            return Err(DbError::InvalidDesign(format!(
                "fence `{name}` has no rectangles"
            )));
        }
        for r in &rects {
            if r.width() <= 0.0 || r.height() <= 0.0 {
                return Err(DbError::InvalidDesign(format!(
                    "fence `{name}` has a degenerate rectangle {r}"
                )));
            }
        }
        Ok(FenceRegion {
            name,
            rects,
            members,
        })
    }

    /// The fence name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fence rectangles.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// The member cells.
    pub fn members(&self) -> &[CellId] {
        &self.members
    }

    /// The bounding box of all fence rectangles.
    pub fn bounding_box(&self) -> Rect {
        let mut bb = self.rects[0];
        for r in &self.rects[1..] {
            bb = bb.union(r);
        }
        bb
    }

    /// Whether a rectangle lies fully inside one of the fence rects.
    pub fn contains_rect(&self, rect: &Rect) -> bool {
        self.rects.iter().any(|r| r.contains_rect(rect))
    }

    /// The fence rect whose center is nearest to `(x, y)` (used for
    /// clamping a member back inside).
    pub fn nearest_rect(&self, x: f64, y: f64) -> Rect {
        *self
            .rects
            .iter()
            .min_by(|a, b| {
                let da = (a.center().x - x).abs() + (a.center().y - y).abs();
                let db = (b.center().x - x).abs() + (b.center().y - y).abs();
                da.partial_cmp(&db).expect("finite fence geometry")
            })
            .expect("fence has at least one rect")
    }
}

impl ToJson for FenceRegion {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("rects", self.rects.to_json()),
            ("members", self.members.to_json()),
        ])
    }
}

impl FromJson for FenceRegion {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        FenceRegion::new(
            value.field("name")?.as_str()?.to_string(),
            Vec::from_json(value.field("rects")?)?,
            Vec::from_json(value.field("members")?)?,
        )
        .map_err(|e| JsonError(e.to_string()))
    }
}

/// Validates fences against a design: members exist, are movable, belong
/// to at most one fence, and every fence rect lies inside the region.
///
/// # Errors
///
/// Returns [`DbError::InvalidDesign`] describing the first violation.
pub fn validate_fences(design: &Design) -> Result<(), DbError> {
    let nl = design.netlist();
    let region = design.region();
    let mut owner = vec![false; nl.num_cells()];
    for fence in design.fences() {
        for r in fence.rects() {
            if !region.contains_rect(r) {
                return Err(DbError::InvalidDesign(format!(
                    "fence `{}` rect {r} extends outside the region",
                    fence.name()
                )));
            }
        }
        for &c in fence.members() {
            if c.index() >= nl.num_cells() {
                return Err(DbError::InvalidDesign(format!(
                    "fence `{}` references cell id {c} out of range",
                    fence.name()
                )));
            }
            if !nl.cell(c).is_movable() {
                return Err(DbError::InvalidDesign(format!(
                    "fence `{}` member `{}` is not movable",
                    fence.name(),
                    nl.cell(c).name()
                )));
            }
            if owner[c.index()] {
                return Err(DbError::InvalidDesign(format!(
                    "cell `{}` belongs to more than one fence",
                    nl.cell(c).name()
                )));
            }
            owner[c.index()] = true;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{CellKind, NetlistBuilder};
    use crate::Point;

    fn base_design() -> Design {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 2.0, 4.0, CellKind::Movable);
        let c = b.add_cell("c", 2.0, 4.0, CellKind::Movable);
        let f = b.add_cell("f", 4.0, 4.0, CellKind::Fixed);
        b.add_net(
            "n",
            vec![
                (a, Point::default()),
                (c, Point::default()),
                (f, Point::default()),
            ],
        )
        .unwrap();
        let nl = b.finish().unwrap();
        Design::new(
            "fence_test",
            nl,
            Rect::new(0.0, 0.0, 40.0, 40.0),
            vec![],
            0.9,
            vec![
                Point::new(5.0, 5.0),
                Point::new(6.0, 6.0),
                Point::new(30.0, 30.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fence_construction_and_queries() {
        let fence = FenceRegion::new(
            "f0",
            vec![
                Rect::new(0.0, 0.0, 10.0, 10.0),
                Rect::new(20.0, 20.0, 30.0, 30.0),
            ],
            vec![CellId(0)],
        )
        .unwrap();
        assert_eq!(fence.bounding_box(), Rect::new(0.0, 0.0, 30.0, 30.0));
        assert!(fence.contains_rect(&Rect::new(1.0, 1.0, 3.0, 3.0)));
        assert!(!fence.contains_rect(&Rect::new(8.0, 8.0, 22.0, 22.0)));
        // Nearest rect to a point near the second rectangle.
        assert_eq!(
            fence.nearest_rect(28.0, 28.0),
            Rect::new(20.0, 20.0, 30.0, 30.0)
        );
    }

    #[test]
    fn fence_json_round_trip() {
        let fence = FenceRegion::new(
            "f0",
            vec![
                Rect::new(0.0, 0.0, 10.0, 10.0),
                Rect::new(20.0, 20.0, 30.0, 30.0),
            ],
            vec![CellId(0), CellId(3)],
        )
        .unwrap();
        use xplace_testkit::{FromJson, ToJson};
        let decoded = FenceRegion::from_json_str(&fence.to_json_string()).unwrap();
        assert_eq!(decoded, fence);
        // Decoding re-validates: a degenerate rect is rejected.
        let bad = r#"{"name":"d","rects":[{"lx":0,"ly":0,"ux":0,"uy":5}],"members":[]}"#;
        assert!(FenceRegion::from_json_str(bad).is_err());
    }

    #[test]
    fn empty_or_degenerate_fences_are_rejected() {
        assert!(FenceRegion::new("e", vec![], vec![]).is_err());
        assert!(FenceRegion::new("d", vec![Rect::new(0.0, 0.0, 0.0, 5.0)], vec![]).is_err());
    }

    #[test]
    fn validation_accepts_good_fences() {
        let mut d = base_design();
        let fence = FenceRegion::new(
            "f0",
            vec![Rect::new(0.0, 0.0, 20.0, 20.0)],
            vec![CellId(0), CellId(1)],
        )
        .unwrap();
        d.set_fences(vec![fence]).unwrap();
        assert_eq!(d.fences().len(), 1);
        assert_eq!(d.fence_of(CellId(0)), Some(0));
        assert_eq!(d.fence_of(CellId(2)), None);
    }

    #[test]
    fn validation_rejects_fixed_members() {
        let mut d = base_design();
        let fence = FenceRegion::new(
            "f0",
            vec![Rect::new(0.0, 0.0, 20.0, 20.0)],
            vec![CellId(2)], // fixed cell
        )
        .unwrap();
        assert!(d.set_fences(vec![fence]).is_err());
    }

    #[test]
    fn validation_rejects_out_of_region_rects() {
        let mut d = base_design();
        let fence = FenceRegion::new(
            "f0",
            vec![Rect::new(30.0, 30.0, 60.0, 60.0)],
            vec![CellId(0)],
        )
        .unwrap();
        assert!(d.set_fences(vec![fence]).is_err());
    }

    #[test]
    fn validation_rejects_double_membership() {
        let mut d = base_design();
        let f0 =
            FenceRegion::new("f0", vec![Rect::new(0.0, 0.0, 20.0, 20.0)], vec![CellId(0)]).unwrap();
        let f1 = FenceRegion::new(
            "f1",
            vec![Rect::new(20.0, 0.0, 40.0, 20.0)],
            vec![CellId(0)],
        )
        .unwrap();
        assert!(d.set_fences(vec![f0, f1]).is_err());
    }
}
