//! Design statistics — the contents of the paper's Table 1.

use crate::Design;
use std::fmt;
use xplace_testkit::{FromJson, Json, JsonError, ToJson};

/// Summary statistics of a placement design.
///
/// ```
/// use xplace_db::synthesis::{SynthesisSpec, synthesize};
/// use xplace_db::DesignStats;
///
/// # fn main() -> Result<(), xplace_db::DbError> {
/// let design = synthesize(&SynthesisSpec::new("demo", 300, 310).with_seed(1))?;
/// let stats = DesignStats::of(&design);
/// assert!(stats.num_cells >= 300);
/// assert!(stats.avg_net_degree >= 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DesignStats {
    /// Design name.
    pub name: String,
    /// Total cell count (movable + fixed + terminals).
    pub num_cells: usize,
    /// Movable cell count.
    pub num_movable: usize,
    /// Fixed (macro) cell count, excluding terminals.
    pub num_fixed: usize,
    /// Terminal (I/O) count.
    pub num_terminals: usize,
    /// Net count.
    pub num_nets: usize,
    /// Pin count.
    pub num_pins: usize,
    /// Mean net degree.
    pub avg_net_degree: f64,
    /// Movable-area utilization of the free region.
    pub utilization: f64,
    /// Benchmark target density.
    pub target_density: f64,
}

impl DesignStats {
    /// Computes the statistics of a design.
    pub fn of(design: &Design) -> Self {
        let nl = design.netlist();
        let mut num_fixed = 0;
        let mut num_terminals = 0;
        for c in nl.cells() {
            match c.kind() {
                crate::CellKind::Fixed => num_fixed += 1,
                crate::CellKind::Terminal => num_terminals += 1,
                crate::CellKind::Movable => {}
            }
        }
        DesignStats {
            name: design.name().to_string(),
            num_cells: nl.num_cells(),
            num_movable: nl.num_movable(),
            num_fixed,
            num_terminals,
            num_nets: nl.num_nets(),
            num_pins: nl.num_pins(),
            avg_net_degree: nl.average_net_degree(),
            utilization: design.utilization(),
            target_density: design.target_density(),
        }
    }
}

impl ToJson for DesignStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("num_cells", self.num_cells.to_json()),
            ("num_movable", self.num_movable.to_json()),
            ("num_fixed", self.num_fixed.to_json()),
            ("num_terminals", self.num_terminals.to_json()),
            ("num_nets", self.num_nets.to_json()),
            ("num_pins", self.num_pins.to_json()),
            ("avg_net_degree", Json::Num(self.avg_net_degree)),
            ("utilization", Json::Num(self.utilization)),
            ("target_density", Json::Num(self.target_density)),
        ])
    }
}

impl FromJson for DesignStats {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(DesignStats {
            name: value.field("name")?.as_str()?.to_string(),
            num_cells: value.field("num_cells")?.as_usize()?,
            num_movable: value.field("num_movable")?.as_usize()?,
            num_fixed: value.field("num_fixed")?.as_usize()?,
            num_terminals: value.field("num_terminals")?.as_usize()?,
            num_nets: value.field("num_nets")?.as_usize()?,
            num_pins: value.field("num_pins")?.as_usize()?,
            avg_net_degree: value.field("avg_net_degree")?.as_f64()?,
            utilization: value.field("utilization")?.as_f64()?,
            target_density: value.field("target_density")?.as_f64()?,
        })
    }
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cells ({} movable, {} fixed, {} terminals), {} nets, {} pins, \
             avg degree {:.2}, utilization {:.3}",
            self.name,
            self.num_cells,
            self.num_movable,
            self.num_fixed,
            self.num_terminals,
            self.num_nets,
            self.num_pins,
            self.avg_net_degree,
            self.utilization
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{CellKind, NetlistBuilder};
    use crate::{Point, Rect};

    #[test]
    fn stats_count_each_kind() {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let m = b.add_cell("m", 3.0, 3.0, CellKind::Fixed);
        let t = b.add_cell("t", 0.0, 0.0, CellKind::Terminal);
        b.add_net(
            "n",
            vec![
                (a, Point::default()),
                (m, Point::default()),
                (t, Point::default()),
            ],
        )
        .unwrap();
        let nl = b.finish().unwrap();
        let d = crate::Design::new(
            "x",
            nl,
            Rect::new(0.0, 0.0, 10.0, 10.0),
            vec![],
            0.8,
            vec![Point::new(5.0, 5.0); 3],
        )
        .unwrap();
        let s = DesignStats::of(&d);
        assert_eq!(s.num_movable, 1);
        assert_eq!(s.num_fixed, 1);
        assert_eq!(s.num_terminals, 1);
        assert_eq!(s.num_pins, 3);
        assert_eq!(s.avg_net_degree, 3.0);
        assert!(s.to_string().contains("x: 3 cells"));
        let decoded = DesignStats::from_json_str(&s.to_json_string()).unwrap();
        assert_eq!(decoded, s);
    }
}
