//! Plane geometry primitives used throughout the placement flow.

use std::fmt;
use xplace_testkit::{FromJson, Json, JsonError, ToJson};

/// A 2-D point in database units.
///
/// ```
/// use xplace_db::Point;
/// let p = Point::new(1.0, 2.0) + Point::new(0.5, -1.0);
/// assert_eq!(p, Point::new(1.5, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Manhattan (L1) distance to another point.
    pub fn manhattan_distance(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl std::ops::Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl std::ops::Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// An axis-aligned rectangle `[lx, ux) x [ly, uy)` in database units.
///
/// ```
/// use xplace_db::Rect;
/// let a = Rect::new(0.0, 0.0, 10.0, 5.0);
/// let b = Rect::new(5.0, 2.0, 20.0, 8.0);
/// assert_eq!(a.area(), 50.0);
/// assert_eq!(a.overlap_area(&b), 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Lower-left x.
    pub lx: f64,
    /// Lower-left y.
    pub ly: f64,
    /// Upper-right x.
    pub ux: f64,
    /// Upper-right y.
    pub uy: f64,
}

impl Rect {
    /// Creates a rectangle from its corners.
    ///
    /// # Panics
    ///
    /// Panics (debug builds only) if the rectangle is inverted.
    pub fn new(lx: f64, ly: f64, ux: f64, uy: f64) -> Self {
        debug_assert!(lx <= ux && ly <= uy, "inverted rectangle");
        Rect { lx, ly, ux, uy }
    }

    /// Creates a rectangle from a center point and dimensions.
    pub fn from_center(center: Point, width: f64, height: f64) -> Self {
        Rect::new(
            center.x - width * 0.5,
            center.y - height * 0.5,
            center.x + width * 0.5,
            center.y + height * 0.5,
        )
    }

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.ux - self.lx
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.uy - self.ly
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// The center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(0.5 * (self.lx + self.ux), 0.5 * (self.ly + self.uy))
    }

    /// Whether `p` lies inside (closed on the lower edges, open on upper).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lx && p.x < self.ux && p.y >= self.ly && p.y < self.uy
    }

    /// Whether `other` lies fully within `self` (closed comparison).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.lx >= self.lx && other.ux <= self.ux && other.ly >= self.ly && other.uy <= self.uy
    }

    /// The overlap area with another rectangle (zero when disjoint).
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = (self.ux.min(other.ux) - self.lx.max(other.lx)).max(0.0);
        let h = (self.uy.min(other.uy) - self.ly.max(other.ly)).max(0.0);
        w * h
    }

    /// Whether the two rectangles overlap with positive area.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lx < other.ux && other.lx < self.ux && self.ly < other.uy && other.ly < self.uy
    }

    /// The smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lx: self.lx.min(other.lx),
            ly: self.ly.min(other.ly),
            ux: self.ux.max(other.ux),
            uy: self.uy.max(other.uy),
        }
    }

    /// Clamps a point into the rectangle (inclusive of edges).
    pub fn clamp_point(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.lx, self.ux), p.y.clamp(self.ly, self.uy))
    }

    /// Translates by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Rect {
        Rect {
            lx: self.lx + dx,
            ly: self.ly + dy,
            ux: self.ux + dx,
            uy: self.uy + dy,
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}] x [{}, {}]", self.lx, self.ux, self.ly, self.uy)
    }
}

impl ToJson for Point {
    fn to_json(&self) -> Json {
        Json::obj([("x", Json::Num(self.x)), ("y", Json::Num(self.y))])
    }
}

impl FromJson for Point {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Point {
            x: value.field("x")?.as_f64()?,
            y: value.field("y")?.as_f64()?,
        })
    }
}

impl ToJson for Rect {
    fn to_json(&self) -> Json {
        Json::obj([
            ("lx", Json::Num(self.lx)),
            ("ly", Json::Num(self.ly)),
            ("ux", Json::Num(self.ux)),
            ("uy", Json::Num(self.uy)),
        ])
    }
}

impl FromJson for Rect {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Rect {
            lx: value.field("lx")?.as_f64()?,
            ly: value.field("ly")?.as_f64()?,
            ux: value.field("ux")?.as_f64()?,
            uy: value.field("uy")?.as_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.manhattan_distance(b), 7.0);
        assert_eq!(b - a, b);
    }

    #[test]
    fn rect_basic_measures() {
        let r = Rect::new(1.0, 2.0, 5.0, 10.0);
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 8.0);
        assert_eq!(r.area(), 32.0);
        assert_eq!(r.center(), Point::new(3.0, 6.0));
    }

    #[test]
    fn from_center_round_trips() {
        let r = Rect::from_center(Point::new(10.0, 20.0), 4.0, 6.0);
        assert_eq!(r.center(), Point::new(10.0, 20.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 6.0);
    }

    #[test]
    fn overlap_of_disjoint_is_zero() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(2.0, 2.0, 3.0, 3.0);
        assert_eq!(a.overlap_area(&b), 0.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 5.0, 15.0, 15.0);
        assert_eq!(a.overlap_area(&b), b.overlap_area(&a));
        assert_eq!(a.overlap_area(&b), 25.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn touching_rects_do_not_intersect() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(!a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn containment() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        let inner = Rect::new(2.0, 2.0, 8.0, 8.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains(Point::new(0.0, 0.0)));
        assert!(!outer.contains(Point::new(10.0, 10.0)));
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(5.0, -2.0, 6.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
        assert_eq!(u, Rect::new(0.0, -2.0, 6.0, 1.0));
    }

    #[test]
    fn clamp_point_stays_inside() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(r.clamp_point(Point::new(-5.0, 20.0)), Point::new(0.0, 10.0));
        assert_eq!(r.clamp_point(Point::new(5.0, 5.0)), Point::new(5.0, 5.0));
    }

    #[test]
    fn translated_preserves_size() {
        let r = Rect::new(0.0, 0.0, 2.0, 3.0).translated(10.0, -1.0);
        assert_eq!(r, Rect::new(10.0, -1.0, 12.0, 2.0));
        assert_eq!(r.area(), 6.0);
    }

    #[test]
    fn point_and_rect_json_round_trip() {
        let p = Point::new(1.5, -2.25);
        assert_eq!(Point::from_json_str(&p.to_json_string()).unwrap(), p);
        let r = Rect::new(0.0, -1.0, 10.5, 3.75);
        assert_eq!(Rect::from_json_str(&r.to_json_string()).unwrap(), r);
    }
}
