use std::error::Error;
use std::fmt;

/// Errors produced by the design database.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DbError {
    /// A text-format parse failed; carries file kind, line number (1-based)
    /// and a description of what went wrong.
    Parse {
        /// Which format/file was being parsed (e.g. `"nodes"`, `"def"`).
        format: String,
        /// 1-based line number of the offending line (0 when unknown).
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An I/O error while reading or writing a design file.
    Io(String),
    /// A reference to an undefined cell name.
    UnknownCell(String),
    /// A design failed validation; describes the violated invariant.
    InvalidDesign(String),
    /// A synthesis specification was inconsistent.
    InvalidSpec(String),
}

impl DbError {
    /// Convenience constructor for parse errors.
    pub fn parse(format: &str, line: usize, message: impl Into<String>) -> Self {
        DbError::Parse {
            format: format.to_string(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse {
                format,
                line,
                message,
            } => {
                write!(f, "{format} parse error at line {line}: {message}")
            }
            DbError::Io(msg) => write!(f, "i/o error: {msg}"),
            DbError::UnknownCell(name) => write!(f, "reference to undefined cell `{name}`"),
            DbError::InvalidDesign(msg) => write!(f, "invalid design: {msg}"),
            DbError::InvalidSpec(msg) => write!(f, "invalid synthesis spec: {msg}"),
        }
    }
}

impl Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(err: std::io::Error) -> Self {
        DbError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = DbError::parse("nodes", 17, "expected a width");
        let msg = e.to_string();
        assert!(msg.contains("nodes") && msg.contains("17") && msg.contains("width"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DbError = io.into();
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<DbError>();
    }
}
