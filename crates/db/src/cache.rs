//! A shared read-only design cache for batch runs.
//!
//! A batch manifest often places the same design several times (ablation
//! sweeps, per-config overrides) or many synthesized designs from the same
//! spec family. Parsing a Bookshelf benchmark and synthesizing a netlist
//! are both pure functions of their inputs, so jobs can safely share one
//! parsed [`Design`] and clone it per run — the cache stores the pristine
//! post-load state, and every `get` hands out an independent clone for the
//! job to mutate.

use crate::synthesis::{synthesize, SynthesisSpec};
use crate::{bookshelf, DbError, Design};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

/// Default [`DesignCache`] capacity, in designs.
pub const DEFAULT_DESIGN_CACHE_CAPACITY: usize = 64;

#[derive(Debug)]
struct Entries {
    map: HashMap<String, (Design, u64)>,
    /// Logical LRU clock: bumped on every hit or insert, so recency is a
    /// pure function of access order — no wall-clock nondeterminism.
    tick: u64,
    evictions: usize,
}

/// A concurrency-safe, bounded cache of loaded designs, keyed by their
/// source.
///
/// Lookups clone the cached [`Design`] (cheap relative to parsing or
/// synthesis); the cached master copy is never mutated after insertion.
/// Misses load under the lock, so concurrent jobs requesting the same
/// design load it exactly once.
///
/// The cache holds at most `capacity` designs (default
/// [`DEFAULT_DESIGN_CACHE_CAPACITY`]). Inserting beyond the cap evicts
/// the least-recently-used entry, where recency is a logical access
/// counter bumped under the cache lock — eviction order is a
/// deterministic function of the access sequence, never of timing.
#[derive(Debug)]
pub struct DesignCache {
    entries: Mutex<Entries>,
    capacity: usize,
    /// `(hits, misses)` behind one lock so [`DesignCache::stats`] always
    /// observes a consistent pair (two separate counters could be read
    /// mid-update by a concurrent `get_or_load`).
    stats: Mutex<(usize, usize)>,
}

impl Default for DesignCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_DESIGN_CACHE_CAPACITY)
    }
}

impl DesignCache {
    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache holding at most `capacity` designs (a cap
    /// of 0 is clamped to 1 so the most recent design is always
    /// reusable).
    pub fn with_capacity(capacity: usize) -> Self {
        DesignCache {
            entries: Mutex::new(Entries {
                map: HashMap::new(),
                tick: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
            stats: Mutex::new((0, 0)),
        }
    }

    /// The maximum number of designs the cache retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(hits, misses)` counters since construction, read atomically as a
    /// pair.
    pub fn stats(&self) -> (usize, usize) {
        *self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of entries evicted to stay within capacity.
    pub fn evictions(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .evictions
    }

    /// Number of cached designs.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get_or_load(
        &self,
        key: String,
        load: impl FnOnce() -> Result<Design, DbError>,
    ) -> Result<Design, DbError> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.tick += 1;
        let now = entries.tick;
        if let Some((design, used)) = entries.map.get_mut(&key) {
            *used = now;
            let design = design.clone();
            self.stats.lock().unwrap_or_else(|e| e.into_inner()).0 += 1;
            return Ok(design);
        }
        let design = load()?;
        self.stats.lock().unwrap_or_else(|e| e.into_inner()).1 += 1;
        if entries.map.len() >= self.capacity {
            // Ticks are unique under the lock, so the minimum is unique
            // and eviction order is deterministic.
            if let Some(victim) = entries
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                entries.map.remove(&victim);
                entries.evictions += 1;
            }
        }
        entries.map.insert(key, (design.clone(), now));
        Ok(design)
    }

    /// Reads a Bookshelf benchmark through the cache.
    ///
    /// The key includes the target density bit-exactly: two jobs reading
    /// the same `.aux` at different densities are different designs.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from [`bookshelf::read_aux`] on a miss.
    pub fn get_or_read_aux(&self, aux: &Path, target_density: f64) -> Result<Design, DbError> {
        let key = format!("aux:{}:{:016x}", aux.display(), target_density.to_bits());
        self.get_or_load(key, || bookshelf::read_aux(aux, target_density))
    }

    /// Synthesizes a design through the cache.
    ///
    /// The full spec (including seed and every shape parameter) is the
    /// key, so distinct specs never collide.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from [`synthesize`] on a miss.
    pub fn get_or_synthesize(&self, spec: &SynthesisSpec) -> Result<Design, DbError> {
        self.get_or_load(format!("synth:{spec:?}"), || synthesize(spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> SynthesisSpec {
        SynthesisSpec::new("cache", 120, 130).with_seed(seed)
    }

    #[test]
    fn synthesis_is_cached_and_clones_are_independent() {
        let cache = DesignCache::new();
        let mut a = cache.get_or_synthesize(&spec(5)).unwrap();
        let b = cache.get_or_synthesize(&spec(5)).unwrap();
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(a.positions(), b.positions());
        // Mutating one clone must not leak into the cached master.
        let first = a.netlist().cell_ids().next().unwrap();
        a.positions_mut()[0] = crate::Point {
            x: -1234.5,
            y: 999.0,
        };
        let c = cache.get_or_synthesize(&spec(5)).unwrap();
        assert_eq!(cache.stats(), (2, 1));
        assert_ne!(c.position(first), a.position(first));
        assert_eq!(c.position(first), b.position(first));
    }

    #[test]
    fn distinct_specs_are_distinct_entries() {
        let cache = DesignCache::new();
        cache.get_or_synthesize(&spec(1)).unwrap();
        cache.get_or_synthesize(&spec(2)).unwrap();
        assert_eq!(cache.stats(), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn aux_cache_keys_include_density() {
        let dir = std::env::temp_dir().join(format!("xplace-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let design = synthesize(&spec(7)).unwrap();
        let aux = bookshelf::write_design(&design, &dir).unwrap();
        let cache = DesignCache::new();
        let d1 = cache.get_or_read_aux(&aux, 0.9).unwrap();
        let d2 = cache.get_or_read_aux(&aux, 0.9).unwrap();
        let d3 = cache.get_or_read_aux(&aux, 0.8).unwrap();
        assert_eq!(cache.stats(), (1, 2));
        assert_eq!(d1.target_density(), d2.target_density());
        assert!((d3.target_density() - 0.8).abs() < 1e-12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn capacity_evicts_least_recently_used_deterministically() {
        let cache = DesignCache::with_capacity(2);
        cache.get_or_synthesize(&spec(1)).unwrap();
        cache.get_or_synthesize(&spec(2)).unwrap();
        // Touch seed 1 so seed 2 is the LRU victim when seed 3 arrives.
        cache.get_or_synthesize(&spec(1)).unwrap();
        cache.get_or_synthesize(&spec(3)).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // Seed 1 survived (hit); seed 2 was evicted (miss again).
        let (hits, misses) = cache.stats();
        cache.get_or_synthesize(&spec(1)).unwrap();
        assert_eq!(cache.stats(), (hits + 1, misses));
        cache.get_or_synthesize(&spec(2)).unwrap();
        assert_eq!(cache.stats(), (hits + 1, misses + 1));
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cache = DesignCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        cache.get_or_synthesize(&spec(1)).unwrap();
        cache.get_or_synthesize(&spec(1)).unwrap();
        assert_eq!(cache.stats(), (1, 1));
        cache.get_or_synthesize(&spec(2)).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn load_errors_propagate_and_are_not_cached() {
        let cache = DesignCache::new();
        let missing = Path::new("/nonexistent/xplace-missing.aux");
        assert!(cache.get_or_read_aux(missing, 0.9).is_err());
        assert!(cache.is_empty());
    }
}
