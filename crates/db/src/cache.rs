//! A shared read-only design cache for batch runs.
//!
//! A batch manifest often places the same design several times (ablation
//! sweeps, per-config overrides) or many synthesized designs from the same
//! spec family. Parsing a Bookshelf benchmark and synthesizing a netlist
//! are both pure functions of their inputs, so jobs can safely share one
//! parsed [`Design`] and clone it per run — the cache stores the pristine
//! post-load state, and every `get` hands out an independent clone for the
//! job to mutate.

use crate::synthesis::{synthesize, SynthesisSpec};
use crate::{bookshelf, DbError, Design};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

/// A concurrency-safe cache of loaded designs, keyed by their source.
///
/// Lookups clone the cached [`Design`] (cheap relative to parsing or
/// synthesis); the cached master copy is never mutated after insertion.
/// Misses load under the lock, so concurrent jobs requesting the same
/// design load it exactly once.
#[derive(Debug, Default)]
pub struct DesignCache {
    entries: Mutex<HashMap<String, Design>>,
    /// `(hits, misses)` behind one lock so [`DesignCache::stats`] always
    /// observes a consistent pair (two separate counters could be read
    /// mid-update by a concurrent `get_or_load`).
    stats: Mutex<(usize, usize)>,
}

impl DesignCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(hits, misses)` counters since construction, read atomically as a
    /// pair.
    pub fn stats(&self) -> (usize, usize) {
        *self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of cached designs.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get_or_load(
        &self,
        key: String,
        load: impl FnOnce() -> Result<Design, DbError>,
    ) -> Result<Design, DbError> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(design) = entries.get(&key) {
            self.stats.lock().unwrap_or_else(|e| e.into_inner()).0 += 1;
            return Ok(design.clone());
        }
        let design = load()?;
        self.stats.lock().unwrap_or_else(|e| e.into_inner()).1 += 1;
        entries.insert(key, design.clone());
        Ok(design)
    }

    /// Reads a Bookshelf benchmark through the cache.
    ///
    /// The key includes the target density bit-exactly: two jobs reading
    /// the same `.aux` at different densities are different designs.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from [`bookshelf::read_aux`] on a miss.
    pub fn get_or_read_aux(&self, aux: &Path, target_density: f64) -> Result<Design, DbError> {
        let key = format!("aux:{}:{:016x}", aux.display(), target_density.to_bits());
        self.get_or_load(key, || bookshelf::read_aux(aux, target_density))
    }

    /// Synthesizes a design through the cache.
    ///
    /// The full spec (including seed and every shape parameter) is the
    /// key, so distinct specs never collide.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from [`synthesize`] on a miss.
    pub fn get_or_synthesize(&self, spec: &SynthesisSpec) -> Result<Design, DbError> {
        self.get_or_load(format!("synth:{spec:?}"), || synthesize(spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> SynthesisSpec {
        SynthesisSpec::new("cache", 120, 130).with_seed(seed)
    }

    #[test]
    fn synthesis_is_cached_and_clones_are_independent() {
        let cache = DesignCache::new();
        let mut a = cache.get_or_synthesize(&spec(5)).unwrap();
        let b = cache.get_or_synthesize(&spec(5)).unwrap();
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(a.positions(), b.positions());
        // Mutating one clone must not leak into the cached master.
        let first = a.netlist().cell_ids().next().unwrap();
        a.positions_mut()[0] = crate::Point {
            x: -1234.5,
            y: 999.0,
        };
        let c = cache.get_or_synthesize(&spec(5)).unwrap();
        assert_eq!(cache.stats(), (2, 1));
        assert_ne!(c.position(first), a.position(first));
        assert_eq!(c.position(first), b.position(first));
    }

    #[test]
    fn distinct_specs_are_distinct_entries() {
        let cache = DesignCache::new();
        cache.get_or_synthesize(&spec(1)).unwrap();
        cache.get_or_synthesize(&spec(2)).unwrap();
        assert_eq!(cache.stats(), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn aux_cache_keys_include_density() {
        let dir = std::env::temp_dir().join(format!("xplace-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let design = synthesize(&spec(7)).unwrap();
        let aux = bookshelf::write_design(&design, &dir).unwrap();
        let cache = DesignCache::new();
        let d1 = cache.get_or_read_aux(&aux, 0.9).unwrap();
        let d2 = cache.get_or_read_aux(&aux, 0.9).unwrap();
        let d3 = cache.get_or_read_aux(&aux, 0.8).unwrap();
        assert_eq!(cache.stats(), (1, 2));
        assert_eq!(d1.target_density(), d2.target_density());
        assert!((d3.target_density() - 0.8).abs() < 1e-12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_errors_propagate_and_are_not_cached() {
        let cache = DesignCache::new();
        let missing = Path::new("/nonexistent/xplace-missing.aux");
        assert!(cache.get_or_read_aux(missing, 0.9).is_err());
        assert!(cache.is_empty());
    }
}
