//! LEF/DEF reader and writer for the subset used by placement flows.
//!
//! The ISPD 2015 contest benchmarks ship as LEF (library: macro sizes and
//! pin shapes) plus DEF (design: die area, rows, components, pins, nets).
//! This module handles the records a global placer needs:
//!
//! * LEF: `MACRO` / `SIZE ... BY ...` / `PIN ... RECT ...`,
//! * DEF: `DIEAREA`, `ROW`, `COMPONENTS` (+`PLACED`/`FIXED`), `PINS`,
//!   `NETS`.
//!
//! Everything else (routing layers, tracks, special nets, fence regions —
//! the paper removes the latter anyway) is skipped token-wise.
//!
//! The writer emits one LEF macro per distinct cell footprint with a single
//! center pin, which is lossy for per-pin offsets; it exists so synthetic
//! designs can be fed to external DEF-consuming tools.

use crate::netlist::NetlistBuilder;
use crate::{CellId, CellKind, DbError, Design, Point, Rect, Row};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A macro (cell master) parsed from LEF.
#[derive(Debug, Clone, PartialEq)]
pub struct LefMacro {
    /// Master name.
    pub name: String,
    /// Cell width.
    pub width: f64,
    /// Cell height.
    pub height: f64,
    /// Pin offsets from the cell **center**, keyed by pin name.
    pub pins: HashMap<String, Point>,
}

/// Parses the LEF subset into a macro library keyed by master name.
///
/// # Errors
///
/// Returns [`DbError::Parse`] for structurally broken macro blocks.
pub fn parse_lef(content: &str) -> Result<HashMap<String, LefMacro>, DbError> {
    let mut macros = HashMap::new();
    let mut lines = content.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let line = raw.trim();
        let Some(name) = line.strip_prefix("MACRO ") else {
            continue;
        };
        let name = name.trim().to_string();
        let mut width = 0.0;
        let mut height = 0.0;
        let mut pins: HashMap<String, Point> = HashMap::new();
        let mut current_pin: Option<String> = None;
        let mut closed = false;
        for (inner_no, inner_raw) in lines.by_ref() {
            let inner = inner_raw.trim();
            if let Some(rest) = inner.strip_prefix("SIZE ") {
                // SIZE w BY h ;
                let toks: Vec<&str> = rest.trim_end_matches(';').split_whitespace().collect();
                if toks.len() < 3 || !toks[1].eq_ignore_ascii_case("BY") {
                    return Err(DbError::parse("lef", inner_no + 1, "malformed SIZE record"));
                }
                width = toks[0]
                    .parse()
                    .map_err(|_| DbError::parse("lef", inner_no + 1, "SIZE width"))?;
                height = toks[2]
                    .parse()
                    .map_err(|_| DbError::parse("lef", inner_no + 1, "SIZE height"))?;
            } else if let Some(pin_name) = inner.strip_prefix("PIN ") {
                current_pin = Some(pin_name.trim().to_string());
            } else if let Some(rest) = inner.strip_prefix("RECT ") {
                if let Some(pin) = &current_pin {
                    let toks: Vec<f64> = rest
                        .trim_end_matches(';')
                        .split_whitespace()
                        .filter_map(|t| t.parse().ok())
                        .collect();
                    if toks.len() == 4 {
                        // Offset of the pin-shape center from the macro
                        // origin (lower-left); converted to center-relative
                        // once SIZE is known, at block end.
                        pins.insert(
                            pin.clone(),
                            Point::new(0.5 * (toks[0] + toks[2]), 0.5 * (toks[1] + toks[3])),
                        );
                    }
                }
            } else if inner.starts_with("END") {
                let target = inner.trim_start_matches("END").trim();
                if let Some(pin) = &current_pin {
                    if target == pin {
                        current_pin = None;
                        continue;
                    }
                }
                if target == name {
                    closed = true;
                    break;
                }
            }
        }
        if !closed {
            return Err(DbError::parse(
                "lef",
                lineno + 1,
                format!("MACRO {name} not closed"),
            ));
        }
        if width <= 0.0 || height <= 0.0 {
            return Err(DbError::parse(
                "lef",
                lineno + 1,
                format!("MACRO {name} missing SIZE"),
            ));
        }
        // Convert pin offsets from origin-relative to center-relative.
        for p in pins.values_mut() {
            p.x -= width * 0.5;
            p.y -= height * 0.5;
        }
        macros.insert(
            name.clone(),
            LefMacro {
                name,
                width,
                height,
                pins,
            },
        );
    }
    Ok(macros)
}

/// Extracts the `( x y )` pair that follows a `PLACED`/`FIXED` keyword.
fn parse_placed_point(tokens: &[&str], at: usize) -> Option<Point> {
    // tokens[at] == "PLACED"/"FIXED"; expect "(", x, y, ")".
    if tokens.len() > at + 4 && tokens[at + 1] == "(" && tokens[at + 4] == ")" {
        let x = tokens[at + 2].parse().ok()?;
        let y = tokens[at + 3].parse().ok()?;
        Some(Point::new(x, y))
    } else {
        None
    }
}

/// Parses the DEF subset, resolving cell masters against `lef`.
///
/// # Errors
///
/// Returns [`DbError::Parse`] on malformed records, and
/// [`DbError::UnknownCell`] when a component references an unknown master
/// or a net references an unknown component.
pub fn parse_def(
    content: &str,
    lef: &HashMap<String, LefMacro>,
    target_density: f64,
) -> Result<Design, DbError> {
    let mut name = String::from("design");
    let mut die: Option<Rect> = None;
    let mut rows: Vec<Row> = Vec::new();
    let mut builder = NetlistBuilder::new();
    let mut ids: HashMap<String, CellId> = HashMap::new();
    let mut masters: HashMap<String, String> = HashMap::new();
    let mut placements: HashMap<String, (Point, bool)> = HashMap::new();
    let mut io_pins: HashMap<String, (String, Point)> = HashMap::new(); // pin -> (net, pos)

    #[derive(PartialEq)]
    enum Section {
        Top,
        Components,
        Pins,
        Nets,
    }
    let mut section = Section::Top;
    // Statements end with ';' and may span lines; accumulate.
    let mut pending = String::new();
    for (lineno, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        pending.push(' ');
        pending.push_str(line);
        // Statements end with ';' except the keyword-only `END <section>`
        // lines, which are complete on their own.
        if !line.ends_with(';') && !line.starts_with("END") {
            continue;
        }
        let stmt = pending.trim().trim_end_matches(';').trim().to_string();
        pending.clear();
        let tokens: Vec<&str> = stmt.split_whitespace().collect();
        if tokens.is_empty() {
            continue;
        }
        match section {
            Section::Top => match tokens[0] {
                "DESIGN" if tokens.len() >= 2 => name = tokens[1].to_string(),
                "DIEAREA" => {
                    let nums: Vec<f64> = tokens.iter().filter_map(|t| t.parse().ok()).collect();
                    if nums.len() < 4 {
                        return Err(DbError::parse("def", lineno + 1, "malformed DIEAREA"));
                    }
                    die = Some(Rect::new(nums[0], nums[1], nums[2], nums[3]));
                }
                "ROW" => {
                    // ROW name site x y orient DO n BY 1 STEP sx sy
                    if tokens.len() < 5 {
                        return Err(DbError::parse("def", lineno + 1, "malformed ROW"));
                    }
                    let x: f64 = tokens[3]
                        .parse()
                        .map_err(|_| DbError::parse("def", lineno + 1, "ROW x is not a number"))?;
                    let y: f64 = tokens[4]
                        .parse()
                        .map_err(|_| DbError::parse("def", lineno + 1, "ROW y is not a number"))?;
                    let mut n = 1.0;
                    let mut step = 1.0;
                    let mut height = 12.0;
                    if let Some(pos) = tokens.iter().position(|t| *t == "DO") {
                        n = tokens
                            .get(pos + 1)
                            .and_then(|t| t.parse().ok())
                            .unwrap_or(1.0);
                    }
                    if let Some(pos) = tokens.iter().position(|t| *t == "STEP") {
                        step = tokens
                            .get(pos + 1)
                            .and_then(|t| t.parse().ok())
                            .unwrap_or(1.0);
                    }
                    if let Some(site) = lef.values().find(|m| m.name.contains("Site")) {
                        height = site.height;
                    } else if let Some(prev) = rows.last() {
                        height = prev.height;
                    }
                    rows.push(Row {
                        y,
                        height,
                        x_min: x,
                        x_max: x + n * step,
                        site_width: step,
                    });
                }
                "COMPONENTS" => section = Section::Components,
                "PINS" => section = Section::Pins,
                "NETS" => section = Section::Nets,
                _ => {}
            },
            Section::Components => {
                if tokens[0] == "END" {
                    section = Section::Top;
                    continue;
                }
                if tokens[0] != "-" || tokens.len() < 3 {
                    continue;
                }
                let comp = tokens[1].to_string();
                let master_name = tokens[2];
                let master = lef
                    .get(master_name)
                    .ok_or_else(|| DbError::UnknownCell(format!("master `{master_name}`")))?;
                let fixed = tokens.contains(&"FIXED");
                let kind = if fixed {
                    CellKind::Fixed
                } else {
                    CellKind::Movable
                };
                let id = builder.add_cell(comp.clone(), master.width, master.height, kind);
                ids.insert(comp.clone(), id);
                masters.insert(comp.clone(), master_name.to_string());
                if let Some(at) = tokens.iter().position(|t| *t == "PLACED" || *t == "FIXED") {
                    if let Some(ll) = parse_placed_point(&tokens, at) {
                        placements.insert(
                            comp,
                            (
                                Point::new(ll.x + master.width * 0.5, ll.y + master.height * 0.5),
                                fixed,
                            ),
                        );
                    }
                }
            }
            Section::Pins => {
                if tokens[0] == "END" {
                    section = Section::Top;
                    continue;
                }
                if tokens[0] != "-" || tokens.len() < 2 {
                    continue;
                }
                let pin_name = tokens[1].to_string();
                let net = tokens
                    .iter()
                    .position(|t| *t == "NET")
                    .and_then(|i| tokens.get(i + 1))
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| pin_name.clone());
                let pos = tokens
                    .iter()
                    .position(|t| *t == "PLACED" || *t == "FIXED")
                    .and_then(|at| parse_placed_point(&tokens, at))
                    .unwrap_or_default();
                let term_name = format!("__pin_{pin_name}");
                let id = builder.add_cell(term_name.clone(), 0.0, 0.0, CellKind::Terminal);
                ids.insert(term_name.clone(), id);
                placements.insert(term_name, (pos, true));
                io_pins.insert(pin_name, (net, pos));
            }
            Section::Nets => {
                if tokens[0] == "END" {
                    section = Section::Top;
                    continue;
                }
                if tokens[0] != "-" || tokens.len() < 2 {
                    continue;
                }
                let net_name = tokens[1].to_string();
                let mut pins: Vec<(CellId, Point)> = Vec::new();
                let mut i = 2;
                while i < tokens.len() {
                    if tokens[i] == "(" && i + 2 < tokens.len() {
                        let owner = tokens[i + 1];
                        let pin_name = tokens[i + 2];
                        if owner == "PIN" {
                            // External pin: materialize a terminal on demand.
                            let (.., pos) = io_pins
                                .get(pin_name)
                                .cloned()
                                .unwrap_or((net_name.clone(), Point::default()));
                            let term_name = format!("__pin_{pin_name}");
                            let id = match ids.get(&term_name) {
                                Some(&id) => id,
                                None => {
                                    let id = builder.add_cell(
                                        term_name.clone(),
                                        0.0,
                                        0.0,
                                        CellKind::Terminal,
                                    );
                                    ids.insert(term_name.clone(), id);
                                    placements.insert(term_name, (pos, true));
                                    id
                                }
                            };
                            pins.push((id, Point::default()));
                        } else {
                            let id = ids.get(owner).copied().ok_or_else(|| {
                                DbError::UnknownCell(format!("component `{owner}`"))
                            })?;
                            let offset = masters
                                .get(owner)
                                .and_then(|m| lef.get(m))
                                .and_then(|m| m.pins.get(pin_name))
                                .copied()
                                .unwrap_or_default();
                            pins.push((id, offset));
                        }
                        i += 4; // skip "( owner pin )"
                    } else {
                        i += 1;
                    }
                }
                if !pins.is_empty() {
                    builder.add_net(net_name, pins)?;
                }
            }
        }
    }

    let netlist = builder.finish()?;
    let region = match die {
        Some(r) => r,
        None => {
            if rows.is_empty() {
                return Err(DbError::parse("def", 0, "no DIEAREA and no ROW records"));
            }
            let mut r = rows[0].rect();
            for row in &rows[1..] {
                r = r.union(&row.rect());
            }
            r
        }
    };
    let mut positions = vec![region.center(); netlist.num_cells()];
    for (comp, (pos, _)) in &placements {
        if let Some(&id) = ids.get(comp) {
            positions[id.index()] = *pos;
        }
    }
    Design::new(&name, netlist, region, rows, target_density, positions)
}

/// Emits a LEF library covering every distinct cell footprint of `design`
/// (one macro per `(width, height)` class, single center pin `P`).
pub fn write_lef(design: &Design) -> String {
    let mut seen: Vec<(f64, f64)> = Vec::new();
    let nl = design.netlist();
    for c in nl.cells() {
        let key = (c.width(), c.height());
        if c.width() > 0.0 && !seen.contains(&key) {
            seen.push(key);
        }
    }
    let mut out = String::from("VERSION 5.8 ;\n");
    for (w, h) in seen {
        let _ = writeln!(out, "MACRO MC_{w}_{h}");
        let _ = writeln!(out, "  SIZE {w} BY {h} ;");
        let _ = writeln!(out, "  PIN P");
        let _ = writeln!(
            out,
            "    RECT {} {} {} {} ;",
            w * 0.5,
            h * 0.5,
            w * 0.5,
            h * 0.5
        );
        let _ = writeln!(out, "  END P");
        let _ = writeln!(out, "END MC_{w}_{h}");
    }
    out.push_str("END LIBRARY\n");
    out
}

/// Emits the design as DEF against the library produced by [`write_lef`].
///
/// Per-pin offsets are replaced by each master's center pin, which is the
/// documented lossy simplification of this writer.
pub fn write_def(design: &Design) -> String {
    let nl = design.netlist();
    let r = design.region();
    let mut out = String::from("VERSION 5.8 ;\n");
    let _ = writeln!(out, "DESIGN {} ;", design.name());
    let _ = writeln!(out, "UNITS DISTANCE MICRONS 1000 ;");
    let _ = writeln!(out, "DIEAREA ( {} {} ) ( {} {} ) ;", r.lx, r.ly, r.ux, r.uy);
    for (i, row) in design.rows().iter().enumerate() {
        let _ = writeln!(
            out,
            "ROW ROW_{i} CoreSite {} {} N DO {} BY 1 STEP {} 0 ;",
            row.x_min,
            row.y,
            row.num_sites(),
            row.site_width
        );
    }
    let comps: Vec<_> = nl
        .cells()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.width() > 0.0)
        .collect();
    let _ = writeln!(out, "COMPONENTS {} ;", comps.len());
    for (i, c) in comps {
        let p = design.positions()[i];
        let lx = p.x - c.width() * 0.5;
        let ly = p.y - c.height() * 0.5;
        let keyword = if c.is_movable() { "PLACED" } else { "FIXED" };
        let _ = writeln!(
            out,
            "- {} MC_{}_{} + {} ( {} {} ) N ;",
            c.name(),
            c.width(),
            c.height(),
            keyword,
            lx,
            ly
        );
    }
    let _ = writeln!(out, "END COMPONENTS");
    let terminals: Vec<_> = nl
        .cells()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.width() == 0.0)
        .collect();
    let _ = writeln!(out, "PINS {} ;", terminals.len());
    for (i, c) in &terminals {
        let p = design.positions()[*i];
        let _ = writeln!(
            out,
            "- {} + NET {} + PLACED ( {} {} ) N ;",
            c.name(),
            c.name(),
            p.x,
            p.y
        );
    }
    let _ = writeln!(out, "END PINS");
    let _ = writeln!(out, "NETS {} ;", nl.num_nets());
    for net in nl.nets() {
        let mut line = format!("- {}", net.name());
        for pid in net.pins() {
            let pin = nl.pin(pid);
            let cell = nl.cell(pin.cell);
            if cell.width() > 0.0 {
                let _ = write!(line, " ( {} P )", cell.name());
            } else {
                let _ = write!(line, " ( PIN {} )", cell.name());
            }
        }
        line.push_str(" ;");
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "END NETS");
    let _ = writeln!(out, "END DESIGN");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::{synthesize, SynthesisSpec};

    const LEF: &str = "\
VERSION 5.8 ;
MACRO INV
  SIZE 2 BY 12 ;
  PIN A
    RECT 0.2 5 0.4 7 ;
  END A
  PIN Z
    RECT 1.6 5 1.8 7 ;
  END Z
END INV
MACRO RAM
  SIZE 40 BY 48 ;
  PIN D
    RECT 0 0 2 2 ;
  END D
END RAM
END LIBRARY
";

    const DEF: &str = "\
VERSION 5.8 ;
DESIGN demo ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 200 120 ) ;
ROW ROW_0 CoreSite 0 0 N DO 200 BY 1 STEP 1 0 ;
ROW ROW_1 CoreSite 0 12 N DO 200 BY 1 STEP 1 0 ;
COMPONENTS 3 ;
- u1 INV + PLACED ( 10 0 ) N ;
- u2 INV + PLACED ( 50 12 ) N ;
- r1 RAM + FIXED ( 100 48 ) N ;
END COMPONENTS
PINS 1 ;
- clk + NET n2 + PLACED ( 0 60 ) N ;
END PINS
NETS 2 ;
- n1 ( u1 Z ) ( u2 A ) ( r1 D ) ;
- n2 ( u1 A ) ( PIN clk ) ;
END NETS
END DESIGN
";

    #[test]
    fn parses_lef_macros_and_pins() {
        let lib = parse_lef(LEF).unwrap();
        assert_eq!(lib.len(), 2);
        let inv = &lib["INV"];
        assert_eq!(inv.width, 2.0);
        assert_eq!(inv.height, 12.0);
        // Pin A rect center (0.3, 6), center-relative: (-0.7, 0).
        let a = inv.pins["A"];
        assert!((a.x + 0.7).abs() < 1e-12 && a.y.abs() < 1e-12);
    }

    #[test]
    fn parses_def_into_design() {
        let lib = parse_lef(LEF).unwrap();
        let d = parse_def(DEF, &lib, 0.9).unwrap();
        assert_eq!(d.name(), "demo");
        assert_eq!(d.region(), Rect::new(0.0, 0.0, 200.0, 120.0));
        assert_eq!(d.rows().len(), 2);
        // 3 components + 1 materialized terminal.
        assert_eq!(d.netlist().num_cells(), 4);
        assert_eq!(d.netlist().num_nets(), 2);
        let u1 = d.netlist().cell_by_name("u1").unwrap();
        assert_eq!(d.position(u1), Point::new(11.0, 6.0)); // ll (10,0) + (1,6)
        assert!(d.netlist().cell(u1).is_movable());
        let r1 = d.netlist().cell_by_name("r1").unwrap();
        assert_eq!(d.netlist().cell(r1).kind(), CellKind::Fixed);
        let term = d.netlist().cell_by_name("__pin_clk").unwrap();
        assert_eq!(d.netlist().cell(term).kind(), CellKind::Terminal);
        assert_eq!(d.position(term), Point::new(0.0, 60.0));
    }

    #[test]
    fn def_net_pin_offsets_come_from_lef() {
        let lib = parse_lef(LEF).unwrap();
        let d = parse_def(DEF, &lib, 0.9).unwrap();
        // n1's first pin is u1/Z with LEF offset (1.7-1, 6-6) = (0.7, 0).
        let n1 = d.netlist().net(crate::NetId(0));
        let pin = d.netlist().pin(n1.pins().next().unwrap());
        assert!((pin.offset.x - 0.7).abs() < 1e-12);
    }

    #[test]
    fn unknown_master_is_an_error() {
        let lib = parse_lef(LEF).unwrap();
        let def = DEF.replace("INV", "NOPE");
        assert!(matches!(
            parse_def(&def, &lib, 0.9),
            Err(DbError::UnknownCell(_))
        ));
    }

    #[test]
    fn unclosed_macro_is_an_error() {
        let broken = "MACRO X\n  SIZE 1 BY 1 ;\n";
        assert!(matches!(parse_lef(broken), Err(DbError::Parse { .. })));
    }

    #[test]
    fn macro_without_size_is_an_error() {
        let broken = "MACRO X\nEND X\n";
        assert!(matches!(parse_lef(broken), Err(DbError::Parse { .. })));
    }

    #[test]
    fn writer_round_trips_counts_and_centers() {
        let design = synthesize(
            &SynthesisSpec::new("defrt", 80, 90)
                .with_seed(12)
                .with_macro_count(2),
        )
        .unwrap();
        let lef = write_lef(&design);
        let def = write_def(&design);
        let lib = parse_lef(&lef).unwrap();
        let back = parse_def(&def, &lib, design.target_density()).unwrap();
        assert_eq!(back.netlist().num_cells(), design.netlist().num_cells());
        assert_eq!(back.netlist().num_nets(), design.netlist().num_nets());
        // Centers survive (pin offsets are intentionally lossy).
        for id in design.netlist().cell_ids() {
            let name = design.netlist().cell(id).name();
            let name = if design.netlist().cell(id).width() == 0.0 {
                format!("__pin_{name}")
            } else {
                name.to_string()
            };
            let echo = back.netlist().cell_by_name(&name).unwrap();
            let a = design.position(id);
            let b = back.position(echo);
            assert!(
                (a.x - b.x).abs() < 1e-9 && (a.y - b.y).abs() < 1e-9,
                "{name}"
            );
        }
    }

    #[test]
    fn multiline_net_statements_parse() {
        let lib = parse_lef(LEF).unwrap();
        // The n1 net record split across three lines.
        let def = DEF.replace(
            "- n1 ( u1 Z ) ( u2 A ) ( r1 D ) ;",
            "- n1 ( u1 Z )
  ( u2 A )
  ( r1 D ) ;",
        );
        let d = parse_def(&def, &lib, 0.9).unwrap();
        assert_eq!(d.netlist().num_nets(), 2);
        let n1 = d.netlist().net(crate::NetId(0));
        assert_eq!(n1.degree(), 3);
    }

    #[test]
    fn def_without_diearea_or_rows_is_an_error() {
        let lib = parse_lef(LEF).unwrap();
        let def = "VERSION 5.8 ;\nDESIGN x ;\n";
        assert!(parse_def(def, &lib, 0.9).is_err());
    }
}
