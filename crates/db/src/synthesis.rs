//! Synthetic circuit generation.
//!
//! The ISPD 2005/2015 contest releases are large proprietary-format data
//! drops; this module is the documented substitution (see `DESIGN.md`): a
//! parameterized generator that produces placement instances matching the
//! *statistics* that drive global-placement behaviour — cell count, net
//! count, a power-law net-degree distribution, Rent-style net locality
//! (net spans drawn log-uniformly over a conceptual linear hierarchy),
//! macro/terminal fractions, row geometry and whitespace.
//!
//! Real contest data still drops in through [`crate::bookshelf`] /
//! [`crate::def`] when available.

use crate::netlist::NetlistBuilder;
use crate::{CellKind, DbError, Design, Point, Rect, Row};
use xplace_testkit::Rng;

/// Parameters controlling synthetic circuit generation.
///
/// ```
/// use xplace_db::synthesis::{SynthesisSpec, synthesize};
///
/// # fn main() -> Result<(), xplace_db::DbError> {
/// let spec = SynthesisSpec::new("fft_like", 2_000, 1_900)
///     .with_seed(42)
///     .with_macro_count(4)
///     .with_utilization(0.5);
/// let design = synthesize(&spec)?;
/// design.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisSpec {
    /// Design name.
    pub name: String,
    /// Number of movable standard cells.
    pub num_cells: usize,
    /// Target number of nets (actual count may differ by a few percent
    /// because every cell is guaranteed at least one connection).
    pub num_nets: usize,
    /// Number of fixed macro blocks.
    pub num_macros: usize,
    /// Fraction of the die area covered by macros.
    pub macro_area_fraction: f64,
    /// Number of I/O terminals on the periphery.
    pub num_terminals: usize,
    /// Desired movable-area / free-area utilization.
    pub utilization: f64,
    /// Benchmark target density `D_t` (must be >= utilization).
    pub target_density: f64,
    /// Placement row height in database units.
    pub row_height: f64,
    /// Power-law exponent of the net-degree distribution (larger = more
    /// 2-pin nets).
    pub degree_exponent: f64,
    /// Maximum net degree.
    pub max_net_degree: usize,
    /// Die aspect ratio (width / height).
    pub aspect: f64,
    /// Number of fence regions (each confines a contiguous slice of cells
    /// to a band along the top edge of the die).
    pub num_fences: usize,
    /// RNG seed; the generator is fully deterministic given the spec.
    pub seed: u64,
}

impl SynthesisSpec {
    /// Creates a spec with sensible defaults for everything but the name
    /// and cell/net counts.
    pub fn new(name: impl Into<String>, num_cells: usize, num_nets: usize) -> Self {
        SynthesisSpec {
            name: name.into(),
            num_cells,
            num_nets,
            num_macros: 0,
            macro_area_fraction: 0.0,
            num_terminals: 64,
            utilization: 0.7,
            target_density: 0.9,
            row_height: 12.0,
            degree_exponent: 2.4,
            max_net_degree: 24,
            aspect: 1.0,
            num_fences: 0,
            seed: 1,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds `count` fixed macros covering `fraction` of the die
    /// (default fraction 0.15 when macros are requested).
    pub fn with_macro_count(mut self, count: usize) -> Self {
        self.num_macros = count;
        if count > 0 && self.macro_area_fraction == 0.0 {
            self.macro_area_fraction = 0.15;
        }
        self
    }

    /// Sets the macro area fraction of the die.
    pub fn with_macro_area_fraction(mut self, fraction: f64) -> Self {
        self.macro_area_fraction = fraction;
        self
    }

    /// Sets the movable-area utilization.
    pub fn with_utilization(mut self, utilization: f64) -> Self {
        self.utilization = utilization;
        self
    }

    /// Sets the benchmark target density.
    pub fn with_target_density(mut self, density: f64) -> Self {
        self.target_density = density;
        self
    }

    /// Sets the terminal count.
    pub fn with_terminals(mut self, count: usize) -> Self {
        self.num_terminals = count;
        self
    }

    /// Adds `count` fence regions along the top edge of the die, each
    /// confining ~3% of the movable cells.
    pub fn with_fences(mut self, count: usize) -> Self {
        self.num_fences = count;
        self
    }

    fn validate(&self) -> Result<(), DbError> {
        if self.num_cells == 0 {
            return Err(DbError::InvalidSpec("num_cells must be positive".into()));
        }
        if !(self.utilization > 0.0 && self.utilization < 1.0) {
            return Err(DbError::InvalidSpec(format!(
                "utilization {} outside (0, 1)",
                self.utilization
            )));
        }
        if self.target_density < self.utilization {
            return Err(DbError::InvalidSpec(format!(
                "target density {} below utilization {}",
                self.target_density, self.utilization
            )));
        }
        if self.max_net_degree < 2 {
            return Err(DbError::InvalidSpec(
                "max_net_degree must be at least 2".into(),
            ));
        }
        if !(self.macro_area_fraction >= 0.0 && self.macro_area_fraction < 0.6) {
            return Err(DbError::InvalidSpec(format!(
                "macro area fraction {} outside [0, 0.6)",
                self.macro_area_fraction
            )));
        }
        if self.aspect <= 0.0 {
            return Err(DbError::InvalidSpec("aspect must be positive".into()));
        }
        Ok(())
    }
}

/// Samples a net degree from a truncated power law `p(d) ~ d^-gamma`.
fn sample_degree(rng: &mut Rng, gamma: f64, max_degree: usize) -> usize {
    // Inverse-CDF sampling over the discrete support 2..=max.
    let u: f64 = rng.f64();
    let mut norm = 0.0;
    for d in 2..=max_degree {
        norm += (d as f64).powf(-gamma);
    }
    let mut acc = 0.0;
    for d in 2..=max_degree {
        acc += (d as f64).powf(-gamma) / norm;
        if u <= acc {
            return d;
        }
    }
    max_degree
}

/// Generates a placement design from a spec.
///
/// Determinism: the same spec (including seed) always yields the identical
/// design.
///
/// # Errors
///
/// Returns [`DbError::InvalidSpec`] for inconsistent parameters and
/// propagates any constraint violation detected while assembling the
/// design.
pub fn synthesize(spec: &SynthesisSpec) -> Result<Design, DbError> {
    spec.validate()?;
    let mut rng = Rng::seed_from_u64(spec.seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut builder = NetlistBuilder::with_capacity(
        spec.num_cells + spec.num_macros + spec.num_terminals,
        spec.num_nets,
        spec.num_nets * 3,
    );

    // --- Standard cells: width 1..=8 sites, geometric-ish distribution. ---
    let site_width = 1.0;
    let mut movable_area = 0.0;
    let mut cell_ids = Vec::with_capacity(spec.num_cells);
    for i in 0..spec.num_cells {
        let sites = {
            let u: f64 = rng.f64();
            // ~55% 1-2 sites, tail up to 8.
            1 + (7.0 * u * u * u) as usize
        };
        let w = sites as f64 * site_width;
        let id = builder.add_cell(format!("o{i}"), w, spec.row_height, CellKind::Movable);
        movable_area += w * spec.row_height;
        cell_ids.push(id);
    }

    // --- Die region sizing. ---
    let free_area = movable_area / spec.utilization;
    let die_area = if spec.macro_area_fraction > 0.0 {
        free_area / (1.0 - spec.macro_area_fraction)
    } else {
        free_area
    };
    let height = (die_area / spec.aspect).sqrt();
    let num_rows = (height / spec.row_height).ceil().max(4.0) as usize;
    let height = num_rows as f64 * spec.row_height;
    let width = die_area / height;
    let region = Rect::new(0.0, 0.0, width, height);
    let rows: Vec<Row> = (0..num_rows)
        .map(|r| Row {
            y: r as f64 * spec.row_height,
            height: spec.row_height,
            x_min: 0.0,
            x_max: width,
            site_width,
        })
        .collect();

    // --- Macros: laid out on a shuffled coarse grid so they never overlap. ---
    let mut macro_ids = Vec::with_capacity(spec.num_macros);
    let mut macro_pos = Vec::with_capacity(spec.num_macros);
    if spec.num_macros > 0 {
        let macro_total = die_area * spec.macro_area_fraction;
        let side = (macro_total / spec.num_macros as f64).sqrt();
        let grid = (spec.num_macros as f64).sqrt().ceil() as usize;
        let mut slots: Vec<(usize, usize)> =
            (0..grid * grid).map(|k| (k % grid, k / grid)).collect();
        // Fisher-Yates shuffle.
        for i in (1..slots.len()).rev() {
            let j = rng.gen_range(0..=i);
            slots.swap(i, j);
        }
        let pitch_x = width / grid as f64;
        let pitch_y = height / grid as f64;
        let side = side.min(pitch_x * 0.85).min(pitch_y * 0.85);
        for (m, &(gx, gy)) in slots.iter().take(spec.num_macros).enumerate() {
            let jitter_x = (rng.f64() - 0.5) * (pitch_x - side) * 0.8;
            let jitter_y = (rng.f64() - 0.5) * (pitch_y - side) * 0.8;
            let cx = (gx as f64 + 0.5) * pitch_x + jitter_x;
            let cy = (gy as f64 + 0.5) * pitch_y + jitter_y;
            // Snap to row grid for realism.
            let cy = (cy / spec.row_height).round() * spec.row_height;
            let id = builder.add_cell(format!("m{m}"), side, side, CellKind::Fixed);
            macro_ids.push(id);
            macro_pos.push(Point::new(
                cx.clamp(side * 0.5, width - side * 0.5),
                cy.clamp(side * 0.5, height - side * 0.5),
            ));
        }
    }

    // --- Terminals on the periphery. ---
    let mut terminal_ids = Vec::with_capacity(spec.num_terminals);
    let mut terminal_pos = Vec::with_capacity(spec.num_terminals);
    for t in 0..spec.num_terminals {
        let id = builder.add_cell(format!("p{t}"), 0.0, 0.0, CellKind::Terminal);
        let side = rng.gen_range(0..4u8);
        let frac: f64 = rng.f64();
        let p = match side {
            0 => Point::new(frac * width, 0.0),
            1 => Point::new(frac * width, height),
            2 => Point::new(0.0, frac * height),
            _ => Point::new(width, frac * height),
        };
        terminal_ids.push(id);
        terminal_pos.push(p);
    }

    // --- Nets with Rent-style locality over the linear cell ordering. ---
    let n = spec.num_cells;
    let mut connected = vec![false; n];
    let pin_offset = |rng: &mut Rng, w: f64, h: f64| {
        Point::new((rng.f64() - 0.5) * w * 0.8, (rng.f64() - 0.5) * h * 0.8)
    };
    let mut nets_made = 0usize;
    let reserve = n / 16; // leave headroom for the connectivity fix-up pass
    while nets_made < spec.num_nets.saturating_sub(reserve.min(spec.num_nets / 8)) {
        let degree = sample_degree(&mut rng, spec.degree_exponent, spec.max_net_degree);
        let center = rng.gen_range(0..n);
        // Log-uniform window between the degree and the whole design: most
        // nets are local, a few span the hierarchy.
        let span_min = (degree * 4).min(n);
        let ratio = n as f64 / span_min.max(1) as f64;
        let window = (span_min as f64 * ratio.powf(rng.f64().powi(2))) as usize;
        let window = window.clamp(degree, n);
        let lo = center.saturating_sub(window / 2).min(n - window);
        let mut members = Vec::with_capacity(degree + 1);
        let mut tries = 0;
        while members.len() < degree && tries < degree * 8 {
            let idx = lo + rng.gen_range(0..window);
            if !members.contains(&idx) {
                members.push(idx);
            }
            tries += 1;
        }
        if members.len() < 2 {
            continue;
        }
        let mut pins: Vec<(crate::CellId, Point)> = Vec::with_capacity(members.len() + 1);
        for &idx in &members {
            connected[idx] = true;
            let cell = builder.num_cells(); // placeholder to appease the borrow checker
            let _ = cell;
            let c = cell_ids[idx];
            let w = site_width * 8.0; // offsets kept small relative to cells
            let _ = w;
            pins.push((c, pin_offset(&mut rng, 2.0, spec.row_height)));
        }
        // Occasionally attach a macro or terminal pin.
        if !macro_ids.is_empty() && rng.f64() < 0.04 {
            let m = macro_ids[rng.gen_range(0..macro_ids.len())];
            pins.push((m, pin_offset(&mut rng, 4.0, 4.0)));
        } else if !terminal_ids.is_empty() && rng.f64() < 0.03 {
            let t = terminal_ids[rng.gen_range(0..terminal_ids.len())];
            pins.push((t, Point::default()));
        }
        builder.add_net(format!("n{nets_made}"), pins)?;
        nets_made += 1;
    }

    // --- Connectivity fix-up: every movable cell gets at least one net. ---
    for idx in 0..n {
        if !connected[idx] {
            let partner = if idx + 1 < n {
                idx + 1
            } else {
                idx.saturating_sub(1)
            };
            let pins = vec![
                (cell_ids[idx], pin_offset(&mut rng, 2.0, spec.row_height)),
                (
                    cell_ids[partner],
                    pin_offset(&mut rng, 2.0, spec.row_height),
                ),
            ];
            builder.add_net(format!("n{nets_made}"), pins)?;
            connected[idx] = true;
            connected[partner] = true;
            nets_made += 1;
        }
    }

    let netlist = builder.finish()?;

    // --- Initial positions: movable cells clustered at the die center. ---
    let center = region.center();
    let mut positions = vec![Point::default(); netlist.num_cells()];
    for &c in &cell_ids {
        let jitter = Point::new(
            (rng.f64() - 0.5) * width * 0.02,
            (rng.f64() - 0.5) * height * 0.02,
        );
        positions[c.index()] = center + jitter;
    }
    for (i, &m) in macro_ids.iter().enumerate() {
        positions[m.index()] = macro_pos[i];
    }
    for (i, &t) in terminal_ids.iter().enumerate() {
        positions[t.index()] = terminal_pos[i];
    }

    let mut design = Design::new(
        &spec.name,
        netlist,
        region,
        rows,
        spec.target_density,
        positions,
    )?;

    // --- Fence regions: bands along the top edge, each owning a
    // contiguous slice of movable cells (placed at the fence center so
    // the initial state is feasible). ---
    if spec.num_fences > 0 {
        let k = spec.num_fences;
        let band_h = ((height * 0.2) / spec.row_height).floor() * spec.row_height;
        let band_h = band_h.max(spec.row_height * 2.0);
        let band_y = ((height - band_h) / spec.row_height).floor() * spec.row_height;
        let pitch = width / k as f64;
        let members_per_fence = (n / 32).clamp(2, n / k.max(1));
        let mut fences = Vec::with_capacity(k);
        let mut positions = design.positions().to_vec();
        for fi in 0..k {
            let fence_rect = crate::Rect::new(
                fi as f64 * pitch + pitch * 0.1,
                band_y,
                fi as f64 * pitch + pitch * 0.9,
                band_y + band_h,
            );
            let start = fi * members_per_fence;
            let members: Vec<crate::CellId> =
                cell_ids[start..(start + members_per_fence).min(cell_ids.len())].to_vec();
            for &m in &members {
                positions[m.index()] = fence_rect.center();
            }
            fences.push(crate::FenceRegion::new(
                format!("fence_{fi}"),
                vec![fence_rect],
                members,
            )?);
        }
        design.set_positions(positions);
        design.set_fences(fences)?;
    }

    design.validate()?;
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignStats;

    #[test]
    fn generates_requested_counts_approximately() {
        let spec = SynthesisSpec::new("t", 1000, 1050).with_seed(3);
        let d = synthesize(&spec).unwrap();
        let s = DesignStats::of(&d);
        assert_eq!(s.num_movable, 1000);
        assert!(
            (s.num_nets as f64 - 1050.0).abs() / 1050.0 < 0.15,
            "net count {} too far from target",
            s.num_nets
        );
        assert!(s.avg_net_degree >= 2.0 && s.avg_net_degree < 8.0);
    }

    #[test]
    fn is_deterministic_given_seed() {
        let spec = SynthesisSpec::new("t", 400, 420).with_seed(9);
        let a = synthesize(&spec).unwrap();
        let b = synthesize(&spec).unwrap();
        assert_eq!(a.netlist().num_nets(), b.netlist().num_nets());
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.total_hpwl(), b.total_hpwl());
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthesize(&SynthesisSpec::new("t", 400, 420).with_seed(1)).unwrap();
        let b = synthesize(&SynthesisSpec::new("t", 400, 420).with_seed(2)).unwrap();
        assert_ne!(a.positions(), b.positions());
    }

    #[test]
    fn every_movable_cell_is_connected() {
        let d = synthesize(&SynthesisSpec::new("t", 600, 500).with_seed(5)).unwrap();
        let nl = d.netlist();
        for c in nl.cell_ids() {
            if nl.cell(c).is_movable() {
                assert!(!nl.pins_of_cell(c).is_empty(), "cell {c} has no pins");
            }
        }
    }

    #[test]
    fn macros_do_not_overlap_each_other() {
        let d = synthesize(
            &SynthesisSpec::new("t", 800, 820)
                .with_seed(7)
                .with_macro_count(9),
        )
        .unwrap();
        let nl = d.netlist();
        let macros: Vec<_> = nl
            .cell_ids()
            .filter(|&c| nl.cell(c).kind() == CellKind::Fixed)
            .map(|c| d.cell_rect(c))
            .collect();
        assert_eq!(macros.len(), 9);
        for i in 0..macros.len() {
            for j in i + 1..macros.len() {
                assert!(
                    !macros[i].intersects(&macros[j]),
                    "macros {i} and {j} overlap: {} vs {}",
                    macros[i],
                    macros[j]
                );
            }
        }
    }

    #[test]
    fn macros_lie_inside_region() {
        let d = synthesize(
            &SynthesisSpec::new("t", 500, 510)
                .with_seed(11)
                .with_macro_count(4),
        )
        .unwrap();
        let nl = d.netlist();
        for c in nl.cell_ids() {
            if nl.cell(c).kind() == CellKind::Fixed {
                assert!(d.region().contains_rect(&d.cell_rect(c)));
            }
        }
    }

    #[test]
    fn utilization_close_to_spec() {
        let spec = SynthesisSpec::new("t", 2000, 2100)
            .with_seed(13)
            .with_utilization(0.6);
        let d = synthesize(&spec).unwrap();
        assert!(
            (d.utilization() - 0.6).abs() < 0.05,
            "utilization {}",
            d.utilization()
        );
    }

    #[test]
    fn degree_distribution_is_power_law_ish() {
        let d = synthesize(&SynthesisSpec::new("t", 3000, 3200).with_seed(17)).unwrap();
        let nl = d.netlist();
        let two_pin = nl.nets().iter().filter(|n| n.degree() == 2).count();
        let frac = two_pin as f64 / nl.num_nets() as f64;
        assert!(frac > 0.4 && frac < 0.9, "2-pin fraction {frac}");
        let max = nl.nets().iter().map(crate::Net::degree).max().unwrap();
        assert!(max > 4, "no high-degree nets at all");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(synthesize(&SynthesisSpec::new("t", 0, 10)).is_err());
        let mut s = SynthesisSpec::new("t", 10, 10);
        s.utilization = 1.5;
        assert!(synthesize(&s).is_err());
        let mut s = SynthesisSpec::new("t", 10, 10);
        s.target_density = 0.5;
        s.utilization = 0.8;
        assert!(synthesize(&s).is_err());
        let mut s = SynthesisSpec::new("t", 10, 10);
        s.max_net_degree = 1;
        assert!(synthesize(&s).is_err());
    }

    #[test]
    fn initial_positions_cluster_at_center() {
        let d = synthesize(&SynthesisSpec::new("t", 300, 320).with_seed(23)).unwrap();
        let c = d.region().center();
        let nl = d.netlist();
        for id in nl.cell_ids() {
            if nl.cell(id).is_movable() {
                let p = d.position(id);
                assert!((p.x - c.x).abs() < d.region().width() * 0.05);
                assert!((p.y - c.y).abs() < d.region().height() * 0.05);
            }
        }
    }

    #[test]
    fn rows_tile_the_region() {
        let d = synthesize(&SynthesisSpec::new("t", 200, 210).with_seed(29)).unwrap();
        let rows = d.rows();
        assert!(!rows.is_empty());
        let total: f64 = rows.iter().map(|r| r.rect().area()).sum();
        assert!((total - d.region_area()).abs() < 1e-6 * d.region_area());
    }
}
