//! Synthetic circuit generation.
//!
//! The ISPD 2005/2015 contest releases are large proprietary-format data
//! drops; this module is the documented substitution (see `DESIGN.md`): a
//! parameterized generator that produces placement instances matching the
//! *statistics* that drive global-placement behaviour — cell count, net
//! count, a power-law net-degree distribution, Rent-style net locality
//! (net spans drawn log-uniformly over a conceptual linear hierarchy),
//! macro/terminal fractions, row geometry and whitespace.
//!
//! Real contest data still drops in through [`crate::bookshelf`] /
//! [`crate::def`] when available.

use crate::netlist::NetlistBuilder;
use crate::{CellId, CellKind, DbError, Design, Point, Rect, Row};
use xplace_testkit::Rng;

/// Connectivity structure of a generated design.
///
/// The random topology reproduces contest-style statistics (power-law
/// degrees, Rent-style locality); the array/dataflow topologies reproduce
/// the *regular* structure of accelerator designs (DG-RePlAce's
/// observation) so the multilevel clustering and the scaling bench have
/// realistic 100k–1M-cell inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Power-law degrees with log-uniform net windows (the default).
    #[default]
    Random,
    /// A 2-D systolic array: nearest-neighbour 2-pin nets along rows and
    /// columns of an `R x C` processing-element grid.
    SystolicGrid,
    /// An FFT dataflow graph: `w` lanes by `log2(w)+1` stages with 4-pin
    /// butterfly nets between consecutive stages.
    FftButterfly,
}

impl Topology {
    /// Parses a CLI/manifest name (`random`, `systolic`, `butterfly`).
    pub fn parse(name: &str) -> Option<Topology> {
        match name {
            "random" => Some(Topology::Random),
            "systolic" => Some(Topology::SystolicGrid),
            "butterfly" => Some(Topology::FftButterfly),
            _ => None,
        }
    }

    /// The CLI/manifest name of this topology.
    pub fn name(self) -> &'static str {
        match self {
            Topology::Random => "random",
            Topology::SystolicGrid => "systolic",
            Topology::FftButterfly => "butterfly",
        }
    }
}

/// Parameters controlling synthetic circuit generation.
///
/// ```
/// use xplace_db::synthesis::{SynthesisSpec, synthesize};
///
/// # fn main() -> Result<(), xplace_db::DbError> {
/// let spec = SynthesisSpec::new("fft_like", 2_000, 1_900)
///     .with_seed(42)
///     .with_macro_count(4)
///     .with_utilization(0.5);
/// let design = synthesize(&spec)?;
/// design.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisSpec {
    /// Design name.
    pub name: String,
    /// Number of movable standard cells.
    pub num_cells: usize,
    /// Target number of nets (actual count may differ by a few percent
    /// because every cell is guaranteed at least one connection).
    pub num_nets: usize,
    /// Number of fixed macro blocks.
    pub num_macros: usize,
    /// Fraction of the die area covered by macros.
    pub macro_area_fraction: f64,
    /// Number of I/O terminals on the periphery.
    pub num_terminals: usize,
    /// Desired movable-area / free-area utilization.
    pub utilization: f64,
    /// Benchmark target density `D_t` (must be >= utilization).
    pub target_density: f64,
    /// Placement row height in database units.
    pub row_height: f64,
    /// Power-law exponent of the net-degree distribution (larger = more
    /// 2-pin nets).
    pub degree_exponent: f64,
    /// Maximum net degree.
    pub max_net_degree: usize,
    /// Die aspect ratio (width / height).
    pub aspect: f64,
    /// Number of fence regions (each confines a contiguous slice of cells
    /// to a band along the top edge of the die).
    pub num_fences: usize,
    /// Connectivity structure ([`Topology::Random`] unless overridden;
    /// the structured topologies treat `num_nets` as advisory).
    pub topology: Topology,
    /// RNG seed; the generator is fully deterministic given the spec.
    pub seed: u64,
}

impl SynthesisSpec {
    /// Creates a spec with sensible defaults for everything but the name
    /// and cell/net counts.
    pub fn new(name: impl Into<String>, num_cells: usize, num_nets: usize) -> Self {
        SynthesisSpec {
            name: name.into(),
            num_cells,
            num_nets,
            num_macros: 0,
            macro_area_fraction: 0.0,
            num_terminals: 64,
            utilization: 0.7,
            target_density: 0.9,
            row_height: 12.0,
            degree_exponent: 2.4,
            max_net_degree: 24,
            aspect: 1.0,
            num_fences: 0,
            topology: Topology::Random,
            seed: 1,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds `count` fixed macros covering `fraction` of the die
    /// (default fraction 0.15 when macros are requested).
    pub fn with_macro_count(mut self, count: usize) -> Self {
        self.num_macros = count;
        if count > 0 && self.macro_area_fraction == 0.0 {
            self.macro_area_fraction = 0.15;
        }
        self
    }

    /// Sets the macro area fraction of the die.
    pub fn with_macro_area_fraction(mut self, fraction: f64) -> Self {
        self.macro_area_fraction = fraction;
        self
    }

    /// Sets the movable-area utilization.
    pub fn with_utilization(mut self, utilization: f64) -> Self {
        self.utilization = utilization;
        self
    }

    /// Sets the benchmark target density.
    pub fn with_target_density(mut self, density: f64) -> Self {
        self.target_density = density;
        self
    }

    /// Sets the terminal count.
    pub fn with_terminals(mut self, count: usize) -> Self {
        self.num_terminals = count;
        self
    }

    /// Adds `count` fence regions along the top edge of the die, each
    /// confining ~3% of the movable cells.
    pub fn with_fences(mut self, count: usize) -> Self {
        self.num_fences = count;
        self
    }

    /// Sets the connectivity structure.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    fn validate(&self) -> Result<(), DbError> {
        if self.num_cells == 0 {
            return Err(DbError::InvalidSpec("num_cells must be positive".into()));
        }
        if !(self.utilization > 0.0 && self.utilization < 1.0) {
            return Err(DbError::InvalidSpec(format!(
                "utilization {} outside (0, 1)",
                self.utilization
            )));
        }
        if self.target_density < self.utilization {
            return Err(DbError::InvalidSpec(format!(
                "target density {} below utilization {}",
                self.target_density, self.utilization
            )));
        }
        if self.max_net_degree < 2 {
            return Err(DbError::InvalidSpec(
                "max_net_degree must be at least 2".into(),
            ));
        }
        if !(self.macro_area_fraction >= 0.0 && self.macro_area_fraction < 0.6) {
            return Err(DbError::InvalidSpec(format!(
                "macro area fraction {} outside [0, 0.6)",
                self.macro_area_fraction
            )));
        }
        if self.aspect <= 0.0 {
            return Err(DbError::InvalidSpec("aspect must be positive".into()));
        }
        Ok(())
    }
}

/// A random pin offset within `0.8 * (w, h)` of the owning cell's center.
fn pin_offset(rng: &mut Rng, w: f64, h: f64) -> Point {
    Point::new((rng.f64() - 0.5) * w * 0.8, (rng.f64() - 0.5) * h * 0.8)
}

/// Samples a net degree from a truncated power law `p(d) ~ d^-gamma`.
fn sample_degree(rng: &mut Rng, gamma: f64, max_degree: usize) -> usize {
    // Inverse-CDF sampling over the discrete support 2..=max.
    let u: f64 = rng.f64();
    let mut norm = 0.0;
    for d in 2..=max_degree {
        norm += (d as f64).powf(-gamma);
    }
    let mut acc = 0.0;
    for d in 2..=max_degree {
        acc += (d as f64).powf(-gamma) / norm;
        if u <= acc {
            return d;
        }
    }
    max_degree
}

/// Systolic-array dataflow: cells form an `R x C` grid of processing
/// elements, each wired to its right and down neighbour with a 2-pin net.
/// Terminals tap the array cyclically (dataflow in/out at the boundary).
///
/// `spec.num_nets` is advisory here — the topology dictates the net count.
#[allow(clippy::too_many_arguments)]
fn build_systolic_nets(
    builder: &mut NetlistBuilder,
    rng: &mut Rng,
    spec: &SynthesisSpec,
    cell_ids: &[CellId],
    terminal_ids: &[CellId],
    connected: &mut [bool],
    nets_made: &mut usize,
) -> Result<(), DbError> {
    let n = cell_ids.len();
    if n < 2 {
        return Ok(());
    }
    let cols = ((n as f64).sqrt().ceil() as usize).max(1);
    for i in 0..n {
        let c = i % cols;
        if c + 1 < cols && i + 1 < n {
            let pins = vec![
                (cell_ids[i], pin_offset(rng, 2.0, spec.row_height)),
                (cell_ids[i + 1], pin_offset(rng, 2.0, spec.row_height)),
            ];
            builder.add_net(format!("n{nets_made}"), pins)?;
            connected[i] = true;
            connected[i + 1] = true;
            *nets_made += 1;
        }
        if i + cols < n {
            let pins = vec![
                (cell_ids[i], pin_offset(rng, 2.0, spec.row_height)),
                (cell_ids[i + cols], pin_offset(rng, 2.0, spec.row_height)),
            ];
            builder.add_net(format!("n{nets_made}"), pins)?;
            connected[i] = true;
            connected[i + cols] = true;
            *nets_made += 1;
        }
    }
    if !terminal_ids.is_empty() {
        let stride = (n / terminal_ids.len()).max(1);
        for (t, &tid) in terminal_ids.iter().enumerate() {
            let i = (t * stride) % n;
            let pins = vec![
                (cell_ids[i], pin_offset(rng, 2.0, spec.row_height)),
                (tid, Point::default()),
            ];
            builder.add_net(format!("n{nets_made}"), pins)?;
            connected[i] = true;
            *nets_made += 1;
        }
    }
    Ok(())
}

/// FFT dataflow: the largest power-of-two lane count `w` whose full
/// butterfly network `w * (log2(w) + 1)` fits in the design becomes a stack
/// of 4-pin butterfly nets `{(t, j), (t, j^bit), (t+1, j), (t+1, j^bit)}`;
/// leftover cells are chained in, and terminals alternate between the first
/// and last stages (transform inputs and outputs).
///
/// `spec.num_nets` is advisory here — the topology dictates the net count.
#[allow(clippy::too_many_arguments)]
fn build_butterfly_nets(
    builder: &mut NetlistBuilder,
    rng: &mut Rng,
    spec: &SynthesisSpec,
    cell_ids: &[CellId],
    terminal_ids: &[CellId],
    connected: &mut [bool],
    nets_made: &mut usize,
) -> Result<(), DbError> {
    let n = cell_ids.len();
    if n < 2 {
        return Ok(());
    }
    // Largest power-of-two lane count whose full network fits; 0 when even
    // the 2-lane network (4 cells) does not.
    let mut w = 0usize;
    let mut cand = 2usize;
    loop {
        let stages = cand.trailing_zeros() as usize + 1;
        if cand * stages > n {
            break;
        }
        w = cand;
        cand *= 2;
    }
    let stages = if w == 0 {
        0
    } else {
        w.trailing_zeros() as usize
    };
    let used = w * (stages + 1);
    for t in 0..stages {
        let bit = 1usize << t;
        for j in 0..w {
            if j & bit != 0 {
                continue;
            }
            let k = j | bit;
            let quad = [t * w + j, t * w + k, (t + 1) * w + j, (t + 1) * w + k];
            let mut pins = Vec::with_capacity(4);
            for &i in &quad {
                connected[i] = true;
                pins.push((cell_ids[i], pin_offset(rng, 2.0, spec.row_height)));
            }
            builder.add_net(format!("n{nets_made}"), pins)?;
            *nets_made += 1;
        }
    }
    // Chain cells outside the butterfly network into the design.
    let chain_from = used.max(1);
    for i in chain_from..n {
        let pins = vec![
            (cell_ids[i - 1], pin_offset(rng, 2.0, spec.row_height)),
            (cell_ids[i], pin_offset(rng, 2.0, spec.row_height)),
        ];
        builder.add_net(format!("n{nets_made}"), pins)?;
        connected[i - 1] = true;
        connected[i] = true;
        *nets_made += 1;
    }
    if !terminal_ids.is_empty() && w > 0 {
        for (t, &tid) in terminal_ids.iter().enumerate() {
            let j = (t / 2) % w;
            let i = if t % 2 == 0 { j } else { stages * w + j };
            let pins = vec![
                (cell_ids[i], pin_offset(rng, 2.0, spec.row_height)),
                (tid, Point::default()),
            ];
            builder.add_net(format!("n{nets_made}"), pins)?;
            connected[i] = true;
            *nets_made += 1;
        }
    }
    Ok(())
}

/// Generates a placement design from a spec.
///
/// Determinism: the same spec (including seed) always yields the identical
/// design.
///
/// # Errors
///
/// Returns [`DbError::InvalidSpec`] for inconsistent parameters and
/// propagates any constraint violation detected while assembling the
/// design.
pub fn synthesize(spec: &SynthesisSpec) -> Result<Design, DbError> {
    spec.validate()?;
    let mut rng = Rng::seed_from_u64(spec.seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut builder = NetlistBuilder::with_capacity(
        spec.num_cells + spec.num_macros + spec.num_terminals,
        spec.num_nets,
        spec.num_nets * 3,
    );

    // --- Standard cells: width 1..=8 sites, geometric-ish distribution. ---
    let site_width = 1.0;
    let mut movable_area = 0.0;
    let mut widest_cell = 0.0f64;
    let mut cell_ids = Vec::with_capacity(spec.num_cells);
    for i in 0..spec.num_cells {
        let sites = {
            let u: f64 = rng.f64();
            // ~55% 1-2 sites, tail up to 8. Round (not floor) so the top
            // of the truncated distribution is actually drawable.
            1 + (7.0 * u * u * u).round() as usize
        };
        let w = sites as f64 * site_width;
        let id = builder.add_cell(format!("o{i}"), w, spec.row_height, CellKind::Movable);
        movable_area += w * spec.row_height;
        widest_cell = widest_cell.max(w);
        cell_ids.push(id);
    }

    // --- Die region sizing. ---
    let free_area = movable_area / spec.utilization;
    let die_area = if spec.macro_area_fraction > 0.0 {
        free_area / (1.0 - spec.macro_area_fraction)
    } else {
        free_area
    };
    let height = (die_area / spec.aspect).sqrt();
    let num_rows = (height / spec.row_height).ceil().max(4.0) as usize;
    let height = num_rows as f64 * spec.row_height;
    // Tiny designs can size a die narrower than their widest cell (the
    // row-count floor above stretches the height); widen to fit.
    let width = (die_area / height).max(widest_cell);
    let region = Rect::new(0.0, 0.0, width, height);
    let rows: Vec<Row> = (0..num_rows)
        .map(|r| Row {
            y: r as f64 * spec.row_height,
            height: spec.row_height,
            x_min: 0.0,
            x_max: width,
            site_width,
        })
        .collect();

    // --- Macros: laid out on a shuffled coarse grid so they never overlap. ---
    let mut macro_ids = Vec::with_capacity(spec.num_macros);
    let mut macro_pos = Vec::with_capacity(spec.num_macros);
    if spec.num_macros > 0 {
        let macro_total = die_area * spec.macro_area_fraction;
        let side = (macro_total / spec.num_macros as f64).sqrt();
        let grid = (spec.num_macros as f64).sqrt().ceil() as usize;
        let mut slots: Vec<(usize, usize)> =
            (0..grid * grid).map(|k| (k % grid, k / grid)).collect();
        // Fisher-Yates shuffle.
        for i in (1..slots.len()).rev() {
            let j = rng.gen_range(0..=i);
            slots.swap(i, j);
        }
        let pitch_x = width / grid as f64;
        let pitch_y = height / grid as f64;
        let side = side.min(pitch_x * 0.85).min(pitch_y * 0.85);
        for (m, &(gx, gy)) in slots.iter().take(spec.num_macros).enumerate() {
            let jitter_x = (rng.f64() - 0.5) * (pitch_x - side) * 0.8;
            let jitter_y = (rng.f64() - 0.5) * (pitch_y - side) * 0.8;
            let cx = (gx as f64 + 0.5) * pitch_x + jitter_x;
            let cy = (gy as f64 + 0.5) * pitch_y + jitter_y;
            // Snap to row grid for realism.
            let cy = (cy / spec.row_height).round() * spec.row_height;
            let id = builder.add_cell(format!("m{m}"), side, side, CellKind::Fixed);
            macro_ids.push(id);
            macro_pos.push(Point::new(
                cx.clamp(side * 0.5, width - side * 0.5),
                cy.clamp(side * 0.5, height - side * 0.5),
            ));
        }
    }

    // --- Terminals on the periphery. ---
    let mut terminal_ids = Vec::with_capacity(spec.num_terminals);
    let mut terminal_pos = Vec::with_capacity(spec.num_terminals);
    for t in 0..spec.num_terminals {
        let id = builder.add_cell(format!("p{t}"), 0.0, 0.0, CellKind::Terminal);
        let side = rng.gen_range(0..4u8);
        let frac: f64 = rng.f64();
        let p = match side {
            0 => Point::new(frac * width, 0.0),
            1 => Point::new(frac * width, height),
            2 => Point::new(0.0, frac * height),
            _ => Point::new(width, frac * height),
        };
        terminal_ids.push(id);
        terminal_pos.push(p);
    }

    // --- Nets. ---
    let n = spec.num_cells;
    let mut connected = vec![false; n];
    let mut nets_made = 0usize;
    match spec.topology {
        Topology::Random => {
            // Rent-style locality over the linear cell ordering. A design
            // with fewer than 2 movable cells cannot host a random net at
            // all — the fix-up pass below wires the lone cell.
            let reserve = n / 16; // headroom for the connectivity fix-up pass
            let target = spec.num_nets.saturating_sub(reserve.min(spec.num_nets / 8));
            while n >= 2 && nets_made < target {
                // Degree clamped to the distinct cells available so the
                // member sampling below can never demand duplicates.
                let degree =
                    sample_degree(&mut rng, spec.degree_exponent, spec.max_net_degree).min(n);
                let center = rng.gen_range(0..n);
                // Log-uniform window between the degree and the whole
                // design: most nets are local, a few span the hierarchy.
                // The `as usize` cast floors (window 0 would yield
                // single-pin nets) and an oversampled window must not
                // exceed `n` (the `n - window` below would underflow):
                // clamp into [degree, n].
                let span_min = (degree * 4).min(n);
                let ratio = n as f64 / span_min.max(1) as f64;
                let window = (span_min as f64 * ratio.powf(rng.f64().powi(2))) as usize;
                let window = window.clamp(degree, n);
                let lo = center.saturating_sub(window / 2).min(n - window);
                let mut members = Vec::with_capacity(degree + 1);
                let mut tries = 0;
                while members.len() < degree && tries < degree * 8 {
                    let idx = lo + rng.gen_range(0..window);
                    if !members.contains(&idx) {
                        members.push(idx);
                    }
                    tries += 1;
                }
                if members.len() < 2 {
                    continue;
                }
                let mut pins: Vec<(CellId, Point)> = Vec::with_capacity(members.len() + 1);
                for &idx in &members {
                    connected[idx] = true;
                    pins.push((cell_ids[idx], pin_offset(&mut rng, 2.0, spec.row_height)));
                }
                // Occasionally attach a macro or terminal pin.
                if !macro_ids.is_empty() && rng.f64() < 0.04 {
                    let m = macro_ids[rng.gen_range(0..macro_ids.len())];
                    pins.push((m, pin_offset(&mut rng, 4.0, 4.0)));
                } else if !terminal_ids.is_empty() && rng.f64() < 0.03 {
                    let t = terminal_ids[rng.gen_range(0..terminal_ids.len())];
                    pins.push((t, Point::default()));
                }
                builder.add_net(format!("n{nets_made}"), pins)?;
                nets_made += 1;
            }
        }
        Topology::SystolicGrid => build_systolic_nets(
            &mut builder,
            &mut rng,
            spec,
            &cell_ids,
            &terminal_ids,
            &mut connected,
            &mut nets_made,
        )?,
        Topology::FftButterfly => build_butterfly_nets(
            &mut builder,
            &mut rng,
            spec,
            &cell_ids,
            &terminal_ids,
            &mut connected,
            &mut nets_made,
        )?,
    }

    // --- Connectivity fix-up: every movable cell gets at least one net. ---
    for idx in 0..n {
        if !connected[idx] {
            let mut pins = vec![(cell_ids[idx], pin_offset(&mut rng, 2.0, spec.row_height))];
            if n >= 2 {
                let partner = if idx + 1 < n { idx + 1 } else { idx - 1 };
                pins.push((
                    cell_ids[partner],
                    pin_offset(&mut rng, 2.0, spec.row_height),
                ));
                connected[partner] = true;
            } else if let Some(&t) = terminal_ids.first() {
                // A single movable cell has no movable partner: wire it to
                // a terminal instead of duplicating its own pin on the net.
                pins.push((t, Point::default()));
            } else if let Some(&m) = macro_ids.first() {
                pins.push((m, pin_offset(&mut rng, 4.0, 4.0)));
            } else {
                // No second endpoint exists anywhere; a duplicate-cell or
                // single-pin net would be worse than leaving the lone cell
                // unconnected.
                continue;
            }
            builder.add_net(format!("n{nets_made}"), pins)?;
            connected[idx] = true;
            nets_made += 1;
        }
    }

    let netlist = builder.finish()?;

    // --- Initial positions: movable cells clustered at the die center. ---
    let center = region.center();
    let mut positions = vec![Point::default(); netlist.num_cells()];
    for &c in &cell_ids {
        let jitter = Point::new(
            (rng.f64() - 0.5) * width * 0.02,
            (rng.f64() - 0.5) * height * 0.02,
        );
        positions[c.index()] = center + jitter;
    }
    for (i, &m) in macro_ids.iter().enumerate() {
        positions[m.index()] = macro_pos[i];
    }
    for (i, &t) in terminal_ids.iter().enumerate() {
        positions[t.index()] = terminal_pos[i];
    }

    let mut design = Design::new(
        &spec.name,
        netlist,
        region,
        rows,
        spec.target_density,
        positions,
    )?;

    // --- Fence regions: bands along the top edge, each owning a
    // contiguous slice of movable cells (placed at the fence center so
    // the initial state is feasible). ---
    if spec.num_fences > 0 {
        let k = spec.num_fences;
        let band_h = ((height * 0.2) / spec.row_height).floor() * spec.row_height;
        let band_h = band_h.max(spec.row_height * 2.0);
        let band_y = ((height - band_h) / spec.row_height).floor() * spec.row_height;
        let pitch = width / k as f64;
        let members_per_fence = (n / 32).clamp(2, n / k.max(1));
        let mut fences = Vec::with_capacity(k);
        let mut positions = design.positions().to_vec();
        for fi in 0..k {
            let fence_rect = crate::Rect::new(
                fi as f64 * pitch + pitch * 0.1,
                band_y,
                fi as f64 * pitch + pitch * 0.9,
                band_y + band_h,
            );
            let start = fi * members_per_fence;
            let members: Vec<crate::CellId> =
                cell_ids[start..(start + members_per_fence).min(cell_ids.len())].to_vec();
            for &m in &members {
                positions[m.index()] = fence_rect.center();
            }
            fences.push(crate::FenceRegion::new(
                format!("fence_{fi}"),
                vec![fence_rect],
                members,
            )?);
        }
        design.set_positions(positions);
        design.set_fences(fences)?;
    }

    design.validate()?;
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignStats;

    #[test]
    fn generates_requested_counts_approximately() {
        let spec = SynthesisSpec::new("t", 1000, 1050).with_seed(3);
        let d = synthesize(&spec).unwrap();
        let s = DesignStats::of(&d);
        assert_eq!(s.num_movable, 1000);
        assert!(
            (s.num_nets as f64 - 1050.0).abs() / 1050.0 < 0.15,
            "net count {} too far from target",
            s.num_nets
        );
        assert!(s.avg_net_degree >= 2.0 && s.avg_net_degree < 8.0);
    }

    #[test]
    fn is_deterministic_given_seed() {
        let spec = SynthesisSpec::new("t", 400, 420).with_seed(9);
        let a = synthesize(&spec).unwrap();
        let b = synthesize(&spec).unwrap();
        assert_eq!(a.netlist().num_nets(), b.netlist().num_nets());
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.total_hpwl(), b.total_hpwl());
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthesize(&SynthesisSpec::new("t", 400, 420).with_seed(1)).unwrap();
        let b = synthesize(&SynthesisSpec::new("t", 400, 420).with_seed(2)).unwrap();
        assert_ne!(a.positions(), b.positions());
    }

    #[test]
    fn every_movable_cell_is_connected() {
        let d = synthesize(&SynthesisSpec::new("t", 600, 500).with_seed(5)).unwrap();
        let nl = d.netlist();
        for c in nl.cell_ids() {
            if nl.cell(c).is_movable() {
                assert!(!nl.pins_of_cell(c).is_empty(), "cell {c} has no pins");
            }
        }
    }

    #[test]
    fn macros_do_not_overlap_each_other() {
        let d = synthesize(
            &SynthesisSpec::new("t", 800, 820)
                .with_seed(7)
                .with_macro_count(9),
        )
        .unwrap();
        let nl = d.netlist();
        let macros: Vec<_> = nl
            .cell_ids()
            .filter(|&c| nl.cell(c).kind() == CellKind::Fixed)
            .map(|c| d.cell_rect(c))
            .collect();
        assert_eq!(macros.len(), 9);
        for i in 0..macros.len() {
            for j in i + 1..macros.len() {
                assert!(
                    !macros[i].intersects(&macros[j]),
                    "macros {i} and {j} overlap: {} vs {}",
                    macros[i],
                    macros[j]
                );
            }
        }
    }

    #[test]
    fn macros_lie_inside_region() {
        let d = synthesize(
            &SynthesisSpec::new("t", 500, 510)
                .with_seed(11)
                .with_macro_count(4),
        )
        .unwrap();
        let nl = d.netlist();
        for c in nl.cell_ids() {
            if nl.cell(c).kind() == CellKind::Fixed {
                assert!(d.region().contains_rect(&d.cell_rect(c)));
            }
        }
    }

    #[test]
    fn utilization_close_to_spec() {
        let spec = SynthesisSpec::new("t", 2000, 2100)
            .with_seed(13)
            .with_utilization(0.6);
        let d = synthesize(&spec).unwrap();
        assert!(
            (d.utilization() - 0.6).abs() < 0.05,
            "utilization {}",
            d.utilization()
        );
    }

    #[test]
    fn degree_distribution_is_power_law_ish() {
        let d = synthesize(&SynthesisSpec::new("t", 3000, 3200).with_seed(17)).unwrap();
        let nl = d.netlist();
        let two_pin = nl.nets().filter(|n| n.degree() == 2).count();
        let frac = two_pin as f64 / nl.num_nets() as f64;
        assert!(frac > 0.4 && frac < 0.9, "2-pin fraction {frac}");
        let max = nl.nets().map(|n| n.degree()).max().unwrap();
        assert!(max > 4, "no high-degree nets at all");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(synthesize(&SynthesisSpec::new("t", 0, 10)).is_err());
        let mut s = SynthesisSpec::new("t", 10, 10);
        s.utilization = 1.5;
        assert!(synthesize(&s).is_err());
        let mut s = SynthesisSpec::new("t", 10, 10);
        s.target_density = 0.5;
        s.utilization = 0.8;
        assert!(synthesize(&s).is_err());
        let mut s = SynthesisSpec::new("t", 10, 10);
        s.max_net_degree = 1;
        assert!(synthesize(&s).is_err());
    }

    /// Regression: tiny designs used to panic — with the default degree cap
    /// of 24 the sampled degree routinely exceeds the cell count, and
    /// `window.clamp(degree, n)` (then `n - window`) blew up. Pinned seeds
    /// so the exact draws replay forever.
    #[test]
    fn tiny_design_window_does_not_underflow() {
        for seed in [0u64, 1, 2, 3, 4, 5, 6, 7] {
            for cells in [2usize, 3, 5, 8] {
                let d = synthesize(&SynthesisSpec::new("t", cells, cells + 2).with_seed(seed))
                    .unwrap_or_else(|e| panic!("cells={cells} seed={seed}: {e}"));
                d.validate().unwrap();
            }
        }
    }

    /// Regression: a 1-cell design used to pair the lone cell with itself
    /// in the connectivity fix-up, putting the same cell twice on one net.
    /// It must wire to a terminal (or macro) instead, and with no fixed
    /// geometry at all the cell stays unconnected rather than degenerate.
    #[test]
    fn single_cell_design_wires_to_fixed_geometry() {
        let d = synthesize(&SynthesisSpec::new("t", 1, 1).with_seed(31)).unwrap();
        let nl = d.netlist();
        assert_eq!(nl.num_nets(), 1);
        let net = nl.nets().next().unwrap();
        assert_eq!(net.degree(), 2);
        let cells: Vec<_> = net.pins().map(|p| nl.pin(p).cell).collect();
        assert_ne!(cells[0], cells[1], "net repeats the lone cell");

        let bare = synthesize(
            &SynthesisSpec::new("t", 1, 1)
                .with_seed(31)
                .with_terminals(0),
        )
        .unwrap();
        assert_eq!(bare.netlist().num_nets(), 0);
    }

    /// Regression: the cell-width sites sampler truncated `7 * u^3` toward
    /// zero, so the 8-site top of the distribution was unreachable. With
    /// rounding, a large design draws the full 1..=8 range.
    #[test]
    fn sites_sampler_reaches_the_distribution_top() {
        let d = synthesize(&SynthesisSpec::new("t", 4000, 4100).with_seed(37)).unwrap();
        let nl = d.netlist();
        let widths: Vec<f64> = nl
            .cell_ids()
            .filter(|&c| nl.cell(c).is_movable())
            .map(|c| nl.cell(c).width())
            .collect();
        let min = widths.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = widths.iter().cloned().fold(0.0, f64::max);
        assert_eq!(min, 1.0, "narrowest cell should be one site");
        assert_eq!(max, 8.0, "8-site tail never drawn");
    }

    /// Regression: a degenerate zero-width window could emit single-pin
    /// (zero-HPWL) nets; the window is now floored at the degree.
    #[test]
    fn no_single_pin_nets_at_pinned_seeds() {
        for seed in [41u64, 43, 47, 53] {
            let d = synthesize(&SynthesisSpec::new("t", 64, 80).with_seed(seed)).unwrap();
            for net in d.netlist().nets() {
                assert!(
                    net.degree() >= 2,
                    "seed {seed}: net {} degenerate",
                    net.id()
                );
            }
        }
    }

    #[test]
    fn systolic_grid_wires_nearest_neighbours() {
        let spec = SynthesisSpec::new("sys", 9, 9)
            .with_seed(59)
            .with_terminals(4)
            .with_topology(Topology::SystolicGrid);
        let d = synthesize(&spec).unwrap();
        let nl = d.netlist();
        // A 3x3 grid has 6 right + 6 down neighbour nets plus 4 I/O taps.
        assert_eq!(nl.num_nets(), 16);
        assert!(nl.nets().all(|n| n.degree() == 2));
        for c in nl.cell_ids() {
            if nl.cell(c).is_movable() {
                assert!(!nl.pins_of_cell(c).is_empty());
            }
        }
    }

    #[test]
    fn butterfly_builds_four_pin_stages() {
        // 12 cells fit a 4-lane, 3-stage butterfly exactly: 2 stages of
        // 2 butterflies, all degree 4.
        let spec = SynthesisSpec::new("fft", 12, 12)
            .with_seed(61)
            .with_terminals(0)
            .with_topology(Topology::FftButterfly);
        let d = synthesize(&spec).unwrap();
        let nl = d.netlist();
        let quads = nl.nets().filter(|n| n.degree() == 4).count();
        assert_eq!(quads, 4);
        for c in nl.cell_ids() {
            assert!(!nl.pins_of_cell(c).is_empty());
        }
    }

    #[test]
    fn topology_names_round_trip() {
        for t in [
            Topology::Random,
            Topology::SystolicGrid,
            Topology::FftButterfly,
        ] {
            assert_eq!(Topology::parse(t.name()), Some(t));
        }
        assert_eq!(Topology::parse("mesh"), None);
    }

    #[test]
    fn initial_positions_cluster_at_center() {
        let d = synthesize(&SynthesisSpec::new("t", 300, 320).with_seed(23)).unwrap();
        let c = d.region().center();
        let nl = d.netlist();
        for id in nl.cell_ids() {
            if nl.cell(id).is_movable() {
                let p = d.position(id);
                assert!((p.x - c.x).abs() < d.region().width() * 0.05);
                assert!((p.y - c.y).abs() < d.region().height() * 0.05);
            }
        }
    }

    #[test]
    fn rows_tile_the_region() {
        let d = synthesize(&SynthesisSpec::new("t", 200, 210).with_seed(29)).unwrap();
        let rows = d.rows();
        assert!(!rows.is_empty());
        let total: f64 = rows.iter().map(|r| r.rect().area()).sum();
        assert!((total - d.region_area()).abs() < 1e-6 * d.region_area());
    }
}
